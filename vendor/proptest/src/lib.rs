//! Offline, dependency-free shim implementing the subset of the `proptest`
//! API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * range strategies (`0u8..20`), tuple strategies (arity 2–4),
//!   [`collection::vec`], and [`Strategy::prop_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] and `return Ok(())` early
//!   exits via [`TestCaseError`].
//!
//! Design differences from the real crate, chosen for a hermetic build:
//!
//! * **Deterministic by construction.** Every test derives its RNG seed
//!   from a fixed workspace constant and the test's own name (FNV-1a), so
//!   tier-1 runs are flake-free with no `PROPTEST_*` env vars or
//!   regression files. Override with `TDN_PROPTEST_SEED=<u64>` to explore.
//! * **No shrinking.** On failure the shim reports the case index and
//!   re-runnable seed instead of a minimized input. Paper-scale inputs
//!   here are small (≤ 80 events), so raw cases are readable enough.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rejection or assertion failure raised inside a property test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// An assertion-failure error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a seeded sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, resampling until `f` accepts (bounded).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `Just`-style constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `config.cases` seeded cases of a property, panicking with a
/// reproducible seed report on the first failure. Called by [`proptest!`];
/// not part of the public proptest API.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("TDN_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(test_name) ^ 0x7d4e_2019_0000_5eed);
    for i in 0..config.cases {
        let seed = base.wrapping_add(i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {i}/{}: {e}\n\
                 (re-run just this case with TDN_PROPTEST_SEED={seed} and with_cases(1))",
                config.cases
            );
        }
    }
}

/// FNV-1a, used to give each property its own deterministic seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The `proptest::prelude` namespace.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of the `proptest::prelude::prop` re-export module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, returning `Err` (not panicking)
/// so the runner can report the failing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares deterministic property tests (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)+
                    #[allow(unreachable_code)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let strat = (0u8..20, 1u8..8);
        for _ in 0..100 {
            let (a, b) = crate::Strategy::generate(&strat, &mut rng);
            assert!(a < 20 && (1..8).contains(&b));
            // Determinism: same seed, same stream.
            assert_eq!((a, b), crate::Strategy::generate(&strat, &mut rng2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..10, 1..60)) {
            prop_assert!((1..60).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_applies(x in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0u8..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_seed() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
