//! Minimal binary codec for checkpoint snapshots.
//!
//! The build container has no registry access, so this crate stands in for
//! a serialization framework (serde + bincode) the same way the other
//! `vendor/` shims stand in for their upstream crates. It implements
//! exactly what the persistence layer needs and nothing more:
//!
//! * fixed-width little-endian primitives (`u8`/`u32`/`u64`/`i64`, `f64`
//!   via [`f64::to_bits`] so round-trips are bit-exact);
//! * length-prefixed byte strings and UTF-8 strings;
//! * a **panic-free** reader: every decoding failure — truncation, an
//!   implausible length prefix, invalid UTF-8, trailing garbage — surfaces
//!   as a typed [`CodecError`], never a panic, so corrupt checkpoint files
//!   degrade into errors the caller can report;
//! * an FNV-1a checksum helper for payload integrity.
//!
//! Writers and readers agree on field order by construction (each snapshot
//! implementation writes and reads its fields in one place); format
//! *versioning* lives one layer up, in `tdn-persist`'s manifest header.

#![warn(missing_docs)]

mod section;

pub use section::{
    ParentIndex, SectionError, SectionMap, SectionReader, SectionSink, SectionToc, SectionWriter,
    TocEntry, SECTION_MAGIC, SECTION_VERSION,
};

use std::fmt;

/// A decoding failure. All variants are recoverable errors; the reader
/// never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a field could be read in full.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length prefix announces more elements than the remaining bytes
    /// could possibly hold (corrupt or hostile input; also prevents huge
    /// pre-allocations).
    LengthOverflow {
        /// Announced element count.
        announced: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A field holds a value outside its legal domain (e.g. a boolean byte
    /// that is neither 0 nor 1, or `eps` outside `(0, 1)`).
    Invalid(&'static str),
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the last expected field (wrong format or a
    /// mismatched writer/reader pair).
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => write!(
                f,
                "truncated input: field needs {needed} bytes, {remaining} remain"
            ),
            CodecError::LengthOverflow {
                announced,
                remaining,
            } => write!(
                f,
                "implausible length prefix: {announced} elements announced with {remaining} bytes left"
            ),
            CodecError::Invalid(what) => write!(f, "invalid field value: {what}"),
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unconsumed trailing bytes after final field")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Shorthand result type for decoding.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Append-only binary writer. Infallible: it only grows a `Vec<u8>`.
#[derive(Default, Debug, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a collection length as `u64` (the reader validates it against
    /// the remaining buffer via [`Reader::get_len`]).
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Zero-pads the buffer so its length becomes a multiple of `align`
    /// (a power of two). Raw word runs are padded so that, when the
    /// enclosing payload lands at an aligned file offset, the words
    /// themselves are alignment-friendly for zero-copy `mmap` readers.
    pub fn pad_to(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while self.buf.len() & (align - 1) != 0 {
            self.buf.push(0);
        }
    }

    /// Writes a contiguous run of `u32` words: a length prefix, padding to
    /// 8-byte alignment, then the words as one little-endian block copy —
    /// the raw-word fast path for arena-backed structures, instead of
    /// element-by-element encoding.
    pub fn put_u32_run(&mut self, words: &[u32]) {
        self.put_len(words.len());
        self.pad_to(8);
        #[cfg(target_endian = "little")]
        {
            // SAFETY: reinterpreting initialized `u32`s as bytes is always
            // valid; on little-endian hosts the byte order already matches
            // the on-disk format.
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    words.as_ptr().cast::<u8>(),
                    std::mem::size_of_val(words),
                )
            };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(target_endian = "big")]
        for &v in words {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a contiguous run of `u64` words (see [`Self::put_u32_run`]).
    pub fn put_u64_run(&mut self, words: &[u64]) {
        self.put_len(words.len());
        self.pad_to(8);
        #[cfg(target_endian = "little")]
        {
            // SAFETY: as in `put_u32_run`.
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    words.as_ptr().cast::<u8>(),
                    std::mem::size_of_val(words),
                )
            };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(target_endian = "big")]
        for &v in words {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Panic-free binary reader over a borrowed byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean byte, rejecting values other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("boolean byte not 0 or 1")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length written by [`Writer::put_len`], validating
    /// it against the bytes remaining: a collection of `len` elements each
    /// at least `min_elem_bytes` wide cannot be longer than the rest of the
    /// buffer. This keeps corrupt length prefixes from triggering huge
    /// allocations before the inevitable [`CodecError::Truncated`].
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let announced = self.get_u64()?;
        let cap = self
            .remaining()
            .checked_div(min_elem_bytes)
            .map_or(u64::MAX, |c| c as u64);
        if announced > cap {
            return Err(CodecError::LengthOverflow {
                announced,
                remaining: self.remaining(),
            });
        }
        Ok(announced as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Consumes zero padding up to `align`-byte alignment (the reader-side
    /// mirror of [`Writer::pad_to`]). Non-zero pad bytes are rejected as
    /// corruption.
    fn skip_pad(&mut self, align: usize) -> Result<()> {
        debug_assert!(align.is_power_of_two());
        while self.pos & (align - 1) != 0 {
            if self.take(1)?[0] != 0 {
                return Err(CodecError::Invalid("non-zero alignment padding"));
            }
        }
        Ok(())
    }

    /// Reads a run of `u32` words written by [`Writer::put_u32_run`].
    pub fn get_u32_run(&mut self) -> Result<Vec<u32>> {
        let len = self.get_len(4)?;
        self.skip_pad(8)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads a run of `u64` words written by [`Writer::put_u64_run`].
    pub fn get_u64_run(&mut self) -> Result<Vec<u64>> {
        let len = self.get_len(8)?;
        self.skip_pad(8)?;
        let bytes = self.take(len * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Asserts that the entire buffer was consumed, catching writer/reader
    /// mismatches (a shorter reader would otherwise silently accept a
    /// longer or corrupted payload).
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash, used both for payload checksums and for the config
/// fingerprint in checkpoint manifests. Stable across platforms (the codec
/// is little-endian everywhere), so checkpoints are portable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(0.1);
        w.put_str("café");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), 0.1f64.to_bits());
        assert_eq!(r.get_str().unwrap(), "café");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(123);
        w.put_str("hello");
        let bytes = w.into_vec();
        // Every proper prefix must fail cleanly.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = (|| -> Result<()> {
                r.get_u64()?;
                r.get_str()?;
                r.finish()
            })();
            assert!(res.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn implausible_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // announces 2^64-1 elements
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len(4),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_typed_errors() {
        let mut r = Reader::new(&[2]);
        assert_eq!(
            r.get_bool(),
            Err(CodecError::Invalid("boolean byte not 0 or 1"))
        );
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_vec();
        assert_eq!(Reader::new(&bytes).get_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u32(2);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        r.get_u32().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { remaining: 4 }));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"checkpoint"), fnv1a64(b"checkpoin\x74\x00"));
    }
}
