//! Sectioned container format: named, length-prefixed, individually
//! checksummed sections behind a table-of-contents.
//!
//! A container is a flat byte blob laid out as
//!
//! | field | contents |
//! |-------|----------|
//! | magic | 4 bytes `b"TSEC"` |
//! | version | 1 byte, currently 1 |
//! | count | `u64` number of TOC entries |
//! | TOC | `count` entries: name (len-prefixed str), flags `u8`, payload len `u64`, FNV-1a64 checksum `u64`, absolute payload offset `u64` |
//! | payloads | each inline section's bytes at its (8-byte-aligned) offset |
//!
//! Two section kinds exist. An **inline** section (`flags = 0`) carries its
//! payload inside the container. A **ref** section (`flags = 1`) carries
//! only the `(len, checksum)` pair of a payload stored in an *earlier*
//! container (a delta checkpoint's "unchanged since the parent" marker);
//! its offset is zero and resolution walks the parent chain.
//!
//! Payload offsets are 8-byte aligned relative to the container start, so
//! a container placed at an aligned file offset keeps raw word runs
//! (`Writer::put_u64_run`) alignment-friendly for zero-copy readers.
//!
//! [`SectionSink`] adds delta support on the write side: given a
//! [`ParentIndex`] describing the previous save, a section whose
//! generation counter or checksum matches the parent is emitted as a ref
//! instead of a payload. [`SectionMap`] is the read-side result of
//! resolving a chain: every section name mapped to its materialized bytes.

use crate::{fnv1a64, CodecError, Reader, Writer};
use std::collections::HashMap;
use std::fmt;

/// Container magic, distinct from any enclosing file format's magic.
pub const SECTION_MAGIC: [u8; 4] = *b"TSEC";

/// Container layout version.
pub const SECTION_VERSION: u8 = 1;

const FLAG_REF: u8 = 1;

/// A failure while building, parsing, or resolving sectioned containers.
/// Always names the offending section where one exists, so corruption
/// reports are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionError {
    /// The container framing itself failed to decode.
    Codec(CodecError),
    /// A required section is absent from the container (or from every
    /// container in a resolved chain).
    Missing {
        /// Name of the absent section.
        section: String,
    },
    /// A ref section was never resolved to an inline payload (the chain
    /// ended, or a lone container was read without its parents).
    Unresolved {
        /// Name of the dangling section.
        section: String,
    },
    /// A section's payload bytes do not hash to its TOC checksum, or a
    /// resolved payload does not match the checksum a ref demanded.
    ChecksumMismatch {
        /// Name of the corrupt section.
        section: String,
    },
    /// The TOC lists the same section name twice.
    Duplicate {
        /// The repeated name.
        section: String,
    },
}

impl fmt::Display for SectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionError::Codec(e) => write!(f, "section container framing: {e}"),
            SectionError::Missing { section } => write!(f, "section {section:?} is missing"),
            SectionError::Unresolved { section } => {
                write!(f, "section {section:?} is an unresolved parent reference")
            }
            SectionError::ChecksumMismatch { section } => {
                write!(f, "section {section:?} failed its checksum")
            }
            SectionError::Duplicate { section } => {
                write!(
                    f,
                    "section {section:?} appears twice in the table of contents"
                )
            }
        }
    }
}

impl std::error::Error for SectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SectionError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SectionError {
    fn from(e: CodecError) -> Self {
        SectionError::Codec(e)
    }
}

/// One parsed table-of-contents entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TocEntry {
    /// Section name.
    pub name: String,
    /// Payload byte length (for refs: the length the resolved payload must
    /// have).
    pub len: u64,
    /// FNV-1a64 of the payload bytes (for refs: the checksum the resolved
    /// payload must hash to).
    pub checksum: u64,
    /// Absolute payload offset within the container (0 for refs).
    pub offset: u64,
    /// Whether this entry is a parent reference instead of an inline
    /// payload.
    pub is_ref: bool,
}

/// A parsed table of contents (entries in container order).
#[derive(Debug, Clone, Default)]
pub struct SectionToc {
    entries: Vec<TocEntry>,
}

impl SectionToc {
    /// All entries, in container order.
    pub fn entries(&self) -> &[TocEntry] {
        &self.entries
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&TocEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

struct PendingSection {
    name: String,
    payload: Vec<u8>,
    len: u64,
    checksum: u64,
    is_ref: bool,
}

/// Builds a sectioned container. Sections are buffered in memory and laid
/// out (TOC first, aligned payloads after) by [`SectionWriter::finish`].
#[derive(Default)]
pub struct SectionWriter {
    sections: Vec<PendingSection>,
}

impl SectionWriter {
    /// Creates an empty container builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a section of this name was already added.
    pub fn contains(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether no section has been added yet.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Adds an inline section, computing its checksum.
    ///
    /// # Panics
    /// Panics if a section of this name was already added — section names
    /// are chosen by the serializer, so a duplicate is a programming error,
    /// not an input error.
    pub fn put_section(&mut self, name: &str, payload: Vec<u8>) {
        assert!(!self.contains(name), "duplicate section {name:?}");
        self.sections.push(PendingSection {
            name: name.to_owned(),
            len: payload.len() as u64,
            checksum: fnv1a64(&payload),
            payload,
            is_ref: false,
        });
    }

    /// Adds a ref section: no payload, just the `(len, checksum)` contract
    /// the resolved parent payload must satisfy.
    ///
    /// # Panics
    /// Panics on a duplicate name, as in [`Self::put_section`].
    pub fn put_ref(&mut self, name: &str, len: u64, checksum: u64) {
        assert!(!self.contains(name), "duplicate section {name:?}");
        self.sections.push(PendingSection {
            name: name.to_owned(),
            payload: Vec::new(),
            len,
            checksum,
            is_ref: true,
        });
    }

    /// Serializes the container: magic, version, TOC with precomputed
    /// aligned offsets, then the inline payloads.
    pub fn finish(self) -> Vec<u8> {
        let align8 = |n: usize| (n + 7) & !7;
        // The TOC size is known before any payload is placed: entry sizes
        // depend only on name lengths.
        let header_len: usize = 4
            + 1
            + 8
            + self
                .sections
                .iter()
                .map(|s| 8 + s.name.len() + 1 + 8 + 8 + 8)
                .sum::<usize>();
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = align8(header_len);
        for s in &self.sections {
            if s.is_ref {
                offsets.push(0u64);
            } else {
                offsets.push(cursor as u64);
                cursor = align8(cursor + s.payload.len());
            }
        }
        let mut w = Writer::new();
        for b in SECTION_MAGIC {
            w.put_u8(b);
        }
        w.put_u8(SECTION_VERSION);
        w.put_len(self.sections.len());
        for (s, &off) in self.sections.iter().zip(&offsets) {
            w.put_str(&s.name);
            w.put_u8(if s.is_ref { FLAG_REF } else { 0 });
            w.put_u64(s.len);
            w.put_u64(s.checksum);
            w.put_u64(off);
        }
        let mut out = w.into_vec();
        debug_assert_eq!(out.len(), header_len);
        for (s, &off) in self.sections.iter().zip(&offsets) {
            if s.is_ref {
                continue;
            }
            out.resize(off as usize, 0);
            out.extend_from_slice(&s.payload);
        }
        out
    }
}

/// Parses a sectioned container and serves checksum-verified payloads.
pub struct SectionReader<'a> {
    blob: &'a [u8],
    toc: SectionToc,
}

impl<'a> SectionReader<'a> {
    /// Parses the container framing and validates the TOC: magic, version,
    /// in-bounds offsets, and duplicate-free names. Payload checksums are
    /// verified lazily per access.
    pub fn parse(blob: &'a [u8]) -> Result<Self, SectionError> {
        let mut r = Reader::new(blob);
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = r.get_u8()?;
        }
        if magic != SECTION_MAGIC {
            return Err(SectionError::Codec(CodecError::Invalid(
                "bad section container magic",
            )));
        }
        if r.get_u8()? != SECTION_VERSION {
            return Err(SectionError::Codec(CodecError::Invalid(
                "unknown section container version",
            )));
        }
        // Each TOC entry is at least 33 bytes (empty name).
        let count = r.get_len(33)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.get_str()?.to_owned();
            let flags = r.get_u8()?;
            if flags > FLAG_REF {
                return Err(SectionError::Codec(CodecError::Invalid(
                    "unknown section flags",
                )));
            }
            let len = r.get_u64()?;
            let checksum = r.get_u64()?;
            let offset = r.get_u64()?;
            let is_ref = flags == FLAG_REF;
            if !is_ref {
                let end =
                    offset
                        .checked_add(len)
                        .ok_or(SectionError::Codec(CodecError::Invalid(
                            "section offset overflow",
                        )))?;
                if end > blob.len() as u64 {
                    return Err(SectionError::Codec(CodecError::Truncated {
                        needed: end.min(usize::MAX as u64) as usize,
                        remaining: blob.len(),
                    }));
                }
            }
            if entries.iter().any(|e: &TocEntry| e.name == name) {
                return Err(SectionError::Duplicate { section: name });
            }
            entries.push(TocEntry {
                name,
                len,
                checksum,
                offset,
                is_ref,
            });
        }
        Ok(SectionReader {
            blob,
            toc: SectionToc { entries },
        })
    }

    /// The parsed table of contents.
    pub fn toc(&self) -> &SectionToc {
        &self.toc
    }

    /// Returns an inline section's payload after verifying its checksum.
    /// Refs yield [`SectionError::Unresolved`]; absent names yield
    /// [`SectionError::Missing`].
    pub fn payload(&self, name: &str) -> Result<&'a [u8], SectionError> {
        let entry = self.toc.entry(name).ok_or_else(|| SectionError::Missing {
            section: name.to_owned(),
        })?;
        if entry.is_ref {
            return Err(SectionError::Unresolved {
                section: name.to_owned(),
            });
        }
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a64(bytes) != entry.checksum {
            return Err(SectionError::ChecksumMismatch {
                section: name.to_owned(),
            });
        }
        Ok(bytes)
    }
}

/// What the previous save in a chain recorded per section: the payload
/// contract `(len, checksum)` and, when the serializer supplied one, the
/// dirty-tracking generation counter the section was saved at.
#[derive(Debug, Clone, Default)]
pub struct ParentIndex {
    map: HashMap<String, (u64, u64, Option<u64>)>,
}

impl ParentIndex {
    /// Creates an empty index (forces every section to be emitted inline —
    /// the base-snapshot case).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a section's saved contract and optional generation.
    pub fn record(&mut self, name: &str, len: u64, checksum: u64, generation: Option<u64>) {
        self.map
            .insert(name.to_owned(), (len, checksum, generation));
    }

    /// The `(len, checksum)` the named section had at the last save.
    pub fn contract(&self, name: &str) -> Option<(u64, u64)> {
        self.map.get(name).map(|&(len, sum, _)| (len, sum))
    }

    /// The generation counter the named section was saved at, if known.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.map.get(name).and_then(|&(_, _, g)| g)
    }

    /// Number of sections recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index records nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The write-side of a (possibly delta) save: serializers feed sections in
/// and the sink decides — by generation counter first, payload checksum
/// second — whether each becomes an inline payload or a ref to the parent.
/// It simultaneously builds the [`ParentIndex`] for the *next* save.
pub struct SectionSink {
    writer: SectionWriter,
    parent: ParentIndex,
    next: ParentIndex,
    fresh: usize,
    refs: usize,
}

impl SectionSink {
    /// Creates a sink. An empty `parent` (base snapshot) makes every
    /// section inline.
    pub fn new(parent: ParentIndex) -> Self {
        SectionSink {
            writer: SectionWriter::new(),
            parent,
            next: ParentIndex::new(),
            fresh: 0,
            refs: 0,
        }
    }

    /// Adds a section, deduplicating by checksum: if the parent saved the
    /// same name with the same `(len, checksum)`, a ref is emitted instead
    /// of the payload.
    pub fn put(&mut self, name: &str, payload: Vec<u8>) {
        let len = payload.len() as u64;
        let checksum = fnv1a64(&payload);
        self.next.record(name, len, checksum, None);
        if self.parent.contract(name) == Some((len, checksum)) {
            self.writer.put_ref(name, len, checksum);
            self.refs += 1;
        } else {
            self.writer.put_section(name, payload);
            self.fresh += 1;
        }
    }

    /// Adds a generation-tracked section: when the parent saved this name
    /// at the same generation, the payload is never even serialized — the
    /// parent's contract is re-emitted as a ref. Otherwise `make` runs and
    /// the result goes through checksum dedup as in [`Self::put`].
    pub fn put_with_gen(&mut self, name: &str, generation: u64, make: impl FnOnce() -> Vec<u8>) {
        if self.parent.generation(name) == Some(generation) {
            if let Some((len, checksum)) = self.parent.contract(name) {
                self.next.record(name, len, checksum, Some(generation));
                self.writer.put_ref(name, len, checksum);
                self.refs += 1;
                return;
            }
        }
        let payload = make();
        let len = payload.len() as u64;
        let checksum = fnv1a64(&payload);
        self.next.record(name, len, checksum, Some(generation));
        if self.parent.contract(name) == Some((len, checksum)) {
            self.writer.put_ref(name, len, checksum);
            self.refs += 1;
        } else {
            self.writer.put_section(name, payload);
            self.fresh += 1;
        }
    }

    /// `(inline, ref)` section counts so far.
    pub fn counts(&self) -> (usize, usize) {
        (self.fresh, self.refs)
    }

    /// Finalizes: the container bytes plus the [`ParentIndex`] describing
    /// this save (the parent for the next delta).
    pub fn finish(self) -> (Vec<u8>, ParentIndex) {
        (self.writer.finish(), self.next)
    }
}

/// The read-side result of resolving a container chain: every section
/// name mapped to its materialized, checksum-verified payload.
#[derive(Debug, Default)]
pub struct SectionMap {
    map: HashMap<String, Vec<u8>>,
}

impl SectionMap {
    /// Resolves a chain of containers ordered **tip first, base last**
    /// (each container's refs point at the next one in the slice). Every
    /// name takes its payload from the *newest* container that holds it
    /// inline; refs must be satisfied by an older container whose payload
    /// matches the ref's `(len, checksum)` contract.
    pub fn resolve(chain: &[&[u8]]) -> Result<Self, SectionError> {
        let readers = chain
            .iter()
            .map(|blob| SectionReader::parse(blob))
            .collect::<Result<Vec<_>, _>>()?;
        let mut map = HashMap::new();
        // Only names present in the *tip* container exist: a delta's TOC
        // lists every live section (inline or ref), so older sections not
        // re-listed have been dropped by the serializer.
        let Some(tip) = readers.first() else {
            return Ok(SectionMap { map });
        };
        for entry in tip.toc().entries() {
            let name = &entry.name;
            let mut resolved = None;
            for reader in &readers {
                match reader.toc().entry(name) {
                    // Every ref along the walk must agree on the
                    // contract; a disagreement means the chain was
                    // spliced from mismatched saves.
                    Some(e) if e.is_ref && (e.len, e.checksum) != (entry.len, entry.checksum) => {
                        return Err(SectionError::ChecksumMismatch {
                            section: name.clone(),
                        });
                    }
                    Some(e) if e.is_ref => {}
                    Some(_) => {
                        let payload = reader.payload(name)?;
                        if (payload.len() as u64, fnv1a64(payload)) != (entry.len, entry.checksum) {
                            return Err(SectionError::ChecksumMismatch {
                                section: name.clone(),
                            });
                        }
                        resolved = Some(payload.to_vec());
                        break;
                    }
                    None => {}
                }
            }
            match resolved {
                Some(payload) => {
                    map.insert(name.clone(), payload);
                }
                None => {
                    return Err(SectionError::Unresolved {
                        section: name.clone(),
                    })
                }
            }
        }
        Ok(SectionMap { map })
    }

    /// Builds a map from a single container (all sections must be inline).
    pub fn from_single(blob: &[u8]) -> Result<Self, SectionError> {
        Self::resolve(&[blob])
    }

    /// The payload of a required section.
    pub fn payload(&self, name: &str) -> Result<&[u8], SectionError> {
        self.map
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SectionError::Missing {
                section: name.to_owned(),
            })
    }

    /// A [`Reader`] over a required section's payload.
    pub fn reader(&self, name: &str) -> Result<Reader<'_>, SectionError> {
        Ok(Reader::new(self.payload(name)?))
    }

    /// Whether the map holds a section of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Section names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Total bytes across all materialized payloads.
    pub fn total_bytes(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sections: &[(&str, &[u8])]) -> Vec<u8> {
        let mut w = SectionWriter::new();
        for (name, payload) in sections {
            w.put_section(name, payload.to_vec());
        }
        w.finish()
    }

    #[test]
    fn container_round_trip_and_alignment() {
        let blob = build(&[("alpha", b"hello"), ("beta", &[1, 2, 3, 4, 5, 6, 7, 8, 9])]);
        let r = SectionReader::parse(&blob).unwrap();
        assert_eq!(r.payload("alpha").unwrap(), b"hello");
        assert_eq!(r.payload("beta").unwrap(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        for e in r.toc().entries() {
            assert_eq!(e.offset % 8, 0, "{} payload misaligned", e.name);
        }
        assert!(matches!(
            r.payload("gamma"),
            Err(SectionError::Missing { .. })
        ));
    }

    #[test]
    fn corruption_names_the_failing_section() {
        let blob = build(&[("good", b"aaaaaaaa"), ("bad", b"bbbbbbbb")]);
        let r = SectionReader::parse(&blob).unwrap();
        let off = r.toc().entry("bad").unwrap().offset as usize;
        let mut corrupt = blob.clone();
        corrupt[off] ^= 0xFF;
        let r = SectionReader::parse(&corrupt).unwrap();
        assert_eq!(r.payload("good").unwrap(), b"aaaaaaaa");
        assert_eq!(
            r.payload("bad"),
            Err(SectionError::ChecksumMismatch {
                section: "bad".into()
            })
        );
    }

    #[test]
    fn every_truncation_is_an_error() {
        let blob = build(&[("s", b"payload")]);
        for cut in 0..blob.len() {
            let res = SectionReader::parse(&blob[..cut]).and_then(|r| r.payload("s").map(|_| ()));
            assert!(res.is_err(), "prefix of {cut} bytes parsed");
        }
    }

    #[test]
    fn sink_dedups_by_checksum_and_generation() {
        // Base save: everything inline.
        let mut sink = SectionSink::new(ParentIndex::new());
        sink.put("a", b"unchanged".to_vec());
        sink.put("b", b"will change".to_vec());
        let mut made = 0;
        sink.put_with_gen("g", 7, || {
            made += 1;
            b"gen-tracked".to_vec()
        });
        assert_eq!(made, 1);
        assert_eq!(sink.counts(), (3, 0));
        let (base, parent) = sink.finish();
        // Delta save: "a" dedups by checksum, "g" dedups by generation
        // without serializing, "b" changed and is inline.
        let mut sink = SectionSink::new(parent);
        sink.put("a", b"unchanged".to_vec());
        sink.put("b", b"changed!".to_vec());
        sink.put_with_gen("g", 7, || {
            panic!("generation match must skip serialization")
        });
        assert_eq!(sink.counts(), (1, 2));
        let (delta, _) = sink.finish();
        assert!(delta.len() < base.len());
        // Resolution (tip first) materializes the right bytes.
        let map = SectionMap::resolve(&[&delta, &base]).unwrap();
        assert_eq!(map.payload("a").unwrap(), b"unchanged");
        assert_eq!(map.payload("b").unwrap(), b"changed!");
        assert_eq!(map.payload("g").unwrap(), b"gen-tracked");
    }

    #[test]
    fn unresolved_ref_and_contract_mismatch_are_typed() {
        let mut sink = SectionSink::new(ParentIndex::new());
        sink.put("x", b"first".to_vec());
        let (base, parent) = sink.finish();
        let mut sink = SectionSink::new(parent);
        sink.put("x", b"first".to_vec()); // becomes a ref
        let (delta, _) = sink.finish();
        // A lone delta cannot resolve its refs.
        assert!(matches!(
            SectionMap::from_single(&delta),
            Err(SectionError::Unresolved { .. })
        ));
        // A chain whose base holds different bytes fails the ref contract.
        let mut other = SectionWriter::new();
        other.put_section("x", b"other".to_vec());
        let foreign = other.finish();
        assert!(matches!(
            SectionMap::resolve(&[&delta, &foreign]),
            Err(SectionError::ChecksumMismatch { .. })
        ));
        // The true base resolves.
        let map = SectionMap::resolve(&[&delta, &base]).unwrap();
        assert_eq!(map.payload("x").unwrap(), b"first");
    }

    #[test]
    fn duplicate_names_rejected_on_parse() {
        // Hand-assemble a TOC with a repeated name by fusing two writers.
        let mut w = SectionWriter::new();
        w.put_section("dup", b"one".to_vec());
        let blob = w.finish();
        let r = SectionReader::parse(&blob).unwrap();
        assert_eq!(r.toc().entries().len(), 1);
        // The writer itself panics on duplicates (programming error), so
        // corrupt a parsed-valid container instead: patch the count and
        // append a cloned entry is overkill — simply verify the writer
        // guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = SectionWriter::new();
            w.put_section("dup", b"one".to_vec());
            w.put_section("dup", b"two".to_vec());
        }));
        assert!(result.is_err());
    }

    #[test]
    fn word_runs_survive_container_embedding() {
        let mut payload = Writer::new();
        payload.put_u32(3); // deliberately misalign the run start
        payload.put_u64_run(&[u64::MAX, 1, 0x0123_4567_89AB_CDEF]);
        payload.put_u32_run(&[7, 8, 9]);
        let mut w = SectionWriter::new();
        w.put_section("runs", payload.into_vec());
        let blob = w.finish();
        let r = SectionReader::parse(&blob).unwrap();
        let mut pr = Reader::new(r.payload("runs").unwrap());
        assert_eq!(pr.get_u32().unwrap(), 3);
        assert_eq!(
            pr.get_u64_run().unwrap(),
            vec![u64::MAX, 1, 0x0123_4567_89AB_CDEF]
        );
        assert_eq!(pr.get_u32_run().unwrap(), vec![7, 8, 9]);
        pr.finish().unwrap();
    }
}
