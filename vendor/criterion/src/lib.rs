//! Offline, dependency-free shim implementing the subset of the
//! `criterion` benchmarking API this workspace's bench targets use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], `bench_function`, and
//! [`Bencher::iter`] / [`Bencher::iter_batched`] with [`BatchSize`].
//!
//! Instead of criterion's statistical engine it runs a fixed warm-up plus
//! `sample_size` timed samples and prints the median, mean, and min per
//! benchmark — enough to compare hot paths release-to-release in an
//! offline container. Benchmarks compiled under `cargo test` (criterion's
//! `--test` mode) run a single iteration so CI stays fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How per-sample setup output is batched (accepted for API compatibility;
/// the shim always runs one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small: many invocations per batch in criterion.
    SmallInput,
    /// Routine input is large: fewer invocations per batch.
    LargeInput,
    /// One setup per invocation.
    PerIteration,
}

/// Opaque measurement collector handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    test_mode: bool,
}

impl Bencher {
    fn new(target_samples: usize, test_mode: bool) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
            test_mode,
        }
    }

    fn rounds(&self) -> usize {
        if self.test_mode {
            1
        } else {
            // One unrecorded warm-up round plus the measured samples.
            self.target_samples + 1
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for round in 0..self.rounds() {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            if round > 0 || self.test_mode {
                self.samples.push(dt);
            }
        }
    }

    /// Times repeated calls of `routine` on fresh input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for round in 0..self.rounds() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            if round > 0 || self.test_mode {
                self.samples.push(dt);
            }
        }
    }
}

/// Identifier newtype accepted anywhere criterion takes a benchmark id.
pub struct BenchmarkId(String);

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl BenchmarkId {
    /// `group/parameter`-style id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` (and `cargo test --benches`) invokes harness=false
        // bench binaries with `--test`; run one iteration there.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.into().0, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(sample_size, self.test_mode);
        f(&mut b);
        report(id, &b.samples);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{id:<48} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples)",
        median,
        mean,
        min,
        sorted.len()
    );
}

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function for a set of [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut calls = 0u32;
        c.bench_function("smoke/iter", |b| b.iter(|| calls += 1));
        assert!(calls >= 2);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |mut v| {
                    v.push(4);
                    assert_eq!(v.len(), 4);
                    v
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
