//! Offline, dependency-free shim implementing the subset of the `rand` 0.8
//! API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`).
//!
//! The build container has no registry access, so this crate stands in for
//! the real `rand` via a `[workspace.dependencies]` path entry. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s small RNGs use — so streams are deterministic,
//! well distributed, and fast. It is **not** cryptographically secure,
//! which matches how the workspace uses it (simulation and sampling only).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform-sampling support for a primitive type: the glue behind
/// [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)` given raw 64-bit entropy.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Samples uniformly from `[lo, hi]` given raw 64-bit entropy.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add(sample_below_u128(span, rng) as $t)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add(sample_below_u128(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased sample from `[0, span)` (`span > 0`) via rejection sampling.
fn sample_below_u128(span: u128, rng: &mut dyn RngCore) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64+1 for all integer types we implement; use 64-bit
    // rejection sampling with the Lemire-style zone trim.
    let span64 = span as u64; // span <= u64::MAX + 1 only for full u64 range
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        // 53-bit mantissa: inclusive vs half-open is indistinguishable at
        // this granularity for the simulation workloads that call us.
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Object-safe source of 64-bit entropy.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self.as_dyn())
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics when `p` is outside `[0, 1]`, matching rand 0.8, so call
    /// sites behave identically if the shim is swapped for the registry
    /// crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        let unit = (self.as_dyn().next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Generates a value of a `Standard`-distributed type (see [`StandardDist`]).
    fn gen<T: StandardDist>(&mut self) -> T {
        T::from_rng(self.as_dyn())
    }

    /// Upcasts to a `dyn RngCore` (object-safe entropy source).
    fn as_dyn(&mut self) -> &mut dyn RngCore;
}

impl<R: RngCore> Rng for R {
    fn as_dyn(&mut self) -> &mut dyn RngCore {
        self
    }
}

/// Types producible by [`Rng::gen`] (stand-in for `Standard: Distribution`).
pub trait StandardDist {
    /// Draws one standard-distributed value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl StandardDist for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDist for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (seed-stable stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            // (and used by rand's seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Returns the generator's full internal state (the four xoshiro
        /// words), for checkpointing. Restoring via [`StdRng::from_state`]
        /// resumes the exact output stream — the registry `rand` crate
        /// offers the same capability through serde on `StdRng`.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a state captured by
        /// [`StdRng::state`]. An all-zero state (never produced by
        /// [`SeedableRng::seed_from_u64`]) is the xoshiro fixed point and is
        /// re-seeded from zero instead so the generator cannot go dead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
