//! Offline, dependency-free parallel execution shim: a persistent scoped
//! thread pool plus the small `rayon`-like API subset this workspace uses
//! ([`par_map`], [`par_for_each_mut`], [`join`]).
//!
//! The build container has no registry access, so this crate stands in for
//! a real data-parallelism dependency via a `[workspace.dependencies]` path
//! entry. It is deliberately tiny: work is split into one contiguous chunk
//! per worker, the calling thread executes the first chunk itself, and a
//! latch joins the rest before the call returns — so borrowed inputs behave
//! exactly like `std::thread::scope`, but worker threads persist across
//! calls and amortize spawn cost over a whole stream run.
//!
//! ## Determinism contract
//!
//! Results are **bit-identical at any thread count**: `par_map` writes each
//! result into its input's slot (output order = input order), and
//! `par_for_each_mut` hands every element to the closure exactly once with
//! no shared mutable state. Callers uphold the rest by only parallelizing
//! over independent work items — see DESIGN.md "Concurrency architecture".
//!
//! ## Thread-count resolution
//!
//! [`threads`] resolves, in order: the innermost [`with_threads`] override
//! on the calling thread, then the `TDN_THREADS` environment variable, then
//! the serial fallback of `1`. Inside a pool worker the answer is always 1,
//! so nested parallel calls run serially instead of oversubscribing (and a
//! worker can never block on a latch, which keeps the pool deadlock-free).

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on the worker count, guarding against absurd `TDN_THREADS`.
pub const MAX_THREADS: usize = 64;

thread_local! {
    /// Innermost `with_threads` override (0 = none, fall through to env).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Whether the current thread is a pool worker (nested calls go serial).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The effective parallelism for work issued from the calling thread.
///
/// Resolution order: [`with_threads`] override → `TDN_THREADS` env var →
/// `1` (serial). Always in `[1, MAX_THREADS]`; always `1` inside a worker.
pub fn threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let over = OVERRIDE.with(Cell::get);
    if over > 0 {
        return over.min(MAX_THREADS);
    }
    std::env::var("TDN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map_or(1, |n| n.min(MAX_THREADS))
}

/// Runs `f` with the calling thread's parallelism pinned to `n` (restoring
/// the previous setting afterwards, even on panic). `n = 0` clears the
/// override, falling back to `TDN_THREADS`.
///
/// The override is thread-local, so concurrent callers (e.g. test threads)
/// never observe each other's setting.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(n.min(MAX_THREADS))));
    f()
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Grows the worker set to at least `want` threads (never shrinks:
    /// parked workers cost one stack each and nothing else).
    fn ensure_workers(&'static self, want: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < want.min(MAX_THREADS) {
            *spawned += 1;
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("tdn-exec-{id}"))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn exec pool worker");
        }
    }

    fn submit(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    fn worker_loop(&self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    match q.pop_front() {
                        Some(j) => break j,
                        None => q = self.available.wait(q).unwrap(),
                    }
                }
            };
            job();
        }
    }
}

/// Completion latch for one scoped batch; also carries the first panic.
struct Latch {
    state: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

impl Latch {
    fn new(remaining: usize) -> Arc<Self> {
        Arc::new(Latch {
            state: Mutex::new((remaining, None)),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.0 -= 1;
        if st.1.is_none() {
            st.1 = panic;
        }
        if st.0 == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 > 0 {
            st = self.done.wait(st).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().unwrap().1.take()
    }
}

/// Runs `jobs[0]` on the calling thread and the rest on pool workers,
/// returning only after every job has finished. The first panic (from any
/// job) is re-raised on the caller.
fn run_scoped(mut jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    debug_assert!(!jobs.is_empty());
    let first = jobs.remove(0);
    let latch = Latch::new(jobs.len());
    let p = pool();
    p.ensure_workers(jobs.len());
    /// Blocks frame exit — normal or unwinding — until every *submitted*
    /// job has completed; jobs never submitted (an unwind mid-loop) are
    /// accounted down so the wait cannot hang.
    struct WaitGuard<'l> {
        latch: &'l Latch,
        unsubmitted: usize,
    }
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            for _ in 0..self.unsubmitted {
                self.latch.complete(None);
            }
            self.latch.wait();
        }
    }
    // The guard is installed BEFORE the first submission, so from the
    // moment any transmuted job exists outside this frame, leaving the
    // frame joins it first.
    let mut guard = WaitGuard {
        latch: &latch,
        unsubmitted: jobs.len(),
    };
    for job in jobs {
        let latch = Arc::clone(&latch);
        // SAFETY: the job borrows stack data of this call frame. The frame
        // cannot be left before the job finishes: the already-armed
        // WaitGuard blocks on the latch during unwinding too, and every
        // submitted job — panicking or not — counts the latch down exactly
        // once (the guard covers never-submitted remainders itself).
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        p.submit(Box::new(move || {
            let res = catch_unwind(AssertUnwindSafe(job));
            latch.complete(res.err());
        }));
        guard.unsubmitted -= 1;
    }
    first();
    drop(guard);
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

/// Chunk width splitting `len` items across `workers` chunks.
fn chunk_width(len: usize, workers: usize) -> usize {
    len.div_ceil(workers).max(1)
}

// ---------------------------------------------------------------------------
// Work stealing.
// ---------------------------------------------------------------------------

/// Chunks seeded per worker by the stealing operations: finer than the
/// static one-chunk-per-worker split so a worker that drains its own run
/// early finds tail work to steal instead of idling behind a straggler.
const STEAL_CHUNKS_PER_WORKER: usize = 4;

/// Per-worker chunk-index deques for one stealing batch. Workers pop their
/// own deque from the front (preserving the seeded contiguous order, which
/// keeps cache locality of neighboring chunks) and steal from other deques'
/// backs on exhaustion — each chunk index is handed out exactly once.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Seeds `chunks` indices across `workers` deques as contiguous runs
    /// (the same assignment the static split would make).
    fn seed(chunks: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for c in 0..chunks {
            deques[c * workers / chunks].push_back(c);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Claims the next chunk for worker `me`: own front first, then other
    /// workers' backs round-robin. `None` once every deque is empty. A
    /// deque poisoned by a panicking worker still hands out its remaining
    /// indices (indices carry no invariant; the panic itself is already
    /// being propagated by the latch).
    fn next(&self, me: usize) -> Option<usize> {
        let pop = |slot: &Mutex<VecDeque<usize>>, back: bool| {
            let mut q = match slot.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if back {
                q.pop_back()
            } else {
                q.pop_front()
            }
        };
        if let Some(c) = pop(&self.deques[me], false) {
            return Some(c);
        }
        let n = self.deques.len();
        (1..n).find_map(|k| pop(&self.deques[(me + k) % n], true))
    }
}

/// Raw output-slot base pointer shared across stealing workers.
///
/// SAFETY: the scheduler hands each chunk index to exactly one worker, and
/// chunks map to disjoint slot ranges, so no slot is ever written (or even
/// aliased mutably) by two workers.
struct SlotBase<R>(*mut R);
impl<R> Clone for SlotBase<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SlotBase<R> {}
unsafe impl<R: Send> Send for SlotBase<R> {}
unsafe impl<R: Send> Sync for SlotBase<R> {}

impl<R> SlotBase<R> {
    /// Pointer to slot `i`. Taking `self` (not the field) keeps closures
    /// capturing the whole Send wrapper rather than the raw pointer.
    #[inline]
    fn at(self, i: usize) -> *mut R {
        // SAFETY: callers only pass indices inside the allocation the base
        // pointer was taken from (chunk ranges are clamped to `len`).
        unsafe { self.0.add(i) }
    }
}

// ---------------------------------------------------------------------------
// Public parallel operations.
// ---------------------------------------------------------------------------

/// Maps `f` over `items`, in parallel across [`threads`] workers.
///
/// Output order equals input order regardless of scheduling, so results are
/// bit-identical at any thread count.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let width = chunk_width(items.len(), workers);
    let f = &f;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
        .chunks(width)
        .zip(out.chunks_mut(width))
        .map(|(ins, outs)| {
            Box::new(move || {
                for (slot, item) in outs.iter_mut().zip(ins) {
                    *slot = Some(f(item));
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_scoped(jobs);
    out.into_iter()
        .map(|slot| slot.expect("every chunk completed"))
        .collect()
}

/// Calls `f` on every element of `items`, in parallel across [`threads`]
/// workers. Elements are visited exactly once with exclusive access, so
/// any per-element mutation is race-free by construction.
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    let workers = threads().min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let width = chunk_width(items.len(), workers);
    let f = &f;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
        .chunks_mut(width)
        .map(|chunk| {
            Box::new(move || {
                for item in chunk {
                    f(item);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_scoped(jobs);
}

/// Work-stealing variant of [`par_map`] for batches with skewed per-item
/// cost: items are split into `workers × STEAL_CHUNKS_PER_WORKER` chunks,
/// each worker drains its own contiguous run front-to-back and steals from
/// the back of other workers' runs once it is out of local work.
///
/// Determinism is positional, not temporal: no matter which worker ends up
/// executing a chunk, its results land in the slots of the items that
/// produced them, so the output is bit-identical to [`par_map`] and to the
/// serial map at any thread count.
pub fn par_map_steal<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let len = items.len();
    let width = chunk_width(len, workers * STEAL_CHUNKS_PER_WORKER);
    let queues = StealQueues::seed(len.div_ceil(width), workers);
    let slots = SlotBase(out.as_mut_ptr());
    {
        let f = &f;
        let queues = &queues;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..workers)
            .map(|w| {
                Box::new(move || {
                    while let Some(c) = queues.next(w) {
                        let lo = c * width;
                        let hi = (lo + width).min(len);
                        for (off, item) in items[lo..hi].iter().enumerate() {
                            // SAFETY: chunk `c` was claimed by exactly one
                            // worker (see `StealQueues`), and chunks map to
                            // disjoint index ranges, so each slot has a
                            // single writer and no concurrent reader.
                            unsafe { *slots.at(lo + off) = Some(f(item)) };
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(jobs);
    }
    out.into_iter()
        .map(|slot| slot.expect("every chunk completed"))
        .collect()
}

/// Work-stealing variant of [`par_for_each_mut`]: same exactly-once,
/// exclusive-access contract, but stragglers shed their tail chunks to idle
/// workers instead of serializing the batch behind the slowest run.
pub fn par_for_each_mut_steal<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    let workers = threads().min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let len = items.len();
    let width = chunk_width(len, workers * STEAL_CHUNKS_PER_WORKER);
    let queues = StealQueues::seed(len.div_ceil(width), workers);
    let base = SlotBase(items.as_mut_ptr());
    let f = &f;
    let queues = &queues;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..workers)
        .map(|w| {
            Box::new(move || {
                while let Some(c) = queues.next(w) {
                    let lo = c * width;
                    let hi = (lo + width).min(len);
                    for i in lo..hi {
                        // SAFETY: single claimant per chunk index (see
                        // `StealQueues`) ⇒ `&mut` access to `items[i]` is
                        // exclusive for the duration of the call.
                        f(unsafe { &mut *base.at(i) });
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_scoped(jobs);
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut ra = None;
    let mut rb = None;
    run_scoped(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    (
        ra.expect("join: first closure ran"),
        rb.expect("join: second closure ran"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for n in [1, 2, 3, 4, 7] {
            let par = with_threads(n, || par_map(&items, |&x| x * x + 1));
            assert_eq!(par, serial, "threads = {n}");
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        for n in [1, 2, 4, 9] {
            let mut items: Vec<u32> = vec![0; 537];
            with_threads(n, || par_for_each_mut(&mut items, |x| *x += 1));
            assert!(items.iter().all(|&x| x == 1), "threads = {n}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(with_threads(4, || par_map(&empty, |&x| x)).is_empty());
        let mut one = [7u8];
        with_threads(4, || par_for_each_mut(&mut one, |x| *x *= 2));
        assert_eq!(one, [14]);
    }

    #[test]
    fn with_threads_is_scoped_and_restored() {
        let outer = threads();
        with_threads(5, || {
            assert_eq!(threads(), 5);
            with_threads(2, || assert_eq!(threads(), 2));
            assert_eq!(threads(), 5);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn nested_calls_inside_workers_run_serially() {
        // Record the maximum override a nested call observes inside workers:
        // workers always report 1 thread.
        let observed = AtomicUsize::new(0);
        with_threads(4, || {
            let items: Vec<u32> = (0..16).collect();
            par_for_each_mut(&mut items.clone(), |_| {
                // Either the caller thread (threads() = 4) or a pool worker
                // (threads() = 1); nested maps must still be correct.
                let nested = par_map(&[1u32, 2, 3], |&x| x + 1);
                assert_eq!(nested, vec![2, 3, 4]);
                observed.fetch_max(threads(), Ordering::Relaxed);
            });
        });
        assert!(observed.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn join_returns_both_results() {
        for n in [1, 4] {
            let (a, b) = with_threads(n, || join(|| 2 + 2, || "ok"));
            assert_eq!((a, b), (4, "ok"));
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = catch_unwind(|| {
            with_threads(4, || {
                let items: Vec<u32> = (0..64).collect();
                let _ = par_map(&items, |&x| {
                    if x == 63 {
                        panic!("boom at {x}");
                    }
                    x
                });
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must stay usable afterwards.
        let ok = with_threads(4, || par_map(&[1u32, 2, 3], |&x| x * 10));
        assert_eq!(ok, vec![10, 20, 30]);
    }

    #[test]
    fn borrowed_state_is_visible_after_the_call() {
        // run_scoped joins before returning, so mutations through &mut
        // borrows are complete and visible here.
        let mut acc: Vec<Vec<usize>> = (0..8).map(|i| vec![i]).collect();
        with_threads(3, || {
            par_for_each_mut(&mut acc, |v| {
                let base = v[0];
                v.extend((1..4).map(|d| base + d));
            })
        });
        for (i, v) in acc.iter().enumerate() {
            assert_eq!(v, &vec![i, i + 1, i + 2, i + 3]);
        }
    }

    #[test]
    fn thread_cap_is_enforced() {
        with_threads(10_000, || assert_eq!(threads(), MAX_THREADS));
    }

    #[test]
    fn steal_map_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..1213).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 7).collect();
        for n in [1, 2, 3, 4, 7] {
            let par = with_threads(n, || par_map_steal(&items, |&x| x * 3 + 7));
            assert_eq!(par, serial, "threads = {n}");
        }
    }

    #[test]
    fn steal_map_rebalances_skewed_work() {
        // Front-loaded cost: the first chunk run is far heavier than the
        // rest, so with a static split worker 0 would finish last by a wide
        // margin. Correctness (order + completeness) must hold regardless;
        // the skew exercises the steal path on the other workers.
        let items: Vec<u64> = (0..257).collect();
        let heavy = |&x: &u64| -> u64 {
            let spin = if x < 16 { 40_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            // Deterministic in x alone, so the order check is exact; the
            // black_box keeps the spin loop from being optimized away.
            std::hint::black_box(acc);
            x * 2
        };
        let serial: Vec<u64> = items.iter().map(heavy).collect();
        let par = with_threads(4, || par_map_steal(&items, heavy));
        assert_eq!(par, serial);
    }

    #[test]
    fn steal_for_each_mut_touches_every_element_once() {
        for n in [1, 2, 4, 9] {
            let mut items: Vec<u32> = vec![0; 613];
            with_threads(n, || par_for_each_mut_steal(&mut items, |x| *x += 1));
            assert!(items.iter().all(|&x| x == 1), "threads = {n}");
        }
    }

    #[test]
    fn steal_variants_handle_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(with_threads(4, || par_map_steal(&empty, |&x| x)).is_empty());
        let mut one = [9u8];
        with_threads(4, || par_for_each_mut_steal(&mut one, |x| *x *= 3));
        assert_eq!(one, [27]);
    }

    #[test]
    fn steal_panics_propagate_and_pool_survives() {
        let result = catch_unwind(|| {
            with_threads(4, || {
                let items: Vec<u32> = (0..128).collect();
                let _ = par_map_steal(&items, |&x| {
                    if x == 100 {
                        panic!("steal boom at {x}");
                    }
                    x
                });
            })
        });
        assert!(
            result.is_err(),
            "stealing worker panic must reach the caller"
        );
        let ok = with_threads(4, || par_map_steal(&[5u32, 6, 7], |&x| x + 1));
        assert_eq!(ok, vec![6, 7, 8]);
    }

    #[test]
    fn steal_queues_hand_out_each_chunk_once() {
        let q = StealQueues::seed(23, 3);
        let mut seen = vec![0u32; 23];
        // Interleave partial claims from each worker, then drain the rest —
        // every chunk index must surface exactly once overall.
        for (me, budget) in [(0, 4), (1, 4), (2, 4), (0, usize::MAX), (1, usize::MAX)] {
            for _ in 0..budget {
                match q.next(me) {
                    Some(c) => seen[c] += 1,
                    None => break,
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "claims: {seen:?}");
    }
}
