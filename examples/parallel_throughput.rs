//! Demonstrates the parallel execution engine: the same HISTAPPROX run at
//! several thread counts, verifying bit-identical answers while reporting
//! edges/sec per setting.
//!
//! ```text
//! cargo run --release --example parallel_throughput
//! TDN_THREADS=4 cargo run --release --example parallel_throughput  # default count
//! ```

use std::time::Instant;
use tdn::prelude::*;

/// One full tracker run; returns (per-step values, edges/sec).
fn run(steps: &[(Time, Vec<TimedEdge>)], edges: u64) -> (Vec<u64>, f64) {
    let mut tracker = HistApprox::new(&TrackerConfig::new(10, 0.3, 500));
    let start = Instant::now();
    let values: Vec<u64> = steps
        .iter()
        .map(|(t, batch)| tracker.step(*t, batch).value)
        .collect();
    (values, edges as f64 / start.elapsed().as_secs_f64())
}

fn main() {
    // Prepare the workload once so every thread count replays identical
    // batches: 400 ticks of the synthetic Twitter-Higgs cascade stream with
    // Geo(0.01) lifetimes capped at 500, coalesced into 10-tick arrival
    // batches (batch-sized independent work is what the engine fans out).
    let mut assigner = GeometricLifetime::new(0.01, 500, 7);
    let ticks: Vec<(Time, Vec<TimedEdge>)> = StepBatches::new(Dataset::TwitterHiggs.stream(7))
        .take(400)
        .map(|(t, batch)| {
            let tagged = batch
                .iter()
                .map(|it| TimedEdge {
                    src: it.src,
                    dst: it.dst,
                    lifetime: assigner.assign(it),
                })
                .collect();
            (t, tagged)
        })
        .collect();
    let steps: Vec<(Time, Vec<TimedEdge>)> = ticks
        .chunks(10)
        .map(|window| {
            let t = window[0].0;
            let batch = window.iter().flat_map(|(_, b)| b.iter().copied()).collect();
            (t, batch)
        })
        .collect();
    let edges: u64 = steps.iter().map(|(_, b)| b.len() as u64).sum();
    println!("workload: {} steps, {} edges", steps.len(), edges);

    let mut reference: Option<Vec<u64>> = None;
    let mut baseline = 0.0f64;
    for threads in [1usize, 2, 4] {
        let (values, eps) = exec::with_threads(threads, || run(&steps, edges));
        match &reference {
            None => {
                reference = Some(values);
                baseline = eps;
            }
            Some(r) => assert_eq!(r, &values, "determinism violated at {threads} threads"),
        }
        println!(
            "TDN_THREADS={threads}: {eps:>10.0} edges/sec  (speedup {:.2}x, answers identical)",
            eps / baseline
        );
    }
}
