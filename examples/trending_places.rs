//! Trending places: the paper's LBSN scenario (§V-A) — maintain the k most
//! popular places from a live check-in stream, watching the top set drift
//! as new places start trending.
//!
//! Run with: `cargo run --release --example trending_places`

use tdn::prelude::*;
use tdn::streams::{LbsnConfig, LbsnGen};

fn main() {
    let k = 5;
    let steps = 4_000u64;
    // Check-ins lose relevance smoothly: forget probability p = 0.005
    // (mean lifetime 200 steps), capped at L = 1000.
    let mut lifetimes = GeometricLifetime::new(0.005, 1_000, 7);
    let gen = LbsnGen::new(LbsnConfig {
        drift_interval: 120, // a hot place is displaced every ~120 check-ins
        ..LbsnConfig::default()
    });
    let is_place = |n: NodeId| n.0 < 7_700; // LbsnConfig::default() layout

    let mut tracker = HistApprox::new(&TrackerConfig::new(k, 0.1, 1_000));
    let mut last_top: Vec<NodeId> = Vec::new();
    let mut changes = 0u32;
    for (t, batch) in StepBatches::new(gen.take(steps as usize)) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: lifetimes.assign(it),
            })
            .collect();
        let sol = tracker.step(t, &tagged);
        let mut top = sol.seeds.clone();
        top.sort();
        if top != last_top {
            changes += 1;
            if changes <= 12 || t % 500 == 0 {
                let places: Vec<u32> = top.iter().filter(|&&n| is_place(n)).map(|n| n.0).collect();
                println!(
                    "t={t:>4}: top-{k} places {places:?} (distinct visitors covered: {})",
                    sol.value
                );
            }
            last_top = top;
        }
    }
    println!("\nthe top-{k} set changed {changes} times over {steps} steps —");
    println!("popularity drifts, and the tracker follows it in a single pass.");
}
