//! Algorithm comparison: every tracker in the workspace on the same
//! Twitter-HK-like stream — solution quality, oracle calls, and wall time
//! side by side (a miniature of the paper's §V evaluation).
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use std::time::Instant;
use tdn::prelude::*;

fn main() {
    let steps = 600usize;
    let (k, eps, l_cap) = (10, 0.2, 1_000);
    let cfg = TrackerConfig::new(k, eps, l_cap);

    // Prepare one shared lifetime-tagged stream so every tracker sees the
    // same workload.
    let mut assigner = GeometricLifetime::new(0.002, l_cap, 11);
    let batches: Vec<(Time, Vec<TimedEdge>)> =
        StepBatches::new(Dataset::TwitterHk.stream(42).take(steps))
            .map(|(t, b)| {
                let tagged = b
                    .iter()
                    .map(|it| TimedEdge {
                        src: it.src,
                        dst: it.dst,
                        lifetime: assigner.assign(it),
                    })
                    .collect();
                (t, tagged)
            })
            .collect();

    let mut trackers: Vec<Box<dyn InfluenceTracker>> = vec![
        Box::new(GreedyTracker::new(&cfg)),
        Box::new(RandomTracker::new(&cfg, 1)),
        Box::new(BasicReduction::new(&cfg)),
        Box::new(HistApprox::new(&cfg)),
        Box::new(HistApprox::new(&cfg).with_refeed()),
        Box::new(DimTracker::new(&cfg, 32, 2)),
        Box::new(ImmTracker::new(&cfg, 0.3, 3).with_max_rr(2_000)),
        Box::new(TimTracker::new(&cfg, 0.3, 4).with_max_rr(2_000)),
    ];
    let labels = [
        "Greedy",
        "Random",
        "BasicReduction",
        "HistApprox",
        "HistApprox+refeed",
        "DIM (beta=32)",
        "IMM (eps=0.3)",
        "TIM+ (eps=0.3)",
    ];

    println!(
        "{:>18} {:>12} {:>14} {:>10}",
        "algorithm", "mean value", "oracle calls", "wall (ms)"
    );
    for (tr, label) in trackers.iter_mut().zip(labels) {
        let start = Instant::now();
        let mut value_sum = 0u64;
        for (t, batch) in &batches {
            value_sum += tr.step(*t, batch).value;
        }
        let wall = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{label:>18} {:>12.1} {:>14} {wall:>10.1}",
            value_sum as f64 / batches.len() as f64,
            tr.oracle_calls(),
        );
    }
    println!("\nGreedy sets the quality reference; HistApprox should sit within");
    println!("a few percent of it at a fraction of the oracle calls (Figs. 8-10).");
}
