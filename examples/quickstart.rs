//! Quickstart: the paper's Fig. 2 worked example, step by step.
//!
//! Run with: `cargo run --example quickstart`

use tdn::prelude::*;

fn main() {
    // Track the k = 2 most influential nodes, sieve accuracy eps = 0.1,
    // lifetimes bounded by L = 3 (the setting of Fig. 2).
    let cfg = TrackerConfig::new(2, 0.1, 3);
    let mut tracker = HistApprox::new(&cfg);

    // Time t: six interactions arrive with lifetimes 1,1,2,3,1,1.
    // (u, v, l) means "u influenced v; the evidence stays valid l steps".
    let batch_t: Vec<TimedEdge> = vec![
        TimedEdge::new(1u32, 2u32, 1),
        TimedEdge::new(1u32, 3u32, 1),
        TimedEdge::new(1u32, 4u32, 2),
        TimedEdge::new(5u32, 3u32, 3),
        TimedEdge::new(6u32, 4u32, 1),
        TimedEdge::new(6u32, 7u32, 1),
    ];
    let sol = tracker.step(0, &batch_t);
    println!(
        "t = 0: influential nodes {:?} (spread {})",
        sol.seeds, sol.value
    );
    assert_eq!(sol.value, 6); // {u1, u6} reach {1,2,3,4} ∪ {6,4,7}

    // Time t+1: three more interactions; the lifetime-1 edges have expired.
    let batch_t1: Vec<TimedEdge> = vec![
        TimedEdge::new(5u32, 2u32, 1),
        TimedEdge::new(7u32, 4u32, 2),
        TimedEdge::new(7u32, 6u32, 3),
    ];
    let sol = tracker.step(1, &batch_t1);
    println!(
        "t = 1: influential nodes {:?} (spread {})",
        sol.seeds, sol.value
    );
    assert_eq!(sol.value, 6); // {u5, u7} — the influencers changed!

    // Names instead of raw ids: intern them.
    let mut names = NodeInterner::new();
    for n in ["u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"] {
        names.intern(n);
    }
    let pretty: Vec<&str> = sol.seeds.iter().filter_map(|&s| names.name(s)).collect();
    println!("       by name: {pretty:?}");
}
