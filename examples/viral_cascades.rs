//! Viral cascades: the Twitter-Higgs scenario — re-tweet cascades around a
//! burst event (the paper monitors the Higgs boson announcement). The
//! influential set before, during, and after the burst differs, and the
//! tracker follows it online.
//!
//! Run with: `cargo run --release --example viral_cascades`

use tdn::prelude::*;
use tdn::streams::{BurstWindow, CascadeConfig, CascadeGen};

fn main() {
    let k = 3;
    let steps = 3_000usize;
    let burst = BurstWindow {
        start: 1_000,
        end: 1_800,
        depth_prob: 0.65, // cascades run much deeper during the event
        author_zipf: 1.6, // and concentrate on event-related authors
    };
    let gen = CascadeGen::new(CascadeConfig {
        users: 20_000,
        bursts: vec![burst],
        seed: 99,
        ..CascadeConfig::default()
    });
    let mut lifetimes = GeometricLifetime::new(0.002, 10_000, 3);
    let mut tracker = HistApprox::new(&TrackerConfig::new(k, 0.1, 10_000));

    let phase = |t: u64| -> &'static str {
        if t < burst.start {
            "before"
        } else if t < burst.end {
            "DURING"
        } else {
            "after"
        }
    };
    let mut spread_by_phase: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for (t, batch) in StepBatches::new(gen.take(steps)) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: lifetimes.assign(it),
            })
            .collect();
        let sol = tracker.step(t, &tagged);
        let e = spread_by_phase.entry(phase(t)).or_insert((0, 0));
        e.0 += sol.value;
        e.1 += 1;
        if t % 400 == 0 {
            println!(
                "t={t:>4} [{:>6}] top-{k} {:?} spread {}",
                phase(t),
                sol.seeds,
                sol.value
            );
        }
    }
    println!("\nmean influence spread of the tracked top-{k}:");
    for (ph, (sum, n)) in spread_by_phase {
        println!("  {ph:>6}: {:.1}", sum as f64 / n as f64);
    }
    println!("the burst inflates cascade depth — spreads rise during the event");
    println!("and decay smoothly afterwards as the evidence ages out.");
}
