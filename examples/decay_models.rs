//! Decay models: the paper's Example 1 ("Alice"). A long-standing
//! influencer goes quiet for a while. A sliding window forgets her the
//! moment her last interaction leaves the window; geometric decay with the
//! same mean lifetime lets her history fade *smoothly*, so she keeps her
//! (deserved) spot through the quiet period.
//!
//! Run with: `cargo run --release --example decay_models`

use tdn::prelude::*;

const ALICE: NodeId = NodeId(0);

/// Background chatter plus Alice's regular re-tweets, silenced during
/// [quiet_start, quiet_end).
fn alice_events(steps: u64, quiet: std::ops::Range<Time>) -> Vec<Interaction> {
    let mut out = Vec::new();
    for t in 0..steps {
        out.push(Interaction::new(
            100 + (t * 13 % 40) as u32,
            200 + (t * 29 % 160) as u32,
            t,
        ));
        if t % 3 == 0 && !quiet.contains(&t) {
            out.push(Interaction::new(0u32, 300 + (t * 7 % 120) as u32, t));
            out.push(Interaction::new(0u32, 300 + (t * 11 % 120) as u32, t));
        }
    }
    out
}

fn run(policy: &str, mut assigner: impl LifetimeAssigner, events: &[Interaction]) {
    let quiet = 360..480u64;
    let mut tracker = HistApprox::new(&TrackerConfig::new(3, 0.1, 100_000));
    let (mut present, mut total) = (0u32, 0u32);
    let mut drop_step = None;
    for (t, batch) in StepBatches::new(events.iter().copied()) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: assigner.assign(it),
            })
            .collect();
        let sol = tracker.step(t, &tagged);
        if quiet.contains(&t) {
            total += 1;
            if sol.seeds.contains(&ALICE) {
                present += 1;
            } else if drop_step.is_none() {
                drop_step = Some(t);
            }
        }
    }
    let pct = 100.0 * present as f64 / total.max(1) as f64;
    match drop_step {
        Some(t) => println!(
            "{policy:>16}: Alice present {pct:5.1}% of the quiet period (first dropped at t={t})"
        ),
        None => {
            println!("{policy:>16}: Alice present {pct:5.1}% of the quiet period (never dropped)")
        }
    }
}

fn main() {
    let steps = 700u64;
    let events = alice_events(steps, 360..480);
    println!("Alice posts every 3 steps, then goes silent for steps 360..480.\n");
    // Same mean lifetime (60 steps) for both policies.
    run("sliding window", ConstantLifetime(60), &events);
    run(
        "geometric decay",
        GeometricLifetime::new(1.0 / 60.0, 100_000, 5),
        &events,
    );
    println!("\nthe sliding window drops all of Alice's evidence at once;");
    println!("geometric decay (same mean) retains a fraction of her long");
    println!("history, keeping the solution stable across the quiet spell.");
}
