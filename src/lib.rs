//! # tdn — Tracking Influential Nodes in Time-Decaying Dynamic Interaction Networks
//!
//! A faithful Rust implementation of Zhao et al., ICDE 2019
//! (arXiv:1810.07917): streaming algorithms that maintain the `k` most
//! influential nodes over an interaction stream whose edges *age out*
//! smoothly via per-edge lifetimes (the TDN model).
//!
//! ## Quick start
//!
//! ```
//! use tdn::prelude::*;
//!
//! // Track the top-2 influencers with sieve accuracy eps = 0.1 and
//! // lifetimes capped at L = 100 steps.
//! let mut tracker = HistApprox::new(&TrackerConfig::new(2, 0.1, 100));
//!
//! // t = 0: Alice (node 0) influences two users; Bob (node 9) one.
//! let sol = tracker.step(0, &[
//!     TimedEdge::new(0u32, 1u32, 10), // lives 10 steps
//!     TimedEdge::new(0u32, 2u32, 10),
//!     TimedEdge::new(9u32, 8u32, 2),  // lives 2 steps
//! ]);
//! assert_eq!(sol.value, 5); // {0,1,2} ∪ {9,8}
//!
//! // t = 2: Bob's interaction expired; only Alice's influence remains.
//! let sol = tracker.step(2, &[]);
//! assert_eq!(sol.value, 3);
//! assert_eq!(sol.seeds[0], NodeId(0));
//! ```
//!
//! ## Checkpoint & warm restart
//!
//! Long-running deployments snapshot tracker state with [`persist`] and
//! resume after a restart without replaying history — the restored run is
//! bit-identical (solutions *and* oracle-call tallies) to one that never
//! stopped, at any `TDN_THREADS` setting:
//!
//! ```
//! use tdn::prelude::*;
//!
//! let cfg = TrackerConfig::new(2, 0.1, 100);
//! let mut live = HistApprox::new(&cfg);
//! live.step(0, &[TimedEdge::new(0u32, 1u32, 10), TimedEdge::new(0u32, 2u32, 10)]);
//!
//! // Snapshot (in memory here; `save_checkpoint` writes the same bytes,
//! // with the same manifest header, to a file).
//! let bytes = checkpoint_to_vec(&live, &cfg, 1);
//!
//! // ... process crashes; a new process restores and continues:
//! let (next_step, mut warm): (u64, HistApprox) =
//!     restore_from_slice(&bytes, &cfg).expect("config matches, file intact");
//! assert_eq!(next_step, 1);
//! assert_eq!(warm.step(1, &[]), live.step(1, &[]));
//! assert_eq!(warm.oracle_calls(), live.oracle_calls());
//!
//! // Restoring under a different configuration fails loudly (a typed
//! // error, never a panic) — so does a truncated or foreign file.
//! let other = TrackerConfig::new(5, 0.1, 100);
//! assert!(matches!(
//!     restore_from_slice::<HistApprox>(&bytes, &other),
//!     Err(PersistError::ConfigMismatch { .. })
//! ));
//! ```
//!
//! ## Crate map
//!
//! * [`tdn_graph`] — ADN/TDN graph substrates and the reachability oracle;
//! * [`tdn_streams`] — interaction streams, lifetime policies, dataset
//!   generators (Table I);
//! * [`tdn_submodular`] — SieveStreaming, CELF, threshold ladders;
//! * [`tdn_core`] — SIEVEADN / BASICREDUCTION / HISTAPPROX + baselines;
//! * [`tdn_baselines`] — IC-model RIS baselines (DIM, IMM, TIM+);
//! * [`persist`] — checkpoint/restore: versioned, sectioned binary
//!   snapshots of full tracker state (base + delta chains, per-section
//!   checksums) with a bit-identical warm-restart guarantee;
//! * [`faults`] — deterministic fault injection: seeded fault plans that
//!   make every injected failure (I/O errors, torn writes, worker panics,
//!   crash points) a pure function of `(seed, site, occurrence)`;
//! * [`serve`] — tracker-as-a-service: hash-sharded multi-tenant serving
//!   over any [`TrackerEngine`](tdn_core::TrackerEngine), with
//!   epoch-swapped snapshot reads, per-tenant crash recovery, panic
//!   quarantine with supervised revival, and bounded-queue backpressure;
//! * [`parallel`] — the execution engine fanning instance/threshold work
//!   across cores (`TDN_THREADS`, deterministic at any thread count).
//!
//! See `DESIGN.md` for the system inventory (including the on-disk
//! checkpoint format) and `EXPERIMENTS.md` for the paper-vs-measured
//! results of every table and figure.

#![warn(missing_docs)]

pub use tdn_baselines as baselines;
pub use tdn_core as algorithms;
pub use tdn_faults as faults;
pub use tdn_graph as graph;
pub use tdn_persist as persist;
pub use tdn_serve as serve;
pub use tdn_streams as streams;
pub use tdn_submodular as submodular;

/// The parallel execution engine: scoped thread pool, `par_map`-style
/// deterministic fan-out, and the `TDN_THREADS` / `with_threads` thread
/// count controls. All trackers parallelize through this engine; results
/// are bit-identical at any thread count.
pub use ::exec as parallel;

/// One-stop imports for applications.
pub mod prelude {
    pub use tdn_baselines::{DimTracker, ImmTracker, TimTracker};
    pub use tdn_core::{
        BasicReduction, ChurnTracker, GreedyTracker, HistApprox, InfluenceTracker, RandomTracker,
        SieveAdn, SieveAdnTracker, Solution, SpreadMode, SpreadStatsSnapshot, TrackerConfig,
        TrackerEngine,
    };
    pub use tdn_faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, FaultyIo};
    pub use tdn_graph::{
        condense, Lifetime, NodeId, NodeInterner, SketchParams, SketchPool, TdnGraph, Time,
    };
    pub use tdn_persist::{
        checkpoint_base_to_vec, checkpoint_delta_to_vec, checkpoint_to_vec, load_checkpoint,
        read_manifest, restore_from_chain, restore_from_slice, save_checkpoint, CheckpointChain,
        CompactionPolicy, Persist, PersistError, SaveReceipt, SnapshotKind, TrackerKind,
    };
    pub use tdn_serve::{
        CheckpointSummary, FlushReport, HealthReport, HealthState, QuarantineReason,
        RecoveryReport, RetryPolicy, ServeConfig, ServeError, Server, ShedPolicy, SnapshotReader,
        TenantId, TenantSnapshot,
    };
    pub use tdn_streams::{
        read_interactions, write_interactions, ConstantLifetime, Dataset, GeometricLifetime,
        InfiniteLifetime, Interaction, LifetimeAssigner, PowerLawLifetime, StepBatches,
        TenantBatch, TenantWorkload, TenantWorkloadConfig, TimedEdge,
    };
}
