//! Approximation-guarantee checks against exhaustive optima.
//!
//! Theorems 4 and 7 promise `(1/2 − ε)` for BASICREDUCTION and `(1/3 − ε)`
//! for HISTAPPROX *at every time step*. On small random TDN streams we can
//! afford the exact optimum by enumerating all k-subsets of live nodes, so
//! the bounds are checked deterministically along entire trajectories.

use tdn::graph::{marginal_gain, CoverSet, ReachScratch, TdnGraph};
use tdn::prelude::*;

/// Simple deterministic PRNG so trajectories are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % m
    }
}

/// Exact `OPT_t` over all subsets of ≤ k live nodes.
fn brute_opt(graph: &TdnGraph, k: usize) -> u64 {
    let nodes: Vec<NodeId> = graph.live_nodes().iter().collect();
    let mut scratch = ReachScratch::new();
    let mut best = 0u64;
    let mut subset: Vec<usize> = Vec::new();
    fn recurse(
        graph: &TdnGraph,
        nodes: &[NodeId],
        k: usize,
        start: usize,
        subset: &mut Vec<usize>,
        scratch: &mut ReachScratch,
        best: &mut u64,
    ) {
        let mut cover = CoverSet::new();
        let mut gained = Vec::new();
        let mut val = 0u64;
        for &i in subset.iter() {
            val += marginal_gain(graph, nodes[i], &cover, scratch, &mut gained);
            for &g in &gained {
                cover.insert(g);
            }
        }
        *best = (*best).max(val);
        if subset.len() == k {
            return;
        }
        for i in start..nodes.len() {
            subset.push(i);
            recurse(graph, nodes, k, i + 1, subset, scratch, best);
            subset.pop();
        }
    }
    recurse(graph, &nodes, k, 0, &mut subset, &mut scratch, &mut best);
    best
}

fn random_batch(rng: &mut Lcg, n_nodes: u64, max_l: u32, size: u64) -> Vec<TimedEdge> {
    (0..size)
        .filter_map(|_| {
            let u = rng.next(n_nodes) as u32;
            let v = rng.next(n_nodes) as u32;
            if u == v {
                None
            } else {
                Some(TimedEdge::new(u, v, 1 + rng.next(max_l as u64) as u32))
            }
        })
        .collect()
}

/// Drives a tracker and a shadow graph together, checking the guarantee at
/// every step.
fn check_guarantee(mut make: impl FnMut() -> Box<dyn InfluenceTracker>, factor: f64, seed: u64) {
    let k = 2;
    let mut tracker = make();
    let mut shadow = TdnGraph::new();
    let mut rng = Lcg(seed);
    for t in 0..40u64 {
        let size = 1 + rng.next(3);
        let batch = random_batch(&mut rng, 9, 6, size);
        shadow.advance_to(t);
        for e in &batch {
            shadow.add_edge(e.src, e.dst, e.lifetime);
        }
        let sol = tracker.step(t, &batch);
        let opt = brute_opt(&shadow, k);
        assert!(
            sol.value as f64 >= factor * opt as f64 - 1e-9,
            "{} step {t}: value {} < {factor}·OPT ({opt})",
            tracker.name(),
            sol.value
        );
    }
}

#[test]
fn basic_reduction_meets_half_minus_eps() {
    for seed in [1u64, 7, 23] {
        check_guarantee(
            || Box::new(BasicReduction::new(&TrackerConfig::new(2, 0.1, 6))),
            0.5 - 0.1,
            seed,
        );
    }
}

#[test]
fn hist_approx_meets_third_minus_eps() {
    for seed in [1u64, 7, 23, 99] {
        check_guarantee(
            || Box::new(HistApprox::new(&TrackerConfig::new(2, 0.1, 6))),
            1.0 / 3.0 - 0.1,
            seed,
        );
    }
}

#[test]
fn hist_approx_refeed_meets_half_minus_eps() {
    for seed in [1u64, 7, 23, 99] {
        check_guarantee(
            || Box::new(HistApprox::new(&TrackerConfig::new(2, 0.1, 6)).with_refeed()),
            0.5 - 0.1,
            seed,
        );
    }
}

#[test]
fn greedy_meets_one_minus_inv_e() {
    for seed in [1u64, 7] {
        check_guarantee(
            || Box::new(GreedyTracker::new(&TrackerConfig::new(2, 0.1, 6))),
            1.0 - (-1.0f64).exp(),
            seed,
        );
    }
}
