//! Structural equivalence of BASICREDUCTION (Alg. 2).
//!
//! The correctness argument of §III-B is that instance `A_1` at time `t`
//! has processed *exactly* the edges alive in `G_t`, in arrival order. We
//! verify it operationally: replaying only the still-alive edges of each
//! step into a fresh SIEVEADN instance must produce the identical solution
//! (same deterministic code path), for every step of a random stream.

use tdn::algorithms::SieveAdn;
use tdn::prelude::*;
use tdn::submodular::OracleCounter;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % m
    }
}

#[test]
fn front_instance_equals_replay_of_live_edges() {
    let (k, eps, l_max) = (2usize, 0.15f64, 5u32);
    let cfg = TrackerConfig::new(k, eps, l_max);
    let mut br = BasicReduction::new(&cfg);
    let mut rng = Lcg(0xFEED);
    // History of (t, batch) so we can replay live edges per query time.
    let mut history: Vec<(Time, Vec<TimedEdge>)> = Vec::new();
    for t in 0..60u64 {
        let batch: Vec<TimedEdge> = (0..1 + rng.next(3))
            .filter_map(|_| {
                let u = rng.next(12) as u32;
                let v = rng.next(12) as u32;
                (u != v).then(|| TimedEdge::new(u, v, 1 + rng.next(l_max as u64) as u32))
            })
            .collect();
        history.push((t, batch.clone()));
        let sol = br.step(t, &batch);
        // Replay: feed a fresh instance the still-alive edges of each past
        // step, preserving batch boundaries and order.
        let mut replay = SieveAdn::new(k, eps, true, OracleCounter::new());
        for (s, past) in &history {
            let live: Vec<(NodeId, NodeId)> = past
                .iter()
                .filter(|e| s + e.lifetime.min(l_max) as u64 > t)
                .map(|e| (e.src, e.dst))
                .collect();
            replay.feed(live);
        }
        let expect = replay.query();
        assert_eq!(sol, expect, "diverged at step {t}");
    }
}
