//! Golden regression fixtures: quick-scale Table I statistics and
//! per-step tracker solutions, checked into `tests/golden/`.
//!
//! These pin today's exact outputs — the same numbers the incremental
//! spread-maintenance engine promises never to change. Any drift (a graph
//! refactor, a sieve tweak, an engine bug) fails with a readable
//! line-level diff instead of a silent behaviour change. Regenerate
//! deliberately with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! ```
//! and review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;
use tdn::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the checked-in fixture, printing a readable
/// diff (first mismatching line with context) on drift. `UPDATE_GOLDEN=1`
/// rewrites the fixture instead.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write fixture");
        eprintln!("updated golden fixture {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test golden_outputs",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    let first_diff = exp_lines
        .iter()
        .zip(&act_lines)
        .position(|(e, a)| e != a)
        .unwrap_or(exp_lines.len().min(act_lines.len()));
    let lo = first_diff.saturating_sub(3);
    let hi = (first_diff + 4).min(exp_lines.len().max(act_lines.len()));
    let mut report = format!(
        "golden fixture {} drifted (expected {} lines, got {}); first difference at line {}:\n",
        name,
        exp_lines.len(),
        act_lines.len(),
        first_diff + 1
    );
    for i in lo..hi {
        match (exp_lines.get(i), act_lines.get(i)) {
            (Some(e), Some(a)) if e == a => {
                let _ = writeln!(report, "      {:>4} | {e}", i + 1);
            }
            (e, a) => {
                if let Some(e) = e {
                    let _ = writeln!(report, "    - {:>4} | {e}", i + 1);
                }
                if let Some(a) = a {
                    let _ = writeln!(report, "    + {:>4} | {a}", i + 1);
                }
            }
        }
    }
    report.push_str(
        "if this change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_outputs and review the fixture diff",
    );
    panic!("{report}");
}

/// The Table I statistics scan, formatted exactly like `table1.csv`.
fn table1_actual() -> String {
    let mut out = String::from(
        "dataset,nodes,src_nodes,dst_nodes,interactions,distinct_pairs,\
         paper_nodes,paper_interactions\n",
    );
    for d in Dataset::ALL {
        let stats = tdn_streams::dataset_stats(d.stream(42), d.table1_events());
        let (paper_nodes, paper_inter) = d.paper_stats();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{paper_nodes},{paper_inter}",
            d.slug(),
            stats.nodes,
            stats.src_nodes,
            stats.dst_nodes,
            stats.interactions,
            stats.distinct_pairs,
        );
    }
    out
}

#[test]
fn table1_statistics_match_golden() {
    assert_matches_golden("table1_quick.csv", &table1_actual());
}

/// Fixed seeded workload: bursty edges over a reused universe with mixed
/// lifetimes — enough to exercise expiry, re-activation, and every engine
/// classification.
fn golden_schedule() -> Vec<(Time, Vec<TimedEdge>)> {
    let mut state = 0x601D_5EED_u64 ^ 0xA5A5_A5A5;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    (0..25u64)
        .map(|t| {
            let batch: Vec<TimedEdge> = (0..rnd(6))
                .filter_map(|_| {
                    let (u, v) = (rnd(20) as u32, rnd(30) as u32);
                    (u != v).then(|| TimedEdge::new(u, v, 1 + rnd(9) as Lifetime))
                })
                .collect();
            (t, batch)
        })
        .collect()
}

fn solutions_actual() -> String {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let schedule = golden_schedule();
    let mut out = String::new();
    let mut run = |label: &str, tracker: &mut dyn InfluenceTracker| {
        for (t, batch) in &schedule {
            let sol = tracker.step(*t, batch);
            let seeds: Vec<u32> = sol.seeds.iter().map(|s| s.0).collect();
            let _ = writeln!(
                out,
                "{label} t={t} value={} seeds={seeds:?} calls={}",
                sol.value,
                tracker.oracle_calls()
            );
        }
    };
    run("SieveADN", &mut SieveAdnTracker::new(&cfg));
    run("BasicReduction", &mut BasicReduction::new(&cfg));
    run("HistApprox", &mut HistApprox::new(&cfg));
    run(
        "HistApprox+refeed",
        &mut HistApprox::new(&TrackerConfig::new(2, 0.15, 10)).with_refeed(),
    );
    out
}

#[test]
fn tracker_solutions_match_golden() {
    assert_matches_golden("tracker_solutions.txt", &solutions_actual());
}

/// Sketch estimates on the Fig. 2 worked example (the paper's running
/// TDN: two batches at t = 0 and t = 1, lifetimes 1–3), pinned for both
/// maintenance paths of the RR-sketch pool:
///
/// * `[adn …]` — a sketch-mode SIEVEADN tracker (append-only instance
///   graph, pool grown by `absorb_batch` only);
/// * `[tdn …]` — a standalone pool riding the decaying `TdnGraph`
///   through t = 0..=3, with dirty-node tracking driving `apply_expiry`
///   (by t = 3 every edge has aged out and the pool must drain).
///
/// Each line pins a node's rounded estimate next to the exact reach
/// count, so a fixture diff reads as "estimate for node v drifted from
/// exact-by-n" rather than an opaque byte change.
fn sketch_estimates_actual() -> String {
    let params = SketchParams::new(0.25, 0.1, 66);
    let batch_t0 = [
        TimedEdge::new(1u32, 2u32, 1),
        TimedEdge::new(1u32, 3u32, 1),
        TimedEdge::new(1u32, 4u32, 2),
        TimedEdge::new(5u32, 3u32, 3),
        TimedEdge::new(6u32, 4u32, 1),
        TimedEdge::new(6u32, 7u32, 1),
    ];
    let batch_t1 = [
        TimedEdge::new(5u32, 2u32, 1),
        TimedEdge::new(7u32, 4u32, 2),
        TimedEdge::new(7u32, 6u32, 3),
    ];
    let mut out = format!(
        "# sketch estimates on the Fig. 2 worked example\n\
         # params: eps={} delta={} seed={} pool={}\n",
        params.epsilon(),
        params.delta(),
        params.seed,
        params.pool_size(),
    );
    let mut scratch = tdn::graph::ReachScratch::new();

    // ADN path: sketch-mode SIEVEADN over the append-only graph.
    let mut tracker = SieveAdnTracker::new(&TrackerConfig::new(2, 0.1, 100))
        .with_spread_mode(SpreadMode::Sketch(params));
    for (t, batch) in [(0u64, &batch_t0[..]), (1, &batch_t1[..])] {
        let sol = tracker.step(t, batch);
        let inst = tracker.instance();
        let pool = inst.sketch_pool().expect("sketch mode carries a pool");
        let _ = writeln!(
            out,
            "[adn t={t}] n={} value={} seeds={:?}",
            pool.universe_len(),
            sol.value,
            sol.seeds.iter().map(|s| s.0).collect::<Vec<_>>(),
        );
        let mut nodes: Vec<_> = pool.universe().to_vec();
        nodes.sort_unstable();
        for v in nodes {
            let exact = tdn::graph::reach_count(inst.graph(), v, &mut scratch);
            let _ = writeln!(
                out,
                "v={} est={} exact={exact}",
                v.0,
                pool.estimate_rounded(v),
            );
        }
    }

    // TDN path: the decaying graph, expiry driving pool invalidation.
    let mut g = tdn::graph::TdnGraph::new();
    g.set_dirty_tracking(true);
    let mut pool = SketchPool::new(params);
    for t in 0..=3u64 {
        g.advance_to(t);
        let dirty = g.take_dirty();
        pool.apply_expiry(&g, &dirty);
        let batch: &[TimedEdge] = match t {
            0 => &batch_t0,
            1 => &batch_t1,
            _ => &[],
        };
        let mut fresh = Vec::new();
        for e in batch {
            let before = g.edge_count();
            g.add_edge(e.src, e.dst, e.lifetime);
            if g.edge_count() > before {
                fresh.push((e.src, e.dst));
            }
        }
        g.take_dirty();
        pool.absorb_batch(&g, &fresh);
        let _ = writeln!(
            out,
            "[tdn t={t}] n={} live_edges={}",
            pool.universe_len(),
            g.edge_count(),
        );
        let mut nodes: Vec<_> = pool.universe().to_vec();
        nodes.sort_unstable();
        for v in nodes {
            let exact = tdn::graph::reach_count(&g, v, &mut scratch);
            let _ = writeln!(
                out,
                "v={} est={} exact={exact}",
                v.0,
                pool.estimate_rounded(v),
            );
        }
    }
    out
}

#[test]
fn sketch_estimates_match_golden() {
    assert_matches_golden("sketch_estimates.txt", &sketch_estimates_actual());
}

/// The fixtures were recorded on the full-recompute reference path's
/// outputs (which the engine is contractually bound to reproduce), so the
/// reference must match them too — this guards against regenerating the
/// fixtures from a drifted incremental path without noticing.
#[test]
fn full_recompute_reference_matches_the_same_golden() {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let schedule = golden_schedule();
    let mut incremental = HistApprox::new(&cfg);
    let mut reference = HistApprox::new(&cfg).with_spread_mode(SpreadMode::FullRecompute);
    for (t, batch) in &schedule {
        assert_eq!(
            incremental.step(*t, batch),
            reference.step(*t, batch),
            "t={t}"
        );
        assert_eq!(incremental.oracle_calls(), reference.oracle_calls());
    }
}
