//! Differential conformance suite for the incremental spread-maintenance
//! engine: on every workload shape we can think of — bursty arrivals,
//! heavy churn, node re-activation, adversarial same-bucket expiry storms —
//! each tracker run under [`SpreadMode::Incremental`] must produce
//! **bit-identical** per-step solutions (seeds *and* spread values) and
//! oracle-call tallies to the retained naive full-recompute reference path
//! ([`SpreadMode::FullRecompute`]), at `TDN_THREADS` ∈ {1, 4}.
//!
//! The engine's exactness argument (DESIGN.md § Incremental spread
//! maintenance) rests on three claims — redundant edges change no reach
//! set, sink deltas are exactly `+1` on `A ∖ B`, and dirty sets are
//! conservative — and this suite is the oracle that enforces all three
//! end to end, the differential-testing style of the `test` archetype.

use proptest::prelude::*;
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

/// Replays `evs` through a tracker built by `mk`, pinned to `threads`,
/// returning every step's solution and the final oracle tally.
fn replay<T: InfluenceTracker>(
    mk: impl Fn() -> T,
    evs: &[Ev],
    threads: usize,
) -> (Vec<Solution>, u64) {
    exec::with_threads(threads, || {
        let mut tracker = mk();
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time;
        let mut sols = Vec::new();
        for t in 0..=max_t {
            let batch: Vec<TimedEdge> = evs
                .iter()
                .filter(|e| e.0 as Time == t && e.1 != e.2)
                .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
                .collect();
            sols.push(tracker.step(t, &batch));
        }
        (sols, tracker.oracle_calls())
    })
}

/// Asserts the incremental engine equals the full-recompute reference for
/// one tracker family on one schedule, at 1 and 4 engine threads.
fn assert_differential<T: InfluenceTracker>(
    mk: impl Fn(SpreadMode) -> T,
    evs: &[Ev],
) -> Result<(), TestCaseError> {
    for threads in [1usize, 4] {
        let reference = replay(|| mk(SpreadMode::FullRecompute), evs, threads);
        let incremental = replay(|| mk(SpreadMode::Incremental), evs, threads);
        prop_assert_eq!(
            &incremental.0,
            &reference.0,
            "solutions diverged from the naive path at {} threads",
            threads
        );
        prop_assert_eq!(
            incremental.1,
            reference.1,
            "oracle tally diverged from the naive path at {} threads",
            threads
        );
    }
    Ok(())
}

/// Bursty arrivals: quiet ticks interleaved with dense bursts, long
/// lifetimes (the ADN-ish shape where the memo should be hot).
fn bursty() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..12, 0u8..14, 0u8..14, 6u8..10), 1..80)
}

/// Heavy churn: lifetimes of 1–3 over a small universe — edges rarely
/// survive two steps, exercising expiry-driven instance turnover.
fn heavy_churn() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..16, 0u8..10, 0u8..10, 1u8..4), 1..70)
}

/// Re-activation: a tiny universe with sparse steps, so nodes die with
/// their last edge and return from the dead in later batches.
fn reactivation() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..24, 0u8..6, 0u8..6, 1u8..5), 1..50)
}

/// Adversarial same-bucket expiry storms: every lifetime is the same, so
/// whole batches expire in a single bucket sweep several ticks later.
fn expiry_storm() -> impl Strategy<Value = Vec<Ev>> {
    (
        1u8..5,
        prop::collection::vec((0u8..12, 0u8..12, 0u8..12), 1..70),
    )
        .prop_map(|(l, evs)| evs.into_iter().map(|(t, u, v)| (t, u, v, l)).collect())
}

fn check_all_trackers(evs: &[Ev]) -> Result<(), TestCaseError> {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    assert_differential(|m| SieveAdnTracker::new(&cfg).with_spread_mode(m), evs)?;
    assert_differential(|m| BasicReduction::new(&cfg).with_spread_mode(m), evs)?;
    assert_differential(|m| HistApprox::new(&cfg).with_spread_mode(m), evs)?;
    let cfg_refeed = TrackerConfig::new(2, 0.15, 10);
    assert_differential(
        |m| {
            HistApprox::new(&cfg_refeed)
                .with_refeed()
                .with_spread_mode(m)
        },
        evs,
    )?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bursty_streams_are_mode_invariant(evs in bursty()) {
        check_all_trackers(&evs)?;
    }

    #[test]
    fn heavy_churn_streams_are_mode_invariant(evs in heavy_churn()) {
        check_all_trackers(&evs)?;
    }

    #[test]
    fn reactivation_streams_are_mode_invariant(evs in reactivation()) {
        check_all_trackers(&evs)?;
    }

    #[test]
    fn expiry_storm_streams_are_mode_invariant(evs in expiry_storm()) {
        check_all_trackers(&evs)?;
    }
}

/// Fixed-seed smoke check on a larger horizon than the property cases:
/// dense bursts over a reused universe, so every engine path fires —
/// redundant shortcuts, new-sink deltas, old-sink `A ∖ B` patches, dirty
/// cones, and the rebuild fallback.
#[test]
fn long_mixed_stream_is_mode_invariant() {
    let mut state = 0xD1FF_5EED_u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    let mut evs: Vec<Ev> = Vec::new();
    for t in 0..40u8 {
        for _ in 0..(2 + rnd(10)) {
            evs.push((t, rnd(24) as u8, rnd(40) as u8, 1 + rnd(12) as u8));
        }
    }
    let cfg = TrackerConfig::new(4, 0.2, 12);
    for threads in [1usize, 4] {
        let reference = replay(
            || HistApprox::new(&cfg).with_spread_mode(SpreadMode::FullRecompute),
            &evs,
            threads,
        );
        let incremental = replay(
            || HistApprox::new(&cfg).with_spread_mode(SpreadMode::Incremental),
            &evs,
            threads,
        );
        assert!(reference.1 > 0, "workload must exercise the oracle");
        assert_eq!(incremental, reference, "threads = {threads}");
    }
}

/// The engine's work profile must also be deterministic: identical runs
/// (and runs at different thread counts) report identical engine tallies,
/// because classification and cache planning are serial phases.
#[test]
fn engine_stats_are_deterministic_and_thread_invariant() {
    let mut evs: Vec<Ev> = Vec::new();
    let mut state = 0x5707_57A7_u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    for t in 0..20u8 {
        for _ in 0..(1 + rnd(6)) {
            evs.push((t, rnd(15) as u8, rnd(25) as u8, 1 + rnd(8) as u8));
        }
    }
    let cfg = TrackerConfig::new(3, 0.2, 10);
    let run = |threads: usize| {
        exec::with_threads(threads, || {
            let mut tracker = HistApprox::new(&cfg);
            for t in 0..=19u64 {
                let batch: Vec<TimedEdge> = evs
                    .iter()
                    .filter(|e| e.0 as Time == t && e.1 != e.2)
                    .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
                    .collect();
                tracker.step(t, &batch);
            }
            tracker.spread_stats()
        })
    };
    let reference = run(1);
    assert!(
        reference.sink_delta_edges > 0 && reference.cache_hits > 0,
        "workload must exercise the engine: {reference:?}"
    );
    assert_eq!(run(1), reference, "rerun diverged");
    assert_eq!(run(4), reference, "thread count changed the work profile");
}
