//! Cross-tracker consistency on shared workloads: the quality ordering the
//! paper reports must hold on deterministic seeded streams, and trackers
//! must be reproducible run-to-run.

use tdn::prelude::*;
use tdn::streams::GeometricLifetime;

/// Builds a shared lifetime-tagged workload from a dataset preset.
fn workload(dataset: Dataset, steps: usize, p: f64, cap: Lifetime) -> Vec<(Time, Vec<TimedEdge>)> {
    let mut assigner = GeometricLifetime::new(p, cap, 0xBEEF);
    StepBatches::new(dataset.stream(11).take(steps))
        .map(|(t, b)| {
            let tagged = b
                .iter()
                .map(|it| TimedEdge {
                    src: it.src,
                    dst: it.dst,
                    lifetime: assigner.assign(it),
                })
                .collect();
            (t, tagged)
        })
        .collect()
}

fn total_value(tracker: &mut dyn InfluenceTracker, w: &[(Time, Vec<TimedEdge>)]) -> u64 {
    w.iter().map(|(t, b)| tracker.step(*t, b).value).sum()
}

#[test]
fn quality_ordering_matches_the_paper() {
    let w = workload(Dataset::Brightkite, 400, 0.005, 500);
    let cfg = TrackerConfig::new(5, 0.1, 500);
    let greedy = total_value(&mut GreedyTracker::new(&cfg), &w);
    let basic = total_value(&mut BasicReduction::new(&cfg), &w);
    let hist = total_value(&mut HistApprox::new(&cfg), &w);
    let hist_refeed = total_value(&mut HistApprox::new(&cfg).with_refeed(), &w);
    let random = total_value(&mut RandomTracker::new(&cfg, 3), &w);
    // Greedy is the reference; the streaming algorithms trail it slightly;
    // random is far below (Fig. 8's ordering).
    assert!(greedy >= basic, "greedy {greedy} < basic {basic}");
    assert!(basic >= hist, "basic {basic} < hist {hist}");
    assert!(hist_refeed >= hist, "refeed {hist_refeed} < plain {hist}");
    assert!(
        hist as f64 >= 0.8 * greedy as f64,
        "hist {hist} below 0.8·greedy {greedy}"
    );
    assert!(
        (random as f64) < 0.6 * greedy as f64,
        "random {random} suspiciously close to greedy {greedy}"
    );
}

#[test]
fn oracle_call_ordering_matches_the_paper() {
    let w = workload(Dataset::Gowalla, 300, 0.005, 300);
    let cfg = TrackerConfig::new(5, 0.1, 300);
    let mut greedy = GreedyTracker::new(&cfg);
    let mut basic = BasicReduction::new(&cfg);
    let mut hist = HistApprox::new(&cfg);
    total_value(&mut greedy, &w);
    total_value(&mut basic, &w);
    total_value(&mut hist, &w);
    // HistApprox ≪ BasicReduction (Fig. 7) and ≪ Greedy (Fig. 10).
    assert!(
        hist.oracle_calls() * 4 < basic.oracle_calls(),
        "hist {} not well below basic {}",
        hist.oracle_calls(),
        basic.oracle_calls()
    );
    assert!(
        hist.oracle_calls() < greedy.oracle_calls(),
        "hist {} not below greedy {}",
        hist.oracle_calls(),
        greedy.oracle_calls()
    );
}

#[test]
fn trackers_are_deterministic() {
    let w = workload(Dataset::TwitterHk, 200, 0.01, 200);
    let cfg = TrackerConfig::new(5, 0.15, 200);
    for mk in [
        || {
            Box::new(HistApprox::new(&TrackerConfig::new(5, 0.15, 200)))
                as Box<dyn InfluenceTracker>
        },
        || {
            Box::new(BasicReduction::new(&TrackerConfig::new(5, 0.15, 200)))
                as Box<dyn InfluenceTracker>
        },
        || {
            Box::new(GreedyTracker::new(&TrackerConfig::new(5, 0.15, 200)))
                as Box<dyn InfluenceTracker>
        },
    ] {
        let mut a = mk();
        let mut b = mk();
        for (t, batch) in &w {
            assert_eq!(a.step(*t, batch), b.step(*t, batch), "{}", a.name());
        }
    }
    let _ = cfg;
}

#[test]
fn every_preset_runs_every_tracker() {
    // Smoke: all six presets, all trackers, short horizon; values sane.
    for dataset in Dataset::ALL {
        let w = workload(dataset, 80, 0.02, 100);
        let cfg = TrackerConfig::new(3, 0.2, 100);
        let mut trackers: Vec<Box<dyn InfluenceTracker>> = vec![
            Box::new(GreedyTracker::new(&cfg)),
            Box::new(RandomTracker::new(&cfg, 5)),
            Box::new(BasicReduction::new(&cfg)),
            Box::new(HistApprox::new(&cfg)),
            Box::new(DimTracker::new(&cfg, 4, 6)),
            Box::new(ImmTracker::new(&cfg, 0.3, 7).with_max_rr(500)),
            Box::new(TimTracker::new(&cfg, 0.3, 8).with_max_rr(500)),
        ];
        let greedy_total = total_value(&mut *trackers[0], &w);
        assert!(greedy_total > 0, "{}: greedy found nothing", dataset.slug());
        for tr in trackers.iter_mut().skip(1) {
            let v = total_value(&mut **tr, &w);
            assert!(
                v <= greedy_total * 2,
                "{}: {} value {v} implausibly above greedy {greedy_total}",
                dataset.slug(),
                tr.name()
            );
        }
    }
}

#[test]
fn values_decay_after_stream_stops() {
    // Feed a burst then silence: the tracked value must fall to zero as
    // lifetimes run out (smooth forgetting, the point of the TDN model).
    let cfg = TrackerConfig::new(3, 0.1, 50);
    let mut h = HistApprox::new(&cfg);
    let mut assigner = GeometricLifetime::new(0.05, 50, 1);
    let mut peak = 0u64;
    for (t, batch) in StepBatches::new(Dataset::Brightkite.stream(5).take(100)) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: assigner.assign(it),
            })
            .collect();
        peak = peak.max(h.step(t, &tagged).value);
    }
    assert!(peak > 0);
    let mut last = u64::MAX;
    for t in 0..60 {
        let sol = h.step(100 + t, &[]);
        assert!(sol.value <= last, "value rose during silence");
        last = sol.value;
    }
    assert_eq!(last, 0, "all influence must eventually expire");
}
