//! Delta-chain acceptance suite for the format-3 sectioned checkpoints.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Bit-identical chain restore.** Restoring from a base + delta +
//!    delta chain must equal both a direct (single base) save/restore and
//!    an uninterrupted run — per-step solutions *and* oracle-call tallies
//!    — across `SpreadMode` × `TraversalKind` × `TDN_THREADS` ∈ {1, 4},
//!    on randomized schedules and cut points.
//! 2. **Actionable corruption reports.** A bit flip inside any section of
//!    a sectioned payload surfaces as
//!    `PersistError::ChecksumMismatch { section: Some(name) }` naming that
//!    exact section, for every section kind the SIEVEADN tracker writes
//!    (tracker meta, instance meta, graph chunks, sieve, memo). Ref
//!    sections in a delta verify the *resolved* parent payload against
//!    their recorded contract. Truncations of any link are errors, never
//!    panics.
//! 3. **Format-2 files stay restorable.** The committed golden fixtures
//!    parse as implicit base snapshots (full restore coverage lives in
//!    `golden_checkpoint.rs`; this suite pins the manifest view).

use proptest::prelude::*;
use tdn::algorithms::TraversalKind;
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..16, 0u8..12, 0u8..12, 1u8..10), 1..70)
}

fn batch_at(evs: &[Ev], t: Time) -> Vec<TimedEdge> {
    evs.iter()
        .filter(|e| e.0 as Time == t && e.1 != e.2)
        .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
        .collect()
}

fn horizon(evs: &[Ev]) -> Time {
    evs.iter().map(|e| e.0).max().unwrap_or(0) as Time
}

fn cfg() -> TrackerConfig {
    TrackerConfig::new(3, 0.2, 8)
}

fn make_tracker(mode: SpreadMode, traversal: TraversalKind) -> SieveAdnTracker {
    SieveAdnTracker::new(&cfg())
        .with_spread_mode(mode)
        .with_traversal(traversal)
}

/// Uninterrupted reference run: per-step solutions and final tally.
fn run_straight(mut tracker: SieveAdnTracker, evs: &[Ev]) -> (Vec<Solution>, u64) {
    let mut sols = Vec::new();
    for t in 0..=horizon(evs) {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let calls = tracker.oracle_calls();
    (sols, calls)
}

/// Runs to `cut3` saving a base at `cut1` and deltas at `cut2`/`cut3`,
/// then restores from the three-link chain and finishes the stream.
fn run_chained(
    mut tracker: SieveAdnTracker,
    evs: &[Ev],
    cuts: (Time, Time, Time),
) -> Result<(Vec<Solution>, u64), TestCaseError> {
    let (cut1, cut2, cut3) = cuts;
    let mut sols = Vec::new();
    for t in 0..cut1 {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let (base, idx, base_id) = checkpoint_base_to_vec(&tracker, &cfg(), cut1);
    for t in cut1..cut2 {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let (d1, idx, d1_id) = checkpoint_delta_to_vec(&tracker, &cfg(), cut2, &idx, base_id);
    for t in cut2..cut3 {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let (d2, _, _) = checkpoint_delta_to_vec(&tracker, &cfg(), cut3, &idx, d1_id);
    drop(tracker);
    let (resume, mut warm): (u64, SieveAdnTracker) =
        match restore_from_chain(&[&d2, &d1, &base], &cfg()) {
            Ok(ok) => ok,
            Err(e) => return Err(TestCaseError::fail(format!("chain restore failed: {e}"))),
        };
    prop_assert_eq!(resume, cut3, "chain tip stream position drifted");
    for t in cut3..=horizon(evs) {
        sols.push(warm.step(t, &batch_at(evs, t)));
    }
    let calls = warm.oracle_calls();
    Ok((sols, calls))
}

/// Runs to `cut`, saves one self-contained base, restores it directly,
/// and finishes the stream.
fn run_direct(
    mut tracker: SieveAdnTracker,
    evs: &[Ev],
    cut: Time,
) -> Result<(Vec<Solution>, u64), TestCaseError> {
    let mut sols = Vec::new();
    for t in 0..cut {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let bytes = checkpoint_to_vec(&tracker, &cfg(), cut);
    drop(tracker);
    let (resume, mut warm): (u64, SieveAdnTracker) = match restore_from_slice(&bytes, &cfg()) {
        Ok(ok) => ok,
        Err(e) => return Err(TestCaseError::fail(format!("direct restore failed: {e}"))),
    };
    prop_assert_eq!(resume, cut);
    for t in cut..=horizon(evs) {
        sols.push(warm.step(t, &batch_at(evs, t)));
    }
    let calls = warm.oracle_calls();
    Ok((sols, calls))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chain restore ≡ direct restore ≡ uninterrupted run, across the
    /// engine's full configuration matrix.
    #[test]
    fn chain_restore_is_bit_identical_across_mode_traversal_threads(
        evs in schedule(), a in 0u64..17, b in 0u64..17, c in 0u64..17
    ) {
        let mut cuts = [a, b, c];
        cuts.sort_unstable();
        let h = horizon(&evs) + 1;
        let cuts = (cuts[0].min(h), cuts[1].min(h), cuts[2].min(h));
        for mode in [SpreadMode::Incremental, SpreadMode::FullRecompute] {
            for traversal in [TraversalKind::Scalar, TraversalKind::Batch64] {
                for threads in [1usize, 4] {
                    let (reference, chained, direct) = exec::with_threads(threads, || {
                        let reference = run_straight(make_tracker(mode, traversal), &evs);
                        let chained = run_chained(make_tracker(mode, traversal), &evs, cuts);
                        let direct = run_direct(make_tracker(mode, traversal), &evs, cuts.2);
                        (reference, chained, direct)
                    });
                    let chained = chained?;
                    let direct = direct?;
                    prop_assert_eq!(
                        &chained.0, &reference.0,
                        "chain diverged: mode {:?}, traversal {:?}, {} threads, cuts {:?}",
                        mode, traversal, threads, cuts
                    );
                    prop_assert_eq!(
                        chained.1, reference.1,
                        "chain oracle tally diverged: mode {:?}, traversal {:?}, {} threads",
                        mode, traversal, threads
                    );
                    prop_assert_eq!(&direct.0, &reference.0);
                    prop_assert_eq!(direct.1, reference.1);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Corruption sweeps
// ---------------------------------------------------------------------------

/// A small but non-trivial SIEVEADN state: enough edges that every section
/// kind (graph chunks in both directions, sieve ladder, memo) is present
/// and non-empty.
fn seeded_tracker() -> SieveAdnTracker {
    let mut t = SieveAdnTracker::new(&cfg());
    feed_six_steps(&mut t);
    t
}

/// Same state, tracked in sketch mode — adds the `adn.sketch` section
/// (the serialized RR-sketch pool) to the checkpoint.
fn seeded_sketch_tracker() -> SieveAdnTracker {
    let mut t = SieveAdnTracker::new(&cfg())
        .with_spread_mode(SpreadMode::Sketch(SketchParams::new(0.2, 0.1, 0xDEC0)));
    feed_six_steps(&mut t);
    t
}

fn feed_six_steps(t: &mut SieveAdnTracker) {
    for step in 0u64..6 {
        let batch: Vec<TimedEdge> = (0..8)
            .map(|i| {
                TimedEdge::new(
                    ((step * 3 + i) % 11) as u32,
                    ((step * 5 + i * 7 + 1) % 11) as u32,
                    (1 + (step + i) % 7) as Lifetime,
                )
            })
            .filter(|e| e.src != e.dst)
            .collect();
        t.step(step, &batch);
    }
}

/// Payload byte offset of the format-3 header (see `tdn_persist::manifest`).
const V3_PAYLOAD_OFFSET: usize = 64;

/// Rewrites the trailing envelope checksum so targeted *payload*
/// corruption reaches the per-section verification instead of being
/// caught by the whole-file checksum first.
fn fix_envelope_checksum(bytes: &mut [u8]) {
    let len = bytes.len();
    let sum = codec::fnv1a64(&bytes[..len - 8]);
    bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
}

fn sectioned_payload(bytes: &[u8]) -> &[u8] {
    let m = tdn_persist::peek_manifest(bytes).expect("manifest parses");
    assert_eq!(m.format_version, 3);
    &bytes[V3_PAYLOAD_OFFSET..V3_PAYLOAD_OFFSET + m.payload_len as usize]
}

/// Flips one byte in the middle of every non-empty inline section and
/// asserts each corruption surfaces as a `ChecksumMismatch` blaming that
/// exact section. `required` guards against renames silently shrinking
/// the sweep: every listed section must actually be present.
fn sweep_section_bit_flips(bytes: &[u8], required: &[&str]) {
    let toc = codec::SectionReader::parse(sectioned_payload(bytes))
        .expect("container parses")
        .toc()
        .clone();
    let names: Vec<String> = toc.entries().iter().map(|e| e.name.clone()).collect();
    for expected in required {
        assert!(
            names.iter().any(|n| n == expected),
            "section {expected:?} missing from a SIEVEADN base checkpoint: {names:?}"
        );
    }
    for entry in toc.entries() {
        assert!(!entry.is_ref, "base checkpoints are self-contained");
        if entry.len == 0 {
            continue;
        }
        let mut corrupt = bytes.to_vec();
        let at = V3_PAYLOAD_OFFSET + entry.offset as usize + (entry.len as usize) / 2;
        corrupt[at] ^= 0x5A;
        fix_envelope_checksum(&mut corrupt);
        match restore_from_slice::<SieveAdnTracker>(&corrupt, &cfg()) {
            Err(PersistError::ChecksumMismatch {
                section: Some(name),
            }) => {
                assert_eq!(name, entry.name, "wrong section blamed");
            }
            Err(e) => panic!(
                "section {:?}: expected a named ChecksumMismatch, got {e}",
                entry.name
            ),
            Ok(_) => panic!("section {:?}: corrupt payload restored", entry.name),
        }
    }
}

/// Every inline section kind the SIEVEADN tracker writes reports *its own
/// name* when its payload is corrupted.
#[test]
fn section_bit_flips_name_the_failing_section() {
    let tracker = seeded_tracker();
    let bytes = checkpoint_to_vec(&tracker, &cfg(), 6);
    // The tracker must emit its meta, the instance meta, at least one
    // graph chunk per direction, the sieve, and the memo.
    sweep_section_bit_flips(
        &bytes,
        &[
            "meta",
            "adn.meta",
            "adn.graph.out.0",
            "adn.graph.inc.0",
            "adn.sieve",
            "adn.memo",
        ],
    );
}

/// Sketch-mode checkpoints add the serialized RR-sketch pool as its own
/// section — a bit flip inside it must blame `adn.sketch` by name, same
/// as every pre-existing section kind.
#[test]
fn sketch_pool_bit_flips_name_the_sketch_section() {
    let tracker = seeded_sketch_tracker();
    assert!(
        tracker
            .instance()
            .sketch_pool()
            .is_some_and(|p| p.universe_len() > 0),
        "seed stream must leave a non-empty pool or the sweep is vacuous"
    );
    let bytes = checkpoint_to_vec(&tracker, &cfg(), 6);
    sweep_section_bit_flips(
        &bytes,
        &[
            "meta",
            "adn.meta",
            "adn.graph.out.0",
            "adn.graph.inc.0",
            "adn.sieve",
            "adn.memo",
            "adn.sketch",
        ],
    );
}

/// A delta's ref sections demand the parent's payload hash to their
/// recorded contract: corrupting the *base* (with its own envelope
/// checksum fixed up) fails the chain restore with a named section.
#[test]
fn ref_sections_verify_resolved_parent_payloads() {
    let mut tracker = seeded_tracker();
    let (base, idx, base_id) = checkpoint_base_to_vec(&tracker, &cfg(), 6);
    tracker.step(6, &[TimedEdge::new(0u32, 7u32, 3)]);
    let (delta, _, _) = checkpoint_delta_to_vec(&tracker, &cfg(), 7, &idx, base_id);

    // The delta must actually contain refs for this to test anything.
    let delta_toc = codec::SectionReader::parse(sectioned_payload(&delta))
        .expect("delta container parses")
        .toc()
        .clone();
    let ref_names: Vec<&str> = delta_toc
        .entries()
        .iter()
        .filter(|e| e.is_ref)
        .map(|e| e.name.as_str())
        .collect();
    assert!(
        !ref_names.is_empty(),
        "a one-edge step should leave at least one section unchanged"
    );

    // Corrupt each referenced section's payload inside the base.
    let base_toc = codec::SectionReader::parse(sectioned_payload(&base))
        .expect("base container parses")
        .toc()
        .clone();
    for name in ref_names {
        let entry = base_toc.entry(name).expect("ref names a base section");
        if entry.len == 0 {
            continue;
        }
        let mut bad_base = base.clone();
        let at = V3_PAYLOAD_OFFSET + entry.offset as usize + (entry.len as usize) / 2;
        bad_base[at] ^= 0x5A;
        fix_envelope_checksum(&mut bad_base);
        match restore_from_chain::<SieveAdnTracker>(&[&delta, &bad_base], &cfg()) {
            Err(PersistError::ChecksumMismatch { section: Some(n) }) => {
                assert_eq!(n, name, "wrong section blamed through the chain");
            }
            Err(e) => panic!("ref {name:?}: expected a named ChecksumMismatch, got {e}"),
            Ok(_) => panic!("ref {name:?}: corrupt parent payload resolved"),
        }
    }
}

/// Every truncation of every link — the base and a delta — is a typed
/// error, never a panic, whether restored alone or through the chain.
#[test]
fn truncating_any_link_is_an_error() {
    let mut tracker = seeded_tracker();
    let (base, idx, base_id) = checkpoint_base_to_vec(&tracker, &cfg(), 6);
    tracker.step(6, &[TimedEdge::new(0u32, 7u32, 3)]);
    let (delta, _, _) = checkpoint_delta_to_vec(&tracker, &cfg(), 7, &idx, base_id);

    for cut in (0..base.len()).step_by(7) {
        assert!(
            restore_from_chain::<SieveAdnTracker>(&[&delta, &base[..cut]], &cfg()).is_err(),
            "truncated base ({cut} bytes) resolved"
        );
    }
    for cut in (0..delta.len()).step_by(7) {
        assert!(
            restore_from_chain::<SieveAdnTracker>(&[&delta[..cut], &base], &cfg()).is_err(),
            "truncated delta ({cut} bytes) resolved"
        );
        assert!(
            restore_from_slice::<SieveAdnTracker>(&delta[..cut], &cfg()).is_err(),
            "truncated lone delta ({cut} bytes) restored"
        );
    }
    // The intact chain still restores (the sweep above would pass
    // vacuously if the fixtures themselves were broken).
    assert!(restore_from_chain::<SieveAdnTracker>(&[&delta, &base], &cfg()).is_ok());
}

/// The committed format-2 golden fixtures parse as implicit base
/// snapshots with zeroed lineage ids (their full restore-and-continue
/// coverage lives in `golden_checkpoint.rs`).
#[test]
fn golden_v2_fixtures_parse_as_implicit_bases() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("golden fixture dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tdnc") {
            continue;
        }
        let m = read_manifest(&path).expect("fixture manifest parses");
        assert_eq!(
            m.format_version, 2,
            "{path:?} regenerated to v3 — forbidden"
        );
        assert_eq!(m.snapshot_kind, SnapshotKind::Base);
        assert_eq!(m.snapshot_id, 0);
        assert_eq!(m.parent_id, 0);
        seen += 1;
    }
    assert_eq!(seen, 4, "expected the four committed fixtures");
}
