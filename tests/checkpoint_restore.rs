//! Round-trip property suite for the checkpoint/restore subsystem
//! (`tdn-persist`): checkpoint at step `t`, restore, feed the remaining
//! stream — the result must be **bit-identical** (per-step solutions *and*
//! final oracle-call tallies) to the uninterrupted run, on randomized
//! schedules and at `TDN_THREADS` ∈ {1, 4}. Corrupt inputs — a mismatched
//! config, a truncated file, flipped bytes, the wrong tracker kind — must
//! yield typed errors, never panics.
//!
//! This is the streaming-oracle acceptance style of Yang et al.
//! (arXiv:1602.04490) applied to persistence: a warm-restarted tracker is
//! indistinguishable from one that never stopped.

use proptest::prelude::*;
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..16, 0u8..12, 0u8..12, 1u8..10), 1..70)
}

fn batch_at(evs: &[Ev], t: Time) -> Vec<TimedEdge> {
    evs.iter()
        .filter(|e| e.0 as Time == t && e.1 != e.2)
        .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
        .collect()
}

fn horizon(evs: &[Ev]) -> Time {
    evs.iter().map(|e| e.0).max().unwrap_or(0) as Time
}

/// Uninterrupted reference run: per-step solutions and final tally.
fn run_straight<T: InfluenceTracker>(mut tracker: T, evs: &[Ev]) -> (Vec<Solution>, u64) {
    let mut sols = Vec::new();
    for t in 0..=horizon(evs) {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let calls = tracker.oracle_calls();
    (sols, calls)
}

/// Interrupted run: process steps `0..cut`, checkpoint through the full
/// byte format (manifest + checksum), drop the live tracker, restore, and
/// process the remaining steps on the restored instance.
fn run_interrupted<T: InfluenceTracker + Persist>(
    mut tracker: T,
    evs: &[Ev],
    cfg: &TrackerConfig,
    cut: Time,
) -> Result<(Vec<Solution>, u64), TestCaseError> {
    let mut sols = Vec::new();
    for t in 0..cut {
        sols.push(tracker.step(t, &batch_at(evs, t)));
    }
    let bytes = checkpoint_to_vec(&tracker, cfg, cut);
    drop(tracker);
    let (resume, mut warm): (u64, T) = match restore_from_slice(&bytes, cfg) {
        Ok(ok) => ok,
        Err(e) => return Err(TestCaseError::fail(format!("restore failed: {e}"))),
    };
    prop_assert_eq!(resume, cut, "manifest stream position drifted");
    for t in cut..=horizon(evs) {
        sols.push(warm.step(t, &batch_at(evs, t)));
    }
    let calls = warm.oracle_calls();
    Ok((sols, calls))
}

/// Asserts the warm-restart invariant for one tracker constructor at every
/// cut point, at 1 and 4 engine threads.
fn assert_restart_invariant<T: InfluenceTracker + Persist>(
    mk: impl Fn() -> T,
    evs: &[Ev],
    cfg: &TrackerConfig,
    cut: Time,
) -> Result<(), TestCaseError> {
    // `cut == horizon + 1` checkpoints after the final step (empty tail).
    let cut = cut.min(horizon(evs) + 1);
    for threads in [1usize, 4] {
        let (reference, warm) = exec::with_threads(threads, || {
            let reference = run_straight(mk(), evs);
            let warm = run_interrupted(mk(), evs, cfg, cut);
            (reference, warm)
        });
        let (warm_sols, warm_calls) = warm?;
        prop_assert_eq!(
            &warm_sols,
            &reference.0,
            "solutions diverged after restart at step {} with {} threads",
            cut,
            threads
        );
        prop_assert_eq!(
            warm_calls,
            reference.1,
            "oracle tally diverged after restart at step {} with {} threads",
            cut,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sieve_adn_warm_restart_is_bit_identical(evs in schedule(), cut in 0u64..17) {
        let cfg = TrackerConfig::new(3, 0.2, 8);
        assert_restart_invariant(|| SieveAdnTracker::new(&cfg), &evs, &cfg, cut)?;
    }

    #[test]
    fn basic_reduction_warm_restart_is_bit_identical(evs in schedule(), cut in 0u64..17) {
        let cfg = TrackerConfig::new(3, 0.2, 8);
        assert_restart_invariant(|| BasicReduction::new(&cfg), &evs, &cfg, cut)?;
    }

    #[test]
    fn hist_approx_warm_restart_is_bit_identical(evs in schedule(), cut in 0u64..17) {
        let cfg = TrackerConfig::new(3, 0.2, 8);
        assert_restart_invariant(|| HistApprox::new(&cfg), &evs, &cfg, cut)?;
    }

    #[test]
    fn hist_approx_refeed_warm_restart_is_bit_identical(evs in schedule(), cut in 0u64..17) {
        let cfg = TrackerConfig::new(2, 0.15, 10);
        assert_restart_invariant(|| HistApprox::new(&cfg).with_refeed(), &evs, &cfg, cut)?;
    }

    #[test]
    fn random_tracker_warm_restart_resumes_the_rng_stream(evs in schedule(), cut in 0u64..17) {
        // The Random baseline draws from its generator every step, so a
        // restart that lost RNG state would diverge immediately.
        let cfg = TrackerConfig::new(3, 0.2, 8);
        assert_restart_invariant(|| RandomTracker::new(&cfg, 0xFEED), &evs, &cfg, cut)?;
    }

    /// Double interruption: checkpoint, restore, continue, checkpoint
    /// again, restore again. State must survive arbitrarily many
    /// generations of warm restarts.
    #[test]
    fn restart_composes(evs in schedule(), cut1 in 0u64..9, gap in 0u64..9) {
        let cfg = TrackerConfig::new(3, 0.2, 8);
        let reference = run_straight(HistApprox::new(&cfg), &evs);
        let cut2 = cut1 + gap;
        let mut sols = Vec::new();
        let mut tracker = HistApprox::new(&cfg);
        for t in 0..cut1 {
            sols.push(tracker.step(t, &batch_at(&evs, t)));
        }
        let bytes = checkpoint_to_vec(&tracker, &cfg, cut1);
        let (_, mut tracker): (u64, HistApprox) =
            restore_from_slice(&bytes, &cfg).expect("first restore");
        for t in cut1..cut2 {
            sols.push(tracker.step(t, &batch_at(&evs, t)));
        }
        let bytes = checkpoint_to_vec(&tracker, &cfg, cut2);
        let (_, mut tracker): (u64, HistApprox) =
            restore_from_slice(&bytes, &cfg).expect("second restore");
        for t in cut2..=horizon(&evs) {
            sols.push(tracker.step(t, &batch_at(&evs, t)));
        }
        prop_assert_eq!(&sols[..reference.0.len()], &reference.0[..]);
        prop_assert_eq!(tracker.oracle_calls(), reference.1);
    }

    /// Corruption sweep: every truncation of a valid checkpoint, and a
    /// byte flip at a random offset, must return an error — never panic,
    /// never restore silently wrong state.
    #[test]
    fn corrupt_checkpoints_fail_loudly(evs in schedule(), flip in 0usize..10_000) {
        let cfg = TrackerConfig::new(3, 0.2, 8);
        let mut tracker = HistApprox::new(&cfg);
        for t in 0..=horizon(&evs) {
            tracker.step(t, &batch_at(&evs, t));
        }
        let bytes = checkpoint_to_vec(&tracker, &cfg, horizon(&evs) + 1);
        // Truncations (sampled: every 7th prefix, plus the empty file).
        for cut in (0..bytes.len()).step_by(7) {
            prop_assert!(
                restore_from_slice::<HistApprox>(&bytes[..cut], &cfg).is_err(),
                "prefix of {} bytes restored", cut
            );
        }
        // One byte flipped somewhere.
        let mut flipped = bytes.clone();
        let at = flip % flipped.len();
        flipped[at] ^= 0x5A;
        prop_assert!(restore_from_slice::<HistApprox>(&flipped, &cfg).is_err());
    }
}

/// Mismatched configuration: restoring under different `k`, `ε`, `L`, or
/// pruning flag is a typed [`PersistError::ConfigMismatch`].
#[test]
fn config_mismatch_is_a_typed_error() {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let mut tracker = HistApprox::new(&cfg);
    tracker.step(0, &[TimedEdge::new(0u32, 1u32, 3)]);
    let bytes = checkpoint_to_vec(&tracker, &cfg, 1);
    for other in [
        TrackerConfig::new(4, 0.2, 8),
        TrackerConfig::new(3, 0.25, 8),
        TrackerConfig::new(3, 0.2, 9),
        TrackerConfig::new(3, 0.2, 8).without_singleton_prune(),
    ] {
        match restore_from_slice::<HistApprox>(&bytes, &other) {
            Err(PersistError::ConfigMismatch { .. }) => {}
            Err(e) => panic!("expected ConfigMismatch, got {e}"),
            Ok(_) => panic!("restore accepted a mismatched config"),
        }
    }
    // The matching config still restores.
    assert!(restore_from_slice::<HistApprox>(&bytes, &cfg).is_ok());
}

/// Cross-kind restores are rejected by the manifest tag before any payload
/// decoding is attempted.
#[test]
fn wrong_tracker_kind_is_a_typed_error() {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let mut tracker = SieveAdnTracker::new(&cfg);
    tracker.step(0, &[TimedEdge::new(0u32, 1u32, 3)]);
    let bytes = checkpoint_to_vec(&tracker, &cfg, 1);
    match restore_from_slice::<BasicReduction>(&bytes, &cfg) {
        Err(PersistError::WrongTracker { expected, found }) => {
            assert_eq!(expected, TrackerKind::BasicReduction);
            assert_eq!(found, TrackerKind::SieveAdn as u8);
        }
        Err(e) => panic!("expected WrongTracker, got {e}"),
        Ok(_) => panic!("restore accepted the wrong tracker kind"),
    }
}

/// File round trip through `save_checkpoint`/`load_checkpoint`, plus the
/// cheap manifest peek (`read_manifest`).
#[test]
fn file_round_trip_and_manifest_peek() {
    let cfg = TrackerConfig::new(2, 0.1, 20);
    let mut live = HistApprox::new(&cfg);
    for t in 0..6u64 {
        live.step(
            t,
            &[
                TimedEdge::new(t as u32, (t + 30) as u32, 4),
                TimedEdge::new(1u32, (t + 60) as u32, 12),
            ],
        );
    }
    let dir = std::env::temp_dir().join(format!("tdn_ckpt_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hist.tdnc");
    save_checkpoint(&path, &live, &cfg, 6).unwrap();
    let manifest = read_manifest(&path).unwrap();
    assert_eq!(manifest.kind, TrackerKind::HistApprox);
    assert_eq!(manifest.step, 6);
    let (step, mut warm): (u64, HistApprox) = load_checkpoint(&path, &cfg).unwrap();
    assert_eq!(step, 6);
    for t in 6..12u64 {
        let batch = [TimedEdge::new((t % 5) as u32, (t + 40) as u32, 3)];
        assert_eq!(warm.step(t, &batch), live.step(t, &batch), "t={t}");
        assert_eq!(warm.oracle_calls(), live.oracle_calls(), "t={t}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The spread-maintenance mode is part of the snapshot: a tracker running
/// the full-recompute reference path restores *as* the reference path and
/// continues bit-identically (a silent mode flip would change the work
/// profile — and, if the memo were stale, the answers).
#[test]
fn full_recompute_mode_round_trips() {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let mk = || HistApprox::new(&cfg).with_spread_mode(SpreadMode::FullRecompute);
    let mut live = mk();
    for t in 0..6u64 {
        live.step(
            t,
            &[
                TimedEdge::new(t as u32, (t + 9) as u32, 3),
                TimedEdge::new(2u32, (t + 20) as u32, 6),
            ],
        );
    }
    let bytes = checkpoint_to_vec(&live, &cfg, 6);
    let (_, mut warm): (u64, HistApprox) = restore_from_slice(&bytes, &cfg).expect("restores");
    assert_eq!(warm.spread_mode(), SpreadMode::FullRecompute);
    for t in 6..12u64 {
        let batch = [TimedEdge::new((t % 4) as u32, (t + 30) as u32, 4)];
        assert_eq!(warm.step(t, &batch), live.step(t, &batch), "t={t}");
        assert_eq!(warm.oracle_calls(), live.oracle_calls());
    }
    assert_eq!(
        warm.spread_stats(),
        SpreadStatsSnapshot::default(),
        "the reference path must never touch the engine"
    );
}

/// The incremental engine's own per-node state — memoised spreads, the
/// adaptive probe gate, and the shared engine tallies — survives a warm
/// restart: an interrupted run and an uninterrupted one end with identical
/// solutions, oracle tallies, AND engine work profiles.
#[test]
fn spread_engine_state_survives_restore() {
    let cfg = TrackerConfig::new(3, 0.2, 10);
    let mut state = 0xE961_E500_u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    let mut evs: Vec<Ev> = Vec::new();
    for t in 0..18u8 {
        for _ in 0..(2 + rnd(6)) {
            evs.push((t, rnd(16) as u8, rnd(28) as u8, 1 + rnd(8) as u8));
        }
    }
    let mut straight = HistApprox::new(&cfg);
    for t in 0..=horizon(&evs) {
        straight.step(t, &batch_at(&evs, t));
    }
    let reference_stats = straight.spread_stats();
    assert!(
        reference_stats.cache_hits > 0 && reference_stats.sink_delta_edges > 0,
        "workload must exercise the engine: {reference_stats:?}"
    );
    let cut: Time = 7;
    let mut warm = HistApprox::new(&cfg);
    for t in 0..cut {
        warm.step(t, &batch_at(&evs, t));
    }
    let bytes = checkpoint_to_vec(&warm, &cfg, cut);
    drop(warm);
    let (_, mut warm): (u64, HistApprox) = restore_from_slice(&bytes, &cfg).expect("restores");
    for t in cut..=horizon(&evs) {
        warm.step(t, &batch_at(&evs, t));
    }
    assert_eq!(warm.oracle_calls(), straight.oracle_calls());
    assert_eq!(
        warm.spread_stats(),
        reference_stats,
        "engine tallies and probe decisions must resume exactly"
    );
}

/// Targeted corruption of the new engine fields: the payload region
/// holding the spread mode, engine tallies, and memo is covered by the
/// checksum and by semantic validation, so flipped bytes there are typed
/// errors — never panics, never silently-wrong caches (a wrong memo value
/// would change future answers, since served values are trusted as exact).
#[test]
fn spread_engine_field_corruption_is_typed() {
    let cfg = TrackerConfig::new(2, 0.2, 8);
    let mut tracker = SieveAdnTracker::new(&cfg);
    for t in 0..6u64 {
        tracker.step(
            t,
            &[
                TimedEdge::new(t as u32, (t + 7) as u32, 3),
                TimedEdge::new(0u32, (t + 14) as u32, 5),
            ],
        );
    }
    let bytes = checkpoint_to_vec(&tracker, &cfg, 6);
    // The SieveAdnTracker payload layout starts with the oracle tally
    // (8 bytes), the engine tallies (8 × 8 bytes), then the instance
    // snapshot beginning with the mode byte and ending with the memo —
    // walk a stride of offsets across all of it.
    let payload_start = 37; // manifest header length
    for at in (payload_start..bytes.len()).step_by(5) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x3C;
        if corrupt == bytes {
            continue;
        }
        assert!(
            restore_from_slice::<SieveAdnTracker>(&corrupt, &cfg).is_err(),
            "flip at {at} restored silently"
        );
    }
}

/// A checkpoint written at one thread count must restore and continue
/// bit-identically at another: snapshots carry no thread-dependent state.
#[test]
fn checkpoints_are_thread_count_portable() {
    let cfg = TrackerConfig::new(4, 0.2, 10);
    let mut state = 0xC0FF_EE00_u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    let mut evs: Vec<Ev> = Vec::new();
    for t in 0..20u8 {
        for _ in 0..(3 + rnd(8)) {
            evs.push((t, rnd(25) as u8, rnd(25) as u8, 1 + rnd(9) as u8));
        }
    }
    let reference = exec::with_threads(1, || run_straight(HistApprox::new(&cfg), &evs));
    // Run the prefix at 4 threads, checkpoint, restore, finish at 1 — and
    // the other way around.
    for (first, second) in [(4usize, 1usize), (1, 4)] {
        let cut: Time = 9;
        let (bytes, mut sols) = exec::with_threads(first, || {
            let mut tracker = HistApprox::new(&cfg);
            let mut sols = Vec::new();
            for t in 0..cut {
                sols.push(tracker.step(t, &batch_at(&evs, t)));
            }
            (checkpoint_to_vec(&tracker, &cfg, cut), sols)
        });
        let calls = exec::with_threads(second, || {
            let (_, mut warm): (u64, HistApprox) =
                restore_from_slice(&bytes, &cfg).expect("portable checkpoint");
            for t in cut..=horizon(&evs) {
                sols.push(warm.step(t, &batch_at(&evs, t)));
            }
            warm.oracle_calls()
        });
        assert_eq!(sols, reference.0, "{first} -> {second} threads diverged");
        assert_eq!(calls, reference.1, "{first} -> {second} tally diverged");
    }
}
