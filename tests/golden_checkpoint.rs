//! Golden checkpoint fixtures: format-v2 `.tdnc` files committed to the
//! repo (generated before the flat-graph-core refactor) must keep
//! restoring cleanly, and the restored tracker must continue the stream
//! bit-identically to an uninterrupted run of today's code.
//!
//! This pins the *byte format* across internal data-structure changes:
//! adjacency arenas, cover-set backends, and traversal strategies may all
//! change, but `write_snapshot`/`read_snapshot` must keep speaking the
//! exact serialized shape (order-sensitive structures verbatim, covers in
//! canonical sorted order) that older checkpoints used.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -q golden_checkpoint` —
//! only legitimate when the checkpoint format version itself is bumped.

use std::path::PathBuf;
use tdn::prelude::*;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Deterministic mini-stream: bursty batches over a small node universe
/// with short mixed lifetimes, so expiry, re-activation, redundant edges,
/// and new-sink deltas all occur before and after the cut.
fn batch_at(t: Time) -> Vec<TimedEdge> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (t.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let mut rnd = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    (0..2 + rnd(5))
        .map(|_| TimedEdge::new(rnd(14) as u32, rnd(14) as u32, 1 + rnd(9) as Lifetime))
        .filter(|e| e.src != e.dst)
        .collect()
}

const CUT: Time = 9;
const HORIZON: Time = 17;

fn cfg() -> TrackerConfig {
    TrackerConfig::new(3, 0.2, 8)
}

fn run_tail<T: InfluenceTracker>(tracker: &mut T, from: Time) -> (Vec<Solution>, u64) {
    let mut sols = Vec::new();
    for t in from..=HORIZON {
        sols.push(tracker.step(t, &batch_at(t)));
    }
    (sols, tracker.oracle_calls())
}

fn check_fixture<T, F>(name: &str, make: F)
where
    T: InfluenceTracker + Persist,
    F: Fn() -> T,
{
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        let mut live = make();
        for t in 0..CUT {
            live.step(t, &batch_at(t));
        }
        save_checkpoint(&path, &live, &cfg(), CUT).expect("write fixture");
        eprintln!("regenerated {}", path.display());
    }
    let manifest = read_manifest(&path).expect("fixture manifest readable");
    assert_eq!(manifest.step, CUT, "{name}: fixture cut drifted");
    let (resume, mut warm): (u64, T) =
        load_checkpoint(&path, &cfg()).expect("pre-refactor checkpoint restores");
    assert_eq!(resume, CUT);
    // Continue the stream on the restored tracker and on a fresh
    // uninterrupted run; they must agree on every solution and on the
    // final oracle tally.
    let warm_result = run_tail(&mut warm, CUT);
    let mut fresh = make();
    for t in 0..CUT {
        fresh.step(t, &batch_at(t));
    }
    let fresh_result = run_tail(&mut fresh, CUT);
    assert_eq!(warm_result, fresh_result, "{name}: warm tail diverged");
}

#[test]
fn sieve_adn_incremental_fixture_restores() {
    check_fixture("checkpoint_sieve_adn_incremental.tdnc", || {
        SieveAdnTracker::new(&cfg())
    });
}

#[test]
fn hist_approx_incremental_fixture_restores() {
    check_fixture("checkpoint_hist_approx_incremental.tdnc", || {
        HistApprox::new(&cfg())
    });
}

#[test]
fn hist_approx_full_recompute_fixture_restores() {
    check_fixture("checkpoint_hist_approx_full.tdnc", || {
        HistApprox::new(&cfg()).with_spread_mode(SpreadMode::FullRecompute)
    });
}

#[test]
fn basic_reduction_incremental_fixture_restores() {
    check_fixture("checkpoint_basic_reduction_incremental.tdnc", || {
        BasicReduction::new(&cfg())
    });
}
