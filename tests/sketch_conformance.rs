//! Statistical conformance suite for [`SpreadMode::Sketch`] — the
//! RR-sketch spread estimator — run end to end through every tracker
//! family (SIEVEADN, BASICREDUCTION, HISTAPPROX) on the same storm
//! streams the differential suite uses (`tests/differential_spread.rs`).
//!
//! Three halves, per ISSUE:
//!
//! 1. **Envelope** — after every step, every instance's pool is probed
//!    against the exact reachability oracle on that instance's own graph:
//!    `|est(v) − |reach(v)|| ≤ ε·n` must hold for all universe nodes up to
//!    a pre-registered violation budget (see [`allowed_violations`]).
//! 2. **Quality** — the solutions a sketch-driven sieve admits are scored
//!    with the *exact* cover oracle (Solution.value is always exact), so
//!    we can assert a coverage-ratio floor against a
//!    [`SpreadMode::FullRecompute`] replay of the same stream.
//! 3. **Determinism** — exactly, not statistically: per-step solutions,
//!    oracle tallies, the envelope tallies themselves, and the final
//!    checkpoint bytes must be bit-identical at `TDN_THREADS` ∈ {1, 4}
//!    and across a mid-run checkpoint/restore.
//!
//! **Why this is not flaky:** the storm streams are drawn from the
//! *same proptest strategies* as the differential suite, sampled through
//! an `StdRng` pinned to fixed per-family seeds, and the sketch pool's
//! RNG streams are keyed by a fixed `SketchParams::seed` — so every
//! number in this file is reproducible bit for bit. The statistical
//! budgets below are still pre-registered so the suite survives
//! re-seeding (e.g. a future change to the per-sketch key schedule)
//! without hand-tuning.

use proptest::prelude::{prop, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdn::graph::{reach_count, ReachScratch};
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime) — same encoding as the
/// differential suite.
type Ev = (u8, u8, u8, u8);

/// Sketch accuracy target. ε = 0.2, δ = 0.05 gives a pool of
/// `⌈ln(2/δ)/(2ε²)⌉ = 47` sketches — large enough for a meaningful
/// envelope, small enough that the per-step probe stays cheap.
const EPS: f64 = 0.2;
const DELTA: f64 = 0.05;
/// Fixed sketch RNG seed: the determinism half compares bit-identical
/// artifacts, so the seed must be pinned.
const SKETCH_SEED: u64 = 0x5EED_1DEA_D00D_F00Du64;

/// Streams sampled per storm family. Each stream is replayed 5× per
/// tracker (exact reference, sketch ×2 thread counts, sketch with a
/// mid-run restart) — the graphs are tiny, so this stays fast.
const STREAMS_PER_FAMILY: usize = 5;

fn sketch_params() -> SketchParams {
    SketchParams::new(EPS, DELTA, SKETCH_SEED)
}

/// Pre-registered envelope failure budget.
///
/// Hoeffding guarantees each (node, pool) check violates the ε·n bound
/// with probability ≤ δ; the bound is loose in practice (the exact
/// binomial tail at the worst case p = 1/2, m = 47 is ≈ 0.6%, an ~8×
/// slack). We budget `max(2, ⌈3·δ·checked⌉)` — 15% of checks where the
/// true rate is under 1% — so the assertion holds with wide margin for
/// any re-seed, while still catching a broken estimator (which shows
/// rates of 30%+ the moment counts or normalization drift).
fn allowed_violations(checked: u64) -> u64 {
    ((3.0 * DELTA * checked as f64).ceil() as u64).max(2)
}

/// Envelope tally accumulated over a whole replay. Also part of the
/// determinism contract: two replays at different thread counts must
/// produce the *same* tally, not merely tallies under budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Envelope {
    checked: u64,
    violations: u64,
}

/// Probes one SIEVEADN instance: every pool-universe node's estimate must
/// be within ε·n of the exact reach count on the instance's own graph.
fn probe_instance(inst: &SieveAdn, env: &mut Envelope) {
    let pool = inst
        .sketch_pool()
        .expect("sketch-mode instances must maintain a pool");
    let n = pool.universe_len();
    if n == 0 {
        return;
    }
    let bound = pool.params().error_bound(n);
    let g = inst.graph();
    let mut scratch = ReachScratch::new();
    for &v in pool.universe() {
        let exact = reach_count(g, v, &mut scratch) as f64;
        env.checked += 1;
        if (pool.estimate(v) - exact).abs() > bound + 1e-9 {
            env.violations += 1;
        }
    }
}

/// Replays `evs` through a tracker built by `mk`, pinned to `threads`,
/// probing the sketch envelope after every step. Returns per-step
/// solutions, the oracle tally, the envelope tally, and the final
/// checkpoint bytes.
fn replay<T: InfluenceTracker + Persist>(
    mk: impl Fn() -> T,
    probe: impl Fn(&T, &mut Envelope),
    cfg: &TrackerConfig,
    evs: &[Ev],
    threads: usize,
) -> (Vec<Solution>, u64, Envelope, Vec<u8>) {
    exec::with_threads(threads, || {
        let mut tracker = mk();
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time;
        let mut sols = Vec::new();
        let mut env = Envelope::default();
        for t in 0..=max_t {
            let batch: Vec<TimedEdge> = evs
                .iter()
                .filter(|e| e.0 as Time == t && e.1 != e.2)
                .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
                .collect();
            sols.push(tracker.step(t, &batch));
            probe(&tracker, &mut env);
        }
        let calls = tracker.oracle_calls();
        (
            sols,
            calls,
            env,
            checkpoint_to_vec(&tracker, cfg, max_t + 1),
        )
    })
}

/// Like [`replay`], but checkpoints at the midpoint step and swaps in the
/// tracker restored from those bytes — the continuation must be
/// indistinguishable from the uninterrupted run.
fn replay_with_restart<T: InfluenceTracker + Persist>(
    mk: impl Fn() -> T,
    cfg: &TrackerConfig,
    evs: &[Ev],
) -> (Vec<Solution>, u64, Vec<u8>) {
    exec::with_threads(1, || {
        let mut tracker = mk();
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time;
        let mid = max_t / 2;
        let mut sols = Vec::new();
        for t in 0..=max_t {
            let batch: Vec<TimedEdge> = evs
                .iter()
                .filter(|e| e.0 as Time == t && e.1 != e.2)
                .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
                .collect();
            sols.push(tracker.step(t, &batch));
            if t == mid {
                let bytes = checkpoint_to_vec(&tracker, cfg, t + 1);
                let (next, warm) = restore_from_slice::<T>(&bytes, cfg)
                    .expect("a just-written sketch checkpoint must restore");
                assert_eq!(next, t + 1, "restored step cursor drifted");
                tracker = warm;
            }
        }
        let calls = tracker.oracle_calls();
        (sols, calls, checkpoint_to_vec(&tracker, cfg, max_t + 1))
    })
}

/// Coverage-ratio tally for one (family, tracker) sweep.
///
/// Pre-registered floors: on steps where the exact tracker covers ≥ 2
/// nodes, the sketch-driven tracker must recover at least half that
/// coverage, and at least 85% on average over the family. On the tiny
/// storm universes the observed worst case sits well above both (sketch
/// estimates over ≤ 24-node universes with 47 sketches are near-exact),
/// so these floors catch gross estimator regressions, not noise.
#[derive(Debug, Default)]
struct Quality {
    ratios: Vec<f64>,
}

impl Quality {
    fn push_step(&mut self, sketch: &Solution, exact: &Solution) {
        if exact.value >= 2 {
            self.ratios.push(sketch.value as f64 / exact.value as f64);
        }
    }

    fn assert_floors(&self, family: &str) {
        assert!(
            !self.ratios.is_empty(),
            "{family}: no step scored for quality — the sweep is vacuous"
        );
        let min = self.ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = self.ratios.iter().sum::<f64>() / self.ratios.len() as f64;
        assert!(
            min >= 0.5,
            "{family}: a sketch-mode step covered under half the exact \
             solution (min ratio {min:.3} over {} scored steps)",
            self.ratios.len()
        );
        assert!(
            mean >= 0.85,
            "{family}: mean sketch coverage ratio {mean:.3} fell below the \
             0.85 floor over {} scored steps",
            self.ratios.len()
        );
    }
}

/// Runs the full three-part contract for one tracker family on one
/// stream: envelope within budget, quality tallied against the exact
/// replay, and bit-identical determinism across thread counts and a
/// mid-run restore.
fn assert_sketch_conformance<T: InfluenceTracker + Persist>(
    mk: impl Fn(SpreadMode) -> T,
    probe: impl Fn(&T, &mut Envelope),
    cfg: &TrackerConfig,
    evs: &[Ev],
    quality: &mut Quality,
) -> u64 {
    let mode = SpreadMode::Sketch(sketch_params());

    // Determinism: thread-count invariance, bit for bit.
    let base = replay(|| mk(mode), &probe, cfg, evs, 1);
    let wide = replay(|| mk(mode), &probe, cfg, evs, 4);
    assert_eq!(base.0, wide.0, "solutions diverged across thread counts");
    assert_eq!(base.1, wide.1, "oracle tally diverged across thread counts");
    assert_eq!(
        base.2, wide.2,
        "envelope tally diverged across thread counts"
    );
    assert_eq!(
        base.3, wide.3,
        "checkpoint bytes diverged across thread counts"
    );

    // Determinism: checkpoint/restore invariance.
    let restarted = replay_with_restart(|| mk(mode), cfg, evs);
    assert_eq!(restarted.0, base.0, "mid-run restore changed solutions");
    assert_eq!(restarted.1, base.1, "mid-run restore changed the tally");
    assert_eq!(
        restarted.2, base.3,
        "mid-run restore changed the final checkpoint bytes"
    );

    // Envelope: within the pre-registered budget.
    let env = base.2;
    let allowed = allowed_violations(env.checked);
    assert!(
        env.violations <= allowed,
        "sketch envelope breached: {}/{} checks outside eps*n (budget {})",
        env.violations,
        env.checked,
        allowed
    );

    // Quality: tally coverage ratios against the exact reference replay.
    let exact = replay(|| mk(SpreadMode::FullRecompute), |_, _| (), cfg, evs, 1);
    for (s, e) in base.0.iter().zip(&exact.0) {
        quality.push_step(s, e);
    }
    env.checked
}

// --- Storm families (same strategies as tests/differential_spread.rs) ---

fn bursty() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..12, 0u8..14, 0u8..14, 6u8..10), 1..80)
}

fn heavy_churn() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..16, 0u8..10, 0u8..10, 1u8..4), 1..70)
}

fn reactivation() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..24, 0u8..6, 0u8..6, 1u8..5), 1..50)
}

fn expiry_storm() -> impl Strategy<Value = Vec<Ev>> {
    (
        1u8..5,
        prop::collection::vec((0u8..12, 0u8..12, 0u8..12), 1..70),
    )
        .prop_map(|(l, evs)| evs.into_iter().map(|(t, u, v)| (t, u, v, l)).collect())
}

/// Draws `STREAMS_PER_FAMILY` streams from a storm strategy through an
/// `StdRng` pinned to a per-family seed — the same generators the
/// differential suite fuzzes with, made reproducible so the statistical
/// assertions above are deterministic in CI.
fn sample_streams(strat: impl Strategy<Value = Vec<Ev>>, tag: u8) -> Vec<Vec<Ev>> {
    let mut rng = StdRng::seed_from_u64(0x5EED_0000_0000_0000 | tag as u64);
    (0..STREAMS_PER_FAMILY)
        .map(|_| strat.generate(&mut rng))
        .collect()
}

/// Sweeps one storm family across all three tracker families.
fn check_family(streams: &[Vec<Ev>], family: &str) {
    let cfg = TrackerConfig::new(3, 0.2, 8);
    let mut quality = Quality::default();
    let mut checked = 0u64;
    for evs in streams {
        checked += assert_sketch_conformance(
            |m| SieveAdnTracker::new(&cfg).with_spread_mode(m),
            |t: &SieveAdnTracker, e: &mut Envelope| probe_instance(t.instance(), e),
            &cfg,
            evs,
            &mut quality,
        );
        checked += assert_sketch_conformance(
            |m| BasicReduction::new(&cfg).with_spread_mode(m),
            |t: &BasicReduction, e: &mut Envelope| {
                for inst in t.instances() {
                    probe_instance(inst, e);
                }
            },
            &cfg,
            evs,
            &mut quality,
        );
        checked += assert_sketch_conformance(
            |m| HistApprox::new(&cfg).with_spread_mode(m),
            |t: &HistApprox, e: &mut Envelope| {
                for (_deadline, inst) in t.instances() {
                    probe_instance(inst, e);
                }
            },
            &cfg,
            evs,
            &mut quality,
        );
    }
    assert!(
        checked > 0,
        "{family}: no envelope check ran — the sweep is vacuous"
    );
    quality.assert_floors(family);
}

#[test]
fn bursty_streams_meet_the_sketch_contract() {
    check_family(&sample_streams(bursty(), 0xB1), "bursty");
}

#[test]
fn heavy_churn_streams_meet_the_sketch_contract() {
    check_family(&sample_streams(heavy_churn(), 0xC2), "heavy_churn");
}

#[test]
fn reactivation_streams_meet_the_sketch_contract() {
    check_family(&sample_streams(reactivation(), 0xD3), "reactivation");
}

#[test]
fn expiry_storms_meet_the_sketch_contract() {
    check_family(&sample_streams(expiry_storm(), 0xE4), "expiry_storm");
}

/// The refeed HISTAPPROX variant (instances rebuilt by replaying the
/// retained suffix) must honor the same contract — one fixed dense
/// stream is enough to exercise pool cloning + backfill on refeed.
#[test]
fn refeed_hist_approx_meets_the_sketch_contract() {
    let evs: Vec<Ev> = sample_streams(heavy_churn(), 0xF5).swap_remove(0);
    let cfg = TrackerConfig::new(2, 0.15, 10);
    let mut quality = Quality::default();
    assert_sketch_conformance(
        |m| HistApprox::new(&cfg).with_refeed().with_spread_mode(m),
        |t: &HistApprox, e: &mut Envelope| {
            for (_deadline, inst) in t.instances() {
                probe_instance(inst, e);
            }
        },
        &cfg,
        &evs,
        &mut quality,
    );
    quality.assert_floors("refeed_hist_approx");
}

/// The (ε, δ) arithmetic the envelope relies on, spelled out once:
/// pool sizing must match the Hoeffding bound and the per-universe error
/// bound must scale with n.
#[test]
fn sketch_params_pin_the_error_budget() {
    let p = sketch_params();
    // ⌈ln(2/0.05) / (2 · 0.2²)⌉ = ⌈46.05…⌉ = 47.
    assert_eq!(p.pool_size(), 47);
    assert_eq!(p.error_bound(10), EPS * 10.0);
    assert_eq!(
        tdn::baselines::hoeffding_pool_size(EPS, DELTA),
        p.pool_size()
    );
}
