//! The paper's Fig. 2 worked example, end to end, on every tracker.
//!
//! Fig. 2 is the only fully specified TDN in the paper (nine edges, L = 3,
//! k = 2) and comes with the expected influential sets: {u1, u6} at time t
//! and {u5, u7} at time t+1. Each tracker must reproduce them.

use tdn::prelude::*;

fn batch_t() -> Vec<TimedEdge> {
    vec![
        TimedEdge::new(1u32, 2u32, 1),
        TimedEdge::new(1u32, 3u32, 1),
        TimedEdge::new(1u32, 4u32, 2),
        TimedEdge::new(5u32, 3u32, 3),
        TimedEdge::new(6u32, 4u32, 1),
        TimedEdge::new(6u32, 7u32, 1),
    ]
}

fn batch_t1() -> Vec<TimedEdge> {
    vec![
        TimedEdge::new(5u32, 2u32, 1),
        TimedEdge::new(7u32, 4u32, 2),
        TimedEdge::new(7u32, 6u32, 3),
    ]
}

fn check(tracker: &mut dyn InfluenceTracker) {
    let sol = tracker.step(0, &batch_t());
    assert_eq!(sol.value, 6, "{}: value at t", tracker.name());
    let mut seeds = sol.seeds.clone();
    seeds.sort();
    assert_eq!(
        seeds,
        vec![NodeId(1), NodeId(6)],
        "{}: seeds at t",
        tracker.name()
    );
    let sol = tracker.step(1, &batch_t1());
    assert_eq!(sol.value, 6, "{}: value at t+1", tracker.name());
    let mut seeds = sol.seeds.clone();
    seeds.sort();
    assert_eq!(
        seeds,
        vec![NodeId(5), NodeId(7)],
        "{}: seeds at t+1",
        tracker.name()
    );
}

#[test]
fn basic_reduction_reproduces_fig2() {
    check(&mut BasicReduction::new(&TrackerConfig::new(2, 0.1, 3)));
}

#[test]
fn hist_approx_reproduces_fig2() {
    check(&mut HistApprox::new(&TrackerConfig::new(2, 0.1, 3)));
}

#[test]
fn hist_approx_with_refeed_reproduces_fig2() {
    check(&mut HistApprox::new(&TrackerConfig::new(2, 0.1, 3)).with_refeed());
}

#[test]
fn greedy_reproduces_fig2() {
    check(&mut GreedyTracker::new(&TrackerConfig::new(2, 0.1, 3)));
}

#[test]
fn tdn_graph_matches_fig2_lifetimes() {
    // The graph-level view: counts of live edges at t and t+1.
    let mut g = TdnGraph::new();
    for e in batch_t() {
        g.add_edge(e.src, e.dst, e.lifetime);
    }
    assert_eq!(g.edge_count(), 6);
    assert_eq!(g.node_count(), 7);
    g.advance_to(1);
    for e in batch_t1() {
        g.add_edge(e.src, e.dst, e.lifetime);
    }
    // e3 (1→4) and e4 (5→3) survive; e7, e8, e9 arrive.
    assert_eq!(g.edge_count(), 5);
    assert_eq!(g.multiplicity(NodeId(1), NodeId(4)), 1);
    assert_eq!(g.multiplicity(NodeId(1), NodeId(2)), 0);
    assert_eq!(g.multiplicity(NodeId(7), NodeId(6)), 1);
}
