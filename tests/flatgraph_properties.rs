//! Property suite for the flat graph core (PR 5): epoch wrap-around in the
//! stamped scratch structures, adjacency-arena block reuse under
//! same-bucket expiry storms, and traversal-backend bit-identity — all
//! exercised at both [`SpreadMode`]s and `TDN_THREADS` ∈ {1, 4}.

use proptest::prelude::*;
use tdn::graph::{reach_count, AdjPool, EpochSet, NodeId as GNodeId, ReachScratch, TdnGraph};
use tdn::prelude::*;
use tdn_core::{SweepDirection, TraversalKind};

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

/// Storm-shaped schedules: many edges share one lifetime class, so whole
/// adjacency lists die in the same expiry bucket and the arena's
/// shrink-and-recycle path runs constantly.
fn storm_schedule() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec(
        (
            0u8..12,
            0u8..10,
            0u8..10,
            (0u8..4).prop_map(|x| if x == 3 { 4 } else { 1 }),
        ),
        1..80,
    )
}

fn batch_at(evs: &[Ev], t: Time) -> Vec<TimedEdge> {
    evs.iter()
        .filter(|e| e.0 as Time == t && e.1 != e.2)
        .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
        .collect()
}

fn run_hist(
    evs: &[Ev],
    mode: SpreadMode,
    traversal: TraversalKind,
    threads: usize,
) -> (Vec<Solution>, u64) {
    tdn::parallel::with_threads(threads, || {
        let mut tracker = HistApprox::new(&TrackerConfig::new(2, 0.2, 6))
            .with_spread_mode(mode)
            .with_traversal(traversal);
        let horizon = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time;
        let mut sols = Vec::new();
        for t in 0..=horizon {
            sols.push(tracker.step(t, &batch_at(evs, t)));
        }
        (sols, tracker.oracle_calls())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under expiry storms, every (mode, backend, thread-count) cell must
    /// produce the same solutions and oracle tallies — the flat core and
    /// the 64-lane backend change how answers are computed, never what
    /// they are.
    #[test]
    fn storm_streams_are_backend_and_thread_invariant(evs in storm_schedule()) {
        let reference = run_hist(&evs, SpreadMode::FullRecompute, TraversalKind::Scalar, 1);
        for mode in [SpreadMode::Incremental, SpreadMode::FullRecompute] {
            for traversal in [TraversalKind::Batch64, TraversalKind::Scalar] {
                for threads in [1usize, 4] {
                    let got = run_hist(&evs, mode, traversal, threads);
                    prop_assert_eq!(
                        &got, &reference,
                        "mode {:?} traversal {:?} threads {}", mode, traversal, threads
                    );
                }
            }
        }
    }

    /// The wide-lane engine's full pinned grid — every shipped label width
    /// crossed with both sweep policies, at 1 and 4 threads — must be
    /// bit-identical to the scalar single-threaded oracle on the same
    /// storm streams, and so must the adaptive `Wide` default.
    #[test]
    fn storm_streams_are_width_and_direction_invariant(evs in storm_schedule()) {
        let reference = run_hist(&evs, SpreadMode::FullRecompute, TraversalKind::Scalar, 1);
        let mut grid = vec![TraversalKind::Wide];
        for lanes in [64usize, 128, 256] {
            for direction in [SweepDirection::TopDown, SweepDirection::Auto] {
                grid.push(TraversalKind::Fixed { lanes, direction });
            }
        }
        for traversal in grid {
            for threads in [1usize, 4] {
                let got = run_hist(&evs, SpreadMode::Incremental, traversal, threads);
                prop_assert_eq!(
                    &got, &reference,
                    "traversal {:?} threads {}", traversal, threads
                );
            }
        }
    }

    /// Forced epoch wrap-around in `ReachScratch` (both the plain visited
    /// epoch and the bit-parallel worklist epoch) must not alias marks:
    /// traversals right after a wrap agree with a fresh scratch.
    #[test]
    fn reach_scratch_epoch_wrap_is_transparent(
        edges in prop::collection::vec((0u32..24, 0u32..24), 1..60),
    ) {
        let mut g = tdn::graph::AdnGraph::new();
        for &(u, v) in &edges {
            if u != v {
                g.add_edge(GNodeId(u), GNodeId(v));
            }
        }
        let mut wrapped = ReachScratch::new();
        wrapped.force_epochs_near_wrap();
        let mut fresh = ReachScratch::new();
        for round in 0..4 {
            for n in 0..24u32 {
                prop_assert_eq!(
                    reach_count(&g, GNodeId(n), &mut wrapped),
                    reach_count(&g, GNodeId(n), &mut fresh),
                    "round {} node {}", round, n
                );
            }
            let sources: Vec<GNodeId> = (0..24).map(GNodeId).collect();
            let mut batch_counts = vec![0u64; 24];
            tdn::graph::reach_count_batch64(&g, &sources, &mut wrapped, &mut batch_counts);
            for (n, &c) in batch_counts.iter().enumerate() {
                prop_assert_eq!(c, reach_count(&g, GNodeId(n as u32), &mut fresh));
            }
        }
    }

    /// `EpochSet` clears spanning the wrap boundary never resurrect or
    /// lose members.
    #[test]
    fn epoch_set_wrap_round_trips(members in prop::collection::vec(0u32..50, 0..30)) {
        let mut set = EpochSet::new();
        // Park the epoch near the wrap by churning clears.
        for m in &members {
            set.insert(GNodeId(*m));
        }
        for _ in 0..3 {
            set.clear();
            prop_assert!(set.is_empty());
            let mut expect: Vec<u32> = Vec::new();
            for m in &members {
                if set.insert(GNodeId(*m)) {
                    expect.push(*m);
                }
            }
            let got: Vec<u32> = set.members().iter().map(|n| n.0).collect();
            prop_assert_eq!(got, expect, "insertion order survives clear cycles");
        }
    }
}

/// A flash-crowd shape — one hub fanning out to thousands of nodes in a
/// single round — must actually trip the direction switch under
/// [`SweepDirection::Auto`] (the frontier is ~all live nodes, far past the
/// `≥ 512` floor and the `live/8` fraction), and the bottom-up rounds must
/// leave the reach tallies exactly as top-down computes them.
#[test]
fn flash_crowd_frontier_takes_bottom_up_sweeps() {
    let mut g = tdn::graph::AdnGraph::new();
    const FAN: u32 = 5_000;
    for i in 1..=FAN {
        g.add_edge(GNodeId(0), GNodeId(i));
        // A sparse second hop so the bottom-up rounds have real pulls to
        // perform rather than immediately quiescing.
        if i % 7 == 0 {
            g.add_edge(GNodeId(i), GNodeId(FAN + 1 + i % 13));
        }
    }
    let sources = [GNodeId(0)];
    let mut scratch = ReachScratch::new();
    let mut top_down = vec![0u64; 1];
    tdn::graph::reach_count_batch_wide(
        &g,
        &sources,
        1,
        SweepDirection::TopDown,
        &mut scratch,
        &mut top_down,
    );
    let before = tdn::graph::bottom_up_sweeps();
    let mut auto_counts = vec![0u64; 1];
    tdn::graph::reach_count_batch_wide(
        &g,
        &sources,
        1,
        SweepDirection::Auto,
        &mut scratch,
        &mut auto_counts,
    );
    assert!(
        tdn::graph::bottom_up_sweeps() > before,
        "a {FAN}-wide frontier over ~{FAN} live nodes must switch to bottom-up"
    );
    assert_eq!(auto_counts, top_down, "bottom-up rounds changed the answer");
}

/// Same-bucket expiry storms must recycle arena blocks: after the first
/// full fill/drain cycle establishes peak occupancy, subsequent identical
/// cycles draw every block from the free lists instead of growing the
/// arena buffer.
#[test]
fn tdn_expiry_storms_reuse_arena_blocks() {
    let mut g = TdnGraph::new();
    let mut t: Time = 0;
    let mut peak = None;
    for cycle in 0..12 {
        // 100 edges out of one hub, all dying at the same tick.
        for i in 1..=100u32 {
            g.add_edge(GNodeId(0), GNodeId(i), 1);
        }
        t += 1;
        g.advance_to(t);
        assert_eq!(g.edge_count(), 0);
        g.check_invariants();
        let (slots, _) = g.arena_stats();
        match peak {
            None => peak = Some(slots),
            Some(p) => assert_eq!(slots, p, "cycle {cycle} grew the arena"),
        }
    }
    let (_, recycled) = g.arena_stats();
    assert!(recycled > 0, "drained blocks must sit on the free lists");
}

/// The raw pool primitive honors the same contract for the unordered O(1)
/// eviction path.
#[test]
fn adj_pool_swap_remove_storm_reuses_blocks() {
    let mut pool: AdjPool<u32> = AdjPool::new();
    for i in 0..128 {
        pool.push(0, i);
    }
    while pool.list_len(0) > 0 {
        pool.swap_remove(0, 0);
    }
    let (peak, _) = pool.arena_stats();
    for _ in 0..8 {
        for i in 0..128 {
            pool.push(0, i);
        }
        while pool.list_len(0) > 0 {
            pool.swap_remove(0, pool.list_len(0) - 1);
        }
        let (now, _) = pool.arena_stats();
        assert_eq!(now, peak, "swap-remove storm grew the arena");
    }
}
