//! Cross-checks the trackers against the SCC-condensation oracle: exact
//! all-node spreads computed by a completely independent code path
//! (Tarjan + DAG bitsets vs incremental pruned BFS).

use tdn::graph::{condense, TdnGraph};
use tdn::prelude::*;
use tdn::streams::GeometricLifetime;

#[test]
fn greedy_k1_matches_condensation_argmax() {
    // With k = 1, greedy must select a node of maximum exact spread.
    let mut assigner = GeometricLifetime::new(0.01, 300, 3);
    let mut tracker = GreedyTracker::new(&TrackerConfig::new(1, 0.1, 300));
    let mut shadow = TdnGraph::new();
    for (t, batch) in StepBatches::new(Dataset::TwitterHk.stream(21).take(400)) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: assigner.assign(it),
            })
            .collect();
        shadow.advance_to(t);
        for e in &tagged {
            shadow.add_edge(e.src, e.dst, e.lifetime);
        }
        let sol = tracker.step(t, &tagged);
        if shadow.node_count() == 0 {
            continue;
        }
        let cond = condense(&shadow, shadow.live_nodes().iter());
        let best = cond.top_spreads(1)[0].1;
        assert_eq!(
            sol.value, best,
            "t={t}: greedy k=1 value {} != exact max spread {best}",
            sol.value
        );
    }
}

#[test]
fn hist_approx_k1_meets_guarantee_against_exact_spreads() {
    // k = 1 lets the exact oracle bound OPT directly at every step.
    let mut assigner = GeometricLifetime::new(0.02, 200, 9);
    let eps = 0.1;
    let mut tracker = HistApprox::new(&TrackerConfig::new(1, eps, 200));
    let mut shadow = TdnGraph::new();
    for (t, batch) in StepBatches::new(Dataset::Brightkite.stream(33).take(300)) {
        let tagged: Vec<TimedEdge> = batch
            .iter()
            .map(|it| TimedEdge {
                src: it.src,
                dst: it.dst,
                lifetime: assigner.assign(it),
            })
            .collect();
        shadow.advance_to(t);
        for e in &tagged {
            shadow.add_edge(e.src, e.dst, e.lifetime);
        }
        let sol = tracker.step(t, &tagged);
        if shadow.node_count() == 0 {
            continue;
        }
        let cond = condense(&shadow, shadow.live_nodes().iter());
        let opt = cond.top_spreads(1)[0].1;
        assert!(
            sol.value as f64 >= (1.0 / 3.0 - eps) * opt as f64 - 1e-9,
            "t={t}: hist {} < (1/3-eps)·OPT ({opt})",
            sol.value
        );
    }
}

#[test]
fn churn_is_lower_under_decay_when_influencers_pause() {
    // The Example 1 story, quantified with churn metrics: when a standing
    // influencer goes quiet, a sliding window churns the top-k (drops and
    // later re-admits her) while geometric decay with the same mean keeps
    // the set stable. On steady streams the two policies are equivalent —
    // the advantage is specific to intermittent activity, which is exactly
    // the paper's motivating scenario.
    let steps = 700u64;
    let quiet = 360..480u64;
    let mut events = Vec::new();
    for t in 0..steps {
        events.push(Interaction::new(
            100 + (t * 13 % 40) as u32,
            200 + (t * 29 % 160) as u32,
            t,
        ));
        if t % 3 == 0 && !quiet.contains(&t) {
            events.push(Interaction::new(0u32, 300 + (t * 7 % 120) as u32, t));
            events.push(Interaction::new(0u32, 300 + (t * 11 % 120) as u32, t));
        }
    }
    // Measure Alice's presence fraction over the quiet window, plus the
    // whole-set churn metrics as secondary observables.
    let alice = NodeId(0);
    let quiet_ref = quiet.clone();
    let measure = move |mut assigner: Box<dyn LifetimeAssigner>| {
        let mut tracker = HistApprox::new(&TrackerConfig::new(3, 0.1, 100_000));
        let mut churn = tdn::algorithms::ChurnTracker::new();
        let (mut present, mut total) = (0u64, 0u64);
        for (t, batch) in StepBatches::new(events.iter().copied()) {
            let tagged: Vec<TimedEdge> = batch
                .iter()
                .map(|it| TimedEdge {
                    src: it.src,
                    dst: it.dst,
                    lifetime: assigner.assign(it),
                })
                .collect();
            let sol = tracker.step(t, &tagged);
            if quiet_ref.contains(&t) {
                total += 1;
                if sol.seeds.contains(&alice) {
                    present += 1;
                }
                churn.observe(&sol);
            }
        }
        (present as f64 / total.max(1) as f64, churn)
    };
    let (window_presence, window_churn) = measure(Box::new(ConstantLifetime(60)));
    let (decay_presence, _) = measure(Box::new(GeometricLifetime::new(1.0 / 60.0, 100_000, 6)));
    assert!(
        decay_presence > window_presence + 0.3,
        "decay presence {decay_presence} not well above window {window_presence}"
    );
    assert!(
        window_churn.changes >= 1,
        "the window must drop Alice at least once during the quiet period"
    );
}
