//! Property tests for Theorem 1 (the influence spread `f_t` is a
//! normalized monotone submodular set function) and for the sieve
//! guarantee on the influence objective.
//!
//! Determinism: the vendored proptest runner derives each property's RNG
//! seed from the test name, so these suites are flake-free in tier-1; set
//! `TDN_PROPTEST_SEED=<u64>` to explore other case streams.

use proptest::prelude::*;
use tdn::algorithms::InfluenceObjective;
use tdn::graph::{marginal_gain, CoverSet, FxHashSet, ReachScratch, TdnGraph};
use tdn::prelude::*;
use tdn::submodular::{IncrementalObjective, OracleCounter};

fn graph_strategy() -> impl Strategy<Value = TdnGraph> {
    prop::collection::vec((0u8..10, 0u8..10, 1u8..10), 0..40).prop_map(|edges| {
        let mut g = TdnGraph::new();
        for (u, v, l) in edges {
            if u != v {
                g.add_edge(NodeId(u as u32), NodeId(v as u32), l as u32);
            }
        }
        g
    })
}

/// Evaluates `f(S)` from scratch.
fn f(graph: &TdnGraph, seeds: &[NodeId]) -> u64 {
    let mut obj = InfluenceObjective::new(graph, OracleCounter::new());
    obj.evaluate_seeds(seeds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization: f(∅) = 0.
    #[test]
    fn f_is_normalized(g in graph_strategy()) {
        prop_assert_eq!(f(&g, &[]), 0);
    }

    /// Monotonicity: S ⊆ T ⇒ f(S) ≤ f(T).
    #[test]
    fn f_is_monotone(g in graph_strategy(), s in prop::collection::vec(0u8..10, 0..4), extra in prop::collection::vec(0u8..10, 0..4)) {
        let s_nodes: Vec<NodeId> = s.iter().map(|&x| NodeId(x as u32)).collect();
        let mut t_nodes = s_nodes.clone();
        t_nodes.extend(extra.iter().map(|&x| NodeId(x as u32)));
        prop_assert!(f(&g, &s_nodes) <= f(&g, &t_nodes));
    }

    /// Submodularity: S ⊆ T ⇒ δ_S(v) ≥ δ_T(v).
    #[test]
    fn f_is_submodular(
        g in graph_strategy(),
        s in prop::collection::vec(0u8..10, 0..3),
        extra in prop::collection::vec(0u8..10, 0..3),
        v in 0u8..10,
    ) {
        let v = NodeId(v as u32);
        let s_nodes: Vec<NodeId> = s.iter().map(|&x| NodeId(x as u32)).collect();
        let mut t_nodes = s_nodes.clone();
        t_nodes.extend(extra.iter().map(|&x| NodeId(x as u32)));
        let mut with_v_s = s_nodes.clone();
        with_v_s.push(v);
        let mut with_v_t = t_nodes.clone();
        with_v_t.push(v);
        let delta_s = f(&g, &with_v_s) - f(&g, &s_nodes);
        let delta_t = f(&g, &with_v_t) - f(&g, &t_nodes);
        prop_assert!(delta_s >= delta_t, "δ_S({v:?}) = {delta_s} < δ_T = {delta_t}");
    }

    /// The incremental-objective gain equals a from-scratch difference.
    #[test]
    fn objective_gain_matches_definition(
        g in graph_strategy(),
        s in prop::collection::vec(0u8..10, 0..3),
        v in 0u8..10,
    ) {
        let v = NodeId(v as u32);
        let seeds: Vec<NodeId> = s.iter().map(|&x| NodeId(x as u32)).collect();
        let mut obj = InfluenceObjective::new(&g, OracleCounter::new());
        let mut state = CoverSet::default();
        for &x in &seeds {
            obj.commit(&mut state, x);
        }
        let gain = obj.gain(&state, v) as u64;
        let mut with_v = seeds.clone();
        with_v.push(v);
        prop_assert_eq!(gain, f(&g, &with_v) - f(&g, &seeds));
    }

    /// SieveADN over a single batch meets (1/2 − ε)·OPT with OPT from
    /// exhaustive search (k = 2, tiny universes).
    #[test]
    fn sieve_adn_guarantee_holds(g_edges in prop::collection::vec((0u8..8, 0u8..8), 1..25)) {
        let eps = 0.1;
        let mut tracker = SieveAdnTracker::new(&TrackerConfig::new(2, eps, 10));
        let batch: Vec<TimedEdge> = g_edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| TimedEdge::new(u as u32, v as u32, 1))
            .collect();
        if batch.is_empty() {
            return Ok(());
        }
        let sol = tracker.step(0, &batch);
        // Exhaustive OPT over pairs on the same (addition-only) graph.
        let mut g = tdn::graph::AdnGraph::new();
        for e in &batch {
            g.add_edge(e.src, e.dst);
        }
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut scratch = ReachScratch::new();
        let mut opt = 0u64;
        for i in 0..nodes.len() {
            for j in i..nodes.len() {
                let mut cover = CoverSet::new();
                let mut gained = Vec::new();
                let mut val = 0u64;
                for &x in [nodes[i], nodes[j]].iter() {
                    val += marginal_gain(&g, x, &cover, &mut scratch, &mut gained);
                    for &n in &gained {
                        cover.insert(n);
                    }
                }
                opt = opt.max(val);
            }
        }
        prop_assert!(
            sol.value as f64 >= (0.5 - eps) * opt as f64 - 1e-9,
            "sieve {} < (1/2-eps)·OPT ({})", sol.value, opt
        );
    }

    /// HistApprox histogram indices are strictly increasing and instance
    /// counts stay well below L on random streams.
    #[test]
    fn hist_approx_histogram_invariants(
        evs in prop::collection::vec((0u8..10, 0u8..10, 1u8..40), 1..80),
    ) {
        let l_max = 40;
        let mut h = HistApprox::new(&TrackerConfig::new(2, 0.2, l_max));
        for (t, chunk) in evs.chunks(2).enumerate() {
            let batch: Vec<TimedEdge> = chunk
                .iter()
                .filter(|(u, v, _)| u != v)
                .map(|&(u, v, l)| TimedEdge::new(u as u32, v as u32, l as u32))
                .collect();
            let sol = h.step(t as Time, &batch);
            let idx = h.indices();
            let strictly_increasing = idx.windows(2).all(|w| w[0] < w[1]);
            prop_assert!(strictly_increasing, "indices not strictly increasing: {idx:?}");
            prop_assert!(idx.iter().all(|&x| x >= 1 && x <= l_max));
            // Seeds are distinct and within budget.
            let distinct: FxHashSet<NodeId> = sol.seeds.iter().copied().collect();
            prop_assert_eq!(distinct.len(), sol.seeds.len(), "duplicate seeds");
            prop_assert!(sol.seeds.len() <= 2, "budget exceeded");
        }
    }
}
