//! Property tests for the graph substrate: the lazily-compacted,
//! bucket-evicted `TdnGraph` must agree with a naive reference model on
//! arbitrary schedules, and incremental covers must equal from-scratch
//! reachability.
//!
//! Determinism: the vendored proptest runner derives each property's RNG
//! seed from the test name, so these suites are flake-free in tier-1; set
//! `TDN_PROPTEST_SEED=<u64>` to explore other case streams.

use proptest::prelude::*;
use tdn::graph::{
    marginal_gain, reach_collect, reach_count, AdnGraph, CoverSet, FxHashSet, IndexedSet, OutGraph,
    ReachScratch, TdnGraph,
};
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..20, 0u8..10, 0u8..10, 1u8..8), 1..60)
}

/// Naive reference: a flat list of (src, dst, expiry).
struct NaiveTdn {
    edges: Vec<(NodeId, NodeId, Time)>,
}

impl NaiveTdn {
    fn live_at(&self, t: Time) -> Vec<(NodeId, NodeId)> {
        self.edges
            .iter()
            .filter(|&&(_, _, exp)| exp > t)
            .map(|&(u, v, _)| (u, v))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge/node counts and per-node reach agree with the naive model at
    /// every step of the schedule.
    #[test]
    fn tdn_matches_naive_model(evs in schedule()) {
        let mut evs = evs;
        evs.sort_by_key(|e| e.0);
        let mut g = TdnGraph::new();
        let mut naive = NaiveTdn { edges: Vec::new() };
        let mut scratch = ReachScratch::new();
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time + 9;
        let mut idx = 0;
        for t in 0..=max_t {
            g.advance_to(t);
            while idx < evs.len() && evs[idx].0 as Time == t {
                let (_, u, v, l) = evs[idx];
                idx += 1;
                if u == v {
                    continue;
                }
                g.add_edge(NodeId(u as u32), NodeId(v as u32), l as u32);
                naive.edges.push((NodeId(u as u32), NodeId(v as u32), t + l as Time));
            }
            let live = naive.live_at(t);
            prop_assert_eq!(g.edge_count(), live.len() as u64, "edge count at t={}", t);
            let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
            for &(u, v) in &live {
                nodes.insert(u);
                nodes.insert(v);
            }
            prop_assert_eq!(g.node_count(), nodes.len(), "node count at t={}", t);
            g.check_invariants();
            // Reachability agrees with a naive ADN built from live edges.
            let mut ref_graph = AdnGraph::new();
            for &(u, v) in &live {
                ref_graph.add_edge(u, v);
            }
            for &n in nodes.iter() {
                let a = reach_count(&g, n, &mut scratch);
                let b = reach_count(&ref_graph, n, &mut scratch);
                prop_assert_eq!(a, b, "reach({:?}) at t={}", n, t);
            }
        }
    }

    /// Remaining-lifetime range queries return exactly the naive filter.
    #[test]
    fn remaining_range_query_is_exact(evs in schedule(), lo in 1u8..6, width in 1u8..6) {
        let mut evs = evs;
        evs.sort_by_key(|e| e.0);
        let mut g = TdnGraph::new();
        let mut naive = NaiveTdn { edges: Vec::new() };
        let mut idx = 0;
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time + 2;
        for t in 0..=max_t {
            g.advance_to(t);
            while idx < evs.len() && evs[idx].0 as Time == t {
                let (_, u, v, l) = evs[idx];
                idx += 1;
                if u == v { continue; }
                g.add_edge(NodeId(u as u32), NodeId(v as u32), l as u32);
                naive.edges.push((NodeId(u as u32), NodeId(v as u32), t + l as Time));
            }
            let (lo, hi) = (lo as u32, lo as u32 + width as u32);
            let mut got: Vec<(NodeId, NodeId)> = g
                .edges_with_remaining_in(lo, hi)
                .map(|e| (e.src, e.dst))
                .collect();
            let mut expect: Vec<(NodeId, NodeId)> = naive
                .edges
                .iter()
                .filter(|&&(_, _, exp)| exp > t && {
                    let rem = exp - t;
                    rem >= lo as Time && rem < hi as Time
                })
                .map(|&(u, v, _)| (u, v))
                .collect();
            got.sort();
            expect.sort();
            prop_assert_eq!(got, expect, "range [{},{}) at t={}", lo, hi, t);
        }
    }

    /// Incremental covers: extending a cover with v then asking any node's
    /// marginal gain equals the from-scratch union computation.
    #[test]
    fn cover_extension_equals_scratch_union(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40),
        seeds in prop::collection::vec(0u8..12, 1..4),
        probe in 0u8..12,
    ) {
        let mut g = AdnGraph::new();
        for &(u, v) in &edges {
            if u != v {
                g.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
        if !g.contains_node(NodeId(probe as u32)) {
            return Ok(());
        }
        let mut scratch = ReachScratch::new();
        // Incremental: commit seeds one by one.
        let mut cover = CoverSet::new();
        let mut gained = Vec::new();
        for &s in &seeds {
            if g.contains_node(NodeId(s as u32)) {
                marginal_gain(&g, NodeId(s as u32), &cover, &mut scratch, &mut gained);
                for &n in &gained {
                    cover.insert(n);
                }
            }
        }
        // From scratch: union of full reach sets.
        let mut union: FxHashSet<NodeId> = FxHashSet::default();
        let mut buf = Vec::new();
        for &s in &seeds {
            if g.contains_node(NodeId(s as u32)) {
                reach_collect(&g, NodeId(s as u32), &mut scratch, &mut buf);
                union.extend(buf.iter().copied());
            }
        }
        prop_assert_eq!(cover.len(), union.len());
        // Marginal gain of the probe agrees with the set difference.
        let gain = marginal_gain(&g, NodeId(probe as u32), &cover, &mut scratch, &mut gained);
        reach_collect(&g, NodeId(probe as u32), &mut scratch, &mut buf);
        let expect = buf.iter().filter(|n| !union.contains(n)).count() as u64;
        prop_assert_eq!(gain, expect);
    }

    /// `IndexedSet`'s swap-remove bookkeeping stays consistent with a
    /// reference set under arbitrary interleavings of inserts (node
    /// arrivals) and removes (expirations): membership, length, and the
    /// index ↔ position map must agree after every operation.
    #[test]
    fn indexed_set_swap_remove_under_interleaved_insert_expire(
        ops in prop::collection::vec((0u8..2, 0u8..24), 1..80),
    ) {
        let mut set = IndexedSet::new();
        let mut model: FxHashSet<NodeId> = FxHashSet::default();
        for &(op, raw) in &ops {
            let n = NodeId(raw as u32);
            if op == 0 {
                prop_assert_eq!(set.insert(n), model.insert(n), "insert {:?}", n);
            } else {
                prop_assert_eq!(set.remove(n), model.remove(&n), "remove {:?}", n);
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.contains(n), model.contains(&n));
            // Every position resolves to a distinct live member (the
            // swap-remove must have patched the displaced element's slot),
            // and out-of-range access stays None.
            let mut seen_members: FxHashSet<NodeId> = FxHashSet::default();
            for i in 0..set.len() {
                let m = set.get(i).expect("position in range");
                prop_assert!(model.contains(&m), "stale member {:?} at {}", m, i);
                prop_assert!(seen_members.insert(m), "duplicate {:?} at {}", m, i);
            }
            prop_assert_eq!(set.get(set.len()), None);
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        // Final sweep: the slice view covers the model exactly.
        let mut got: Vec<NodeId> = set.as_slice().to_vec();
        let mut expect: Vec<NodeId> = model.iter().copied().collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }
}
