//! Backend identity: routing a multi-tenant firehose through the
//! sharded serving layer must be invisible to every tenant. For each
//! engine family, each `TDN_THREADS` ∈ {1, 4}, and each shard count
//! ∈ {1, 4}, the served solutions *and oracle tallies* must be
//! bit-identical to a dedicated single-tenant driver feeding the same
//! per-tenant stream directly — and the crash/recover/replay path must
//! land on the same state again.

use tdn::prelude::*;

fn workload() -> TenantWorkload {
    TenantWorkload::new(TenantWorkloadConfig {
        tenants: 10,
        ticks: 30,
        events_per_tick: 7,
        tenant_zipf: 0.8,
        nodes: 120,
        node_zipf: 1.0,
        max_lifetime: 6,
        seed: 0x01DE_2019,
    })
}

fn cfg() -> TrackerConfig {
    TrackerConfig::new(2, 0.25, 6)
}

/// A tenant's final observable state: watermark, answer, oracle tally.
type Fingerprint = (Option<Time>, Solution, u64);

fn serve_fingerprints<T: TrackerEngine + Persist + Send>(
    shards: usize,
    threads: usize,
) -> Vec<Fingerprint> {
    exec::with_threads(threads, || {
        let mut server: Server<T> = Server::new(ServeConfig::new(shards, cfg())).expect("config");
        for b in workload().interleaved() {
            server.submit_batch(b.tenant as TenantId, b.t, b.edges);
        }
        server.flush().expect("flush");
        collect(&server)
    })
}

fn collect<T: TrackerEngine + Persist + Send>(server: &Server<T>) -> Vec<Fingerprint> {
    server
        .tenants()
        .iter()
        .map(|&tenant| {
            let snap = server.query(tenant).expect("tenant provisioned");
            (snap.t, snap.solution.clone(), snap.oracle_calls)
        })
        .collect()
}

fn direct_fingerprints<T: TrackerEngine + Persist + Send>(threads: usize) -> Vec<Fingerprint> {
    exec::with_threads(threads, || {
        let w = workload();
        (0..w.config().tenants)
            .map(|tenant| {
                let mut engine = T::from_config(&cfg());
                let mut last = None;
                for (t, batch) in w.tenant_stream(tenant) {
                    engine.step(t, &batch);
                    last = Some(t);
                }
                (last, engine.query(), engine.oracle_calls())
            })
            .collect()
    })
}

fn identity_grid<T: TrackerEngine + Persist + Send>(label: &str) {
    let reference = direct_fingerprints::<T>(1);
    for threads in [1usize, 4] {
        let direct = direct_fingerprints::<T>(threads);
        assert_eq!(
            direct, reference,
            "{label}: direct run varies with TDN_THREADS={threads}"
        );
        for shards in [1usize, 4] {
            let served = serve_fingerprints::<T>(shards, threads);
            assert_eq!(
                served, reference,
                "{label}: served state diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn sieve_adn_served_equals_direct() {
    identity_grid::<SieveAdnTracker>("SIEVEADN");
}

#[test]
fn basic_reduction_served_equals_direct() {
    identity_grid::<BasicReduction>("BASICREDUCTION");
}

#[test]
fn hist_approx_served_equals_direct() {
    identity_grid::<HistApprox>("HISTAPPROX");
}

/// Shard migration: recovering with a *different* shard count (tenants
/// land on different workers) must still replay to identical state.
#[test]
fn recovery_across_shard_counts_is_identical() {
    let dir = std::env::temp_dir().join("tdn_serve_identity_migrate");
    let _ = std::fs::remove_dir_all(&dir);
    let reference = serve_fingerprints::<HistApprox>(4, 1);

    let all: Vec<_> = workload().interleaved().collect();
    let cut = 2 * all.len() / 3;
    let victim_cfg = ServeConfig::new(4, cfg()).with_checkpoints(&dir, 5);
    exec::with_threads(4, || {
        let mut victim: Server<HistApprox> = Server::new(victim_cfg.clone()).expect("config");
        for b in &all[..cut] {
            victim.submit_batch(b.tenant as TenantId, b.t, b.edges.clone());
        }
        victim.flush().expect("flush");
        victim.checkpoint_all().expect("checkpoint");
        // Crash: the server is dropped with un-checkpointed publications.
    });

    // Recover onto a single shard (migration) and replay everything.
    let recover_cfg = ServeConfig::new(1, cfg()).with_checkpoints(&dir, 5);
    let recovered = exec::with_threads(1, || {
        let mut server: Server<HistApprox> =
            Server::recover(recover_cfg).expect("recover from chains");
        assert!(!server.tenants().is_empty(), "no tenants recovered");
        for b in &all {
            server.submit_batch(b.tenant as TenantId, b.t, b.edges.clone());
        }
        let report = server.flush().expect("replay flush");
        assert!(report.skipped > 0, "replay never hit the idempotence guard");
        collect(&server)
    });
    assert_eq!(recovered, reference, "migrated recovery diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
