//! Backend identity: routing a multi-tenant firehose through the
//! sharded serving layer must be invisible to every tenant. For each
//! engine family, each `TDN_THREADS` ∈ {1, 4}, and each shard count
//! ∈ {1, 4}, the served solutions *and oracle tallies* must be
//! bit-identical to a dedicated single-tenant driver feeding the same
//! per-tenant stream directly — and the crash/recover/replay path must
//! land on the same state again.
//!
//! **Fault-seeded mode.** With `TDN_FAULT_SEED=<nonzero>` in the
//! environment, every served run additionally checkpoints through a
//! seeded [`FaultPlan`] storming all four *retryable* I/O sites (EIO,
//! ENOSPC, torn writes, rename failures) with a generous retry budget.
//! Retryable faults only touch the persistence path, so the served
//! fingerprints must be bit-identical to the fault-free reference — CI
//! runs this suite once with a nonzero seed to prove it.

use std::path::PathBuf;
use std::sync::Arc;
use tdn::prelude::*;

fn workload() -> TenantWorkload {
    TenantWorkload::new(TenantWorkloadConfig {
        tenants: 10,
        ticks: 30,
        events_per_tick: 7,
        tenant_zipf: 0.8,
        nodes: 120,
        node_zipf: 1.0,
        max_lifetime: 6,
        seed: 0x01DE_2019,
    })
}

fn cfg() -> TrackerConfig {
    TrackerConfig::new(2, 0.25, 6)
}

fn fault_seed() -> u64 {
    std::env::var("TDN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Under a nonzero `TDN_FAULT_SEED`, arms the config with checkpoints to
/// a per-run scratch dir and a retryable-sites-only fault storm. The
/// retry budget (10) exceeds the worst case the storm can inject per
/// tenant (4 kinds × the default per-site cap of 2 = 8 consecutive
/// failures), so no tenant can quarantine — served answers must not
/// move.
fn maybe_faulted(cfg: ServeConfig, tag: &str) -> (ServeConfig, Option<PathBuf>) {
    let seed = fault_seed();
    if seed == 0 {
        return (cfg, None);
    }
    let dir = std::env::temp_dir().join(format!("tdn_serve_identity_faults_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = Arc::new(FaultPlan::new(FaultPlanConfig::retryable_storm(
        seed, 1_500,
    )));
    let cfg = cfg
        .with_checkpoints(&dir, 7)
        .with_retry(RetryPolicy {
            max_attempts: 10,
            base_backoff_ticks: 1,
        })
        .with_faults(plan);
    (cfg, Some(dir))
}

/// A tenant's final observable state: watermark, answer, oracle tally.
type Fingerprint = (Option<Time>, Solution, u64);

fn serve_fingerprints<T: TrackerEngine + Persist + Send>(
    shards: usize,
    threads: usize,
    label: &str,
) -> Vec<Fingerprint> {
    let (cfg, scratch) = maybe_faulted(
        ServeConfig::new(shards, cfg()),
        &format!("{label}_{shards}_{threads}"),
    );
    let out = exec::with_threads(threads, || {
        let mut server: Server<T> = Server::new(cfg.clone()).expect("config");
        for b in workload().interleaved() {
            server
                .submit_batch(b.tenant as TenantId, b.t, b.edges)
                .expect("submit");
        }
        server.flush().expect("flush");
        collect(&server)
    });
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

fn collect<T: TrackerEngine + Persist + Send>(server: &Server<T>) -> Vec<Fingerprint> {
    server
        .tenants()
        .iter()
        .map(|&tenant| {
            let snap = server.query(tenant).expect("tenant provisioned");
            (snap.t, snap.solution.clone(), snap.oracle_calls)
        })
        .collect()
}

fn direct_fingerprints<T: TrackerEngine + Persist + Send>(threads: usize) -> Vec<Fingerprint> {
    exec::with_threads(threads, || {
        let w = workload();
        (0..w.config().tenants)
            .map(|tenant| {
                let mut engine = T::from_config(&cfg());
                let mut last = None;
                for (t, batch) in w.tenant_stream(tenant) {
                    engine.step(t, &batch);
                    last = Some(t);
                }
                (last, engine.query(), engine.oracle_calls())
            })
            .collect()
    })
}

fn identity_grid<T: TrackerEngine + Persist + Send>(label: &str) {
    let reference = direct_fingerprints::<T>(1);
    for threads in [1usize, 4] {
        let direct = direct_fingerprints::<T>(threads);
        assert_eq!(
            direct, reference,
            "{label}: direct run varies with TDN_THREADS={threads}"
        );
        for shards in [1usize, 4] {
            let served = serve_fingerprints::<T>(shards, threads, label);
            assert_eq!(
                served, reference,
                "{label}: served state diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn sieve_adn_served_equals_direct() {
    identity_grid::<SieveAdnTracker>("SIEVEADN");
}

#[test]
fn basic_reduction_served_equals_direct() {
    identity_grid::<BasicReduction>("BASICREDUCTION");
}

#[test]
fn hist_approx_served_equals_direct() {
    identity_grid::<HistApprox>("HISTAPPROX");
}

/// Shard migration: recovering with a *different* shard count (tenants
/// land on different workers) must still replay to identical state.
/// Under `TDN_FAULT_SEED` the victim's checkpoints are written through
/// the retryable-fault storm — torn tmp debris and missing links are
/// exactly what the tolerant recovery path must absorb.
#[test]
fn recovery_across_shard_counts_is_identical() {
    let dir = std::env::temp_dir().join("tdn_serve_identity_migrate");
    let _ = std::fs::remove_dir_all(&dir);
    let reference = serve_fingerprints::<HistApprox>(4, 1, "MIGRATE_REF");

    let all: Vec<_> = workload().interleaved().collect();
    let cut = 2 * all.len() / 3;
    let (victim_cfg, _) = maybe_faulted(
        ServeConfig::new(4, cfg()).with_checkpoints(&dir, 5),
        "MIGRATE_VICTIM",
    );
    // Fault-seeded or not, the victim checkpoints into the shared dir.
    let victim_cfg = victim_cfg.with_checkpoints(&dir, 5);
    exec::with_threads(4, || {
        let mut victim: Server<HistApprox> = Server::new(victim_cfg.clone()).expect("config");
        for b in &all[..cut] {
            victim
                .submit_batch(b.tenant as TenantId, b.t, b.edges.clone())
                .expect("submit");
        }
        victim.flush().expect("flush");
        let summary = victim.checkpoint_all().expect("checkpoint");
        assert!(summary.saved > 0, "no chains written: {summary:?}");
        // Crash: the server is dropped with un-checkpointed publications.
    });

    // Recover onto a single shard (migration) and replay everything.
    let recover_cfg = ServeConfig::new(1, cfg()).with_checkpoints(&dir, 5);
    let recovered = exec::with_threads(1, || {
        let (mut server, rec) =
            Server::<HistApprox>::recover(recover_cfg).expect("recover from chains");
        assert!(!server.tenants().is_empty(), "no tenants recovered");
        assert!(
            rec.quarantined.is_empty(),
            "atomic chain writes must never leave a corrupt link: {rec:?}"
        );
        for b in &all {
            server
                .submit_batch(b.tenant as TenantId, b.t, b.edges.clone())
                .expect("submit");
        }
        let report = server.flush().expect("replay flush");
        assert!(report.skipped > 0, "replay never hit the idempotence guard");
        collect(&server)
    });
    assert_eq!(recovered, reference, "migrated recovery diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
