//! Shed-policy accounting: under bounded queues, **every submitted event
//! is either applied or explicitly accounted** — rejected back to the
//! caller, shed with a count, or skipped by the replay guard. No policy,
//! shard count, queue cap, flush cadence, or thread count may lose an
//! event silently, and the full report must be bit-identical at
//! `TDN_THREADS` 1 and 4.

use proptest::prelude::*;
use tdn::prelude::*;

type Fingerprint = (TenantId, Option<Time>, Solution);

/// Drives one scenario and returns the aggregate report plus the final
/// per-tenant fingerprints.
fn run_scenario(
    shards: usize,
    cap: usize,
    policy: ShedPolicy,
    spec: &[(u8, u8, u8)],
    flush_every: usize,
) -> (FlushReport, u64, Vec<Fingerprint>) {
    let cfg =
        ServeConfig::new(shards, TrackerConfig::new(2, 0.25, 6)).with_queue_limit(cap, policy);
    let mut server = Server::<SieveAdnTracker>::new(cfg).expect("config");
    let mut agg = FlushReport::default();
    let mut submitted = 0u64;
    for (i, &(tenant, t, n)) in spec.iter().enumerate() {
        let edges: Vec<TimedEdge> = (0..n)
            .map(|j| {
                TimedEdge::new(
                    (t as u32 + j as u32) % 5,
                    (tenant as u32 + j as u32) % 7 + 10,
                    2,
                )
            })
            .collect();
        submitted += edges.len() as u64;
        match server.submit_batch(tenant as TenantId, t as Time, edges) {
            Ok(()) => {}
            Err(ServeError::Backpressure { edges, .. }) => {
                assert_eq!(
                    policy,
                    ShedPolicy::RejectNewest,
                    "only reject-newest may bounce a batch"
                );
                assert!(!edges.is_empty(), "rejected data must ride back");
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        if (i + 1) % flush_every == 0 {
            agg.merge(&server.flush().expect("flush"));
        }
    }
    agg.merge(&server.flush().expect("final flush"));
    let fingerprints = server
        .tenants()
        .into_iter()
        .map(|tenant| {
            let snap = server.query(tenant).expect("provisioned");
            (tenant, snap.t, snap.solution.clone())
        })
        .collect();
    (agg, submitted, fingerprints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accounting invariant, across shard counts × queue caps ×
    /// both shed policies × flush cadences × thread counts {1, 4}.
    #[test]
    fn every_submitted_event_is_accounted(
        shards in 1usize..5,
        cap in 1usize..4,
        drop_oldest in 0u8..2,
        flush_every in 1usize..8,
        spec in prop::collection::vec((0u8..6, 0u8..6, 1u8..4), 1..60),
    ) {
        let policy = if drop_oldest == 1 {
            ShedPolicy::DropOldest
        } else {
            ShedPolicy::RejectNewest
        };
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let run = exec::with_threads(threads, || {
                run_scenario(shards, cap, policy, &spec, flush_every)
            });
            let (report, submitted, _) = &run;
            // Lossless-or-accounted: applied + every explicit exit path
            // must cover exactly what was submitted (queues are empty
            // after the final flush).
            prop_assert_eq!(
                *submitted,
                report.events
                    + report.skipped_events
                    + report.shed_events
                    + report.rejected_events,
                "threads={} report={:?}",
                threads,
                report
            );
            // No fault plan here: nothing may panic or quarantine.
            prop_assert_eq!(report.panics, 0);
            prop_assert_eq!(report.quarantined_events, 0);
            // Policies never cross: reject-newest sheds nothing, drop-
            // oldest rejects nothing.
            match policy {
                ShedPolicy::RejectNewest => prop_assert_eq!(report.shed_events, 0),
                ShedPolicy::DropOldest => prop_assert_eq!(report.rejected_events, 0),
            }
            runs.push(run);
        }
        // Thread count must be invisible: identical reports and states.
        prop_assert_eq!(&runs[0], &runs[1]);
    }

    /// An unbounded queue (cap = 0) never rejects or sheds, regardless
    /// of policy — the bound is the only trigger.
    #[test]
    fn unbounded_queues_never_shed(
        shards in 1usize..4,
        drop_oldest in 0u8..2,
        spec in prop::collection::vec((0u8..5, 0u8..5, 1u8..4), 1..40),
    ) {
        let policy = if drop_oldest == 1 {
            ShedPolicy::DropOldest
        } else {
            ShedPolicy::RejectNewest
        };
        let (report, submitted, _) = run_scenario(shards, 0, policy, &spec, 9);
        prop_assert_eq!(report.shed_events, 0);
        prop_assert_eq!(report.rejected_events, 0);
        prop_assert_eq!(submitted, report.events + report.skipped_events);
    }
}
