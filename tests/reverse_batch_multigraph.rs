//! Differential test: the wide bit-parallel reverse traversal
//! ([`reverse_reach_batch_wide`]) against the scalar reference
//! ([`reverse_reach_collect`]) on *multigraphs with self-loops* —
//! adjacency shapes the production graphs never store (both `AdnGraph`
//! and `TdnGraph` reject self-loops and deduplicate at insert) but that
//! the traversal contract explicitly permits: `for_each_out` /
//! `for_each_in` may yield duplicates, and callers must stay correct via
//! visited marks, not input hygiene.
//!
//! A self-loop is the sharpest probe for frontier logic (a node that is
//! its own predecessor must not re-enter the frontier or double-set its
//! lane bits), and duplicate edges are the sharpest probe for bottom-up
//! pulls (the same neighbor consulted several times in one round). Both
//! sweep directions and every supported lane width are swept.

use proptest::prelude::*;
use tdn::graph::{
    reverse_reach_batch_wide, reverse_reach_collect, InGraph, NodeBitSet, NodeId, OutGraph,
    ReachScratch, SweepDirection,
};

/// A raw edge-list multigraph: stores edges exactly as given — self-loops
/// and duplicates included — and replays them verbatim from both ends.
#[derive(Default)]
struct MultiGraph {
    /// Out-adjacency, duplicates preserved.
    out: Vec<Vec<NodeId>>,
    /// In-adjacency, duplicates preserved.
    inn: Vec<Vec<NodeId>>,
    /// Nodes with at least one incident edge.
    present: Vec<bool>,
}

impl MultiGraph {
    fn from_edges(n: usize, edges: &[(u8, u8)]) -> Self {
        let mut g = MultiGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            present: vec![false; n],
        };
        for &(u, v) in edges {
            let (u, v) = (u as usize % n, v as usize % n);
            g.out[u].push(NodeId(v as u32));
            g.inn[v].push(NodeId(u as u32));
            g.present[u] = true;
            g.present[v] = true;
        }
        g
    }

    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| NodeId(i as u32))
    }
}

impl OutGraph for MultiGraph {
    fn for_each_out(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &v in &self.out[u.index()] {
            f(v);
        }
    }
    fn node_index_bound(&self) -> usize {
        self.out.len()
    }
    fn contains_node(&self, u: NodeId) -> bool {
        self.present[u.index()]
    }
    fn live_node_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }
}

impl InGraph for MultiGraph {
    fn for_each_in(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for &u in &self.inn[v.index()] {
            f(u);
        }
    }
}

/// Wide traversal from every present node (one lane each, chunked to the
/// requested width), decoded into per-root member sets.
fn wide_members(g: &MultiGraph, words: usize) -> Vec<(NodeId, NodeBitSet)> {
    let roots: Vec<NodeId> = g.nodes().collect();
    let mut result: Vec<(NodeId, NodeBitSet)> =
        roots.iter().map(|&r| (r, NodeBitSet::new())).collect();
    let mut scratch = ReachScratch::new();
    for (chunk_idx, chunk) in roots.chunks(words * 64).enumerate() {
        let lanes: Vec<&[NodeId]> = chunk.iter().map(std::slice::from_ref).collect();
        for dir in [SweepDirection::TopDown, SweepDirection::Auto] {
            let mut members: Vec<NodeBitSet> = chunk.iter().map(|_| NodeBitSet::new()).collect();
            reverse_reach_batch_wide(g, &lanes, words, dir, &mut scratch, |n, mask| {
                for (lane, set) in members.iter_mut().enumerate() {
                    if mask[lane / 64] >> (lane % 64) & 1 == 1 {
                        set.insert(n);
                    }
                }
            });
            for (lane, set) in members.into_iter().enumerate() {
                let slot = &mut result[chunk_idx * words * 64 + lane];
                if slot.1.is_empty() {
                    slot.1 = set;
                } else {
                    // Second direction: must agree with the first.
                    assert_eq!(
                        slot.1.iter().collect::<Vec<_>>(),
                        set.iter().collect::<Vec<_>>(),
                        "sweep directions disagree for root {:?}",
                        slot.0
                    );
                }
            }
        }
    }
    result
}

fn check_against_scalar(n: usize, edges: &[(u8, u8)]) -> Result<(), TestCaseError> {
    let g = MultiGraph::from_edges(n, edges);
    let mut scratch = ReachScratch::new();
    let mut scalar = Vec::new();
    for words in [1usize, 2, 4] {
        for (root, wide) in wide_members(&g, words) {
            scalar.clear();
            reverse_reach_collect(&g, root, &mut scratch, &mut scalar);
            let mut scalar_sorted: Vec<u32> = scalar.iter().map(|n| n.0).collect();
            scalar_sorted.sort_unstable();
            let wide_sorted: Vec<u32> = wide.iter().map(|n| n.0).collect();
            prop_assert_eq!(
                wide_sorted,
                scalar_sorted,
                "wide ({} words) disagrees with scalar at root {:?}",
                words,
                root
            );
        }
    }
    Ok(())
}

/// Dense little multigraphs where every node carries a self-loop on top
/// of random (frequently duplicated) edges.
fn looped_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..10), 1..60).prop_map(|mut evs| {
        for i in 0..10 {
            evs.push((i, i)); // guarantee self-loops everywhere
        }
        evs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wide_matches_scalar_on_self_loops_and_duplicates(evs in looped_edges()) {
        check_against_scalar(10, &evs)?;
    }
}

/// Deterministic worst-case shapes: pure self-loop graphs, a duplicated
/// cycle, and a diamond whose every edge is tripled.
#[test]
fn wide_matches_scalar_on_adversarial_multigraphs() {
    // Isolated self-loops only: reach sets are singletons.
    check_against_scalar(6, &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]).unwrap();
    // A 4-cycle with every edge duplicated and a self-loop on each node.
    let mut cyc = Vec::new();
    for (u, v) in [(0u8, 1u8), (1, 2), (2, 3), (3, 0)] {
        cyc.extend([(u, v); 2]);
    }
    cyc.extend((0..4).map(|i| (i, i)));
    check_against_scalar(4, &cyc).unwrap();
    // Tripled diamond 0 -> {1,2} -> 3 plus a self-loop at the sink.
    let mut dia = Vec::new();
    for (u, v) in [(0u8, 1u8), (0, 2), (1, 3), (2, 3)] {
        dia.extend([(u, v); 3]);
    }
    dia.push((3, 3));
    check_against_scalar(4, &dia).unwrap();
}
