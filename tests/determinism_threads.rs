//! Determinism suite for the parallel execution engine: at any
//! `TDN_THREADS` setting every tracker must produce **bit-identical**
//! per-step solutions *and* identical oracle-call tallies, because the
//! engine only parallelizes over independent instances/thresholds/nodes —
//! never over order-sensitive state (DESIGN.md "Concurrency architecture").
//!
//! These are property tests over randomized schedules; the thread count is
//! pinned per replay with `exec::with_threads` (a thread-local override),
//! so concurrently running test threads cannot disturb each other.

use proptest::prelude::*;
use tdn::prelude::*;

/// One scheduled edge: (step, src, dst, lifetime).
type Ev = (u8, u8, u8, u8);

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec((0u8..16, 0u8..12, 0u8..12, 1u8..10), 1..70)
}

/// Replays `evs` through a fresh tracker with the engine pinned to
/// `threads`, returning every step's solution and the final oracle tally.
fn replay<T: InfluenceTracker>(
    mk: impl Fn() -> T,
    evs: &[Ev],
    threads: usize,
) -> (Vec<Solution>, u64) {
    exec::with_threads(threads, || {
        let mut tracker = mk();
        let max_t = evs.iter().map(|e| e.0).max().unwrap_or(0) as Time;
        let mut sols = Vec::new();
        for t in 0..=max_t {
            let batch: Vec<TimedEdge> = evs
                .iter()
                .filter(|e| e.0 as Time == t && e.1 != e.2)
                .map(|e| TimedEdge::new(e.1 as u32, e.2 as u32, e.3 as Lifetime))
                .collect();
            sols.push(tracker.step(t, &batch));
        }
        (sols, tracker.oracle_calls())
    })
}

/// Asserts 2- and 4-thread replays equal the serial replay exactly.
fn assert_thread_invariant<T: InfluenceTracker>(
    mk: impl Fn() -> T,
    evs: &[Ev],
) -> Result<(), TestCaseError> {
    let reference = replay(&mk, evs, 1);
    for threads in [2usize, 4] {
        let got = replay(&mk, evs, threads);
        prop_assert_eq!(
            &got.0,
            &reference.0,
            "solutions diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            got.1,
            reference.1,
            "oracle-call tally diverged at {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn sieve_adn_is_thread_count_invariant(evs in schedule()) {
        assert_thread_invariant(
            || SieveAdnTracker::new(&TrackerConfig::new(3, 0.2, 8)),
            &evs,
        )?;
    }

    #[test]
    fn basic_reduction_is_thread_count_invariant(evs in schedule()) {
        assert_thread_invariant(
            || BasicReduction::new(&TrackerConfig::new(3, 0.2, 8)),
            &evs,
        )?;
    }

    #[test]
    fn hist_approx_is_thread_count_invariant(evs in schedule()) {
        assert_thread_invariant(
            || HistApprox::new(&TrackerConfig::new(3, 0.2, 8)),
            &evs,
        )?;
    }

    #[test]
    fn hist_approx_refeed_is_thread_count_invariant(evs in schedule()) {
        assert_thread_invariant(
            || HistApprox::new(&TrackerConfig::new(2, 0.15, 10)).with_refeed(),
            &evs,
        )?;
    }
}

/// Fixed-seed smoke check exercising a larger horizon than the property
/// cases, including bursts (many edges per tick) so every parallel phase
/// sees multi-chunk fan-out.
#[test]
fn bursty_stream_is_thread_count_invariant() {
    let mut state = 0x0D15_EA5E_u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    let mut evs: Vec<Ev> = Vec::new();
    for t in 0..24u8 {
        for _ in 0..(4 + rnd(12)) {
            evs.push((t, rnd(30) as u8, rnd(30) as u8, 1 + rnd(12) as u8));
        }
    }
    let mk = || HistApprox::new(&TrackerConfig::new(5, 0.2, 12));
    let reference = replay(mk, &evs, 1);
    assert!(reference.1 > 0, "workload must exercise the oracle");
    for threads in [2usize, 3, 4, 8] {
        assert_eq!(replay(mk, &evs, threads), reference, "threads = {threads}");
    }
}
