//! Fast, non-cryptographic hashing for integer-keyed maps.
//!
//! Graph adjacency and cover sets are keyed by dense `u32`/`u64` values, so
//! the default SipHash is wasted work. This is the well-known Fx (Firefox)
//! multiply-rotate hash, implemented in-tree to keep the dependency set to
//! the approved crates only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FNV/Firefox hash family.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for small keys (integers, short tuples).
///
/// Not HashDoS-resistant; node identifiers here are internally assigned and
/// never attacker-controlled.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_differently() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not perfect but must not collapse small integers.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&21), Some(&42));
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn byte_writes_match_length_prefixed_semantics() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh12");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh12");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"abcdefgh13");
        assert_ne!(a.finish(), c.finish());
    }
}
