//! Epoch-stamped node sets with O(1) clear.
//!
//! Dirty-set tracking (which nodes' reachability may have changed since the
//! last batch) and batched-eviction sweeps both need a set over dense node
//! indices that is cleared once per batch. Zeroing a bitmap per batch would
//! cost O(n); an [`EpochSet`] instead stamps members with the current epoch
//! and clears by bumping it, exactly like [`crate::reach::ReachScratch`]'s
//! visited array. Membership order is recorded explicitly so consumers that
//! replay the set (e.g. compaction sweeps, dirty-set snapshots) observe a
//! deterministic first-insertion order.

use crate::node::NodeId;

/// A set of node ids with O(1) `clear`, O(1) `insert`/`contains`, and
/// deterministic (first-insertion) iteration order.
#[derive(Clone, Debug, Default)]
pub struct EpochSet {
    stamp: Vec<u32>,
    epoch: u32,
    members: Vec<NodeId>,
}

impl EpochSet {
    /// Creates an empty set; the stamp array grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members in first-insertion order.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `n` is a member.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.stamp
            .get(n.index())
            .is_some_and(|&s| s == self.epoch && self.epoch != 0)
    }

    /// Inserts `n`, growing the stamp array if needed. Returns `true` if
    /// the node was not already a member.
    pub fn insert(&mut self, n: NodeId) -> bool {
        if self.epoch == 0 {
            // Epoch 0 is the "never stamped" sentinel; the first insert
            // after construction or a wrap moves off it.
            self.epoch = 1;
        }
        if self.stamp.len() <= n.index() {
            self.stamp.resize(n.index() + 1, 0);
        }
        let slot = &mut self.stamp[n.index()];
        if *slot == self.epoch {
            return false;
        }
        *slot = self.epoch;
        self.members.push(n);
        true
    }

    /// Clears the set in O(1) (plus the member list truncation).
    pub fn clear(&mut self) {
        self.members.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset all stamps so stale marks cannot
            // alias a future epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Clears the set and returns the members it held, in first-insertion
    /// order.
    pub fn drain(&mut self) -> Vec<NodeId> {
        let out = std::mem::take(&mut self.members);
        self.clear();
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.members.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Serializes the member list (order verbatim) for checkpointing.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_len(self.members.len());
        for n in &self.members {
            w.put_u32(n.0);
        }
    }

    /// Reconstructs a set from [`Self::write_snapshot`] bytes. `bound` is
    /// the enclosing structure's node-index bound; members outside it, or
    /// duplicated, are typed errors.
    pub fn read_snapshot(r: &mut codec::Reader<'_>, bound: usize) -> codec::Result<Self> {
        let n = r.get_len(4)?;
        let mut set = EpochSet::new();
        for _ in 0..n {
            let node = NodeId(r.get_u32()?);
            if node.index() >= bound {
                return Err(codec::CodecError::Invalid(
                    "EpochSet member outside node bound",
                ));
            }
            if !set.insert(node) {
                return Err(codec::CodecError::Invalid("duplicate EpochSet member"));
            }
        }
        Ok(set)
    }

    /// Serializes the member list as one raw `u32` word run (order
    /// verbatim) — the sectioned-save fast path.
    pub fn write_snapshot_raw(&self, w: &mut codec::Writer) {
        let members: Vec<u32> = self.members.iter().map(|n| n.0).collect();
        w.put_u32_run(&members);
    }

    /// Reconstructs a set from [`Self::write_snapshot_raw`] bytes with the
    /// same bound/duplicate validation as [`Self::read_snapshot`].
    pub fn read_snapshot_raw(r: &mut codec::Reader<'_>, bound: usize) -> codec::Result<Self> {
        let members = r.get_u32_run()?;
        let mut set = EpochSet::new();
        for &raw in &members {
            let node = NodeId(raw);
            if node.index() >= bound {
                return Err(codec::CodecError::Invalid(
                    "EpochSet member outside node bound",
                ));
            }
            if !set.insert(node) {
                return Err(codec::CodecError::Invalid("duplicate EpochSet member"));
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut s = EpochSet::new();
        assert!(!s.contains(NodeId(3)));
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)), "double insert is a no-op");
        assert!(s.insert(NodeId(0)));
        assert_eq!(s.members(), &[NodeId(3), NodeId(0)]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(3)), "clear forgets members");
        assert!(s.insert(NodeId(3)), "members can return after clear");
    }

    #[test]
    fn drain_returns_insertion_order() {
        let mut s = EpochSet::new();
        for i in [5u32, 1, 9, 1, 5] {
            s.insert(NodeId(i));
        }
        assert_eq!(s.drain(), vec![NodeId(5), NodeId(1), NodeId(9)]);
        assert!(s.is_empty());
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = EpochSet::new();
        s.insert(NodeId(2));
        s.epoch = u32::MAX;
        s.clear(); // wraps to 0 -> full reset to 1
        assert!(!s.contains(NodeId(2)));
        assert!(s.insert(NodeId(2)));
        assert!(s.contains(NodeId(2)));
    }

    #[test]
    fn snapshot_round_trip_keeps_order_and_rejects_corruption() {
        let mut s = EpochSet::new();
        for i in [7u32, 2, 4] {
            s.insert(NodeId(i));
        }
        let mut w = codec::Writer::new();
        s.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let back = EpochSet::read_snapshot(&mut r, 8).expect("round trip");
        r.finish().expect("fully consumed");
        assert_eq!(back.members(), s.members());
        assert!(back.contains(NodeId(4)));
        // Out-of-bound member.
        let mut r = codec::Reader::new(&bytes);
        assert!(EpochSet::read_snapshot(&mut r, 7).is_err());
        // Every truncation errors.
        for cut in 0..bytes.len() {
            let mut r = codec::Reader::new(&bytes[..cut]);
            let res = EpochSet::read_snapshot(&mut r, 8).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
