//! # tdn-graph
//!
//! Graph substrate for *Tracking Influential Nodes in Time-Decaying Dynamic
//! Interaction Networks* (Zhao et al., ICDE 2019).
//!
//! This crate provides the two graph flavors the paper's algorithms operate
//! on, plus the reachability machinery that implements the influence-spread
//! oracle of Definition 3:
//!
//! * [`adn::AdnGraph`] — the append-only (addition-only) network each
//!   SIEVEADN instance accumulates (Example 3);
//! * [`tdn::TdnGraph`] — the live time-decaying network `G_t` with
//!   lifetime-bucketed expiry (§II-B), used by the recompute baselines and
//!   by HISTAPPROX's instance-creation range queries;
//! * [`arena::AdjPool`] — paged CSR-style adjacency arena backing both
//!   graphs: every neighbor list is a power-of-two block inside one
//!   contiguous buffer, with per-size-class block recycling;
//! * [`bitset::NodeBitSet`] — dense `u64`-word node set backing
//!   [`reach::CoverSet`];
//! * [`reach`] — BFS reachability with reusable scratch (pooled per worker
//!   for parallel callers), incremental cover sets, pruned marginal-gain
//!   evaluation, and 64-lane bit-parallel multi-source traversals
//!   ([`reach::reverse_reach_batch64`], [`reach::reach_count_batch64`]);
//! * [`sketch`] — reverse-reachable sketch pool: a bounded-error spread
//!   estimator with an explicit (ε, δ) budget, maintained deterministically
//!   under both edge inserts and time-decay expiry;
//! * [`publish`] — epoch-swapped `Arc` snapshot publication, the
//!   never-blocks-ingest read path of the serving layer;
//! * [`hash`] — in-tree Fx hashing so hot maps avoid SipHash;
//! * [`indexed_set::IndexedSet`] — O(1) sampleable live-node set;
//! * [`analysis`] — offline SCC condensation + exact all-node spreads
//!   (an independent oracle for tests and workload diagnostics).
//!
//! Every state-bearing type ([`adn::AdnGraph`], [`tdn::TdnGraph`],
//! [`indexed_set::IndexedSet`], [`reach::CoverSet`],
//! [`node::NodeInterner`]) exposes `write_snapshot`/`read_snapshot`
//! methods over the `codec` byte format — the building blocks of the
//! `tdn-persist` checkpoint layer. Order-sensitive structures (adjacency
//! lists, expiry buckets, the live-node set) serialize **verbatim** so a
//! restored tracker replays bit-identically; see
//! `DESIGN.md § Persistence & recovery`.

#![warn(missing_docs)]

pub mod adn;
pub mod analysis;
pub mod arena;
pub mod bitset;
pub mod epoch;
pub mod hash;
pub mod indexed_set;
pub mod node;
pub mod publish;
pub mod reach;
pub mod sketch;
pub mod tdn;
pub mod traits;

pub use adn::{AdnGraph, EdgeInsert};
pub use analysis::{condense, Condensation};
pub use arena::AdjPool;
pub use bitset::NodeBitSet;
pub use epoch::EpochSet;
pub use hash::{FxHashMap, FxHashSet};
pub use indexed_set::IndexedSet;
pub use node::{pack_pair, unpack_pair, Lifetime, NodeId, NodeInterner, Time};
pub use publish::Published;
pub use reach::{
    bottom_up_sweeps, extend_cover, lane_chunks, lane_width_for, marginal_gain, reach_collect,
    reach_count, reach_count_batch, reach_count_batch64, reach_count_batch_wide,
    reverse_reach_batch, reverse_reach_batch64, reverse_reach_batch_wide, reverse_reach_collect,
    reverse_reach_excluding, reverse_reach_multi_collect, reverse_reach_union_ordered,
    reverse_reachable_within, CoverSet, ReachScratch, ScratchPool, SpreadMemo, SpreadStats,
    SpreadStatsSnapshot, SweepDirection, BATCH_LANES, MAX_BATCH_LANES,
};
pub use sketch::{SketchParams, SketchPool};
pub use tdn::{LiveEdge, TdnGraph};
pub use traits::{InGraph, OutGraph};
