//! Epoch-swapped snapshot publication: the read side of a serving layer.
//!
//! A shard worker that just finished a step wants to make its new
//! solution visible to query threads without ever making a reader wait
//! on ingest (or ingest wait on readers). [`Published`] is the smallest
//! cell with that property: writers [`publish`](Published::publish) an
//! immutable value behind an `Arc`, readers [`load`](Published::load) a
//! clone of the current `Arc`. Both operations are O(1) with a critical
//! section that only swaps/clones a pointer — no reader ever observes a
//! torn value, holds up a writer for longer than the swap, or blocks a
//! subsequent reader, and a reader keeping an old snapshot alive merely
//! delays that one allocation's drop.
//!
//! An [`epoch`](Published::epoch) counter increments on every publish so
//! pollers can cheaply detect staleness ("has anything changed since I
//! last looked?") without loading and comparing payloads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable immutable snapshot slot. See the module docs.
pub struct Published<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> Published<T> {
    /// Creates the cell holding `initial` at epoch 0.
    pub fn new(initial: T) -> Self {
        Published {
            slot: Mutex::new(Arc::new(initial)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot, replacing the current one and bumping
    /// the epoch. Readers holding the previous `Arc` are unaffected.
    pub fn publish(&self, value: T) {
        let next = Arc::new(value);
        {
            let mut slot = self.slot.lock().expect("publish slot poisoned");
            *slot = next;
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Returns the current snapshot. Never blocks on a writer for longer
    /// than the pointer swap.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("publish slot poisoned").clone()
    }

    /// Number of publishes so far (0 = still the initial value). Pairs
    /// with [`load`](Self::load) for cheap change detection; the epoch is
    /// bumped *after* the new value is visible, so observing epoch `e`
    /// then loading yields a snapshot at least as new as publish `e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

impl<T: Default> Default for Published<T> {
    fn default() -> Self {
        Published::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn publish_and_load_round_trip() {
        let cell = Published::new(vec![1u32]);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), vec![1]);
        cell.publish(vec![2, 3]);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), vec![2, 3]);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let cell = Published::new(String::from("a"));
        let old = cell.load();
        cell.publish(String::from("b"));
        assert_eq!(*old, "a");
        assert_eq!(*cell.load(), "b");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_values() {
        // Writer publishes (i, i) pairs; readers must only ever see
        // matching components. A torn read or a blocked reader turns
        // into a failed assertion / a hung test.
        let cell = Arc::new(Published::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    assert_eq!(snap.0, snap.1, "torn snapshot");
                    assert!(snap.0 >= last, "snapshot went backwards");
                    last = snap.0;
                }
            }));
        }
        for i in 1..=10_000u64 {
            cell.publish((i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.epoch(), 10_000);
    }
}
