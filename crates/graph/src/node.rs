//! Node identifiers, discrete time, and optional name interning.

use crate::hash::FxHashMap;
use std::fmt;

/// Discrete time step (Definition 2 of the paper uses `τ = 1, 2, …`).
pub type Time = u64;

/// Remaining or assigned lifetime of an edge, in time steps.
///
/// The paper bounds lifetimes by `L`; [`Lifetime::MAX`] models the
/// addition-only (ADN) case of Example 3.
pub type Lifetime = u32;

/// A compact node identifier.
///
/// Nodes are interned to dense `u32`s so adjacency can be indexed by vectors
/// and hashed cheaply.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Packs an ordered node pair into a single `u64` key (for dedup sets and
/// multiplicity counters).
#[inline]
pub fn pack_pair(u: NodeId, v: NodeId) -> u64 {
    ((u.0 as u64) << 32) | v.0 as u64
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(key: u64) -> (NodeId, NodeId) {
    (NodeId((key >> 32) as u32), NodeId(key as u32))
}

/// Bidirectional mapping between external entity names and [`NodeId`]s.
///
/// Generators usually mint dense ids directly; the interner is for examples
/// and applications that ingest named entities (user handles, place names).
#[derive(Default, Clone)]
pub struct NodeInterner {
    names: Vec<String>,
    ids: FxHashMap<String, NodeId>,
}

impl NodeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, minting a new one if unseen.
    pub fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.ids.get(name).copied()
    }

    /// Returns the name for an id minted by this interner.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Serializes the interner for checkpointing. Only the dense name table
    /// is written; the reverse map is rebuilt on restore. Id assignment is
    /// positional, so the round trip preserves every minted [`NodeId`].
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_len(self.names.len());
        for name in &self.names {
            w.put_str(name);
        }
    }

    /// Reconstructs an interner from [`Self::write_snapshot`] bytes.
    /// Duplicate names are rejected as corruption (they would alias ids).
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let len = r.get_len(1)?;
        let mut it = NodeInterner::new();
        for i in 0..len {
            let name = r.get_str()?;
            if it.intern(name).index() != i {
                return Err(codec::CodecError::Invalid("duplicate interned name"));
            }
        }
        Ok(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let mut it = NodeInterner::new();
        let a = it.intern("alice");
        let b = it.intern("bob");
        let a2 = it.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(it.name(a), Some("alice"));
        assert_eq!(it.get("bob"), Some(b));
        assert_eq!(it.get("carol"), None);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn pair_packing_round_trips() {
        let u = NodeId(7);
        let v = NodeId(u32::MAX - 3);
        let key = pack_pair(u, v);
        assert_eq!(unpack_pair(key), (u, v));
        assert_ne!(pack_pair(u, v), pack_pair(v, u));
    }
}
