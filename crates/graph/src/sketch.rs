//! Reverse-reachable sketch pool: a bounded-error influence-spread
//! estimator maintained incrementally under edge inserts *and* time-decay
//! expiry.
//!
//! Adapted from the static RR-set machinery of the TIM/IMM baselines
//! (`tdn-baselines`) to the deterministic-reachability oracle of Zhao et
//! al. (Definition 3): sketch `i` stores the **exact** reverse-reachable
//! set of a uniformly random root `r_i`, so
//!
//! ```text
//! P[v ∈ sketch_i] = |reach(v)| / n        (roots uniform over n nodes)
//! est(v) = n · |{i : v ∈ sketch_i}| / m   (m = pool size)
//! ```
//!
//! is an unbiased estimator of the spread `f({v}) = |reach(v)|`, and by
//! Hoeffding's inequality `m = ⌈ln(2/δ) / (2ε²)⌉` sketches bound each
//! estimate's error by `ε·n` with probability at least `1 − δ` (see
//! DESIGN.md § Sketch-based spread estimation).
//!
//! Determinism is load-bearing: every random decision (root draws and
//! redraws) happens in a **serial** phase on a per-pool xoshiro256++
//! stream whose per-sketch states are checkpointed verbatim, while the
//! parallel phases (set rebuilds and extensions) are pure reachability —
//! so pool state, and therefore every estimate, is bit-identical across
//! `TDN_THREADS` values and across checkpoint/restore.
//!
//! Two maintenance entry points mirror the two ways a time-decaying
//! network changes:
//!
//! * [`SketchPool::absorb_batch`] — edge inserts (the ADN case). Grows
//!   the root universe by reservoir redraws (roots stay exactly uniform),
//!   then extends each sketch along the fresh edges by pruned reverse BFS.
//! * [`SketchPool::apply_expiry`] — edge/node expiry (the TDN case).
//!   Compacts the universe to live nodes, redraws the roots that died
//!   (uniformly over survivors — survivors stay uniform by symmetry), and
//!   rebuilds exactly the sketches an expired edge could have touched,
//!   driven by [`crate::tdn::TdnGraph`]'s dirty-node tracking.

use crate::bitset::NodeBitSet;
use crate::node::NodeId;
use crate::traits::{InGraph, OutGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The (ε, δ) error budget and seed of a [`SketchPool`].
///
/// Stored in fixed-point parts-per-million so the type is `Copy + Eq +
/// Hash`-able and serializes without float-representation hazards; the
/// checkpoint format writes the ppm words verbatim.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SketchParams {
    /// Additive error bound as a fraction of the node universe, in ppm
    /// (`250_000` = ε 0.25). Estimates are within `ε·n` w.p. ≥ 1 − δ.
    pub eps_ppm: u32,
    /// Per-estimate failure probability δ, in ppm.
    pub delta_ppm: u32,
    /// Pool seed; sketch `i` draws from an independent stream keyed by
    /// `(seed, i)`.
    pub seed: u64,
}

impl SketchParams {
    /// Builds params from float ε and δ (both must lie in `(0, 1)`).
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0,
            "sketch params need 0 < eps,delta < 1 (got eps={epsilon}, delta={delta})"
        );
        SketchParams {
            eps_ppm: (epsilon * 1e6).round() as u32,
            delta_ppm: (delta * 1e6).round() as u32,
            seed,
        }
    }

    /// ε as a float.
    pub fn epsilon(&self) -> f64 {
        self.eps_ppm as f64 / 1e6
    }

    /// δ as a float.
    pub fn delta(&self) -> f64 {
        self.delta_ppm as f64 / 1e6
    }

    /// Hoeffding pool size: `m = ⌈ln(2/δ) / (2ε²)⌉`, the smallest m with
    /// `2·exp(−2mε²) ≤ δ`.
    pub fn pool_size(&self) -> usize {
        let eps = self.epsilon();
        let delta = self.delta();
        ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
    }

    /// The additive error envelope `ε·n` for a universe of `n` nodes.
    pub fn error_bound(&self, universe: usize) -> f64 {
        self.epsilon() * universe as f64
    }

    /// Serializes the params (ppm words + seed, 16 bytes of payload).
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_u32(self.eps_ppm);
        w.put_u32(self.delta_ppm);
        w.put_u64(self.seed);
    }

    /// Reads params written by [`Self::write_snapshot`].
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let eps_ppm = r.get_u32()?;
        let delta_ppm = r.get_u32()?;
        let seed = r.get_u64()?;
        if eps_ppm == 0 || eps_ppm >= 1_000_000 || delta_ppm == 0 || delta_ppm >= 1_000_000 {
            return Err(codec::CodecError::Invalid(
                "sketch params eps/delta out of (0, 1)",
            ));
        }
        Ok(SketchParams {
            eps_ppm,
            delta_ppm,
            seed,
        })
    }
}

/// Root sentinel of a sketch whose universe is still empty.
const NO_ROOT: NodeId = NodeId(u32::MAX);

/// A pool of `m` reverse-reachable sketches over a growing / decaying
/// node universe. See the module docs for the estimator and determinism
/// contracts.
#[derive(Clone, Debug)]
pub struct SketchPool {
    params: SketchParams,
    /// Per-sketch root (`NO_ROOT` until the universe is non-empty).
    roots: Vec<NodeId>,
    /// Per-sketch xoshiro256++ state, advanced only in serial phases.
    rngs: Vec<[u64; 4]>,
    /// Per-sketch member set: exactly the nodes that reach the root.
    members: Vec<NodeBitSet>,
    /// `counts[v] = |{i : v ∈ members[i]}|`, the estimator numerator.
    counts: Vec<u32>,
    /// Root universe in first-absorption order (deterministic; never a
    /// hash-set iteration).
    universe: Vec<NodeId>,
    in_universe: NodeBitSet,
}

/// Per-sketch unit of the parallel maintenance phase: either a full
/// rebuild from `root` or an extension along the batch edges. Pure
/// reachability — all RNG decisions were taken serially beforehand.
struct SketchTask {
    /// `Some(root)` ⇒ rebuild from scratch; `None` ⇒ extend along edges.
    rebuild: Option<NodeId>,
    members: NodeBitSet,
    /// Nodes inserted by this task, for the serial count merge.
    added: Vec<NodeId>,
}

impl SketchPool {
    /// Creates an empty pool of `params.pool_size()` sketches. Roots are
    /// drawn as the universe grows ([`Self::absorb_batch`]).
    pub fn new(params: SketchParams) -> Self {
        let m = params.pool_size();
        let rngs = (0..m)
            .map(|i| {
                // Independent streams: seed_from_u64 runs SplitMix64, so
                // mixing the index in is enough to decorrelate them.
                let key = params
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                StdRng::seed_from_u64(key).state()
            })
            .collect();
        SketchPool {
            params,
            roots: vec![NO_ROOT; m],
            rngs,
            members: vec![NodeBitSet::new(); m],
            counts: Vec::new(),
            universe: Vec::new(),
            in_universe: NodeBitSet::new(),
        }
    }

    /// Creates a pool over a graph that already has nodes: the universe is
    /// initialized in ascending node order (deterministic regardless of
    /// the graph's internal hash ordering) and every sketch draws a root
    /// and builds its set.
    pub fn init_from_graph<G: OutGraph + InGraph + Sync>(
        params: SketchParams,
        g: &G,
        mut nodes: Vec<NodeId>,
    ) -> Self {
        let mut pool = SketchPool::new(params);
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return pool;
        }
        for &n in &nodes {
            if pool.in_universe.insert(n) {
                pool.universe.push(n);
            }
        }
        let n_new = pool.universe.len();
        let plans: Vec<Option<NodeId>> = (0..pool.roots.len())
            .map(|i| {
                let mut rng = StdRng::from_state(pool.rngs[i]);
                let root = pool.universe[rng.gen_range(0..n_new)];
                pool.rngs[i] = rng.state();
                Some(root)
            })
            .collect();
        pool.run_tasks(g, &plans, &[]);
        pool
    }

    /// The pool's error budget and seed.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Number of sketches (`m`).
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether the pool holds zero sketches (degenerate params only).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Current root-universe size (`n`).
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// The root universe in absorption order (what estimates normalize
    /// over; conformance harnesses iterate this to compare against the
    /// exact oracle).
    pub fn universe(&self) -> &[NodeId] {
        &self.universe
    }

    /// Sketch `i`'s root (`None` while the universe is empty).
    pub fn root(&self, i: usize) -> Option<NodeId> {
        let r = self.roots[i];
        (r != NO_ROOT).then_some(r)
    }

    /// Sketch `i`'s member set (exactly the nodes that reach its root).
    pub fn members(&self, i: usize) -> &NodeBitSet {
        &self.members[i]
    }

    /// How many sketches contain `v` (the estimator numerator).
    pub fn count(&self, v: NodeId) -> u32 {
        self.counts.get(v.index()).copied().unwrap_or(0)
    }

    /// The spread estimate `est(v) = n · counts[v] / m` as a float.
    pub fn estimate(&self, v: NodeId) -> f64 {
        if self.roots.is_empty() {
            return 0.0;
        }
        self.count(v) as f64 * self.universe.len() as f64 / self.roots.len() as f64
    }

    /// The spread estimate rounded half-up to an integer, computed in
    /// exact integer arithmetic (what the sieve ladder consumes).
    pub fn estimate_rounded(&self, v: NodeId) -> u64 {
        let m = self.roots.len() as u128;
        if m == 0 {
            return 0;
        }
        let num = self.count(v) as u128 * self.universe.len() as u128;
        ((num + m / 2) / m) as u64
    }

    /// Absorbs a batch of freshly inserted edges: grows the universe from
    /// the batch endpoints (reservoir root redraws keep roots exactly
    /// uniform over the grown universe), then brings every sketch to its
    /// exact post-batch reverse-reachable set.
    ///
    /// `fresh` must be the edges actually inserted this batch (duplicates
    /// the graph rejected excluded), in insertion order; `g` must already
    /// contain them all.
    pub fn absorb_batch<G: OutGraph + InGraph + Sync>(
        &mut self,
        g: &G,
        fresh: &[(NodeId, NodeId)],
    ) {
        let n_old = self.universe.len();
        for &(u, v) in fresh {
            for n in [u, v] {
                if self.in_universe.insert(n) {
                    self.universe.push(n);
                }
            }
        }
        let n_new = self.universe.len();
        if n_new == 0 || self.roots.is_empty() {
            return;
        }
        // Serial RNG phase: reservoir redraw. Growing n_old → n_new keeps
        // each root uniform iff it moves to a uniformly chosen new node
        // with probability (n_new − n_old)/n_new.
        let plans: Vec<Option<NodeId>> = (0..self.roots.len())
            .map(|i| {
                if n_new == n_old {
                    return None;
                }
                let mut rng = StdRng::from_state(self.rngs[i]);
                let plan = if n_old == 0 {
                    Some(self.universe[rng.gen_range(0..n_new)])
                } else {
                    let p_new = (n_new - n_old) as f64 / n_new as f64;
                    rng.gen_bool(p_new)
                        .then(|| self.universe[rng.gen_range(n_old..n_new)])
                };
                self.rngs[i] = rng.state();
                plan
            })
            .collect();
        self.run_tasks(g, &plans, fresh);
    }

    /// Repairs the pool after time-decay expiry removed edges (and
    /// possibly nodes) from `g`. `affected` must cover every endpoint of
    /// every removed edge — [`crate::tdn::TdnGraph::take_dirty`] under
    /// dirty tracking is exactly that set.
    ///
    /// The universe compacts to live nodes; sketches whose root died
    /// redraw uniformly over the survivors (survivor roots are already
    /// uniform over the survivors by symmetry, so roots stay exactly
    /// uniform and estimates stay unbiased); sketches containing an
    /// affected node rebuild from their root on the post-expiry graph.
    pub fn apply_expiry<G: OutGraph + InGraph + Sync>(&mut self, g: &G, affected: &[NodeId]) {
        if self.roots.is_empty() {
            return;
        }
        let dead: Vec<NodeId> = self
            .universe
            .iter()
            .copied()
            .filter(|&n| !g.contains_node(n))
            .collect();
        if dead.is_empty() && affected.is_empty() {
            return;
        }
        for &n in &dead {
            self.in_universe.remove(n);
        }
        self.universe.retain(|&n| g.contains_node(n));
        let n_new = self.universe.len();
        if n_new == 0 {
            for (i, members) in self.members.iter_mut().enumerate() {
                members.clear();
                self.roots[i] = NO_ROOT;
            }
            self.counts.fill(0);
            return;
        }
        // An expired edge (u, v) can only have changed sketches that
        // contained u or v; a conservative membership probe per affected
        // endpoint selects the rebuild set exactly once per sketch.
        let plans: Vec<Option<NodeId>> = (0..self.roots.len())
            .map(|i| {
                if !g.contains_node(self.roots[i]) || self.roots[i] == NO_ROOT {
                    let mut rng = StdRng::from_state(self.rngs[i]);
                    let root = self.universe[rng.gen_range(0..n_new)];
                    self.rngs[i] = rng.state();
                    return Some(root);
                }
                let touched = affected.iter().any(|&n| self.members[i].contains(n))
                    || dead.iter().any(|&n| self.members[i].contains(n));
                touched.then_some(self.roots[i])
            })
            .collect();
        self.run_tasks(g, &plans, &[]);
    }

    /// Shared parallel maintenance phase: per sketch, either rebuild from
    /// the planned root or extend along `fresh`. RNG-free and pure, so the
    /// fan-out is deterministic at any thread count; count merges run
    /// serially in sketch order.
    fn run_tasks<G: OutGraph + InGraph + Sync>(
        &mut self,
        g: &G,
        plans: &[Option<NodeId>],
        fresh: &[(NodeId, NodeId)],
    ) {
        // Decrement counts of rebuilt sketches' old members up front (the
        // parallel phase replaces those sets wholesale).
        for (i, plan) in plans.iter().enumerate() {
            if let Some(root) = plan {
                for n in self.members[i].iter() {
                    self.counts[n.index()] -= 1;
                }
                self.roots[i] = *root;
            }
        }
        let mut tasks: Vec<SketchTask> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| SketchTask {
                rebuild: *plan,
                members: std::mem::take(&mut self.members[i]),
                added: Vec::new(),
            })
            .collect();
        exec::par_for_each_mut(&mut tasks, |task| {
            if let Some(root) = task.rebuild {
                task.members.clear();
                extend_reverse(g, &mut task.members, root, &mut task.added);
            } else if !fresh.is_empty() {
                // A fresh edge (u, v) with v already reaching the root
                // means u (and everything reaching u) now does too. One
                // sequential pass suffices: each BFS explores the *final*
                // graph, so members inserted mid-pass have their fresh
                // in-edges walked on insertion, and pre-batch members'
                // fresh in-edges are exactly the pairs this loop probes.
                for &(u, v) in fresh {
                    if task.members.contains(v) {
                        extend_reverse(g, &mut task.members, u, &mut task.added);
                    }
                }
            }
        });
        let max_index = g.node_index_bound();
        if self.counts.len() < max_index {
            self.counts.resize(max_index, 0);
        }
        for (i, task) in tasks.into_iter().enumerate() {
            self.members[i] = task.members;
            for n in task.added {
                if self.counts.len() <= n.index() {
                    self.counts.resize(n.index() + 1, 0);
                }
                self.counts[n.index()] += 1;
            }
        }
    }

    /// Approximate heap footprint in bytes (memory-budget accounting).
    pub fn approx_bytes(&self) -> usize {
        let sets: usize = self.members.iter().map(|s| s.approx_bytes()).sum();
        sets + self.roots.capacity() * 4
            + self.rngs.capacity() * 32
            + self.counts.capacity() * 4
            + self.universe.capacity() * 4
            + self.in_universe.approx_bytes()
    }

    /// Serializes the pool: params, universe (order verbatim — it drives
    /// reservoir indexing), then per sketch the root, the four RNG state
    /// words, and the member set as raw word runs. Counts are derived
    /// state and recomputed on read.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        self.params.write_snapshot(w);
        let ids: Vec<u32> = self.universe.iter().map(|n| n.0).collect();
        w.put_u32_run(&ids);
        for ((root, rng), members) in self.roots.iter().zip(&self.rngs).zip(&self.members) {
            w.put_u32(root.0);
            for &word in rng {
                w.put_u64(word);
            }
            members.write_snapshot_words(w);
        }
    }

    /// Reconstructs a pool from [`Self::write_snapshot`] bytes. The
    /// sketch count is implied by the params (the formats agree iff the
    /// producer used the same Hoeffding sizing).
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let params = SketchParams::read_snapshot(r)?;
        let m = params.pool_size();
        let ids = r.get_u32_run()?;
        let mut universe = Vec::with_capacity(ids.len());
        let mut in_universe = NodeBitSet::new();
        for id in ids {
            let n = NodeId(id);
            if !in_universe.insert(n) {
                return Err(codec::CodecError::Invalid("sketch universe repeats a node"));
            }
            universe.push(n);
        }
        let mut roots = Vec::with_capacity(m);
        let mut rngs = Vec::with_capacity(m);
        let mut members = Vec::with_capacity(m);
        let mut counts: Vec<u32> = Vec::new();
        for _ in 0..m {
            let root = NodeId(r.get_u32()?);
            if root == NO_ROOT {
                if !universe.is_empty() {
                    return Err(codec::CodecError::Invalid(
                        "sketch root unset over a non-empty universe",
                    ));
                }
            } else if !in_universe.contains(root) {
                return Err(codec::CodecError::Invalid(
                    "sketch root outside the universe",
                ));
            }
            let mut state = [0u64; 4];
            for word in &mut state {
                *word = r.get_u64()?;
            }
            let set = NodeBitSet::read_snapshot_words(r)?;
            if root != NO_ROOT && !set.contains(root) {
                return Err(codec::CodecError::Invalid(
                    "sketch member set misses its own root",
                ));
            }
            for n in set.iter() {
                if counts.len() <= n.index() {
                    counts.resize(n.index() + 1, 0);
                }
                counts[n.index()] += 1;
            }
            roots.push(root);
            rngs.push(state);
            members.push(set);
        }
        Ok(SketchPool {
            params,
            roots,
            rngs,
            members,
            counts,
            universe,
            in_universe,
        })
    }
}

/// Inserts `start` and everything that reaches it into `members` by
/// reverse BFS over `g`'s in-edges, pruning at existing members (sound:
/// a member's ancestors are members or are reached through the explicit
/// per-edge probes — see [`SketchPool::absorb_batch`]). Newly inserted
/// nodes append to `added`.
fn extend_reverse<G: InGraph>(
    g: &G,
    members: &mut NodeBitSet,
    start: NodeId,
    added: &mut Vec<NodeId>,
) {
    if !members.insert(start) {
        return;
    }
    added.push(start);
    let mut stack = vec![start];
    while let Some(x) = stack.pop() {
        g.for_each_in(x, |p| {
            if members.insert(p) {
                added.push(p);
                stack.push(p);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::AdnGraph;
    use crate::reach::{reverse_reach_collect, ReachScratch};
    use crate::tdn::TdnGraph;

    fn params() -> SketchParams {
        SketchParams::new(0.2, 0.1, 0xC0FFEE)
    }

    /// Exactness oracle: every sketch's member set must equal the scalar
    /// reverse-reachability closure of its root.
    fn assert_sets_exact<G: OutGraph + InGraph + Sync>(pool: &SketchPool, g: &G) {
        let mut scratch = ReachScratch::new();
        let mut expect = Vec::new();
        for i in 0..pool.len() {
            let Some(root) = pool.root(i) else {
                assert!(pool.members(i).is_empty());
                continue;
            };
            reverse_reach_collect(g, root, &mut scratch, &mut expect);
            let got: Vec<NodeId> = pool.members(i).iter().collect();
            let mut want = expect.clone();
            want.sort_unstable();
            assert_eq!(got, want, "sketch {i} diverged from the BFS oracle");
        }
        // Counts must stay consistent with the sets.
        for &v in pool.universe.iter() {
            let direct = (0..pool.len())
                .filter(|&i| pool.members(i).contains(v))
                .count() as u32;
            assert_eq!(pool.count(v), direct, "count drifted for {v:?}");
        }
    }

    #[test]
    fn hoeffding_pool_size_formula() {
        // m = ceil(ln(2/0.1) / (2 * 0.04)) = ceil(37.44) = 38.
        assert_eq!(params().pool_size(), 38);
        // Tighter eps grows the pool quadratically.
        let tight = SketchParams::new(0.1, 0.1, 0);
        assert_eq!(tight.pool_size(), 150);
        assert!(SketchParams::new(0.25, 0.2, 0).pool_size() < 38);
    }

    #[test]
    fn incremental_absorb_matches_oracle() {
        let mut g = AdnGraph::new();
        let mut pool = SketchPool::new(params());
        // A deterministic pseudo-random addition-only stream, absorbed in
        // small batches; after every batch each sketch must hold the exact
        // reverse closure of its root.
        let mut state = 0xDEAD_BEEFu64;
        let mut rnd = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for _ in 0..25 {
            let mut fresh = Vec::new();
            for _ in 0..1 + rnd(6) {
                let (u, v) = (NodeId(rnd(18) as u32), NodeId(rnd(18) as u32));
                if g.add_edge(u, v) {
                    fresh.push((u, v));
                }
            }
            pool.absorb_batch(&g, &fresh);
            assert_sets_exact(&pool, &g);
        }
        assert_eq!(pool.universe_len(), g.node_count());
        // At least one estimate should be positive on a dense-ish graph.
        assert!(pool.universe.iter().any(|&v| pool.estimate(v) > 0.0));
    }

    #[test]
    fn estimates_are_within_the_envelope_on_a_star() {
        // Hub 0 points at 1..=30: reach(0) = 31, reach(leaf) = 1. With the
        // fixed seed the envelope |est - exact| <= eps * n must hold for
        // the hub (a single pre-registered draw; eps * n ≈ 6.2).
        let mut g = AdnGraph::new();
        let mut fresh = Vec::new();
        for i in 1..=30u32 {
            g.add_edge(NodeId(0), NodeId(i));
            fresh.push((NodeId(0), NodeId(i)));
        }
        let mut pool = SketchPool::new(params());
        pool.absorb_batch(&g, &fresh);
        let n = pool.universe_len() as f64;
        let est = pool.estimate(NodeId(0));
        assert!(
            (est - 31.0).abs() <= params().error_bound(31) + 1e-9,
            "hub estimate {est} strayed past eps*n = {}",
            params().error_bound(31)
        );
        assert!(n as usize == 31);
    }

    #[test]
    fn thread_count_does_not_change_the_pool() {
        let build = |threads: usize| {
            exec::with_threads(threads, || {
                let mut g = AdnGraph::new();
                let mut pool = SketchPool::new(params());
                for b in 0..8u32 {
                    let mut fresh = Vec::new();
                    for j in 0..5u32 {
                        let (u, v) = (NodeId((b * 3 + j) % 11), NodeId((b + j * 5 + 1) % 11));
                        if g.add_edge(u, v) {
                            fresh.push((u, v));
                        }
                    }
                    pool.absorb_batch(&g, &fresh);
                }
                let mut w = codec::Writer::new();
                pool.write_snapshot(&mut w);
                w.into_vec()
            })
        };
        let serial = build(1);
        assert_eq!(serial, build(4), "pool bytes diverged across threads");
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let mut g = AdnGraph::new();
        let mut fresh = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 1), (0, 4)] {
            g.add_edge(NodeId(u), NodeId(v));
            fresh.push((NodeId(u), NodeId(v)));
        }
        let mut pool = SketchPool::new(params());
        pool.absorb_batch(&g, &fresh);
        let mut w = codec::Writer::new();
        pool.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let back = SketchPool::read_snapshot(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        assert_eq!(back.universe, pool.universe);
        assert_eq!(back.roots, pool.roots);
        assert_eq!(back.rngs, pool.rngs);
        assert_eq!(back.counts, pool.counts);
        // The restored pool must continue bit-identically.
        let mut fresh2 = Vec::new();
        let (mut a, mut b) = (pool.clone(), back);
        if g.add_edge(NodeId(4), NodeId(2)) {
            fresh2.push((NodeId(4), NodeId(2)));
        }
        a.absorb_batch(&g, &fresh2);
        b.absorb_batch(&g, &fresh2);
        let (mut wa, mut wb) = (codec::Writer::new(), codec::Writer::new());
        a.write_snapshot(&mut wa);
        b.write_snapshot(&mut wb);
        assert_eq!(wa.into_vec(), wb.into_vec());
        // Truncations never decode.
        for cut in [1usize, 8, 16, bytes.len() - 1] {
            let mut r = codec::Reader::new(&bytes[..cut.min(bytes.len() - 1)]);
            let res = SketchPool::read_snapshot(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn expiry_rebuilds_exactly_and_keeps_roots_live() {
        let mut g = TdnGraph::new();
        g.set_dirty_tracking(true);
        let mut pool = SketchPool::new(params());
        let mut state = 0x5EEDu64;
        let mut rnd = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for t in 0..20u64 {
            // Expire first (Alg. framing: G_t is the graph *at* t), repair
            // the pool from the dirty set, then insert the batch.
            g.advance_to(t);
            let dirty = g.take_dirty();
            pool.apply_expiry(&g, &dirty);
            assert_sets_exact(&pool, &g);
            let mut fresh = Vec::new();
            for _ in 0..1 + rnd(5) {
                let (u, v) = (NodeId(rnd(12) as u32), NodeId(rnd(12) as u32));
                if u == v {
                    continue;
                }
                let before = g.edge_count();
                g.add_edge(u, v, 1 + rnd(4) as u32);
                if g.edge_count() > before {
                    fresh.push((u, v));
                }
            }
            g.take_dirty(); // inserts also mark dirty; absorb handles them
            pool.absorb_batch(&g, &fresh);
            assert_sets_exact(&pool, &g);
            for i in 0..pool.len() {
                if let Some(root) = pool.root(i) {
                    assert!(g.contains_node(root), "sketch {i} kept a dead root");
                }
            }
        }
        // Decay everything: the pool must drain to the empty state.
        g.advance_to(1_000);
        let dirty = g.take_dirty();
        pool.apply_expiry(&g, &dirty);
        assert_eq!(pool.universe_len(), 0);
        assert!((0..pool.len()).all(|i| pool.root(i).is_none()));
        assert!((0..pool.len()).all(|i| pool.members(i).is_empty()));
    }

    #[test]
    fn rounded_estimate_uses_integer_arithmetic() {
        let mut pool = SketchPool::new(SketchParams::new(0.25, 0.2, 7));
        let mut g = AdnGraph::new();
        let mut fresh = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 2)] {
            g.add_edge(NodeId(u), NodeId(v));
            fresh.push((NodeId(u), NodeId(v)));
        }
        pool.absorb_batch(&g, &fresh);
        for &v in &[NodeId(0), NodeId(1), NodeId(2)] {
            let f = pool.estimate(v);
            let r = pool.estimate_rounded(v);
            assert!((f - r as f64).abs() <= 0.5 + 1e-9, "rounding strayed");
        }
    }
}
