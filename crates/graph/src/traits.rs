//! Graph access traits shared by the append-only and time-decaying graphs.

use crate::node::NodeId;

/// Read access to the forward (influence-direction) adjacency of a graph.
///
/// Both [`crate::adn::AdnGraph`] and [`crate::tdn::TdnGraph`] implement this,
/// so the reachability routines in [`crate::reach`] work on either.
pub trait OutGraph {
    /// Calls `f` once per live out-neighbor of `u` (duplicates possible when
    /// multi-edges are stored; callers must deduplicate via visited marks).
    fn for_each_out(&self, u: NodeId, f: impl FnMut(NodeId));

    /// An upper bound (exclusive) on node indices present in the graph, used
    /// to size visited-mark scratch.
    fn node_index_bound(&self) -> usize;

    /// Whether `u` currently participates in the graph (has at least one
    /// live incident edge, or was explicitly added).
    fn contains_node(&self, u: NodeId) -> bool;

    /// Number of nodes currently participating in the graph. Drives the
    /// direction-optimizing traversals' frontier-vs-graph switch heuristic;
    /// the default (the index bound) only makes bottom-up sweeps less
    /// eager, never incorrect.
    fn live_node_count(&self) -> usize {
        self.node_index_bound()
    }

    /// Hints the CPU to pull `u`'s out-adjacency block toward the cache.
    /// Purely an optimization hook for the bottom-up scan loops — the
    /// default is a no-op and implementations must have no observable
    /// effect.
    #[inline]
    fn prefetch_out(&self, u: NodeId) {
        let _ = u;
    }
}

/// Read access to reverse adjacency (who points *to* a node).
///
/// Needed to compute `V̄_t` — the set of nodes whose influence spread changed
/// after an edge batch (Alg. 1 line 3) — and to sample reverse-reachable sets
/// in the IC baselines.
pub trait InGraph {
    /// Calls `f` once per live in-neighbor of `v` (duplicates possible).
    fn for_each_in(&self, v: NodeId, f: impl FnMut(NodeId));

    /// Hints the CPU to pull `v`'s in-adjacency block toward the cache.
    /// Optimization hook only (see [`OutGraph::prefetch_out`]); the default
    /// is a no-op.
    #[inline]
    fn prefetch_in(&self, v: NodeId) {
        let _ = v;
    }
}
