//! Addition-only dynamic interaction network (ADN, Example 3 of the paper).
//!
//! Every SIEVEADN instance owns one `AdnGraph`: an append-only directed
//! graph over interned node ids. Appending is the *only* mutation — edges
//! never leave, which is exactly the property Theorem 2's proof relies on
//! (`f_t(S) ≥ f_{t'}(S)` for `t ≥ t'`).
//!
//! Parallel interactions between the same ordered pair are deduplicated:
//! reachability (and therefore the influence spread of Definition 3) is
//! insensitive to edge multiplicity, and instances may be fed the same edge
//! via several paths in HISTAPPROX (copy + range feed + fresh batch).

use crate::arena::AdjPool;
use crate::hash::FxHashSet;
use crate::node::{pack_pair, NodeId};
use crate::reach::{reverse_reachable_within, ReachScratch};
use crate::traits::{InGraph, OutGraph};

/// How an [`AdnGraph::add_edge_classified`] insertion affected
/// reachability — the epoch-level event the incremental spread engine's
/// dirty-set tracking consumes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeInsert {
    /// The ordered pair was already present (or a self-loop): no change.
    Duplicate,
    /// New pair, but the target was already reachable from the source, so
    /// **no node's reach set changed** (see DESIGN.md for the proof).
    Redundant,
    /// New pair whose target had never been seen before this insert (no
    /// incident edges). The probe is skipped — an absent node is trivially
    /// unreachable — and the caller resolves the class at batch end: if the
    /// target is still a sink, the edge is an exact `+1` delta on the
    /// source's ancestors; otherwise it is novel.
    TargetNew,
    /// New pair whose target existed but had **no outgoing edges** at
    /// insert time. The probe is skipped too (the sink resolution below is
    /// strictly more precise): if the target is still a sink at batch end,
    /// each node reaching a fresh in-edge source gains exactly the sink —
    /// unless it already reached it through an old in-edge — so the caller
    /// patches `ancestors(new sources) ∖ old-ancestors(target)` by `+1`
    /// instead of dirtying anything.
    TargetSink,
    /// New pair that may extend reach sets: the source's ancestors go
    /// dirty.
    Novel,
    /// New pair whose redundancy probe ran out of budget; treated exactly
    /// like [`EdgeInsert::Novel`] (conservative, never wrong).
    NovelUnproven,
}

impl EdgeInsert {
    /// Whether the insertion actually added an edge.
    pub fn inserted(self) -> bool {
        self != EdgeInsert::Duplicate
    }

    /// Whether the source's ancestors must be marked dirty
    /// ([`EdgeInsert::TargetNew`] answers `false` here; the caller
    /// resolves it at batch end).
    pub fn is_novel(self) -> bool {
        matches!(self, EdgeInsert::Novel | EdgeInsert::NovelUnproven)
    }
}

/// Append-only directed graph with forward and reverse adjacency.
///
/// Both adjacency directions live in [`AdjPool`] arenas: one contiguous
/// buffer per direction, power-of-two blocks per node, zero per-node heap
/// allocations — BFS walks cache-dense slices instead of chasing one heap
/// pointer per node. List order is append order, exactly as the previous
/// `Vec<Vec<_>>` backing stored it, so traversal order, `V̄_t` replay
/// order, and snapshot bytes are all unchanged.
#[derive(Default, Clone)]
pub struct AdnGraph {
    /// Forward adjacency arena, indexed densely by node id.
    out: AdjPool<NodeId>,
    /// Reverse adjacency arena (for `V̄_t` computation).
    inc: AdjPool<NodeId>,
    /// Ordered pairs already present (dedup of parallel edges).
    pairs: FxHashSet<u64>,
    /// Nodes with at least one incident edge.
    nodes: FxHashSet<NodeId>,
}

impl AdnGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct directed node pairs stored.
    pub fn edge_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of nodes with at least one incident edge.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over nodes with incident edges (arbitrary order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Appends edge `u → v`. Returns `true` if the ordered pair was new.
    ///
    /// Self-loops are rejected (the paper assumes a user cannot influence
    /// himself) and return `false`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if !self.pairs.insert(pack_pair(u, v)) {
            return false;
        }
        let bound = u.index().max(v.index()) + 1;
        self.out.ensure_node_bound(bound);
        self.inc.ensure_node_bound(bound);
        self.out.push(u.index(), v);
        self.inc.push(v.index(), u);
        self.nodes.insert(u);
        self.nodes.insert(v);
        true
    }

    /// Appends edge `u → v` like [`Self::add_edge`], additionally
    /// classifying the insertion for the incremental spread engine: a new
    /// pair whose target was already reachable from its source (probed
    /// *before* inserting) is [`EdgeInsert::Redundant`] — it changes no
    /// node's reach set, so the engine skips dirtying the source's
    /// ancestors.
    ///
    /// `probe_budget` is invoked **only when a probe is actually needed**
    /// (new pair, known target with outgoing edges) and returns the BFS
    /// expansion cap; returning `0` skips the probe, yielding
    /// [`EdgeInsert::NovelUnproven`]. The laziness lets callers meter
    /// adaptive probe gates on eligible edges only.
    pub fn add_edge_classified(
        &mut self,
        u: NodeId,
        v: NodeId,
        scratch: &mut ReachScratch,
        probe_budget: impl FnOnce() -> usize,
    ) -> EdgeInsert {
        if u == v || self.pairs.contains(&pack_pair(u, v)) {
            return EdgeInsert::Duplicate;
        }
        // A target with no incident edges cannot be reachable from
        // anywhere, and a target with no *outgoing* edges resolves more
        // precisely at batch end (sink-delta patching): both skip the
        // probe. Remaining targets are probed *backwards* (is `u` among
        // `v`'s ancestors?): influence streams have hub sources with huge
        // forward reach but targets with shallow ancestor chains, so the
        // reverse direction is cheap.
        let class = if !self.nodes.contains(&v) {
            EdgeInsert::TargetNew
        } else if self.out_neighbors(v).is_empty() {
            EdgeInsert::TargetSink
        } else {
            match reverse_reachable_within(self, u, v, scratch, probe_budget()) {
                Some(true) => EdgeInsert::Redundant,
                Some(false) => EdgeInsert::Novel,
                None => EdgeInsert::NovelUnproven,
            }
        };
        let inserted = self.add_edge(u, v);
        debug_assert!(inserted, "pair presence was checked above");
        class
    }

    /// Whether edge `u → v` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.pairs.contains(&pack_pair(u, v))
    }

    /// Forward neighbors of `u` (empty slice if unknown).
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.as_slice(u.index())
    }

    /// Reverse neighbors of `v` (empty slice if unknown).
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.inc.as_slice(v.index())
    }

    /// Serializes the graph for checkpointing.
    ///
    /// Both adjacency directions are written **verbatim, in list order**:
    /// BFS traversal order — and therefore the `V̄_t` sequence the sieves
    /// replay — depends on it, so a warm restart must reproduce it exactly
    /// for the bit-identical-restore guarantee. The `pairs` and `nodes`
    /// sets are derivable from the adjacency and are rebuilt on restore.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        let put_pool = |w: &mut codec::Writer, pool: &AdjPool<NodeId>| {
            w.put_len(pool.node_bound());
            for n in 0..pool.node_bound() {
                let list = pool.as_slice(n);
                w.put_len(list.len());
                for n in list {
                    w.put_u32(n.0);
                }
            }
        };
        put_pool(w, &self.out);
        // `inc` is fully determined by `out` but its *list order* is not
        // (it interleaves by arrival), so it is stored verbatim too.
        put_pool(w, &self.inc);
    }

    /// Reconstructs a graph from [`Self::write_snapshot`] bytes.
    ///
    /// Rebuilds the pair-dedup set and node set from the forward adjacency
    /// and cross-checks the reverse adjacency edge count, so corrupted
    /// snapshots fail loudly instead of producing a silently skewed graph.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let n_out = r.get_len(8)?;
        let mut out: AdjPool<NodeId> = AdjPool::new();
        out.ensure_node_bound(n_out);
        for n in 0..n_out {
            let len = r.get_len(4)?;
            for _ in 0..len {
                out.push(n, NodeId(r.get_u32()?));
            }
        }
        let n_inc = r.get_len(8)?;
        if n_inc != n_out {
            return Err(codec::CodecError::Invalid(
                "AdnGraph adjacency directions disagree on node bound",
            ));
        }
        let mut inc: AdjPool<NodeId> = AdjPool::new();
        inc.ensure_node_bound(n_inc);
        for n in 0..n_inc {
            let len = r.get_len(4)?;
            for _ in 0..len {
                inc.push(n, NodeId(r.get_u32()?));
            }
        }
        let mut g = AdnGraph {
            out,
            inc,
            pairs: FxHashSet::default(),
            nodes: FxHashSet::default(),
        };
        g.rebuild_indexes()?;
        Ok(g)
    }

    /// Rebuilds the derived `pairs`/`nodes` sets from the adjacency pools
    /// and validates that the reverse adjacency is exactly the transpose
    /// of the forward one (bounds-checked, duplicate-free, same edge set):
    /// reverse BFS — and therefore the `V̄_t` replay — walks it, so a
    /// drifted `inc` would silently skew results or index out of range.
    /// The restore-finalization step shared by the element-wise and the
    /// sectioned (chunked) read paths.
    pub fn rebuild_indexes(&mut self) -> codec::Result<()> {
        let n_out = self.out.node_bound();
        if self.inc.node_bound() != n_out {
            return Err(codec::CodecError::Invalid(
                "AdnGraph adjacency directions disagree on node bound",
            ));
        }
        let mut pairs = FxHashSet::default();
        let mut nodes = FxHashSet::default();
        for u in 0..n_out {
            for &v in self.out.as_slice(u) {
                if v.index() >= n_out {
                    return Err(codec::CodecError::Invalid(
                        "AdnGraph edge endpoint outside node bound",
                    ));
                }
                if !pairs.insert(pack_pair(NodeId(u as u32), v)) {
                    return Err(codec::CodecError::Invalid(
                        "AdnGraph forward adjacency holds a duplicate pair",
                    ));
                }
                nodes.insert(NodeId(u as u32));
                nodes.insert(v);
            }
        }
        let mut rev_pairs = FxHashSet::default();
        for v in 0..n_out {
            for &u in self.inc.as_slice(v) {
                if u.index() >= n_out {
                    return Err(codec::CodecError::Invalid(
                        "AdnGraph reverse edge endpoint outside node bound",
                    ));
                }
                let key = pack_pair(u, NodeId(v as u32));
                if !rev_pairs.insert(key) || !pairs.contains(&key) {
                    return Err(codec::CodecError::Invalid(
                        "AdnGraph reverse adjacency is not the transpose of forward",
                    ));
                }
            }
        }
        if rev_pairs.len() != pairs.len() {
            return Err(codec::CodecError::Invalid(
                "AdnGraph reverse adjacency edge count drifted from forward",
            ));
        }
        self.pairs = pairs;
        self.nodes = nodes;
        Ok(())
    }

    /// Node-index bound of the adjacency pools (both directions always
    /// agree; [`Self::add_edge`] grows them in lockstep).
    pub fn node_bound(&self) -> usize {
        self.out.node_bound()
    }

    /// Grows both adjacency pools to `bound` slots (no-op if already that
    /// large) — the sectioned restore path sizes the pools before reading
    /// chunks into them.
    pub fn ensure_node_bound(&mut self, bound: usize) {
        self.out.ensure_node_bound(bound);
        self.inc.ensure_node_bound(bound);
    }

    /// Number of snapshot chunks covering the adjacency pools (see
    /// [`crate::arena::SNAPSHOT_CHUNK`]).
    pub fn chunk_count(&self) -> usize {
        self.out.chunk_count()
    }

    /// Generation at which forward-adjacency chunk `c` last changed.
    pub fn out_chunk_generation(&self, c: usize) -> u64 {
        self.out.chunk_generation(c)
    }

    /// Generation at which reverse-adjacency chunk `c` last changed.
    pub fn inc_chunk_generation(&self, c: usize) -> u64 {
        self.inc.chunk_generation(c)
    }

    /// Serializes forward-adjacency chunk `c` as raw word runs.
    pub fn write_out_chunk(&self, c: usize, w: &mut codec::Writer) {
        self.out.write_chunk_snapshot(c, w);
    }

    /// Serializes reverse-adjacency chunk `c` as raw word runs.
    pub fn write_inc_chunk(&self, c: usize, w: &mut codec::Writer) {
        self.inc.write_chunk_snapshot(c, w);
    }

    /// Restores forward-adjacency chunk `c` by bulk copy. Call
    /// [`Self::rebuild_indexes`] once after all chunks are in.
    pub fn read_out_chunk(
        &mut self,
        c: usize,
        expected_lists: usize,
        r: &mut codec::Reader<'_>,
    ) -> codec::Result<()> {
        self.out.read_chunk_snapshot(c, expected_lists, r)
    }

    /// Restores reverse-adjacency chunk `c` by bulk copy.
    pub fn read_inc_chunk(
        &mut self,
        c: usize,
        expected_lists: usize,
        r: &mut codec::Reader<'_>,
    ) -> codec::Result<()> {
        self.inc.read_chunk_snapshot(c, expected_lists, r)
    }

    /// Releases recycled arena blocks and excess hash-set capacity back to
    /// the allocator (the memory-budget shedding hook). Pure layout
    /// change: adjacency contents, traversal order, and snapshot bytes are
    /// all unaffected. Returns the approximate bytes released.
    pub fn release_recycled_memory(&mut self) -> usize {
        let before = self.approx_bytes();
        self.out.release_free_tail();
        self.inc.release_free_tail();
        self.pairs.shrink_to_fit();
        self.nodes.shrink_to_fit();
        before.saturating_sub(self.approx_bytes())
    }

    /// Approximate heap footprint in bytes (adjacency arenas + dedup set),
    /// used by memory-accounting experiments.
    pub fn approx_bytes(&self) -> usize {
        self.out.approx_bytes()
            + self.inc.approx_bytes()
            + self.pairs.capacity() * 8
            + self.nodes.capacity() * 4
    }
}

impl std::fmt::Debug for AdnGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdnGraph")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.pairs.len())
            .finish()
    }
}

impl OutGraph for AdnGraph {
    #[inline]
    fn for_each_out(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &v in self.out_neighbors(u) {
            f(v);
        }
    }

    #[inline]
    fn node_index_bound(&self) -> usize {
        self.out.node_bound()
    }

    #[inline]
    fn contains_node(&self, u: NodeId) -> bool {
        self.nodes.contains(&u)
    }

    #[inline]
    fn live_node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn prefetch_out(&self, u: NodeId) {
        self.out.prefetch(u.index());
    }
}

impl InGraph for AdnGraph {
    #[inline]
    fn for_each_in(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for &u in self.in_neighbors(v) {
            f(u);
        }
    }

    #[inline]
    fn prefetch_in(&self, v: NodeId) {
        self.inc.prefetch(v.index());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_parallel_edges() {
        let mut g = AdnGraph::new();
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(0), NodeId(1)));
        assert!(g.add_edge(NodeId(1), NodeId(0))); // reverse direction is distinct
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = AdnGraph::new();
        assert!(!g.add_edge(NodeId(3), NodeId(3)));
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn adjacency_is_consistent_both_ways() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(5));
        g.add_edge(NodeId(2), NodeId(5));
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(5)]);
        let mut inn = g.in_neighbors(NodeId(5)).to_vec();
        inn.sort();
        assert_eq!(inn, vec![NodeId(0), NodeId(2)]);
        assert!(g.has_edge(NodeId(2), NodeId(5)));
        assert!(!g.has_edge(NodeId(5), NodeId(2)));
    }

    #[test]
    fn clone_is_independent() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        let mut h = g.clone();
        h.add_edge(NodeId(1), NodeId(2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(h.edge_count(), 2);
    }

    #[test]
    fn unknown_nodes_have_empty_adjacency() {
        let g = AdnGraph::new();
        assert!(g.out_neighbors(NodeId(42)).is_empty());
        assert!(g.in_neighbors(NodeId(42)).is_empty());
        assert!(!g.contains_node(NodeId(42)));
    }

    #[test]
    fn snapshot_round_trip_preserves_adjacency_order() {
        let mut g = AdnGraph::new();
        // Interleave insertions so forward and reverse list orders differ
        // from sorted order — the round trip must keep them verbatim.
        for (u, v) in [(3u32, 1u32), (0, 1), (3, 0), (2, 1), (0, 2)] {
            g.add_edge(NodeId(u), NodeId(v));
        }
        let mut w = codec::Writer::new();
        g.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let h = AdnGraph::read_snapshot(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.node_count(), h.node_count());
        for n in 0..4u32 {
            assert_eq!(g.out_neighbors(NodeId(n)), h.out_neighbors(NodeId(n)));
            assert_eq!(g.in_neighbors(NodeId(n)), h.in_neighbors(NodeId(n)));
        }
    }

    #[test]
    fn classified_insert_detects_redundant_edges() {
        use crate::reach::ReachScratch;
        let mut g = AdnGraph::new();
        let mut s = ReachScratch::new();
        let budget = 64;
        // Never-seen targets skip the probe entirely.
        assert_eq!(
            g.add_edge_classified(NodeId(0), NodeId(1), &mut s, || budget),
            EdgeInsert::TargetNew
        );
        assert_eq!(
            g.add_edge_classified(NodeId(1), NodeId(2), &mut s, || budget),
            EdgeInsert::TargetNew
        );
        assert_eq!(
            g.add_edge_classified(NodeId(2), NodeId(3), &mut s, || budget),
            EdgeInsert::TargetNew
        );
        // 0 already reaches 2 via 1, and 2 has outgoing edges, so the
        // probe runs: the shortcut is redundant but stored.
        assert_eq!(
            g.add_edge_classified(NodeId(0), NodeId(2), &mut s, || budget),
            EdgeInsert::Redundant
        );
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(
            g.add_edge_classified(NodeId(0), NodeId(2), &mut s, || budget),
            EdgeInsert::Duplicate
        );
        assert_eq!(
            g.add_edge_classified(NodeId(5), NodeId(5), &mut s, || budget),
            EdgeInsert::Duplicate,
            "self-loops are rejected as before"
        );
        // Known target with no outgoing edges: deferred sink resolution.
        assert_eq!(
            g.add_edge_classified(NodeId(1), NodeId(3), &mut s, || budget),
            EdgeInsert::TargetSink
        );
        // Known target with out-edges, no path back: genuinely novel.
        assert_eq!(
            g.add_edge_classified(NodeId(3), NodeId(0), &mut s, || budget),
            EdgeInsert::Novel
        );
        // Budget 0 can never prove redundancy: conservative Novel.
        assert_eq!(
            g.add_edge_classified(NodeId(2), NodeId(1), &mut s, || 0),
            EdgeInsert::NovelUnproven
        );
        assert!(EdgeInsert::NovelUnproven.is_novel() && EdgeInsert::NovelUnproven.inserted());
        assert!(!EdgeInsert::Duplicate.inserted());
        assert!(!EdgeInsert::Redundant.is_novel());
        assert!(EdgeInsert::TargetNew.inserted() && !EdgeInsert::TargetNew.is_novel());
        assert!(EdgeInsert::TargetSink.inserted() && !EdgeInsert::TargetSink.is_novel());
    }

    #[test]
    fn classified_insert_matches_plain_insert_content() {
        use crate::reach::ReachScratch;
        // Same edge sequence through both APIs yields identical graphs
        // (adjacency order included) — classification is observation only.
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 0), (0, 1), (3, 1)];
        let mut plain = AdnGraph::new();
        let mut classified = AdnGraph::new();
        let mut s = ReachScratch::new();
        for &(u, v) in &edges {
            let a = plain.add_edge(NodeId(u), NodeId(v));
            let c = classified.add_edge_classified(NodeId(u), NodeId(v), &mut s, || 8);
            assert_eq!(a, c.inserted(), "({u},{v})");
        }
        assert_eq!(plain.edge_count(), classified.edge_count());
        for n in 0..4u32 {
            assert_eq!(
                plain.out_neighbors(NodeId(n)),
                classified.out_neighbors(NodeId(n))
            );
            assert_eq!(
                plain.in_neighbors(NodeId(n)),
                classified.in_neighbors(NodeId(n))
            );
        }
    }

    #[test]
    fn chunked_snapshot_round_trip_matches_element_wise() {
        let mut g = AdnGraph::new();
        let mut state = 7u64;
        let mut rnd = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for _ in 0..400 {
            g.add_edge(NodeId(rnd(90) as u32), NodeId(rnd(90) as u32));
        }
        // Serialize every chunk, restore into a fresh graph, finalize.
        let mut h = AdnGraph::new();
        for c in 0..g.chunk_count() {
            let lo = c * crate::arena::SNAPSHOT_CHUNK;
            let expected = (lo + crate::arena::SNAPSHOT_CHUNK).min(g.node_bound()) - lo;
            let mut w = codec::Writer::new();
            g.write_out_chunk(c, &mut w);
            let bytes = w.into_vec();
            let mut r = codec::Reader::new(&bytes);
            h.read_out_chunk(c, expected, &mut r).unwrap();
            r.finish().unwrap();
            let mut w = codec::Writer::new();
            g.write_inc_chunk(c, &mut w);
            let bytes = w.into_vec();
            let mut r = codec::Reader::new(&bytes);
            h.read_inc_chunk(c, expected, &mut r).unwrap();
            r.finish().unwrap();
        }
        h.rebuild_indexes().expect("transpose validates");
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.node_count(), h.node_count());
        for n in 0..g.node_bound() as u32 {
            assert_eq!(g.out_neighbors(NodeId(n)), h.out_neighbors(NodeId(n)));
            assert_eq!(g.in_neighbors(NodeId(n)), h.in_neighbors(NodeId(n)));
        }
    }

    #[test]
    fn release_recycled_memory_keeps_contents() {
        let mut g = AdnGraph::new();
        for u in 0..50u32 {
            for v in 0..20u32 {
                g.add_edge(NodeId(u), NodeId(v + 100));
            }
        }
        let before = g.clone();
        g.release_recycled_memory();
        assert_eq!(g.edge_count(), before.edge_count());
        for n in 0..g.node_bound() as u32 {
            assert_eq!(g.out_neighbors(NodeId(n)), before.out_neighbors(NodeId(n)));
            assert_eq!(g.in_neighbors(NodeId(n)), before.in_neighbors(NodeId(n)));
        }
        // Still usable for growth afterwards.
        assert!(g.add_edge(NodeId(200), NodeId(201)));
    }

    #[test]
    fn snapshot_corruption_is_rejected() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        let mut w = codec::Writer::new();
        g.write_snapshot(&mut w);
        let bytes = w.into_vec();
        // Every truncation errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = codec::Reader::new(&bytes[..cut]);
            let res = AdnGraph::read_snapshot(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
