//! Dense `u64`-word bitset over node indices.
//!
//! Backs [`crate::reach::CoverSet`]: covers are probed on every visited
//! edge of every marginal-gain BFS, so membership must be one shift and
//! one AND on a cache-dense word array rather than a hash probe. Iteration
//! is always in ascending node order — the canonical order the checkpoint
//! format serializes covers in, now produced without a sort.

use crate::node::NodeId;

/// A growable bitset keyed by dense node indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `n` is a member.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.words
            .get(n.index() >> 6)
            .is_some_and(|&w| w >> (n.index() & 63) & 1 != 0)
    }

    /// Inserts `n`, growing the word array on demand. Returns `true` if
    /// the node was not already a member.
    pub fn insert(&mut self, n: NodeId) -> bool {
        let word = n.index() >> 6;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (n.index() & 63);
        let w = &mut self.words[word];
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        self.len += 1;
        true
    }

    /// Removes `n`. Returns `true` if it was a member.
    pub fn remove(&mut self, n: NodeId) -> bool {
        let Some(w) = self.words.get_mut(n.index() >> 6) else {
            return false;
        };
        let mask = 1u64 << (n.index() & 63);
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        self.len -= 1;
        // Keep the word vector free of trailing zeros so the derived
        // (word-wise) equality stays membership equality.
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        true
    }

    /// Clears the set, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Unions `other` into `self` in O(words).
    pub fn union_with(&mut self, other: &NodeBitSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut len = 0usize;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            len += w.count_ones() as usize;
        }
        for &w in &self.words[other.words.len()..] {
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Iterates members in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(NodeId(((wi as u32) << 6) | bit))
            })
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// The backing word array (bit `i` of word `w` = node `64·w + i`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes the set as one raw `u64` word run, trailing zero words
    /// trimmed (the canonical form `remove` maintains and the element-wise
    /// read path produces) — the zero-copy alternative to member-by-member
    /// encoding.
    pub fn write_snapshot_words(&self, w: &mut codec::Writer) {
        let used = self
            .words
            .iter()
            .rposition(|&x| x != 0)
            .map_or(0, |i| i + 1);
        w.put_u64_run(&self.words[..used]);
    }

    /// Reconstructs a set from [`Self::write_snapshot_words`] bytes by bulk
    /// copy, recomputing the member count. Trailing zero words are rejected
    /// (non-canonical input would break derived equality).
    pub fn read_snapshot_words(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let words = r.get_u64_run()?;
        if words.last() == Some(&0) {
            return Err(codec::CodecError::Invalid(
                "bitset snapshot has a trailing zero word",
            ));
        }
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(NodeBitSet { words, len })
    }
}

impl FromIterator<NodeId> for NodeBitSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeBitSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeBitSet::new();
        assert!(!s.contains(NodeId(70)));
        assert!(s.insert(NodeId(70)));
        assert!(!s.insert(NodeId(70)), "double insert is a no-op");
        assert!(s.insert(NodeId(0)));
        assert!(s.contains(NodeId(70)) && s.contains(NodeId(0)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(NodeId(70)));
        assert!(!s.remove(NodeId(70)));
        assert!(!s.remove(NodeId(500)), "out-of-range remove is a no-op");
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty() && !s.contains(NodeId(0)));
    }

    #[test]
    fn iteration_is_ascending() {
        let s: NodeBitSet = [5u32, 64, 3, 200, 63].into_iter().map(NodeId).collect();
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![3, 5, 63, 64, 200]);
    }

    #[test]
    fn union_is_o_words_and_recounts() {
        let mut a: NodeBitSet = [1u32, 2, 300].into_iter().map(NodeId).collect();
        let b: NodeBitSet = [2u32, 3].into_iter().map(NodeId).collect();
        a.union_with(&b);
        let got: Vec<u32> = a.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 2, 3, 300]);
        assert_eq!(a.len(), 4);
        // Union into the shorter side grows it.
        let mut c = NodeBitSet::new();
        c.union_with(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn word_boundaries_are_exact() {
        let mut s = NodeBitSet::new();
        for i in [63u32, 64, 127, 128] {
            assert!(s.insert(NodeId(i)));
        }
        for i in [63u32, 64, 127, 128] {
            assert!(s.contains(NodeId(i)));
        }
        assert!(!s.contains(NodeId(62)) && !s.contains(NodeId(129)));
    }

    #[test]
    fn raw_word_snapshot_round_trip() {
        let s: NodeBitSet = [3u32, 64, 129, 700].into_iter().map(NodeId).collect();
        let mut w = codec::Writer::new();
        s.write_snapshot_words(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let back = NodeBitSet::read_snapshot_words(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        assert_eq!(back, s);
        assert_eq!(back.len(), 4);
        // A set with trailing zero words (via clear) still writes the
        // trimmed canonical form.
        let mut t = NodeBitSet::new();
        t.insert(NodeId(500));
        t.clear(); // keeps the 8-word allocation, all zero
        t.insert(NodeId(1));
        assert!(t.words().len() > 1, "clear must keep the allocation");
        let mut w = codec::Writer::new();
        t.write_snapshot_words(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let back = NodeBitSet::read_snapshot_words(&mut r).unwrap();
        assert_eq!(back.words(), &[2u64]);
        // Every truncation errors.
        for cut in 0..bytes.len() {
            let mut r = codec::Reader::new(&bytes[..cut]);
            let res = NodeBitSet::read_snapshot_words(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn equality_is_membership_not_capacity() {
        let mut a = NodeBitSet::new();
        a.insert(NodeId(100));
        a.remove(NodeId(100));
        assert_eq!(a, NodeBitSet::new(), "emptied set equals fresh set");
        let mut b = NodeBitSet::new();
        b.insert(NodeId(3));
        b.insert(NodeId(700));
        b.remove(NodeId(700));
        let c: NodeBitSet = [3u32].into_iter().map(NodeId).collect();
        assert_eq!(b, c);
    }
}
