//! Reachability primitives: forward/reverse BFS with reusable scratch and
//! cover-aware marginal-gain evaluation.
//!
//! The influence spread of Definition 3 is a *coverage* function: for a seed
//! set `S`, `f(S) = |reach(S)|` where `reach` is the forward reachability
//! closure (a node reaches itself). Every sieve threshold maintains its
//! cover `R = reach(S_θ)` as an explicit set, which yields two key
//! properties exploited here:
//!
//! * covers are **closed**: if `x ∈ R` then `reach(x) ⊆ R`, so a marginal
//!   BFS may prune at covered nodes;
//! * the marginal gain `f(S ∪ {v}) − f(S) = |reach(v) \ R|` is computable
//!   with a single pruned BFS.

use crate::bitset::NodeBitSet;
use crate::epoch::EpochSet;
use crate::node::NodeId;
use crate::traits::{InGraph, OutGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Reusable BFS scratch: an epoch-stamped visited array and a queue, plus
/// the label words and touch list of the 64-lane bit-parallel traversals.
///
/// Epoch stamping makes `clear` O(1): bumping the epoch invalidates all
/// previous marks without touching memory.
#[derive(Default)]
pub struct ReachScratch {
    visited: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    /// Per-node lane masks for the bit-parallel traversals, stored as `W`
    /// consecutive words per node (`W` = the traversal's lane width in
    /// words); a node's words are live only while its `visited` stamp
    /// matches the current epoch.
    labels: Vec<u64>,
    /// In-worklist stamps for the bit-parallel traversals (`0` = not
    /// queued; any other value is compared against `epoch2`).
    stamp2: Vec<u32>,
    epoch2: u32,
    /// First-touch order of the current bit-parallel traversal.
    touched: Vec<NodeId>,
    /// Reusable gained-nodes buffer for [`extend_cover`].
    gained: Vec<NodeId>,
    /// Worklist pushes of the current bit-parallel traversal.
    batch_pushes: u64,
    /// Drain compactions of the current bit-parallel traversal.
    drain_compactions: u64,
    /// Entries memmoved by drain compactions of the current traversal.
    drain_moved: u64,
    /// Bottom-up scan rounds of the current bit-parallel traversal.
    bottom_up_rounds: u64,
}

impl Clone for ReachScratch {
    /// Scratch holds no logical state; clones start fresh.
    fn clone(&self) -> Self {
        ReachScratch::default()
    }
}

impl ReachScratch {
    /// Creates empty scratch; buffers grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate heap footprint of the scratch buffers in bytes (counted
    /// in memory experiments so per-worker arenas stay visible).
    pub fn approx_bytes(&self) -> usize {
        self.visited.capacity() * std::mem::size_of::<u32>()
            + self.stamp2.capacity() * std::mem::size_of::<u32>()
            + self.labels.capacity() * std::mem::size_of::<u64>()
            + (self.queue.capacity() + self.touched.capacity() + self.gained.capacity())
                * std::mem::size_of::<NodeId>()
    }

    /// Starts a new traversal, sizing the visited array for `bound` nodes.
    fn begin(&mut self, bound: usize) {
        if self.visited.len() < bound {
            self.visited.resize(bound, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset all stamps so stale marks cannot
            // alias the new epoch.
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Starts a bit-parallel traversal: [`Self::begin`] plus `words` label
    /// words per node and worklist stamps for `bound` nodes. `epoch2` skips
    /// the `0` sentinel, which marks "not currently queued".
    fn begin_batch(&mut self, bound: usize, words: usize) {
        self.begin(bound);
        if self.labels.len() < bound * words {
            self.labels.resize(bound * words, 0);
        }
        if self.stamp2.len() < bound {
            self.stamp2.resize(bound, 0);
        }
        self.epoch2 = self.epoch2.wrapping_add(1);
        if self.epoch2 == 0 {
            self.stamp2.fill(0);
            self.epoch2 = 1;
        }
        self.touched.clear();
        self.batch_pushes = 0;
        self.drain_compactions = 0;
        self.drain_moved = 0;
        self.bottom_up_rounds = 0;
    }

    /// Forces the epoch counters close to their wrap point — test hook for
    /// exercising wrap-around behavior from outside the crate.
    #[doc(hidden)]
    pub fn force_epochs_near_wrap(&mut self) {
        self.epoch = u32::MAX - 1;
        self.epoch2 = u32::MAX - 1;
    }

    /// Worklist tallies of the most recent bit-parallel traversal:
    /// `(pushes, drain compactions, entries moved by compaction)`. The
    /// compaction heuristic is linear by construction — a drain fires only
    /// when the live tail is at most as long as the reclaimed prefix, so
    /// `moved ≤ pushes` over any traversal — and the drain-compaction unit
    /// test pins exactly that bound on adversarial re-entrant growth.
    #[doc(hidden)]
    pub fn drain_stats(&self) -> (u64, u64, u64) {
        (self.batch_pushes, self.drain_compactions, self.drain_moved)
    }

    /// Bottom-up scan rounds the most recent bit-parallel traversal ran
    /// (0 = it stayed top-down throughout).
    #[doc(hidden)]
    pub fn bottom_up_rounds(&self) -> u64 {
        self.bottom_up_rounds
    }
}

/// Number of arena slots per pool; matches the execution engine's worker
/// cap so every concurrent checkout normally finds a free slot.
const POOL_SLOTS: usize = 64;

thread_local! {
    /// Stable per-thread probe offset into the slot array (assigned once
    /// per thread from a process-wide counter), so each worker settles on
    /// its own warm arena instead of all threads racing for slot 0.
    static THREAD_PROBE: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) as usize % POOL_SLOTS
    };
}

/// A pool of thread-confined [`ReachScratch`] arenas for parallel BFS.
///
/// Concurrent workers each check out an exclusive scratch for the duration
/// of one traversal (or a run of traversals), so no `visited` array or
/// queue is ever shared between threads. Buffers return to the pool warm,
/// keeping the epoch-stamping amortization across calls — including the
/// serial path, which simply checks out the same scratch every time.
///
/// A checkout is **one** lock acquisition: each arena sits behind its own
/// slot mutex, the calling thread probes the slot array starting at its
/// stable per-thread offset, and the first successful `try_lock` holds the
/// arena for the duration of `f` (the guard drop is the return — no second
/// acquisition, unlike the previous shared-stack design which locked once
/// to pop and again to push). Arenas are boxed lazily, so an unused pool
/// owns no buffers.
pub struct ScratchPool {
    slots: Box<[Mutex<Option<Box<ReachScratch>>>]>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            slots: (0..POOL_SLOTS).map(|_| Mutex::new(None)).collect(),
        }
    }
}

impl Clone for ScratchPool {
    /// Like [`ReachScratch`], pools hold no logical state; clones start
    /// fresh (used by SIEVEADN instance copies).
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .slots
            .iter()
            .filter(|s| s.lock().is_ok_and(|g| g.is_some()))
            .count();
        write!(f, "ScratchPool {{ arenas: {n} }}")
    }
}

impl ScratchPool {
    /// Creates an empty pool; arenas are created on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a scratch arena, runs `f` with exclusive access, and
    /// returns the arena to the pool when the guard drops (also on panic —
    /// scratch holds no logical state, so a poisoned arena is still fine
    /// to reuse and is simply un-poisoned on the next checkout).
    pub fn with<R>(&self, f: impl FnOnce(&mut ReachScratch) -> R) -> R {
        let start = THREAD_PROBE.with(|p| *p);
        for k in 0..POOL_SLOTS {
            let slot = &self.slots[(start + k) % POOL_SLOTS];
            let mut guard = match slot.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => continue,
            };
            return f(guard.get_or_insert_with(Default::default));
        }
        // More concurrent checkouts than slots (only possible with outside
        // threads beyond the engine's cap): run on a cold temporary.
        f(&mut ReachScratch::default())
    }

    /// Approximate heap footprint of all pooled arenas in bytes. Memory
    /// experiments (Figs. 13/14 analogue) add this so per-worker scratch
    /// does not hide from the accounting.
    pub fn approx_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                let guard = match s.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                guard.as_ref().map_or(0, |b| b.approx_bytes())
            })
            .sum()
    }

    /// Drops every pooled arena back to the allocator (the memory-budget
    /// shedding hook). Scratch holds no logical state, so the only cost is
    /// re-warming buffers on the next checkout; results are unaffected.
    /// Returns the approximate bytes released.
    pub fn release_memory(&self) -> usize {
        let mut freed = 0;
        for s in &self.slots {
            let mut guard = match s.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(arena) = guard.take() {
                freed += arena.approx_bytes();
            }
        }
        freed
    }
}

/// The set of nodes covered (reached) by a seed set; wraps a dense
/// [`NodeBitSet`] so the closure invariant is documented at the type level.
///
/// Membership is probed on every visited edge of every marginal-gain BFS,
/// so `contains` is one shift and one AND on a word array. Iteration is
/// always ascending — the canonical order the v2 checkpoint format already
/// serialized covers in, so snapshot bytes are unchanged by the backend
/// swap (and the sort the hash-set backend needed is gone).
#[derive(Default, Clone, Debug)]
pub struct CoverSet {
    bits: NodeBitSet,
}

impl CoverSet {
    /// Creates an empty cover.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of covered nodes, i.e. the coverage value `f(S_θ)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the cover is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether `n` is covered.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.bits.contains(n)
    }

    /// Inserts a node into the cover.
    #[inline]
    pub fn insert(&mut self, n: NodeId) -> bool {
        self.bits.insert(n)
    }

    /// Iterates over covered nodes in ascending (canonical) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter()
    }

    /// Approximate heap footprint in bytes: the dense word array. Honest
    /// for the Figs. 13/14 analogue curves — a cover costs one bit per
    /// node-index slot up to the highest covered index, regardless of how
    /// many nodes are covered.
    pub fn approx_bytes(&self) -> usize {
        self.bits.approx_bytes() + std::mem::size_of::<usize>()
    }

    /// Serializes the cover for checkpointing, in canonical (sorted) order
    /// — the bitset's natural iteration order, and byte-identical to what
    /// the pre-bitset backend wrote.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_len(self.bits.len());
        for n in self.bits.iter() {
            w.put_u32(n.0);
        }
    }

    /// Reconstructs a cover from [`Self::write_snapshot`] bytes.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let len = r.get_len(4)?;
        let mut bits = NodeBitSet::new();
        for _ in 0..len {
            if !bits.insert(NodeId(r.get_u32()?)) {
                return Err(codec::CodecError::Invalid("duplicate CoverSet member"));
            }
        }
        Ok(CoverSet { bits })
    }

    /// Serializes the cover as one raw `u64` word run straight from the
    /// backing bitset — the zero-copy sectioned-save path.
    pub fn write_snapshot_words(&self, w: &mut codec::Writer) {
        self.bits.write_snapshot_words(w);
    }

    /// Reconstructs a cover from [`Self::write_snapshot_words`] bytes.
    pub fn read_snapshot_words(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        Ok(CoverSet {
            bits: NodeBitSet::read_snapshot_words(r)?,
        })
    }
}

impl FromIterator<NodeId> for CoverSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        CoverSet {
            bits: iter.into_iter().collect(),
        }
    }
}

/// Counts `|reach(start)|` — the singleton influence spread `f({start})`.
pub fn reach_count(g: &impl OutGraph, start: NodeId, scratch: &mut ReachScratch) -> u64 {
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        g.for_each_out(u, |v| {
            let slot = &mut visited[v.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(v);
            }
        });
    }
    queue.len() as u64
}

/// Collects `reach(start)` into `out` (cleared first).
pub fn reach_collect(
    g: &impl OutGraph,
    start: NodeId,
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    reach_count(g, start, scratch);
    out.clear();
    out.extend_from_slice(&scratch.queue);
}

/// Computes the marginal gain `|reach(start) \ cover|`, collecting the newly
/// covered nodes into `gained` (cleared first) so a subsequent commit does
/// not need a second traversal.
///
/// Relies on the closure invariant of [`CoverSet`]: traversal prunes at
/// covered nodes because everything beyond them is already covered.
pub fn marginal_gain(
    g: &impl OutGraph,
    start: NodeId,
    cover: &CoverSet,
    scratch: &mut ReachScratch,
    gained: &mut Vec<NodeId>,
) -> u64 {
    gained.clear();
    if cover.contains(start) {
        return 0;
    }
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        g.for_each_out(u, |v| {
            let slot = &mut visited[v.index()];
            if *slot != *epoch && !cover.contains(v) {
                *slot = *epoch;
                queue.push(v);
            }
        });
    }
    gained.extend_from_slice(queue);
    gained.len() as u64
}

/// Extends `cover` with `reach(start)` (pruning at already-covered nodes)
/// and returns the number of newly covered nodes.
///
/// The gained-nodes buffer lives in `scratch`, so repeated calls (one per
/// admitted candidate per threshold) allocate nothing.
pub fn extend_cover(
    g: &impl OutGraph,
    start: NodeId,
    cover: &mut CoverSet,
    scratch: &mut ReachScratch,
) -> u64 {
    let mut gained = std::mem::take(&mut scratch.gained);
    let n = marginal_gain(g, start, cover, scratch, &mut gained);
    for &v in &gained {
        cover.insert(v);
    }
    scratch.gained = gained;
    n
}

/// Collects the reverse reachability set of `start` (everything that can
/// reach `start`, including `start` itself) into `out` (cleared first).
///
/// Used for `V̄_t`: after inserting edge `(u, v)`, exactly the ancestors of
/// `u` (in the post-insertion graph) have changed influence spread.
pub fn reverse_reach_collect<G: OutGraph + InGraph>(
    g: &G,
    start: NodeId,
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        g.for_each_in(v, |u| {
            let slot = &mut visited[u.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(u);
            }
        });
    }
    out.clear();
    out.extend_from_slice(queue);
}

/// Budgeted *reverse* reachability probe: does `from` reach `to`, decided
/// by walking `to`'s ancestors (in-edges from `to` looking for `from`)?
///
/// Returns `Some(true)` as soon as `from` is discovered, `Some(false)` if
/// `to`'s ancestor frontier is exhausted first, and `None` once `budget`
/// node expansions were spent without an answer (`budget == 0` probes
/// nothing). The incremental spread engine uses this to classify a fresh
/// edge `(u, v)` as *redundant* (`v` already reachable from `u`, so no
/// node's reach set changes) before inserting it; `None` is treated as
/// "not provably redundant", which only costs work, never correctness.
/// The reverse direction is the cheap one: influence streams have hub
/// sources with huge forward reach but targets with shallow ancestor
/// chains.
pub fn reverse_reachable_within<G: OutGraph + InGraph>(
    g: &G,
    from: NodeId,
    to: NodeId,
    scratch: &mut ReachScratch,
    budget: usize,
) -> Option<bool> {
    if from == to {
        return Some(true);
    }
    if budget == 0 {
        return None;
    }
    scratch.begin(g.node_index_bound().max(to.index() + 1));
    scratch.visited[to.index()] = scratch.epoch;
    scratch.queue.push(to);
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    let mut expanded = 0usize;
    while head < queue.len() {
        if expanded == budget {
            return None;
        }
        let v = queue[head];
        head += 1;
        expanded += 1;
        let mut found = false;
        g.for_each_in(v, |u| {
            if u == from {
                found = true;
            }
            let slot = &mut visited[u.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(u);
            }
        });
        if found {
            return Some(true);
        }
    }
    Some(false)
}

/// Collects the reverse reachability set of `sink` while ignoring the
/// direct in-edges from `skip_direct` (cleared into `out`). This is the
/// "old ancestors" side `B` of the sink-delta patch: the nodes that could
/// already reach `sink` without this batch's fresh in-edges. Only the hop
/// `skip_direct[i] → sink` itself is skipped; a skipped source discovered
/// through a longer path is still collected.
pub fn reverse_reach_excluding<G: OutGraph + InGraph>(
    g: &G,
    sink: NodeId,
    skip_direct: &[NodeId],
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    scratch.begin(g.node_index_bound().max(sink.index() + 1));
    scratch.visited[sink.index()] = scratch.epoch;
    scratch.queue.push(sink);
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let at_sink = v == sink;
        g.for_each_in(v, |u| {
            if at_sink && skip_direct.contains(&u) {
                return;
            }
            let slot = &mut visited[u.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(u);
            }
        });
    }
    out.clear();
    out.extend_from_slice(queue);
}

/// Collects the union of the reverse reachability sets of `starts` into
/// `out` (cleared first) — one multi-source BFS, deduplicated by the
/// scratch epoch. The incremental spread engine uses this to build `A_v`,
/// the set of nodes that reach a new sink `v` through any of its in-edge
/// sources.
pub fn reverse_reach_multi_collect<G: OutGraph + InGraph>(
    g: &G,
    starts: &[NodeId],
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    let max_start = starts.iter().map(|s| s.index() + 1).max().unwrap_or(0);
    scratch.begin(g.node_index_bound().max(max_start));
    for &s in starts {
        let slot = &mut scratch.visited[s.index()];
        if *slot != scratch.epoch {
            *slot = scratch.epoch;
            scratch.queue.push(s);
        }
    }
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        g.for_each_in(v, |u| {
            let slot = &mut visited[u.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(u);
            }
        });
    }
    out.clear();
    out.extend_from_slice(queue);
}

/// Lanes per label **word** of a bit-parallel traversal. The historical
/// single-word lane count; wide traversals ship multiples of it (see
/// [`MAX_BATCH_LANES`]).
pub const BATCH_LANES: usize = 64;

/// Maximum lanes per bit-parallel traversal at the widest shipped label
/// width (`[u64; 4]` → 256 lanes).
pub const MAX_BATCH_LANES: usize = 256;

/// The label width in `u64` words that [`lane_width_for`] auto-selects for
/// a batch of `lanes` sources: the narrowest shipped width (1, 2 or 4
/// words) that fits, so small batches keep the cheap 64-bit path.
///
/// # Panics
/// Panics if `lanes` exceeds [`MAX_BATCH_LANES`].
#[inline]
pub fn lane_width_for(lanes: usize) -> usize {
    assert!(
        lanes <= MAX_BATCH_LANES,
        "at most {MAX_BATCH_LANES} lanes per traversal"
    );
    match lanes {
        0..=64 => 1,
        65..=128 => 2,
        _ => 4,
    }
}

/// Splits `items` into per-traversal lane chunks of at most `max_lanes`
/// entries — the single home of the lane-chunking logic the trackers'
/// batched phases share. Pair each chunk with [`lane_width_for`] on its
/// length to pick that traversal's label width: only the final (short)
/// chunk of an auto-width batch drops to a narrower, cheaper path.
///
/// # Panics
/// Panics if `max_lanes` is zero or exceeds [`MAX_BATCH_LANES`].
#[inline]
pub fn lane_chunks<T>(items: &[T], max_lanes: usize) -> std::slice::Chunks<'_, T> {
    assert!(
        (1..=MAX_BATCH_LANES).contains(&max_lanes),
        "lane chunk size must be in [1, {MAX_BATCH_LANES}]"
    );
    items.chunks(max_lanes)
}

/// Sweep-direction policy of the bit-parallel traversals.
///
/// Both policies reach the same least fixpoint of the (monotone) label
/// propagation, so final label words — and everything derived from them —
/// are bit-identical; only the order work is discovered in differs, which
/// the `visit` contract already declares arbitrary.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SweepDirection {
    /// Push-based worklist only: pop a node, push its label across its
    /// (reverse) edges. Optimal while frontiers are narrow.
    #[default]
    TopDown,
    /// Direction-optimizing: start top-down, and when the pending frontier
    /// exceeds `1/8` of the live nodes switch to bottom-up rounds that
    /// scan every node index and *pull* from its neighbors (with software
    /// prefetch ahead of the scan cursor), dropping back to top-down once
    /// the per-round change set narrows again.
    Auto,
}

/// Frontier fraction (denominator) that triggers the top-down → bottom-up
/// switch under [`SweepDirection::Auto`]: pending ≥ live/8.
const BOTTOM_UP_DEN: usize = 8;
/// Minimum pending frontier before bottom-up is ever considered. Combined
/// with the `live/8` fraction this also implies `live ≥ 4096`: a bottom-up
/// round scans every node index, which on small graphs costs more than the
/// narrow top-down queue it replaces ever would.
const BOTTOM_UP_MIN_FRONTIER: usize = 512;
/// Scan distance (in node indices) the bottom-up rounds prefetch ahead.
const PREFETCH_DIST: usize = 8;
/// Queue-head threshold before a drain compaction is considered.
const DRAIN_MIN_HEAD: usize = 1024;

/// Process-wide count of traversals that entered a bottom-up round — a
/// test hook so conformance suites can assert the direction switch
/// actually fired on a dense stream.
static BOTTOM_UP_SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of bit-parallel traversals that ran at least one
/// bottom-up round since program start.
#[doc(hidden)]
pub fn bottom_up_sweeps() -> u64 {
    BOTTOM_UP_SWEEPS.load(Ordering::Relaxed)
}

/// Loads node `idx`'s `W`-word label from the stride-`W` label array.
#[inline(always)]
fn load_label<const W: usize>(labels: &[u64], idx: usize) -> [u64; W] {
    let mut out = [0u64; W];
    out.copy_from_slice(&labels[idx * W..idx * W + W]);
    out
}

/// Collects the union of the reverse reachability sets of `sources` into
/// `out` (cleared first), **in the exact order the per-source V̄ merge
/// produces**: sources in slice order, each contributing its not-yet-seen
/// ancestors in the order a full single-source reverse BFS from it would
/// first discover them.
///
/// This equivalence lets one shared traversal replace a full reverse BFS
/// per source: the seen set is always a union of *complete* ancestor sets
/// (ancestor-closed), so every in-neighbor of a seen node is itself seen —
/// pruning at seen nodes skips no new node, and the new nodes a pruned BFS
/// discovers appear in exactly the same relative order as the new-node
/// subsequence of the unpruned BFS (new nodes are only ever pushed while
/// expanding new nodes). Total work is linear in the union's size instead
/// of the sum of the per-source cone sizes. See DESIGN.md § Flat graph
/// core for the full argument.
pub fn reverse_reach_union_ordered<G: OutGraph + InGraph>(
    g: &G,
    sources: &[NodeId],
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    let max_start = sources.iter().map(|s| s.index() + 1).max().unwrap_or(0);
    scratch.begin(g.node_index_bound().max(max_start));
    let ReachScratch {
        visited,
        epoch,
        queue,
        ..
    } = scratch;
    let mut head = 0;
    for &s in sources {
        let slot = &mut visited[s.index()];
        if *slot == *epoch {
            // Subsumed source: its complete ancestor set is already seen.
            continue;
        }
        *slot = *epoch;
        queue.push(s);
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            g.for_each_in(v, |u| {
                let slot = &mut visited[u.index()];
                if *slot != *epoch {
                    *slot = *epoch;
                    queue.push(u);
                }
            });
        }
    }
    out.clear();
    out.extend_from_slice(queue);
}

/// Wide-lane bit-parallel multi-source **reverse** reachability, generic
/// over the label width `W` in `u64` words (`W · 64` lanes; shipped widths
/// are 1, 2 and 4 — see [`lane_width_for`]).
///
/// Lane `i` computes the union of the reverse reachability sets of
/// `lanes[i]` (every node that reaches any of its sources, sources
/// included). All lanes run in one label-propagation traversal: each node
/// carries a `[u64; W]` label whose bit `i` (bit `i % 64` of word
/// `i / 64`) means "this node is in lane `i`'s set". `visit` is called
/// exactly once per reached node with its final label, in first-touch
/// order (deterministic, but callers must treat it as arbitrary — the
/// sweep direction changes it).
///
/// `skip(v, u)` returns a mask of lanes that must **not** propagate across
/// the reverse hop `v ← u`; pass `|_, _| [0; W]` for plain reachability.
/// It must be a pure function of the edge: under
/// [`SweepDirection::Auto`] the same hop can be consulted again in either
/// direction and any round.
///
/// Both directions converge to the unique least fixpoint of the monotone
/// propagation rule `label(u) ⊇ label(v) ∖ skip(v, u)` for every live edge
/// `u → v` (plus the seeds), so final labels — and the visited set — are
/// bit-identical whichever path computed them; see DESIGN.md § Flat graph
/// core.
///
/// # Panics
/// Panics if more than `W * 64` lanes are given.
pub fn reverse_reach_batch<const W: usize, G: OutGraph + InGraph>(
    g: &G,
    lanes: &[&[NodeId]],
    mut skip: impl FnMut(NodeId, NodeId) -> [u64; W],
    direction: SweepDirection,
    scratch: &mut ReachScratch,
    mut visit: impl FnMut(NodeId, &[u64; W]),
) {
    assert!(
        lanes.len() <= W * 64,
        "at most {} lanes per {W}-word traversal",
        W * 64
    );
    let max_start = lanes
        .iter()
        .flat_map(|l| l.iter())
        .map(|s| s.index() + 1)
        .max()
        .unwrap_or(0);
    let bound = g.node_index_bound().max(max_start);
    let live = g.live_node_count().max(1);
    scratch.begin_batch(bound, W);
    let ReachScratch {
        visited,
        epoch,
        queue,
        labels,
        stamp2,
        epoch2,
        touched,
        batch_pushes,
        drain_compactions,
        drain_moved,
        bottom_up_rounds,
        ..
    } = scratch;
    for (i, lane) in lanes.iter().enumerate() {
        let (wi, bit) = (i >> 6, 1u64 << (i & 63));
        for &s in *lane {
            let idx = s.index();
            if visited[idx] != *epoch {
                visited[idx] = *epoch;
                labels[idx * W..idx * W + W].fill(0);
                touched.push(s);
            }
            labels[idx * W + wi] |= bit;
            if stamp2[idx] != *epoch2 {
                stamp2[idx] = *epoch2;
                queue.push(s);
                *batch_pushes += 1;
            }
        }
    }
    let mut head = 0;
    let mut switched = false;
    'sweep: loop {
        // --- Top-down: pop a node, push its label to its in-neighbors. ---
        while head < queue.len() {
            if direction == SweepDirection::Auto {
                let pending = queue.len() - head;
                if pending >= BOTTOM_UP_MIN_FRONTIER && pending * BOTTOM_UP_DEN >= live {
                    break;
                }
            }
            let v = queue[head];
            head += 1;
            stamp2[v.index()] = 0;
            let lv = load_label::<W>(labels, v.index());
            g.for_each_in(v, |u| {
                let sk = skip(v, u);
                let mut prop = [0u64; W];
                let mut any = 0u64;
                for w in 0..W {
                    prop[w] = lv[w] & !sk[w];
                    any |= prop[w];
                }
                if any == 0 {
                    return;
                }
                let idx = u.index();
                if visited[idx] != *epoch {
                    visited[idx] = *epoch;
                    labels[idx * W..idx * W + W].fill(0);
                    touched.push(u);
                }
                let mut grew = false;
                for w in 0..W {
                    let word = &mut labels[idx * W + w];
                    let grown = *word | prop[w];
                    if grown != *word {
                        *word = grown;
                        grew = true;
                    }
                }
                if grew && stamp2[idx] != *epoch2 {
                    stamp2[idx] = *epoch2;
                    queue.push(u);
                    *batch_pushes += 1;
                }
            });
            // A node can re-enter the worklist when its label grows again,
            // so the drained prefix is reclaimed once it dominates the
            // queue — the tail moved is then at most the prefix freed,
            // keeping total compaction work linear in total pushes.
            if head >= DRAIN_MIN_HEAD && head * 2 >= queue.len() {
                *drain_compactions += 1;
                *drain_moved += (queue.len() - head) as u64;
                queue.drain(..head);
                head = 0;
            }
        }
        if head >= queue.len() {
            break;
        }
        // --- Bottom-up: the frontier got wide; scan every node index and
        // pull from its out-neighbors instead. Pending worklist entries
        // are subsumed by the full scan, so their in-queue marks clear and
        // the queue is reused as the per-round change set. ---
        for &v in &queue[head..] {
            stamp2[v.index()] = 0;
        }
        queue.clear();
        head = 0;
        if !switched {
            switched = true;
            BOTTOM_UP_SWEEPS.fetch_add(1, Ordering::Relaxed);
        }
        loop {
            *bottom_up_rounds += 1;
            queue.clear();
            for idx in 0..bound {
                if idx + PREFETCH_DIST < bound {
                    g.prefetch_out(NodeId((idx + PREFETCH_DIST) as u32));
                }
                let u = NodeId(idx as u32);
                let first = visited[idx] != *epoch;
                let orig = if first {
                    [0u64; W]
                } else {
                    load_label::<W>(labels, idx)
                };
                let mut acc = orig;
                g.for_each_out(u, |v| {
                    let vi = v.index();
                    if visited[vi] != *epoch {
                        return;
                    }
                    let lvv = load_label::<W>(labels, vi);
                    let sk = skip(v, u);
                    for w in 0..W {
                        acc[w] |= lvv[w] & !sk[w];
                    }
                });
                if acc != orig {
                    if first {
                        visited[idx] = *epoch;
                        touched.push(u);
                    }
                    labels[idx * W..idx * W + W].copy_from_slice(&acc);
                    queue.push(u);
                }
            }
            if queue.is_empty() {
                break 'sweep;
            }
            if queue.len() * BOTTOM_UP_DEN < live {
                // The change set narrowed below the switch threshold:
                // resume top-down from exactly the nodes whose labels the
                // last round grew.
                for &u in queue.iter() {
                    stamp2[u.index()] = *epoch2;
                }
                *batch_pushes += queue.len() as u64;
                continue 'sweep;
            }
        }
    }
    for &n in touched.iter() {
        visit(n, &load_label::<W>(labels, n.index()));
    }
}

/// 64-lane bit-parallel multi-source **reverse** reachability — the
/// single-word, top-down configuration of [`reverse_reach_batch`],
/// retained as the measured PR 6 baseline and compatibility surface.
///
/// # Panics
/// Panics if more than [`BATCH_LANES`] lanes are given.
pub fn reverse_reach_batch64<G: OutGraph + InGraph>(
    g: &G,
    lanes: &[&[NodeId]],
    mut skip: impl FnMut(NodeId, NodeId) -> u64,
    scratch: &mut ReachScratch,
    mut visit: impl FnMut(NodeId, u64),
) {
    reverse_reach_batch::<1, G>(
        g,
        lanes,
        |v, u| [skip(v, u)],
        SweepDirection::TopDown,
        scratch,
        |n, words| visit(n, words[0]),
    );
}

/// Runs [`reverse_reach_batch`] (plain reachability, no skip mask) at a
/// label width chosen at **runtime** — the monomorphization dispatcher the
/// trackers' auto-width phases call with [`lane_width_for`]'s pick. Each
/// visited label is widened to a fixed four-word mask so callers decode
/// lane `i` uniformly as bit `i % 64` of word `i / 64`.
///
/// # Panics
/// Panics if `words` is not a shipped width (1, 2 or 4) or `lanes` exceeds
/// `words * 64`.
pub fn reverse_reach_batch_wide<G: OutGraph + InGraph>(
    g: &G,
    lanes: &[&[NodeId]],
    words: usize,
    direction: SweepDirection,
    scratch: &mut ReachScratch,
    mut visit: impl FnMut(NodeId, [u64; 4]),
) {
    match words {
        1 => reverse_reach_batch::<1, G>(
            g,
            lanes,
            |_, _| [0; 1],
            direction,
            scratch,
            |n, w| visit(n, [w[0], 0, 0, 0]),
        ),
        2 => reverse_reach_batch::<2, G>(
            g,
            lanes,
            |_, _| [0; 2],
            direction,
            scratch,
            |n, w| visit(n, [w[0], w[1], 0, 0]),
        ),
        4 => reverse_reach_batch::<4, G>(
            g,
            lanes,
            |_, _| [0; 4],
            direction,
            scratch,
            |n, w| visit(n, *w),
        ),
        other => panic!("unsupported label width: {other} words (shipped: 1, 2, 4)"),
    }
}

/// Wide-lane bit-parallel **forward** reachability counting: writes
/// `counts[i] = |reach(sources[i])|` (the singleton influence spread of
/// Definition 3) for up to `W · 64` sources in one label-propagation
/// traversal (lane `i` = bit `i % 64` of label word `i / 64`).
///
/// The values are exactly what [`reach_count`] returns per source: every
/// lane bit is set on a node exactly once (propagation is monotone) and
/// tallied at that moment, so the totals equal the final per-lane label
/// popcounts — independent of sweep direction and discovery order. Under
/// [`SweepDirection::Auto`] wide frontiers switch to bottom-up rounds that
/// pull from **in**-neighbors (hence the [`InGraph`] bound), with software
/// prefetch ahead of the scan.
///
/// # Panics
/// Panics if `sources` and `counts` differ in length or exceed `W * 64`.
pub fn reach_count_batch<const W: usize, G: OutGraph + InGraph>(
    g: &G,
    sources: &[NodeId],
    direction: SweepDirection,
    scratch: &mut ReachScratch,
    counts: &mut [u64],
) {
    assert!(
        sources.len() <= W * 64,
        "at most {} lanes per {W}-word traversal",
        W * 64
    );
    assert_eq!(sources.len(), counts.len());
    counts.fill(0);
    let max_start = sources.iter().map(|s| s.index() + 1).max().unwrap_or(0);
    let bound = g.node_index_bound().max(max_start);
    let live = g.live_node_count().max(1);
    scratch.begin_batch(bound, W);
    let ReachScratch {
        visited,
        epoch,
        queue,
        labels,
        stamp2,
        epoch2,
        batch_pushes,
        drain_compactions,
        drain_moved,
        bottom_up_rounds,
        ..
    } = scratch;
    let tally = |counts: &mut [u64], w: usize, mut added: u64| {
        while added != 0 {
            counts[(w << 6) + added.trailing_zeros() as usize] += 1;
            added &= added - 1;
        }
    };
    for (i, &s) in sources.iter().enumerate() {
        let (wi, bit) = (i >> 6, 1u64 << (i & 63));
        let idx = s.index();
        if visited[idx] != *epoch {
            visited[idx] = *epoch;
            labels[idx * W..idx * W + W].fill(0);
        }
        let word = &mut labels[idx * W + wi];
        if *word & bit == 0 {
            *word |= bit;
            tally(counts, wi, bit);
        }
        if stamp2[idx] != *epoch2 {
            stamp2[idx] = *epoch2;
            queue.push(s);
            *batch_pushes += 1;
        }
    }
    let mut head = 0;
    let mut switched = false;
    'sweep: loop {
        // --- Top-down: pop a node, push its label to its out-neighbors. ---
        while head < queue.len() {
            if direction == SweepDirection::Auto {
                let pending = queue.len() - head;
                if pending >= BOTTOM_UP_MIN_FRONTIER && pending * BOTTOM_UP_DEN >= live {
                    break;
                }
            }
            let v = queue[head];
            head += 1;
            stamp2[v.index()] = 0;
            let lv = load_label::<W>(labels, v.index());
            g.for_each_out(v, |u| {
                let idx = u.index();
                if visited[idx] != *epoch {
                    visited[idx] = *epoch;
                    labels[idx * W..idx * W + W].fill(0);
                }
                let mut grew = false;
                for w in 0..W {
                    let word = &mut labels[idx * W + w];
                    let added = lv[w] & !*word;
                    if added != 0 {
                        tally(counts, w, added);
                        *word |= added;
                        grew = true;
                    }
                }
                if grew && stamp2[idx] != *epoch2 {
                    stamp2[idx] = *epoch2;
                    queue.push(u);
                    *batch_pushes += 1;
                }
            });
            if head >= DRAIN_MIN_HEAD && head * 2 >= queue.len() {
                *drain_compactions += 1;
                *drain_moved += (queue.len() - head) as u64;
                queue.drain(..head);
                head = 0;
            }
        }
        if head >= queue.len() {
            break;
        }
        // --- Bottom-up: scan every node index and pull from in-neighbors. ---
        for &v in &queue[head..] {
            stamp2[v.index()] = 0;
        }
        queue.clear();
        head = 0;
        if !switched {
            switched = true;
            BOTTOM_UP_SWEEPS.fetch_add(1, Ordering::Relaxed);
        }
        loop {
            *bottom_up_rounds += 1;
            queue.clear();
            for idx in 0..bound {
                if idx + PREFETCH_DIST < bound {
                    g.prefetch_in(NodeId((idx + PREFETCH_DIST) as u32));
                }
                let u = NodeId(idx as u32);
                let first = visited[idx] != *epoch;
                let orig = if first {
                    [0u64; W]
                } else {
                    load_label::<W>(labels, idx)
                };
                let mut acc = orig;
                g.for_each_in(u, |v| {
                    let vi = v.index();
                    if visited[vi] != *epoch {
                        return;
                    }
                    let lvv = load_label::<W>(labels, vi);
                    for w in 0..W {
                        acc[w] |= lvv[w];
                    }
                });
                if acc != orig {
                    if first {
                        visited[idx] = *epoch;
                    }
                    for w in 0..W {
                        let added = acc[w] & !orig[w];
                        if added != 0 {
                            tally(counts, w, added);
                        }
                    }
                    labels[idx * W..idx * W + W].copy_from_slice(&acc);
                    queue.push(u);
                }
            }
            if queue.is_empty() {
                break 'sweep;
            }
            if queue.len() * BOTTOM_UP_DEN < live {
                for &u in queue.iter() {
                    stamp2[u.index()] = *epoch2;
                }
                *batch_pushes += queue.len() as u64;
                continue 'sweep;
            }
        }
    }
}

/// 64-lane bit-parallel **forward** reachability counting — the
/// single-word, top-down configuration of [`reach_count_batch`], retained
/// as the measured PR 6 baseline and compatibility surface.
///
/// # Panics
/// Panics if `sources` and `counts` differ in length or exceed
/// [`BATCH_LANES`].
pub fn reach_count_batch64<G: OutGraph + InGraph>(
    g: &G,
    sources: &[NodeId],
    scratch: &mut ReachScratch,
    counts: &mut [u64],
) {
    reach_count_batch::<1, G>(g, sources, SweepDirection::TopDown, scratch, counts);
}

/// Runs [`reach_count_batch`] at a label width chosen at **runtime** — the
/// monomorphization dispatcher for auto-width rebuild sweeps.
///
/// # Panics
/// Panics if `words` is not a shipped width (1, 2 or 4), or on any
/// [`reach_count_batch`] panic.
pub fn reach_count_batch_wide<G: OutGraph + InGraph>(
    g: &G,
    sources: &[NodeId],
    words: usize,
    direction: SweepDirection,
    scratch: &mut ReachScratch,
    counts: &mut [u64],
) {
    match words {
        1 => reach_count_batch::<1, G>(g, sources, direction, scratch, counts),
        2 => reach_count_batch::<2, G>(g, sources, direction, scratch, counts),
        4 => reach_count_batch::<4, G>(g, sources, direction, scratch, counts),
        other => panic!("unsupported label width: {other} words (shipped: 1, 2, 4)"),
    }
}

/// Shared, cheaply clonable counters describing what the incremental
/// spread engine did: clones share one tally (like
/// `tdn_submodular::OracleCounter`), so the many SIEVEADN instances inside
/// one tracker bill a single tracker-wide total. All counts are
/// deterministic functions of the stream — identical at every
/// `TDN_THREADS` setting — because classification and cache planning run
/// in the serial phases of `feed`.
#[derive(Clone, Debug, Default)]
pub struct SpreadStats(Arc<SpreadStatsInner>);

#[derive(Debug, Default)]
struct SpreadStatsInner {
    redundant_edges: AtomicU64,
    sink_delta_edges: AtomicU64,
    novel_edges: AtomicU64,
    probe_budget_exhausted: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    patched_batches: AtomicU64,
    rebuilt_batches: AtomicU64,
    shed_memo: AtomicU64,
    shed_arena: AtomicU64,
    shed_fallback: AtomicU64,
}

/// A plain-value copy of [`SpreadStats`] at one instant (what experiments
/// serialize and reports print).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpreadStatsSnapshot {
    /// Fresh edges proven reachability-redundant by the probe.
    pub redundant_edges: u64,
    /// Fresh edges into a batch-new sink, patched as exact `+1` deltas on
    /// the sink's ancestors instead of dirtying them.
    pub sink_delta_edges: u64,
    /// Fresh edges that may extend reachability (includes unproven ones).
    pub novel_edges: u64,
    /// Novel classifications caused by probe-budget exhaustion alone.
    pub probe_budget_exhausted: u64,
    /// Singleton spreads served from the memo without a BFS.
    pub cache_hits: u64,
    /// Singleton spreads recomputed by BFS (and stored into the memo).
    pub cache_misses: u64,
    /// Batches where the cost model consulted the memo per node.
    pub patched_batches: u64,
    /// Batches where the cost model chose a full rebuild (dirty-dominated).
    pub rebuilt_batches: u64,
    /// Budget-shedding level 1 events: memo caches dropped.
    pub shed_memo: u64,
    /// Budget-shedding level 2 events: recycled arena capacity released.
    pub shed_arena: u64,
    /// Budget-shedding level 3 events: fell back from incremental to
    /// full-recompute spread maintenance.
    pub shed_fallback: u64,
}

impl SpreadStats {
    /// Creates a zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fresh edge proven redundant.
    pub fn note_redundant(&self) {
        self.0.redundant_edges.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fresh edge patched as a new-sink `+1` delta.
    pub fn note_sink_delta(&self) {
        self.0.sink_delta_edges.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fresh edge classified novel (`exhausted` when the probe
    /// ran out of budget rather than proving non-reachability).
    pub fn note_novel(&self, exhausted: bool) {
        self.0.novel_edges.fetch_add(1, Ordering::Relaxed);
        if exhausted {
            self.0
                .probe_budget_exhausted
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `n` memo-served singleton evaluations.
    pub fn add_cache_hits(&self, n: u64) {
        self.0.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` BFS-recomputed singleton evaluations.
    pub fn add_cache_misses(&self, n: u64) {
        self.0.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one batch's patch-vs-rebuild decision.
    pub fn note_batch(&self, rebuilt: bool) {
        if rebuilt {
            self.0.rebuilt_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.0.patched_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a budget-shedding event at the given level (1 = memo
    /// caches, 2 = arena capacity, 3 = incremental→full fallback).
    pub fn note_shed(&self, level: u8) {
        let counter = match level {
            1 => &self.0.shed_memo,
            2 => &self.0.shed_arena,
            _ => &self.0.shed_fallback,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current tallies.
    pub fn snapshot(&self) -> SpreadStatsSnapshot {
        SpreadStatsSnapshot {
            redundant_edges: self.0.redundant_edges.load(Ordering::Relaxed),
            sink_delta_edges: self.0.sink_delta_edges.load(Ordering::Relaxed),
            novel_edges: self.0.novel_edges.load(Ordering::Relaxed),
            probe_budget_exhausted: self.0.probe_budget_exhausted.load(Ordering::Relaxed),
            cache_hits: self.0.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.0.cache_misses.load(Ordering::Relaxed),
            patched_batches: self.0.patched_batches.load(Ordering::Relaxed),
            rebuilt_batches: self.0.rebuilt_batches.load(Ordering::Relaxed),
            shed_memo: self.0.shed_memo.load(Ordering::Relaxed),
            shed_arena: self.0.shed_arena.load(Ordering::Relaxed),
            shed_fallback: self.0.shed_fallback.load(Ordering::Relaxed),
        }
    }

    /// Overwrites the tallies (checkpoint restore: a warm-restarted run
    /// resumes the exact counts of the interrupted one).
    pub fn restore(&self, s: &SpreadStatsSnapshot) {
        self.0
            .redundant_edges
            .store(s.redundant_edges, Ordering::Relaxed);
        self.0
            .sink_delta_edges
            .store(s.sink_delta_edges, Ordering::Relaxed);
        self.0.novel_edges.store(s.novel_edges, Ordering::Relaxed);
        self.0
            .probe_budget_exhausted
            .store(s.probe_budget_exhausted, Ordering::Relaxed);
        self.0.cache_hits.store(s.cache_hits, Ordering::Relaxed);
        self.0.cache_misses.store(s.cache_misses, Ordering::Relaxed);
        self.0
            .patched_batches
            .store(s.patched_batches, Ordering::Relaxed);
        self.0
            .rebuilt_batches
            .store(s.rebuilt_batches, Ordering::Relaxed);
        self.0.shed_memo.store(s.shed_memo, Ordering::Relaxed);
        self.0.shed_arena.store(s.shed_arena, Ordering::Relaxed);
        self.0
            .shed_fallback
            .store(s.shed_fallback, Ordering::Relaxed);
    }
}

impl SpreadStatsSnapshot {
    /// Serializes the tallies for checkpointing.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        for v in [
            self.redundant_edges,
            self.sink_delta_edges,
            self.novel_edges,
            self.probe_budget_exhausted,
            self.cache_hits,
            self.cache_misses,
            self.patched_batches,
            self.rebuilt_batches,
        ] {
            w.put_u64(v);
        }
    }

    /// Reconstructs tallies from [`Self::write_snapshot`] bytes.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        Ok(SpreadStatsSnapshot {
            redundant_edges: r.get_u64()?,
            sink_delta_edges: r.get_u64()?,
            novel_edges: r.get_u64()?,
            probe_budget_exhausted: r.get_u64()?,
            cache_hits: r.get_u64()?,
            cache_misses: r.get_u64()?,
            patched_batches: r.get_u64()?,
            rebuilt_batches: r.get_u64()?,
            ..Default::default()
        })
    }

    /// Serializes every tally, shed counters included — the sectioned
    /// (format v3) layout. [`Self::write_snapshot`] keeps the original
    /// eight-field layout so v2 checkpoints stay byte-identical.
    pub fn write_snapshot_v3(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
        w.put_u64(self.shed_memo);
        w.put_u64(self.shed_arena);
        w.put_u64(self.shed_fallback);
    }

    /// Reconstructs tallies from [`Self::write_snapshot_v3`] bytes.
    pub fn read_snapshot_v3(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let mut s = Self::read_snapshot(r)?;
        s.shed_memo = r.get_u64()?;
        s.shed_arena = r.get_u64()?;
        s.shed_fallback = r.get_u64()?;
        Ok(s)
    }
}

/// Memoised singleton spreads with per-batch dirty-set tracking — the heart
/// of the incremental spread-maintenance engine.
///
/// ## Invariant
///
/// Between batches, every *valid* entry equals the node's exact current
/// singleton spread `f({v}) = |reach(v)|` in the owning (addition-only)
/// graph. The owner upholds this by, each batch:
///
/// 1. calling [`begin_batch`](Self::begin_batch) (clears the dirty set);
/// 2. marking **every node whose reach may have changed** dirty — i.e. the
///    ancestors of each source of a *novel* fresh edge (edges proven
///    redundant by [`reverse_reachable_within`] change no reach set, see
///    the DESIGN.md proof);
/// 3. serving lookups only through [`lookup`](Self::lookup), which refuses
///    dirty or never-stored entries, and re-storing every recomputed value
///    via [`store`](Self::store).
///
/// The dirty set is **ancestor-closed** (a union of complete
/// reverse-reachability sets), which is what lets
/// [`mark_ancestors_dirty`](Self::mark_ancestors_dirty) prune its reverse
/// BFS at already-dirty nodes, the same way `marginal_gain` prunes at
/// covered nodes.
///
/// Values served from the memo are *exactly* what a fresh BFS would return,
/// so consumers are bit-identical to a full-recompute run by construction;
/// the differential conformance suite (`tests/differential_spread.rs`)
/// enforces this end to end.
#[derive(Clone, Debug, Default)]
pub struct SpreadMemo {
    value: Vec<u64>,
    valid: Vec<bool>,
    dirty: EpochSet,
    /// Per-batch exact spread deltas (new-sink `+1` patches): node `n`'s
    /// spread grew by `delta_count[n]` this batch iff `delta.contains(n)`.
    delta: EpochSet,
    delta_count: Vec<u32>,
    /// Reusable BFS queue for [`Self::mark_ancestors_dirty`].
    queue: Vec<NodeId>,
    /// Reusable buffers for [`Self::apply_old_sink_delta`].
    bmark: EpochSet,
    abuf: Vec<NodeId>,
    bbuf: Vec<NodeId>,
    /// Adaptive probe-gate counters (see [`Self::probe_gate`]).
    probes_run: u64,
    probes_hit: u64,
    probe_skips: u64,
    stats: SpreadStats,
}

impl SpreadMemo {
    /// Creates an empty memo billing a fresh [`SpreadStats`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node slots currently tracked.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the memo tracks no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Replaces the stats handle (trackers share one tally across all
    /// their instances, like the oracle counter).
    pub fn set_stats(&mut self, stats: SpreadStats) {
        self.stats = stats;
    }

    /// The stats handle this memo bills.
    pub fn stats(&self) -> &SpreadStats {
        &self.stats
    }

    /// Starts a new batch: grows the per-node arrays to `bound` and clears
    /// the dirty set in O(1).
    pub fn begin_batch(&mut self, bound: usize) {
        if self.value.len() < bound {
            self.value.resize(bound, 0);
            self.valid.resize(bound, false);
            self.delta_count.resize(bound, 0);
        }
        self.dirty.clear();
        self.delta.clear();
    }

    /// Marks `n` dirty; returns `true` if newly marked.
    #[inline]
    pub fn mark_dirty(&mut self, n: NodeId) -> bool {
        self.dirty.insert(n)
    }

    /// Whether `n` is dirty this batch.
    #[inline]
    pub fn is_dirty(&self, n: NodeId) -> bool {
        self.dirty.contains(n)
    }

    /// Number of nodes marked dirty this batch.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Marks `start` and everything that can reach it dirty, pruning the
    /// reverse BFS at already-dirty nodes (sound because the dirty set is
    /// ancestor-closed).
    pub fn mark_ancestors_dirty<G: InGraph>(&mut self, g: &G, start: NodeId) {
        if !self.dirty.insert(start) {
            return;
        }
        let SpreadMemo { dirty, queue, .. } = self;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            g.for_each_in(v, |u| {
                if dirty.insert(u) {
                    queue.push(u);
                }
            });
        }
    }

    /// Adds one exact `+1` spread delta to `n` this batch (a batch-new
    /// sink became reachable from it).
    #[inline]
    pub fn add_delta(&mut self, n: NodeId) {
        self.add_delta_n(n, 1);
    }

    /// Adds `k` exact `+1` spread deltas to `n` this batch (`k` distinct
    /// batch-new sinks became reachable from it — e.g. one BFS covering
    /// all single-source sinks hanging off one hub).
    #[inline]
    pub fn add_delta_n(&mut self, n: NodeId, k: u32) {
        if self.delta.insert(n) {
            self.delta_count[n.index()] = k;
        } else {
            self.delta_count[n.index()] += k;
        }
    }

    /// The exact spread delta accumulated for `n` this batch.
    #[inline]
    pub fn delta_of(&self, n: NodeId) -> u64 {
        if self.delta.contains(n) {
            self.delta_count[n.index()] as u64
        } else {
            0
        }
    }

    /// Cost-model gate for redundancy probes. Probing pays only in
    /// workloads where shortcut edges actually occur, so the gate stays
    /// open through a warm-up window and while the observed hit rate is at
    /// least ~3%, then throttles to one sampled probe per 64 eligible
    /// edges so a drifting workload can re-open it. Purely count-based —
    /// no clocks — so decisions are deterministic, thread-count-invariant,
    /// and snapshot-stable.
    pub fn probe_gate(&mut self) -> bool {
        const WARMUP: u64 = 64;
        const MIN_HIT_DIV: u64 = 32;
        const REPROBE_EVERY: u64 = 64;
        if self.probes_run < WARMUP || self.probes_hit * MIN_HIT_DIV >= self.probes_run {
            return true;
        }
        self.probe_skips += 1;
        self.probe_skips.is_multiple_of(REPROBE_EVERY)
    }

    /// Records a completed probe (`hit` when it proved redundancy).
    pub fn note_probe(&mut self, hit: bool) {
        self.probes_run += 1;
        if hit {
            self.probes_hit += 1;
        }
    }

    /// Applies one **pre-existing sink**'s exact delta: every node that
    /// reaches a fresh in-edge source of `sink` (the set `A`, one
    /// multi-source reverse BFS) gains exactly the sink — unless it could
    /// already reach it through an old in-edge (the set `B`, one reverse
    /// BFS from the sink that skips the fresh direct hops). For clean
    /// nodes `A ∖ B` is exactly the set whose spread grew, and it grew by
    /// exactly 1 (the sink contributes nothing beyond itself); see
    /// DESIGN.md § Incremental spread maintenance for the proof.
    pub fn apply_old_sink_delta<G: OutGraph + InGraph>(
        &mut self,
        g: &G,
        sink: NodeId,
        fresh_sources: &[NodeId],
        scratch: &mut ReachScratch,
    ) {
        let mut b = std::mem::take(&mut self.bbuf);
        reverse_reach_excluding(g, sink, fresh_sources, scratch, &mut b);
        self.bmark.clear();
        for &x in &b {
            self.bmark.insert(x);
        }
        let mut a = std::mem::take(&mut self.abuf);
        reverse_reach_multi_collect(g, fresh_sources, scratch, &mut a);
        for &x in &a {
            if !self.bmark.contains(x) {
                self.add_delta(x);
            }
        }
        self.abuf = a;
        self.bbuf = b;
    }

    /// Applies the exact deltas of many pre-existing sinks with two lanes
    /// per sink in bit-parallel reverse traversals ([`BATCH_LANES`]` / 2`
    /// sinks per traversal): lane `2i` is sink `i`'s `A` side (everything
    /// reaching a fresh in-edge source) and lane `2i + 1` its `B` side
    /// (everything reaching the sink without the fresh direct hops, via
    /// the `skip` mask). A node gains `+1` per sink whose `A` bit is set
    /// and `B` bit clear — identical per-node totals to calling
    /// [`Self::apply_old_sink_delta`] once per sink, in two traversals per
    /// 32 sinks instead of two full reverse BFSs per sink.
    pub fn apply_old_sink_deltas_batch64<G: OutGraph + InGraph>(
        &mut self,
        g: &G,
        sinks: &[(NodeId, Vec<NodeId>)],
        scratch: &mut ReachScratch,
    ) {
        self.apply_old_sink_deltas_batch::<1, G>(g, sinks, SweepDirection::TopDown, scratch);
    }

    /// [`Self::apply_old_sink_deltas_batch64`] at a label width chosen at
    /// runtime (`words * 32` sinks per traversal) with an explicit sweep
    /// direction — the auto-width phase-3b entry point. Per-node delta
    /// totals are identical at every width and direction.
    ///
    /// # Panics
    /// Panics if `words` is not a shipped width (1, 2 or 4).
    pub fn apply_old_sink_deltas_wide<G: OutGraph + InGraph>(
        &mut self,
        g: &G,
        sinks: &[(NodeId, Vec<NodeId>)],
        words: usize,
        direction: SweepDirection,
        scratch: &mut ReachScratch,
    ) {
        match words {
            1 => self.apply_old_sink_deltas_batch::<1, G>(g, sinks, direction, scratch),
            2 => self.apply_old_sink_deltas_batch::<2, G>(g, sinks, direction, scratch),
            4 => self.apply_old_sink_deltas_batch::<4, G>(g, sinks, direction, scratch),
            other => panic!("unsupported label width: {other} words (shipped: 1, 2, 4)"),
        }
    }

    /// The width-generic core of the batched old-sink patch: two lanes per
    /// sink (`2i` = `A` side, `2i + 1` = `B` side; a pair never straddles a
    /// word boundary because `2i` is even), `W * 32` sinks per traversal.
    fn apply_old_sink_deltas_batch<const W: usize, G: OutGraph + InGraph>(
        &mut self,
        g: &G,
        sinks: &[(NodeId, Vec<NodeId>)],
        direction: SweepDirection,
        scratch: &mut ReachScratch,
    ) {
        for chunk in sinks.chunks(W * BATCH_LANES / 2) {
            let mut lanes: Vec<&[NodeId]> = Vec::with_capacity(chunk.len() * 2);
            let mut sink_nodes: Vec<NodeId> = Vec::with_capacity(chunk.len());
            // O(1) pre-check so the overwhelmingly common non-sink node
            // costs one word probe per expanded edge, not a chunk scan.
            let mut sink_bits = NodeBitSet::new();
            for (sink, fresh) in chunk {
                lanes.push(fresh.as_slice());
                lanes.push(std::slice::from_ref(sink));
                sink_nodes.push(*sink);
                sink_bits.insert(*sink);
            }
            let skip = |v: NodeId, u: NodeId| -> [u64; W] {
                // Lane 2i+1 must not walk sink_i's fresh direct in-edges.
                let mut mask = [0u64; W];
                if !sink_bits.contains(v) {
                    return mask;
                }
                if let Some(i) = sink_nodes.iter().position(|&s| s == v) {
                    if chunk[i].1.contains(&u) {
                        let lane = 2 * i + 1;
                        mask[lane >> 6] = 1u64 << (lane & 63);
                    }
                }
                mask
            };
            let deltas = &mut *self;
            reverse_reach_batch::<W, G>(g, &lanes, skip, direction, scratch, |n, label| {
                // Bits 2i (A) without their 2i+1 (B) partner, per word.
                let mut k = 0u32;
                for &word in label {
                    let gained = word & !(word >> 1) & 0x5555_5555_5555_5555;
                    k += gained.count_ones();
                }
                if k > 0 {
                    deltas.add_delta_n(n, k);
                }
            });
        }
    }

    /// The memoised spread of `n`, if stored and clean this batch.
    #[inline]
    pub fn lookup(&self, n: NodeId) -> Option<u64> {
        if self.valid.get(n.index()).copied().unwrap_or(false) && !self.dirty.contains(n) {
            Some(self.value[n.index()])
        } else {
            None
        }
    }

    /// The memoised spread of `n` with this batch's exact delta applied —
    /// what phase 4a stores and serves for clean nodes.
    #[inline]
    pub fn lookup_patched(&self, n: NodeId) -> Option<u64> {
        self.lookup(n).map(|v| v + self.delta_of(n))
    }

    /// Stores the freshly computed spread of `n` (caller guarantees the
    /// value is exact for the current graph).
    #[inline]
    pub fn store(&mut self, n: NodeId, spread: u64) {
        self.value[n.index()] = spread;
        self.valid[n.index()] = true;
    }

    /// Forgets every stored value (mode switches: a memo that stopped
    /// observing mutations can no longer be trusted).
    pub fn clear_cache(&mut self) {
        self.valid.fill(false);
        self.dirty.clear();
        self.delta.clear();
    }

    /// Forgets every stored value **and** returns the backing allocations
    /// to the allocator — the memory-budget shedding hook. The next
    /// [`Self::begin_batch`] regrows empty arrays, so this is equivalent to
    /// a fresh memo (correctness-preserving: served values are always
    /// recomputed exactly on miss). The probe-gate counters survive, so
    /// probe decisions stay a deterministic function of the stream.
    /// Returns the approximate bytes released.
    pub fn release_memory(&mut self) -> usize {
        let before = self.approx_bytes();
        self.value = Vec::new();
        self.valid = Vec::new();
        self.delta_count = Vec::new();
        self.dirty = EpochSet::new();
        self.delta = EpochSet::new();
        self.bmark = EpochSet::new();
        self.queue = Vec::new();
        self.abuf = Vec::new();
        self.bbuf = Vec::new();
        before.saturating_sub(self.approx_bytes())
    }

    /// Approximate heap footprint in bytes (counted by the owners'
    /// `approx_bytes`, so memoisation cannot hide from memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.value.capacity() * std::mem::size_of::<u64>()
            + self.valid.capacity()
            + self.dirty.approx_bytes()
            + self.delta.approx_bytes()
            + self.delta_count.capacity() * std::mem::size_of::<u32>()
            + self.bmark.approx_bytes()
            + (self.queue.capacity() + self.abuf.capacity() + self.bbuf.capacity())
                * std::mem::size_of::<NodeId>()
    }

    /// Serializes the memo: validity flags and values, plus the adaptive
    /// probe-gate counters (so a warm restart makes the same probe
    /// decisions as an uninterrupted run). The dirty and delta sets are
    /// per-batch transient and always empty between batches.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_len(self.value.len());
        for i in 0..self.value.len() {
            w.put_bool(self.valid[i]);
            if self.valid[i] {
                w.put_u64(self.value[i]);
            }
        }
        w.put_u64(self.probes_run);
        w.put_u64(self.probes_hit);
        w.put_u64(self.probe_skips);
    }

    /// Reconstructs a memo from [`Self::write_snapshot`] bytes. `bound` is
    /// the owning graph's node-index bound: a memo larger than the graph,
    /// or a stored spread outside `[1, bound]` (a spread counts at least
    /// the node itself and at most every node), is a typed error — a
    /// corrupt memo would silently change answers, since served values are
    /// trusted as exact.
    pub fn read_snapshot(r: &mut codec::Reader<'_>, bound: usize) -> codec::Result<Self> {
        let n = r.get_len(1)?;
        if n > bound {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo larger than the graph's node bound",
            ));
        }
        let mut memo = SpreadMemo::new();
        memo.value = vec![0; n];
        memo.valid = vec![false; n];
        memo.delta_count = vec![0; n];
        for i in 0..n {
            if r.get_bool()? {
                let v = r.get_u64()?;
                if v == 0 || v > bound as u64 {
                    return Err(codec::CodecError::Invalid(
                        "SpreadMemo stored spread outside [1, node bound]",
                    ));
                }
                memo.value[i] = v;
                memo.valid[i] = true;
            }
        }
        memo.probes_run = r.get_u64()?;
        memo.probes_hit = r.get_u64()?;
        memo.probe_skips = r.get_u64()?;
        if memo.probes_hit > memo.probes_run {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo probe hits exceed probes run",
            ));
        }
        Ok(memo)
    }

    /// Serializes the memo as raw word runs — validity bitmap (one bit per
    /// slot, packed LE into `u64` words), then the valid values
    /// concatenated in index order, then the probe-gate counters. The
    /// mmap-friendly sectioned-save alternative to the element-wise
    /// [`Self::write_snapshot`].
    pub fn write_snapshot_raw(&self, w: &mut codec::Writer) {
        w.put_len(self.value.len());
        let mut bitmap = vec![0u64; self.value.len().div_ceil(64)];
        let mut values: Vec<u64> = Vec::new();
        for (i, &valid) in self.valid.iter().enumerate() {
            if valid {
                bitmap[i >> 6] |= 1u64 << (i & 63);
                values.push(self.value[i]);
            }
        }
        w.put_u64_run(&bitmap);
        w.put_u64_run(&values);
        w.put_u64(self.probes_run);
        w.put_u64(self.probes_hit);
        w.put_u64(self.probe_skips);
    }

    /// Reconstructs a memo from [`Self::write_snapshot_raw`] bytes with the
    /// same validation as [`Self::read_snapshot`].
    pub fn read_snapshot_raw(r: &mut codec::Reader<'_>, bound: usize) -> codec::Result<Self> {
        // Slots are bitmap-packed (1 bit each), so `get_len`'s byte-per-
        // element guard would reject valid payloads; the bound check below
        // caps the allocation instead.
        let n = r.get_u64()? as usize;
        if n > bound {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo larger than the graph's node bound",
            ));
        }
        let bitmap = r.get_u64_run()?;
        if bitmap.len() != n.div_ceil(64) {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo validity bitmap has the wrong word count",
            ));
        }
        if !n.is_multiple_of(64) && bitmap.last().is_some_and(|&w| w >> (n % 64) != 0) {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo validity bitmap marks slots past the end",
            ));
        }
        let values = r.get_u64_run()?;
        let total: usize = bitmap.iter().map(|w| w.count_ones() as usize).sum();
        if values.len() != total {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo value run disagrees with validity bitmap",
            ));
        }
        let mut memo = SpreadMemo::new();
        memo.value = vec![0; n];
        memo.valid = vec![false; n];
        memo.delta_count = vec![0; n];
        let mut next = 0usize;
        for i in 0..n {
            if bitmap[i >> 6] >> (i & 63) & 1 != 0 {
                let v = values[next];
                next += 1;
                if v == 0 || v > bound as u64 {
                    return Err(codec::CodecError::Invalid(
                        "SpreadMemo stored spread outside [1, node bound]",
                    ));
                }
                memo.value[i] = v;
                memo.valid[i] = true;
            }
        }
        memo.probes_run = r.get_u64()?;
        memo.probes_hit = r.get_u64()?;
        memo.probe_skips = r.get_u64()?;
        if memo.probes_hit > memo.probes_run {
            return Err(codec::CodecError::Invalid(
                "SpreadMemo probe hits exceed probes run",
            ));
        }
        Ok(memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::AdnGraph;

    fn line_graph(n: u32) -> AdnGraph {
        // 0 -> 1 -> 2 -> ... -> n-1
        let mut g = AdnGraph::new();
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn reach_count_on_a_line() {
        let g = line_graph(5);
        let mut s = ReachScratch::new();
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 5);
        assert_eq!(reach_count(&g, NodeId(3), &mut s), 2);
        assert_eq!(reach_count(&g, NodeId(4), &mut s), 1);
    }

    #[test]
    fn reach_handles_cycles() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let mut s = ReachScratch::new();
        for i in 0..3 {
            assert_eq!(reach_count(&g, NodeId(i), &mut s), 3);
        }
    }

    #[test]
    fn reach_collect_matches_count() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let mut s = ReachScratch::new();
        let mut out = Vec::new();
        reach_collect(&g, NodeId(0), &mut s, &mut out);
        out.sort();
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn marginal_gain_prunes_at_cover() {
        let g = line_graph(6);
        let mut s = ReachScratch::new();
        let mut cover = CoverSet::new();
        let mut gained = Vec::new();
        // Cover = reach(3) = {3,4,5}.
        extend_cover(&g, NodeId(3), &mut cover, &mut s);
        assert_eq!(cover.len(), 3);
        // Gain of 0 = {0,1,2} only.
        let gain = marginal_gain(&g, NodeId(0), &cover, &mut s, &mut gained);
        assert_eq!(gain, 3);
        assert!(gained.contains(&NodeId(0)));
        assert!(!gained.contains(&NodeId(3)));
        // Gain of already-covered node is zero.
        assert_eq!(marginal_gain(&g, NodeId(4), &cover, &mut s, &mut gained), 0);
    }

    #[test]
    fn extend_cover_is_idempotent() {
        let g = line_graph(4);
        let mut s = ReachScratch::new();
        let mut cover = CoverSet::new();
        assert_eq!(extend_cover(&g, NodeId(1), &mut cover, &mut s), 3);
        assert_eq!(extend_cover(&g, NodeId(1), &mut cover, &mut s), 0);
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn reverse_reach_finds_ancestors() {
        // 0 -> 2, 1 -> 2, 2 -> 3
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let mut s = ReachScratch::new();
        let mut out = Vec::new();
        reverse_reach_collect(&g, NodeId(2), &mut s, &mut out);
        out.sort();
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(2)]);
        reverse_reach_collect(&g, NodeId(3), &mut s, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn scratch_pool_reuses_and_accounts_arenas() {
        let g = line_graph(64);
        let pool = ScratchPool::new();
        assert_eq!(pool.approx_bytes(), 0, "fresh pool owns no buffers");
        assert_eq!(pool.with(|s| reach_count(&g, NodeId(0), s)), 64);
        let warm = pool.approx_bytes();
        assert!(warm > 0, "used arena must be accounted");
        // A second serial traversal checks out the same warm arena.
        assert_eq!(pool.with(|s| reach_count(&g, NodeId(1), s)), 63);
        assert_eq!(pool.approx_bytes(), warm);
        // Clones (instance copies) start cold.
        assert_eq!(pool.clone().approx_bytes(), 0);
    }

    #[test]
    fn scratch_pool_serves_concurrent_workers() {
        let g = line_graph(32);
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..32u32 {
                        let n = pool.with(|s| reach_count(&g, NodeId(i), s));
                        assert_eq!(n, 32 - i as u64);
                    }
                });
            }
        });
    }

    #[test]
    fn epoch_wrap_resets_marks() {
        let g = line_graph(3);
        let mut s = ReachScratch::new();
        s.epoch = u32::MAX - 1;
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3);
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3); // wraps here
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3);
    }

    #[test]
    fn reverse_reachable_within_answers_and_respects_budget() {
        let g = line_graph(6); // 0 -> 1 -> ... -> 5
        let mut s = ReachScratch::new();
        assert_eq!(
            reverse_reachable_within(&g, NodeId(0), NodeId(5), &mut s, 100),
            Some(true)
        );
        assert_eq!(
            reverse_reachable_within(&g, NodeId(5), NodeId(0), &mut s, 100),
            Some(false)
        );
        assert_eq!(
            reverse_reachable_within(&g, NodeId(2), NodeId(2), &mut s, 0),
            Some(true)
        );
        // Finding node 0 among node 5's ancestors needs 5 expansions;
        // fewer is inconclusive, never a wrong answer.
        assert_eq!(
            reverse_reachable_within(&g, NodeId(0), NodeId(5), &mut s, 3),
            None
        );
        assert_eq!(
            reverse_reachable_within(&g, NodeId(0), NodeId(5), &mut s, 5),
            Some(true)
        );
        // Exhausting the ancestor frontier inside the budget is a
        // definite no: node 0 has no in-edges.
        assert_eq!(
            reverse_reachable_within(&g, NodeId(4), NodeId(0), &mut s, 3),
            Some(false)
        );
        // Unknown source can never be an ancestor.
        assert_eq!(
            reverse_reachable_within(&g, NodeId(40), NodeId(0), &mut s, 3),
            Some(false)
        );
    }

    #[test]
    fn spread_memo_upholds_the_exactness_invariant() {
        // Line 0 -> 1 -> 2; spreads 3, 2, 1.
        let mut g = line_graph(3);
        let mut s = ReachScratch::new();
        let mut memo = SpreadMemo::new();
        memo.begin_batch(g.node_index_bound());
        assert_eq!(memo.lookup(NodeId(0)), None, "cold memo serves nothing");
        for i in 0..3u32 {
            let n = reach_count(&g, NodeId(i), &mut s);
            memo.store(NodeId(i), n);
        }
        // Next batch: a novel edge 2 -> 3 dirties ancestors(2) = {0,1,2}.
        g.add_edge(NodeId(2), NodeId(3));
        memo.begin_batch(g.node_index_bound());
        memo.mark_ancestors_dirty(&g, NodeId(2));
        assert_eq!(memo.dirty_len(), 3);
        for i in 0..3u32 {
            assert_eq!(memo.lookup(NodeId(i)), None, "dirty nodes must recompute");
        }
        // A redundant batch (no novel edges) serves every stored value.
        for i in 0..3u32 {
            memo.store(NodeId(i), reach_count(&g, NodeId(i), &mut s));
        }
        memo.begin_batch(g.node_index_bound());
        assert_eq!(memo.lookup(NodeId(0)), Some(4));
        assert_eq!(memo.lookup(NodeId(2)), Some(2));
        assert_eq!(memo.lookup(NodeId(3)), None, "never stored");
        memo.clear_cache();
        assert_eq!(memo.lookup(NodeId(0)), None, "cleared cache serves nothing");
    }

    #[test]
    fn mark_ancestors_dirty_prunes_at_dirty_nodes() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let mut memo = SpreadMemo::new();
        memo.begin_batch(g.node_index_bound());
        memo.mark_ancestors_dirty(&g, NodeId(1));
        assert_eq!(memo.dirty_len(), 2); // {1, 0}
                                         // Marking from 3 prunes at the already-dirty 1 but still reaches 2.
        memo.mark_ancestors_dirty(&g, NodeId(3));
        assert_eq!(memo.dirty_len(), 4);
        for i in 0..4u32 {
            assert!(memo.is_dirty(NodeId(i)));
        }
    }

    #[test]
    fn reverse_reach_multi_collect_unions_ancestor_sets() {
        // 0 -> 2, 1 -> 2, 3 -> 4 (two components).
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        let mut s = ReachScratch::new();
        let mut out = Vec::new();
        reverse_reach_multi_collect(&g, &[NodeId(2), NodeId(4)], &mut s, &mut out);
        out.sort();
        assert_eq!(
            out,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        // Duplicate starts dedup; empty starts yield the empty set.
        reverse_reach_multi_collect(&g, &[NodeId(2), NodeId(2)], &mut s, &mut out);
        assert_eq!(out.len(), 3);
        reverse_reach_multi_collect(&g, &[], &mut s, &mut out);
        assert!(out.is_empty());
    }

    /// Deterministic random digraph for differential traversal tests.
    fn random_graph(seed: u64, nodes: u32, edges: usize) -> AdnGraph {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rnd = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        let mut g = AdnGraph::new();
        for _ in 0..edges {
            let (u, v) = (rnd(nodes), rnd(nodes));
            if u != v {
                g.add_edge(NodeId(u), NodeId(v));
            }
        }
        g
    }

    #[test]
    fn union_ordered_matches_per_source_full_bfs_merge() {
        // The shared-sweep fast path must reproduce, node for node in
        // order, what the per-source full reverse BFS + dedup merge (the
        // V̄_t construction both spread modes replay) produces.
        for seed in 0..30u64 {
            let g = random_graph(seed, 24, 40);
            let mut state = seed.wrapping_add(7) | 1;
            let mut rnd = move |m: u32| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % m
            };
            let sources: Vec<NodeId> = (0..1 + rnd(8)).map(|_| NodeId(rnd(24))).collect();
            let mut s = ReachScratch::new();
            // Reference: full BFS per source, merged with dedup in order.
            let mut reference = Vec::new();
            let mut seen = crate::hash::FxHashSet::default();
            let mut one = Vec::new();
            for &src in &sources {
                reverse_reach_collect(&g, src, &mut s, &mut one);
                for &a in &one {
                    if seen.insert(a) {
                        reference.push(a);
                    }
                }
            }
            let mut got = Vec::new();
            reverse_reach_union_ordered(&g, &sources, &mut s, &mut got);
            assert_eq!(got, reference, "seed {seed} sources {sources:?}");
        }
    }

    #[test]
    fn reach_count_batch64_matches_scalar_counts() {
        for seed in 0..20u64 {
            let g = random_graph(seed, 40, 90);
            let sources: Vec<NodeId> = (0..40).map(NodeId).collect();
            let mut s = ReachScratch::new();
            for chunk in sources.chunks(BATCH_LANES) {
                let mut counts = vec![0u64; chunk.len()];
                reach_count_batch64(&g, chunk, &mut s, &mut counts);
                for (&src, &got) in chunk.iter().zip(&counts) {
                    assert_eq!(got, reach_count(&g, src, &mut s), "seed {seed} src {src:?}");
                }
            }
        }
    }

    #[test]
    fn reach_count_batch64_handles_lane_edges() {
        let g = line_graph(4);
        let mut s = ReachScratch::new();
        // Empty batch is a no-op.
        reach_count_batch64(&g, &[], &mut s, &mut []);
        // Duplicate sources occupy independent lanes with equal counts; a
        // 64-lane full batch exercises the top bit.
        let sources: Vec<NodeId> = (0..64).map(|i| NodeId(i % 4)).collect();
        let mut counts = vec![0u64; 64];
        reach_count_batch64(&g, &sources, &mut s, &mut counts);
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, 4 - (i as u64 % 4));
        }
    }

    #[test]
    fn reverse_batch64_lanes_match_multi_collect() {
        for seed in 0..20u64 {
            let g = random_graph(seed.wrapping_add(100), 30, 55);
            let lane_sources: Vec<Vec<NodeId>> = (0..10)
                .map(|i| {
                    (0..1 + (seed + i) % 3)
                        .map(|j| NodeId(((seed * 7 + i * 5 + j * 11) % 30) as u32))
                        .collect()
                })
                .collect();
            let lanes: Vec<&[NodeId]> = lane_sources.iter().map(Vec::as_slice).collect();
            let mut s = ReachScratch::new();
            let mut per_node: Vec<u64> = vec![0; 64];
            reverse_reach_batch64(
                &g,
                &lanes,
                |_, _| 0,
                &mut s,
                |n, mask| {
                    per_node[n.index()] = mask;
                },
            );
            let mut expect = Vec::new();
            for (i, srcs) in lane_sources.iter().enumerate() {
                reverse_reach_multi_collect(&g, srcs, &mut s, &mut expect);
                for n in 0..30u32 {
                    let in_lane = expect.contains(&NodeId(n));
                    let bit = per_node[n as usize] >> i & 1 == 1;
                    assert_eq!(bit, in_lane, "seed {seed} lane {i} node {n}");
                }
            }
        }
    }

    #[test]
    fn batched_old_sink_deltas_match_sequential_patch() {
        for seed in 0..15u64 {
            let mut g = random_graph(seed.wrapping_add(500), 25, 40);
            // Pick some "sinks" and attach fresh in-edges to them.
            let mut state = seed | 1;
            let mut rnd = move |m: u32| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % m
            };
            let mut sinks: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
            for i in 0..1 + rnd(4) {
                let sink = NodeId(25 + i);
                let fresh: Vec<NodeId> = (0..1 + rnd(3)).map(|_| NodeId(rnd(25))).collect();
                for &f in &fresh {
                    g.add_edge(f, sink);
                }
                sinks.push((sink, fresh));
            }
            let bound = g.node_index_bound();
            let mut s = ReachScratch::new();
            let mut seq = SpreadMemo::new();
            seq.begin_batch(bound);
            for (sink, fresh) in &sinks {
                seq.apply_old_sink_delta(&g, *sink, fresh, &mut s);
            }
            let mut batched = SpreadMemo::new();
            batched.begin_batch(bound);
            batched.apply_old_sink_deltas_batch64(&g, &sinks, &mut s);
            for n in 0..bound as u32 {
                assert_eq!(
                    batched.delta_of(NodeId(n)),
                    seq.delta_of(NodeId(n)),
                    "seed {seed} node {n}"
                );
            }
        }
    }

    #[test]
    fn batch64_epoch_wrap_cannot_alias_marks() {
        let g = line_graph(5);
        let mut s = ReachScratch::new();
        s.force_epochs_near_wrap();
        let sources = [NodeId(0), NodeId(2)];
        for _ in 0..5 {
            // Repeated calls across the wrap keep answers exact.
            let mut counts = [0u64; 2];
            reach_count_batch64(&g, &sources, &mut s, &mut counts);
            assert_eq!(counts, [5, 3]);
            let mut out = Vec::new();
            reverse_reach_union_ordered(&g, &[NodeId(4)], &mut s, &mut out);
            assert_eq!(out.len(), 5);
        }
    }

    #[test]
    fn wide_reverse_matches_multi_collect_across_widths_and_directions() {
        // Up to 256 single-source lanes: every shipped width × direction
        // must produce exactly the per-lane reverse reachability sets.
        for seed in 0..6u64 {
            let g = random_graph(seed.wrapping_add(900), 120, 360);
            let lane_sources: Vec<NodeId> = (0..MAX_BATCH_LANES)
                .map(|i| NodeId(((seed * 13 + i as u64 * 7) % 120) as u32))
                .collect();
            let mut s = ReachScratch::new();
            let mut expect_bits: Vec<[u64; 4]> = vec![[0; 4]; 120];
            let mut one = Vec::new();
            for (i, &src) in lane_sources.iter().enumerate() {
                reverse_reach_collect(&g, src, &mut s, &mut one);
                for &n in &one {
                    expect_bits[n.index()][i >> 6] |= 1u64 << (i & 63);
                }
            }
            for &(words, lanes_used) in &[(1usize, 64usize), (2, 128), (4, 256)] {
                for dir in [SweepDirection::TopDown, SweepDirection::Auto] {
                    let lanes: Vec<&[NodeId]> = lane_sources[..lanes_used]
                        .iter()
                        .map(std::slice::from_ref)
                        .collect();
                    let mut got: Vec<[u64; 4]> = vec![[0; 4]; 120];
                    let mut visits = 0usize;
                    reverse_reach_batch_wide(&g, &lanes, words, dir, &mut s, |n, mask| {
                        got[n.index()] = mask;
                        visits += 1;
                    });
                    for n in 0..120usize {
                        let mut want = expect_bits[n];
                        for (w, word) in want.iter_mut().enumerate() {
                            // Mask expectation down to the lanes this width ran.
                            if (w + 1) * 64 > lanes_used {
                                *word &= if w * 64 >= lanes_used {
                                    0
                                } else {
                                    u64::MAX >> (64 - (lanes_used - w * 64))
                                };
                            }
                        }
                        assert_eq!(
                            got[n], want,
                            "seed {seed} words {words} dir {dir:?} node {n}"
                        );
                    }
                    let reached = expect_bits
                        .iter()
                        .enumerate()
                        .filter(|(n, _)| {
                            lane_sources[..lanes_used]
                                .iter()
                                .any(|&src| src.index() == *n)
                                || got[*n] != [0; 4]
                        })
                        .count();
                    assert_eq!(visits, reached, "visit fires once per reached node");
                }
            }
        }
    }

    #[test]
    fn wide_counts_match_scalar_across_widths_and_directions() {
        for seed in 0..6u64 {
            let g = random_graph(seed.wrapping_add(1300), 150, 420);
            // Duplicates occupy independent lanes with equal counts.
            let sources: Vec<NodeId> = (0..MAX_BATCH_LANES)
                .map(|i| NodeId(((seed * 11 + i as u64 * 5) % 150) as u32))
                .collect();
            let mut s = ReachScratch::new();
            let expect: Vec<u64> = sources
                .iter()
                .map(|&src| reach_count(&g, src, &mut s))
                .collect();
            for &(words, lanes_used) in &[(1usize, 64usize), (2, 128), (4, 256)] {
                for dir in [SweepDirection::TopDown, SweepDirection::Auto] {
                    let mut counts = vec![0u64; lanes_used];
                    reach_count_batch_wide(
                        &g,
                        &sources[..lanes_used],
                        words,
                        dir,
                        &mut s,
                        &mut counts,
                    );
                    assert_eq!(
                        counts,
                        expect[..lanes_used],
                        "seed {seed} words {words} dir {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_direction_runs_bottom_up_on_wide_frontiers_with_equal_labels() {
        // A dense graph (large enough to clear the minimum-frontier floor)
        // with 64 seed lanes makes the pending frontier exceed live/8, so
        // Auto must take bottom-up rounds — and still produce bit-identical
        // labels and counts.
        let g = random_graph(77, 6000, 60_000);
        let lane_sources: Vec<NodeId> = (0..64).map(|i| NodeId((i * 37) % 6000)).collect();
        let lanes: Vec<&[NodeId]> = lane_sources.iter().map(std::slice::from_ref).collect();
        let mut s = ReachScratch::new();
        let mut top: Vec<u64> = vec![0; 6000];
        reverse_reach_batch::<1, _>(
            &g,
            &lanes,
            |_, _| [0],
            SweepDirection::TopDown,
            &mut s,
            |n, w| top[n.index()] = w[0],
        );
        assert_eq!(s.bottom_up_rounds(), 0, "TopDown never scans bottom-up");
        let mut auto: Vec<u64> = vec![0; 6000];
        reverse_reach_batch::<1, _>(
            &g,
            &lanes,
            |_, _| [0],
            SweepDirection::Auto,
            &mut s,
            |n, w| auto[n.index()] = w[0],
        );
        assert!(
            s.bottom_up_rounds() > 0,
            "dense flash-crowd frontier must trigger the direction switch"
        );
        assert!(bottom_up_sweeps() > 0, "process-wide switch tally moved");
        assert_eq!(auto, top, "direction changes labels never");
        // Forward counting: same switch, same counts.
        let mut counts_top = vec![0u64; 64];
        reach_count_batch::<1, _>(
            &g,
            &lane_sources,
            SweepDirection::TopDown,
            &mut s,
            &mut counts_top,
        );
        let mut counts_auto = vec![0u64; 64];
        reach_count_batch::<1, _>(
            &g,
            &lane_sources,
            SweepDirection::Auto,
            &mut s,
            &mut counts_auto,
        );
        assert!(s.bottom_up_rounds() > 0);
        assert_eq!(counts_auto, counts_top);
    }

    #[test]
    fn wide_old_sink_deltas_match_sequential_patch() {
        for seed in 0..8u64 {
            let mut g = random_graph(seed.wrapping_add(2100), 60, 140);
            let mut state = seed.wrapping_add(3) | 1;
            let mut rnd = move |m: u32| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % m
            };
            // Enough sinks to span multiple pair-lane words at width 1.
            let mut sinks: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
            for i in 0..40 + rnd(30) {
                let sink = NodeId(60 + i);
                let fresh: Vec<NodeId> = (0..1 + rnd(3)).map(|_| NodeId(rnd(60))).collect();
                for &f in &fresh {
                    g.add_edge(f, sink);
                }
                sinks.push((sink, fresh));
            }
            let bound = g.node_index_bound();
            let mut s = ReachScratch::new();
            let mut seq = SpreadMemo::new();
            seq.begin_batch(bound);
            for (sink, fresh) in &sinks {
                seq.apply_old_sink_delta(&g, *sink, fresh, &mut s);
            }
            for words in [1usize, 2, 4] {
                for dir in [SweepDirection::TopDown, SweepDirection::Auto] {
                    let mut wide = SpreadMemo::new();
                    wide.begin_batch(bound);
                    wide.apply_old_sink_deltas_wide(&g, &sinks, words, dir, &mut s);
                    for n in 0..bound as u32 {
                        assert_eq!(
                            wide.delta_of(NodeId(n)),
                            seq.delta_of(NodeId(n)),
                            "seed {seed} words {words} dir {dir:?} node {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn drain_compaction_work_stays_linear_on_reentrant_growth() {
        // Adversarial re-entrant growth: 64 lanes seeded at staggered
        // depths of one long path. Every prefix node's label grows once
        // per deeper lane that reaches it, re-entering the worklist each
        // time — the drain heuristic must still move at most one queue
        // entry per push (no quadratic re-drain).
        let n = 4096u32;
        let g = line_graph(n);
        let seeds: Vec<NodeId> = (0..64).map(|i| NodeId(n - 1 - i * 60)).collect();
        let lanes: Vec<&[NodeId]> = seeds.iter().map(std::slice::from_ref).collect();
        let mut s = ReachScratch::new();
        let mut reached = 0u64;
        reverse_reach_batch64(&g, &lanes, |_, _| 0, &mut s, |_, _| reached += 1);
        assert_eq!(reached, n as u64, "every path node is some lane's ancestor");
        let (pushes, compactions, moved) = s.drain_stats();
        assert!(
            compactions > 0,
            "the adversarial queue must actually trigger compaction"
        );
        assert!(
            moved <= pushes,
            "compaction moved {moved} entries for {pushes} pushes — super-linear re-drain"
        );
    }

    #[test]
    fn lane_width_selection_and_chunking() {
        assert_eq!(lane_width_for(0), 1);
        assert_eq!(lane_width_for(1), 1);
        assert_eq!(lane_width_for(BATCH_LANES), 1);
        assert_eq!(lane_width_for(BATCH_LANES + 1), 2);
        assert_eq!(lane_width_for(128), 2);
        assert_eq!(lane_width_for(129), 4);
        assert_eq!(lane_width_for(MAX_BATCH_LANES), 4);
        let items: Vec<u32> = (0..300).collect();
        let sizes: Vec<usize> = lane_chunks(&items, MAX_BATCH_LANES)
            .map(<[u32]>::len)
            .collect();
        assert_eq!(sizes, vec![256, 44]);
        assert_eq!(lane_width_for(sizes[1]), 1, "short tail drops to 64-bit");
        let sizes64: Vec<usize> = lane_chunks(&items, BATCH_LANES).map(<[u32]>::len).collect();
        assert_eq!(sizes64.len(), 5);
        assert!(std::panic::catch_unwind(|| lane_width_for(MAX_BATCH_LANES + 1)).is_err());
    }

    #[test]
    fn spread_memo_accumulates_exact_deltas() {
        let mut memo = SpreadMemo::new();
        memo.begin_batch(4);
        memo.store(NodeId(0), 5);
        memo.begin_batch(4);
        memo.add_delta(NodeId(0));
        memo.add_delta(NodeId(0));
        memo.add_delta(NodeId(1));
        assert_eq!(memo.delta_of(NodeId(0)), 2);
        assert_eq!(memo.delta_of(NodeId(2)), 0);
        assert_eq!(memo.lookup_patched(NodeId(0)), Some(7));
        assert_eq!(memo.lookup_patched(NodeId(1)), None, "no stored base value");
        // Deltas are per batch: the next begin_batch forgets them.
        memo.begin_batch(4);
        assert_eq!(memo.delta_of(NodeId(0)), 0);
        assert_eq!(memo.lookup_patched(NodeId(0)), Some(5));
    }

    #[test]
    fn spread_stats_clones_share_and_restore() {
        let a = SpreadStats::new();
        let b = a.clone();
        a.note_redundant();
        b.note_novel(true);
        b.add_cache_hits(5);
        a.add_cache_misses(2);
        a.note_batch(false);
        b.note_batch(true);
        a.note_sink_delta();
        a.note_sink_delta();
        let snap = a.snapshot();
        assert_eq!(snap.redundant_edges, 1);
        assert_eq!(snap.sink_delta_edges, 2);
        assert_eq!(snap.novel_edges, 1);
        assert_eq!(snap.probe_budget_exhausted, 1);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.patched_batches, 1);
        assert_eq!(snap.rebuilt_batches, 1);
        let fresh = SpreadStats::new();
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap);
        let mut w = codec::Writer::new();
        snap.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        assert_eq!(SpreadStatsSnapshot::read_snapshot(&mut r).unwrap(), snap);
        r.finish().unwrap();
    }

    #[test]
    fn spread_memo_snapshot_round_trip_and_validation() {
        let mut memo = SpreadMemo::new();
        memo.begin_batch(4);
        memo.store(NodeId(0), 3);
        memo.store(NodeId(2), 1);
        let mut w = codec::Writer::new();
        memo.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let mut back = SpreadMemo::read_snapshot(&mut r, 4).expect("round trip");
        r.finish().expect("fully consumed");
        back.begin_batch(4);
        assert_eq!(back.lookup(NodeId(0)), Some(3));
        assert_eq!(back.lookup(NodeId(1)), None);
        assert_eq!(back.lookup(NodeId(2)), Some(1));
        // Larger than the owning graph: rejected.
        let mut r = codec::Reader::new(&bytes);
        assert!(SpreadMemo::read_snapshot(&mut r, 3).is_err());
        // Every truncation errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = codec::Reader::new(&bytes[..cut]);
            let res = SpreadMemo::read_snapshot(&mut r, 4).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
        // A stored spread of 0 (or beyond the bound) is semantically
        // impossible and must be a typed error, not trusted data.
        for bad in [0u64, 5] {
            let mut w = codec::Writer::new();
            w.put_len(1);
            w.put_bool(true);
            w.put_u64(bad);
            let bytes = w.into_vec();
            let mut r = codec::Reader::new(&bytes);
            assert!(
                SpreadMemo::read_snapshot(&mut r, 4).is_err(),
                "spread {bad}"
            );
        }
    }

    #[test]
    fn spread_memo_raw_snapshot_matches_element_wise() {
        let mut memo = SpreadMemo::new();
        memo.begin_batch(130); // spans three bitmap words
        memo.store(NodeId(0), 3);
        memo.store(NodeId(64), 1);
        memo.store(NodeId(129), 100);
        memo.note_probe(true);
        memo.note_probe(false);
        let mut w = codec::Writer::new();
        memo.write_snapshot_raw(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let mut back = SpreadMemo::read_snapshot_raw(&mut r, 130).expect("round trip");
        r.finish().expect("fully consumed");
        back.begin_batch(130);
        assert_eq!(back.lookup(NodeId(0)), Some(3));
        assert_eq!(back.lookup(NodeId(64)), Some(1));
        assert_eq!(back.lookup(NodeId(129)), Some(100));
        assert_eq!(back.lookup(NodeId(1)), None);
        assert_eq!(back.probes_run, 2);
        assert_eq!(back.probes_hit, 1);
        // Bound and truncation validation as on the element-wise path.
        let mut r = codec::Reader::new(&bytes);
        assert!(SpreadMemo::read_snapshot_raw(&mut r, 129).is_err());
        for cut in 0..bytes.len() {
            let mut r = codec::Reader::new(&bytes[..cut]);
            let res = SpreadMemo::read_snapshot_raw(&mut r, 130).and_then(|_| r.finish());
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn memo_release_memory_returns_billed_bytes() {
        let mut memo = SpreadMemo::new();
        memo.begin_batch(1000);
        for i in 0..1000 {
            memo.store(NodeId(i), 1);
        }
        memo.mark_dirty(NodeId(3));
        let before = memo.approx_bytes();
        assert!(before >= 1000 * std::mem::size_of::<u64>());
        let released = memo.release_memory();
        // Accounting identity: what release reports is exactly the drop in
        // what approx_bytes bills — no hidden allocations either way.
        assert_eq!(before - memo.approx_bytes(), released);
        assert!(released >= 1000 * std::mem::size_of::<u64>());
        // The memo remains usable and exact: values are simply gone.
        memo.begin_batch(1000);
        assert_eq!(memo.lookup(NodeId(5)), None);
        memo.store(NodeId(5), 7);
        assert_eq!(memo.lookup(NodeId(5)), Some(7));
    }

    #[test]
    fn cover_word_snapshot_matches_element_wise() {
        let cover: CoverSet = [3u32, 64, 700].into_iter().map(NodeId).collect();
        let mut w = codec::Writer::new();
        cover.write_snapshot_words(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let back = CoverSet::read_snapshot_words(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        assert_eq!(back.len(), 3);
        assert!(back.contains(NodeId(700)) && back.contains(NodeId(3)));
        let a: Vec<NodeId> = cover.iter().collect();
        let b: Vec<NodeId> = back.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shed_counters_tally_and_survive_v3_round_trip() {
        let stats = SpreadStats::new();
        stats.note_shed(1);
        stats.note_shed(2);
        stats.note_shed(2);
        stats.note_shed(3);
        let snap = stats.snapshot();
        assert_eq!(
            (snap.shed_memo, snap.shed_arena, snap.shed_fallback),
            (1, 2, 1)
        );
        let mut w = codec::Writer::new();
        snap.write_snapshot_v3(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        assert_eq!(SpreadStatsSnapshot::read_snapshot_v3(&mut r).unwrap(), snap);
        r.finish().unwrap();
        // The v2 writer stays at eight words: shed counters must not leak
        // into old-format bytes.
        let mut w = codec::Writer::new();
        snap.write_snapshot(&mut w);
        assert_eq!(w.into_vec().len(), 8 * 8);
        let mut r = codec::Reader::new(&bytes);
        let v2 = SpreadStatsSnapshot::read_snapshot(&mut r).unwrap();
        assert_eq!(v2.shed_memo, 0, "v2 read leaves shed counters zeroed");
    }
}
