//! Reachability primitives: forward/reverse BFS with reusable scratch and
//! cover-aware marginal-gain evaluation.
//!
//! The influence spread of Definition 3 is a *coverage* function: for a seed
//! set `S`, `f(S) = |reach(S)|` where `reach` is the forward reachability
//! closure (a node reaches itself). Every sieve threshold maintains its
//! cover `R = reach(S_θ)` as an explicit set, which yields two key
//! properties exploited here:
//!
//! * covers are **closed**: if `x ∈ R` then `reach(x) ⊆ R`, so a marginal
//!   BFS may prune at covered nodes;
//! * the marginal gain `f(S ∪ {v}) − f(S) = |reach(v) \ R|` is computable
//!   with a single pruned BFS.

use crate::hash::FxHashSet;
use crate::node::NodeId;
use crate::traits::{InGraph, OutGraph};
use std::sync::Mutex;

/// Reusable BFS scratch: an epoch-stamped visited array and a queue.
///
/// Epoch stamping makes `clear` O(1): bumping the epoch invalidates all
/// previous marks without touching memory.
#[derive(Default)]
pub struct ReachScratch {
    visited: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

impl Clone for ReachScratch {
    /// Scratch holds no logical state; clones start fresh.
    fn clone(&self) -> Self {
        ReachScratch::default()
    }
}

impl ReachScratch {
    /// Creates empty scratch; buffers grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate heap footprint of the scratch buffers in bytes (counted
    /// in memory experiments so per-worker arenas stay visible).
    pub fn approx_bytes(&self) -> usize {
        self.visited.capacity() * std::mem::size_of::<u32>()
            + self.queue.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Starts a new traversal, sizing the visited array for `bound` nodes.
    fn begin(&mut self, bound: usize) {
        if self.visited.len() < bound {
            self.visited.resize(bound, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset all stamps so stale marks cannot
            // alias the new epoch.
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }
}

/// A pool of thread-confined [`ReachScratch`] arenas for parallel BFS.
///
/// Concurrent workers each check out an exclusive scratch for the duration
/// of one traversal (or a run of traversals), so no `visited` array or
/// queue is ever shared between threads. Buffers return to the pool warm,
/// keeping the epoch-stamping amortization across calls — including the
/// serial path, which simply checks out the same scratch every time.
#[derive(Default)]
pub struct ScratchPool {
    idle: Mutex<Vec<ReachScratch>>,
}

impl Clone for ScratchPool {
    /// Like [`ReachScratch`], pools hold no logical state; clones start
    /// fresh (used by SIEVEADN instance copies).
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.idle.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "ScratchPool {{ idle: {n} }}")
    }
}

impl ScratchPool {
    /// Creates an empty pool; arenas are created on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a scratch arena, runs `f` with exclusive access, and
    /// returns the arena to the pool (dropped instead if `f` panics).
    pub fn with<R>(&self, f: impl FnOnce(&mut ReachScratch) -> R) -> R {
        let mut scratch = self
            .idle
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        let out = f(&mut scratch);
        self.idle
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
        out
    }

    /// Approximate heap footprint of all pooled arenas in bytes. Memory
    /// experiments (Figs. 13/14 analogue) add this so per-worker scratch
    /// does not hide from the accounting.
    pub fn approx_bytes(&self) -> usize {
        let idle = self.idle.lock().expect("scratch pool poisoned");
        idle.iter().map(|s| s.approx_bytes()).sum::<usize>() + idle.capacity() * 8
    }
}

/// The set of nodes covered (reached) by a seed set; wraps a hash set so the
/// closure invariant is documented at the type level.
#[derive(Default, Clone, Debug)]
pub struct CoverSet {
    nodes: FxHashSet<NodeId>,
}

impl CoverSet {
    /// Creates an empty cover.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of covered nodes, i.e. the coverage value `f(S_θ)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cover is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `n` is covered.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// Inserts a node into the cover.
    #[inline]
    pub fn insert(&mut self, n: NodeId) -> bool {
        self.nodes.insert(n)
    }

    /// Iterates over covered nodes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        // hashbrown stores ~1 byte of control data plus the key per slot.
        self.nodes.capacity() * (std::mem::size_of::<NodeId>() + 1) + 48
    }

    /// Serializes the cover for checkpointing, in canonical (sorted) order.
    /// Covers are only ever queried by membership and size, so the hash
    /// set's internal order need not survive the round trip.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        let mut nodes: Vec<NodeId> = self.nodes.iter().copied().collect();
        nodes.sort_unstable();
        w.put_len(nodes.len());
        for n in nodes {
            w.put_u32(n.0);
        }
    }

    /// Reconstructs a cover from [`Self::write_snapshot`] bytes.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let len = r.get_len(4)?;
        let mut nodes = FxHashSet::default();
        nodes.reserve(len);
        for _ in 0..len {
            if !nodes.insert(NodeId(r.get_u32()?)) {
                return Err(codec::CodecError::Invalid("duplicate CoverSet member"));
            }
        }
        Ok(CoverSet { nodes })
    }
}

impl FromIterator<NodeId> for CoverSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        CoverSet {
            nodes: iter.into_iter().collect(),
        }
    }
}

/// Counts `|reach(start)|` — the singleton influence spread `f({start})`.
pub fn reach_count(g: &impl OutGraph, start: NodeId, scratch: &mut ReachScratch) -> u64 {
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        g.for_each_out(u, |v| {
            let slot = &mut visited[v.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(v);
            }
        });
    }
    queue.len() as u64
}

/// Collects `reach(start)` into `out` (cleared first).
pub fn reach_collect(
    g: &impl OutGraph,
    start: NodeId,
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    reach_count(g, start, scratch);
    out.clear();
    out.extend_from_slice(&scratch.queue);
}

/// Computes the marginal gain `|reach(start) \ cover|`, collecting the newly
/// covered nodes into `gained` (cleared first) so a subsequent commit does
/// not need a second traversal.
///
/// Relies on the closure invariant of [`CoverSet`]: traversal prunes at
/// covered nodes because everything beyond them is already covered.
pub fn marginal_gain(
    g: &impl OutGraph,
    start: NodeId,
    cover: &CoverSet,
    scratch: &mut ReachScratch,
    gained: &mut Vec<NodeId>,
) -> u64 {
    gained.clear();
    if cover.contains(start) {
        return 0;
    }
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        g.for_each_out(u, |v| {
            let slot = &mut visited[v.index()];
            if *slot != *epoch && !cover.contains(v) {
                *slot = *epoch;
                queue.push(v);
            }
        });
    }
    gained.extend_from_slice(queue);
    gained.len() as u64
}

/// Extends `cover` with `reach(start)` (pruning at already-covered nodes)
/// and returns the number of newly covered nodes.
pub fn extend_cover(
    g: &impl OutGraph,
    start: NodeId,
    cover: &mut CoverSet,
    scratch: &mut ReachScratch,
) -> u64 {
    let mut gained = Vec::new();
    let n = marginal_gain(g, start, cover, scratch, &mut gained);
    for v in gained {
        cover.insert(v);
    }
    n
}

/// Collects the reverse reachability set of `start` (everything that can
/// reach `start`, including `start` itself) into `out` (cleared first).
///
/// Used for `V̄_t`: after inserting edge `(u, v)`, exactly the ancestors of
/// `u` (in the post-insertion graph) have changed influence spread.
pub fn reverse_reach_collect<G: OutGraph + InGraph>(
    g: &G,
    start: NodeId,
    scratch: &mut ReachScratch,
    out: &mut Vec<NodeId>,
) {
    scratch.begin(g.node_index_bound().max(start.index() + 1));
    scratch.visited[start.index()] = scratch.epoch;
    scratch.queue.push(start);
    let ReachScratch {
        visited,
        epoch,
        queue,
    } = scratch;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        g.for_each_in(v, |u| {
            let slot = &mut visited[u.index()];
            if *slot != *epoch {
                *slot = *epoch;
                queue.push(u);
            }
        });
    }
    out.clear();
    out.extend_from_slice(queue);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::AdnGraph;

    fn line_graph(n: u32) -> AdnGraph {
        // 0 -> 1 -> 2 -> ... -> n-1
        let mut g = AdnGraph::new();
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn reach_count_on_a_line() {
        let g = line_graph(5);
        let mut s = ReachScratch::new();
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 5);
        assert_eq!(reach_count(&g, NodeId(3), &mut s), 2);
        assert_eq!(reach_count(&g, NodeId(4), &mut s), 1);
    }

    #[test]
    fn reach_handles_cycles() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let mut s = ReachScratch::new();
        for i in 0..3 {
            assert_eq!(reach_count(&g, NodeId(i), &mut s), 3);
        }
    }

    #[test]
    fn reach_collect_matches_count() {
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let mut s = ReachScratch::new();
        let mut out = Vec::new();
        reach_collect(&g, NodeId(0), &mut s, &mut out);
        out.sort();
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn marginal_gain_prunes_at_cover() {
        let g = line_graph(6);
        let mut s = ReachScratch::new();
        let mut cover = CoverSet::new();
        let mut gained = Vec::new();
        // Cover = reach(3) = {3,4,5}.
        extend_cover(&g, NodeId(3), &mut cover, &mut s);
        assert_eq!(cover.len(), 3);
        // Gain of 0 = {0,1,2} only.
        let gain = marginal_gain(&g, NodeId(0), &cover, &mut s, &mut gained);
        assert_eq!(gain, 3);
        assert!(gained.contains(&NodeId(0)));
        assert!(!gained.contains(&NodeId(3)));
        // Gain of already-covered node is zero.
        assert_eq!(marginal_gain(&g, NodeId(4), &cover, &mut s, &mut gained), 0);
    }

    #[test]
    fn extend_cover_is_idempotent() {
        let g = line_graph(4);
        let mut s = ReachScratch::new();
        let mut cover = CoverSet::new();
        assert_eq!(extend_cover(&g, NodeId(1), &mut cover, &mut s), 3);
        assert_eq!(extend_cover(&g, NodeId(1), &mut cover, &mut s), 0);
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn reverse_reach_finds_ancestors() {
        // 0 -> 2, 1 -> 2, 2 -> 3
        let mut g = AdnGraph::new();
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let mut s = ReachScratch::new();
        let mut out = Vec::new();
        reverse_reach_collect(&g, NodeId(2), &mut s, &mut out);
        out.sort();
        assert_eq!(out, vec![NodeId(0), NodeId(1), NodeId(2)]);
        reverse_reach_collect(&g, NodeId(3), &mut s, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn scratch_pool_reuses_and_accounts_arenas() {
        let g = line_graph(64);
        let pool = ScratchPool::new();
        assert_eq!(pool.approx_bytes(), 0, "fresh pool owns no buffers");
        assert_eq!(pool.with(|s| reach_count(&g, NodeId(0), s)), 64);
        let warm = pool.approx_bytes();
        assert!(warm > 0, "used arena must be accounted");
        // A second serial traversal checks out the same warm arena.
        assert_eq!(pool.with(|s| reach_count(&g, NodeId(1), s)), 63);
        assert_eq!(pool.approx_bytes(), warm);
        // Clones (instance copies) start cold.
        assert_eq!(pool.clone().approx_bytes(), 0);
    }

    #[test]
    fn scratch_pool_serves_concurrent_workers() {
        let g = line_graph(32);
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..32u32 {
                        let n = pool.with(|s| reach_count(&g, NodeId(i), s));
                        assert_eq!(n, 32 - i as u64);
                    }
                });
            }
        });
    }

    #[test]
    fn epoch_wrap_resets_marks() {
        let g = line_graph(3);
        let mut s = ReachScratch::new();
        s.epoch = u32::MAX - 1;
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3);
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3); // wraps here
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3);
    }
}
