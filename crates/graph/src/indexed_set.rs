//! A set with O(1) insert, remove, membership, and index-based access —
//! the classic vector + position-map structure.
//!
//! Used to keep the set of currently live nodes so the Random baseline can
//! sample uniformly without scanning, and so `TdnGraph` can report the node
//! set cheaply.

use crate::hash::FxHashMap;
use crate::node::NodeId;

/// A randomly indexable set of node ids.
#[derive(Default, Clone)]
pub struct IndexedSet {
    items: Vec<NodeId>,
    pos: FxHashMap<NodeId, usize>,
}

impl IndexedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `n` is a member.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.pos.contains_key(&n)
    }

    /// Inserts `n`; returns `true` if newly added.
    pub fn insert(&mut self, n: NodeId) -> bool {
        if self.pos.contains_key(&n) {
            return false;
        }
        self.pos.insert(n, self.items.len());
        self.items.push(n);
        true
    }

    /// Removes `n` by swap-remove; returns `true` if it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        let Some(idx) = self.pos.remove(&n) else {
            return false;
        };
        let last = self.items.len() - 1;
        self.items.swap(idx, last);
        self.items.pop();
        if idx < self.items.len() {
            self.pos.insert(self.items[idx], idx);
        }
        true
    }

    /// Element at position `i` (positions are unstable across removals).
    #[inline]
    pub fn get(&self, i: usize) -> Option<NodeId> {
        self.items.get(i).copied()
    }

    /// All members as a slice (arbitrary order).
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.items
    }

    /// Iterates over members (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.items.iter().copied()
    }

    /// Serializes the set for checkpointing. The *position order* is part
    /// of the snapshot: callers sample members by index (the Random
    /// tracker), so a warm restart must see the identical layout.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_len(self.items.len());
        for n in &self.items {
            w.put_u32(n.0);
        }
    }

    /// Reconstructs a set from [`Self::write_snapshot`] bytes, rebuilding
    /// the position map. Duplicate members are rejected as corruption.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let len = r.get_len(4)?;
        let mut set = IndexedSet::new();
        for _ in 0..len {
            if !set.insert(NodeId(r.get_u32()?)) {
                return Err(codec::CodecError::Invalid("duplicate IndexedSet member"));
            }
        }
        Ok(set)
    }

    /// Serializes the member slab as one raw `u32` word run, position
    /// order verbatim (positions are part of the snapshot contract).
    pub fn write_snapshot_slab(&self, w: &mut codec::Writer) {
        let items: Vec<u32> = self.items.iter().map(|n| n.0).collect();
        w.put_u32_run(&items);
    }

    /// Reconstructs a set from [`Self::write_snapshot_slab`] bytes,
    /// rebuilding the position map. Duplicates are rejected as corruption.
    pub fn read_snapshot_slab(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let items = r.get_u32_run()?;
        let mut set = IndexedSet::new();
        for &raw in &items {
            if !set.insert(NodeId(raw)) {
                return Err(codec::CodecError::Invalid("duplicate IndexedSet member"));
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedSet::new();
        assert!(s.insert(NodeId(1)));
        assert!(s.insert(NodeId(2)));
        assert!(!s.insert(NodeId(1)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(1)));
        assert!(s.remove(NodeId(1)));
        assert!(!s.remove(NodeId(1)));
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Some(NodeId(2)));
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut s = IndexedSet::new();
        for i in 0..100 {
            s.insert(NodeId(i));
        }
        // Remove every even element, then verify membership via positions.
        for i in (0..100).step_by(2) {
            assert!(s.remove(NodeId(i)));
        }
        assert_eq!(s.len(), 50);
        for i in 0..s.len() {
            let n = s.get(i).unwrap();
            assert_eq!(n.0 % 2, 1);
            assert!(s.contains(n));
        }
    }

    #[test]
    fn get_out_of_range_is_none() {
        let s = IndexedSet::new();
        assert_eq!(s.get(0), None);
    }
}
