//! Offline graph analysis: Tarjan SCC condensation and exact all-nodes
//! reachability spreads via DAG bitsets.
//!
//! The streaming algorithms never need this (they evaluate spreads with
//! incremental pruned BFS), but analysis and debugging do: computing the
//! exact influence spread of *every* node at once explains workload
//! behaviour (e.g. a dense strongly-connected core makes `V̄_t` large) and
//! gives tests an independent oracle to cross-check the BFS path.

use crate::node::NodeId;
use crate::traits::OutGraph;

/// Strongly connected components of a graph snapshot, with the condensation
/// DAG and per-node exact reach counts.
pub struct Condensation {
    /// `comp[i]` = component id of node index `i` (`u32::MAX` for indices
    /// not present in the graph).
    pub comp: Vec<u32>,
    /// Members per component.
    pub members: Vec<Vec<NodeId>>,
    /// Condensation DAG edges (deduplicated), `dag[c]` = successor comps.
    pub dag: Vec<Vec<u32>>,
    /// Exact reach count (number of nodes) for each component's members.
    pub reach: Vec<u64>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.members.len()
    }

    /// Component id of `n`, if present.
    pub fn component_of(&self, n: NodeId) -> Option<u32> {
        match self.comp.get(n.index()) {
            Some(&c) if c != u32::MAX => Some(c),
            _ => None,
        }
    }

    /// Exact influence spread `f({n})` of a single node.
    pub fn spread_of(&self, n: NodeId) -> Option<u64> {
        self.component_of(n).map(|c| self.reach[c as usize])
    }

    /// Size of the largest SCC (the "dense core" diagnostic).
    pub fn largest_scc(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The nodes with the largest exact singleton spreads (ties broken by
    /// node id for determinism).
    pub fn top_spreads(&self, k: usize) -> Vec<(NodeId, u64)> {
        let mut all: Vec<(NodeId, u64)> = self
            .members
            .iter()
            .enumerate()
            .flat_map(|(c, ms)| ms.iter().map(move |&n| (n, c)))
            .map(|(n, c)| (n, self.reach[c]))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Computes the SCC condensation of the nodes in `nodes` and the exact
/// reach count of every node, using an iterative Tarjan plus bitset DAG
/// propagation (exact set-union semantics, O(V·C/64) words).
pub fn condense<G: OutGraph>(g: &G, nodes: impl IntoIterator<Item = NodeId>) -> Condensation {
    let nodes: Vec<NodeId> = nodes.into_iter().collect();
    let bound = g
        .node_index_bound()
        .max(nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0));
    // Iterative Tarjan.
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; bound];
    let mut low = vec![0u32; bound];
    let mut on_stack = vec![false; bound];
    let mut comp = vec![u32::MAX; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut counter = 0u32;
    // Explicit DFS frames: (node, out-neighbor cursor).
    for &root in &nodes {
        if index[root.index()] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v.index()] = counter;
                low[v.index()] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            // Collect out-neighbors once per visit step (cursor indexes it).
            let mut outs: Vec<NodeId> = Vec::new();
            g.for_each_out(v, |w| outs.push(w));
            let mut advanced = false;
            while *cursor < outs.len() {
                let w = outs[*cursor];
                *cursor += 1;
                if index[w.index()] == UNSEEN {
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index[w.index()]);
                }
            }
            if advanced {
                continue;
            }
            // v is finished: maybe an SCC root.
            if low[v.index()] == index[v.index()] {
                let cid = members.len() as u32;
                let mut ms = Vec::new();
                loop {
                    let w = stack.pop().expect("stack underflow");
                    on_stack[w.index()] = false;
                    comp[w.index()] = cid;
                    ms.push(w);
                    if w == v {
                        break;
                    }
                }
                members.push(ms);
            }
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                let pl = low[parent.index()].min(low[v.index()]);
                low[parent.index()] = pl;
            }
        }
    }
    // Condensation DAG (dedup edges).
    let ncomp = members.len();
    let mut dag: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
    for (c, ms) in members.iter().enumerate() {
        let mut succs: Vec<u32> = Vec::new();
        for &v in ms {
            g.for_each_out(v, |w| {
                let cw = comp[w.index()];
                if cw != c as u32 {
                    succs.push(cw);
                }
            });
        }
        succs.sort_unstable();
        succs.dedup();
        dag[c] = succs;
    }
    // Reach counts via bitsets in reverse topological order. Tarjan emits
    // components in reverse topological order already (successors first).
    let words = ncomp.div_ceil(64);
    let mut bits: Vec<Vec<u64>> = vec![vec![0u64; words]; ncomp];
    let mut reach = vec![0u64; ncomp];
    for c in 0..ncomp {
        // Mark self.
        bits[c][c / 64] |= 1u64 << (c % 64);
        // Successor components were emitted earlier by Tarjan.
        let succs = dag[c].clone();
        for s in succs {
            let (head, tail) = bits.split_at_mut(c.max(s as usize));
            let (dst, src) = if (s as usize) < c {
                (&mut tail[0], &head[s as usize])
            } else {
                // Tarjan guarantees successors first, but guard anyway.
                continue;
            };
            for (d, w) in dst.iter_mut().zip(src.iter()) {
                *d |= *w;
            }
        }
        // Count nodes across all reachable components.
        let mut total = 0u64;
        for (word_idx, word) in bits[c].iter().enumerate() {
            let mut w = *word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                total += members[word_idx * 64 + b].len() as u64;
                w &= w - 1;
            }
        }
        reach[c] = total;
    }
    Condensation {
        comp,
        members,
        dag,
        reach,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::AdnGraph;
    use crate::reach::{reach_count, ReachScratch};

    fn graph(edges: &[(u32, u32)]) -> AdnGraph {
        let mut g = AdnGraph::new();
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn line_graph_has_singleton_components() {
        let g = graph(&[(0, 1), (1, 2), (2, 3)]);
        let c = condense(&g, g.nodes());
        assert_eq!(c.num_components(), 4);
        assert_eq!(c.largest_scc(), 1);
        assert_eq!(c.spread_of(NodeId(0)), Some(4));
        assert_eq!(c.spread_of(NodeId(3)), Some(1));
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = condense(&g, g.nodes());
        assert_eq!(c.num_components(), 2);
        assert_eq!(c.largest_scc(), 3);
        for i in 0..3 {
            assert_eq!(c.spread_of(NodeId(i)), Some(4));
        }
        assert_eq!(c.spread_of(NodeId(3)), Some(1));
    }

    #[test]
    fn diamond_dag_counts_union_not_sum() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: reach(0) must be 4, not 5.
        let g = graph(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = condense(&g, g.nodes());
        assert_eq!(c.spread_of(NodeId(0)), Some(4));
        assert_eq!(c.spread_of(NodeId(1)), Some(2));
    }

    #[test]
    fn spreads_match_bfs_on_random_graphs() {
        let mut state = 0xABCDu64;
        let mut rnd = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for _ in 0..20 {
            let mut g = AdnGraph::new();
            for _ in 0..60 {
                let u = rnd(25) as u32;
                let v = rnd(25) as u32;
                if u != v {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
            let c = condense(&g, g.nodes());
            let mut scratch = ReachScratch::new();
            for n in g.nodes() {
                let exact = c.spread_of(n).expect("node present");
                let bfs = reach_count(&g, n, &mut scratch);
                assert_eq!(exact, bfs, "node {n:?}");
            }
        }
    }

    #[test]
    fn top_spreads_are_sorted_and_deterministic() {
        let g = graph(&[(0, 1), (0, 2), (5, 6)]);
        let c = condense(&g, g.nodes());
        let top = c.top_spreads(2);
        assert_eq!(top[0], (NodeId(0), 3));
        assert_eq!(top[1], (NodeId(5), 2));
    }

    #[test]
    fn empty_input_is_empty() {
        let g = AdnGraph::new();
        let c = condense(&g, std::iter::empty());
        assert_eq!(c.num_components(), 0);
        assert_eq!(c.largest_scc(), 0);
        assert!(c.top_spreads(3).is_empty());
    }
}
