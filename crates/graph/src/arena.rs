//! Paged CSR-style adjacency arena: every node's neighbor list lives in one
//! shared contiguous buffer, in power-of-two blocks.
//!
//! The `Vec<Vec<_>>` adjacency it replaces costs one heap allocation and one
//! pointer chase per node; BFS over it hops between unrelated heap pages.
//! [`AdjPool`] packs all lists into a single `Vec<T>` arena: a list is a
//! `(start, len, cap)` view into the buffer, appending is amortized O(1)
//! (grow by doubling into a recycled or fresh block), and blocks freed by
//! growth or compaction are recycled through per-size-class free lists —
//! so expiry storms that shrink lists return their blocks to the arena
//! instead of thrashing the allocator.
//!
//! List order is preserved verbatim by [`AdjPool::push`] and
//! [`AdjPool::retain`]: adjacency order drives BFS traversal order, which
//! drives `V̄_t` replay order, which the bit-identical determinism and
//! checkpoint contracts depend on. [`AdjPool::swap_remove`] is the O(1)
//! unordered eviction primitive for callers whose downstream consumers are
//! order-insensitive.

/// Smallest block capacity handed to a non-empty list.
const MIN_BLOCK: u32 = 4;

/// One node's list view into the shared buffer.
#[derive(Copy, Clone, Debug, Default)]
struct ListRef {
    /// First slot of the backing block in the arena buffer.
    start: usize,
    /// Live entries (prefix of the block).
    len: u32,
    /// Block capacity; always `0` or a power of two `≥ MIN_BLOCK`.
    cap: u32,
}

/// A pool of dynamically sized neighbor lists packed into one buffer.
///
/// Indexed densely by node id. See the module docs for the layout and the
/// ordering contract.
#[derive(Clone, Debug)]
pub struct AdjPool<T: Copy> {
    buf: Vec<T>,
    lists: Vec<ListRef>,
    /// `free[c]` holds starts of recycled blocks of capacity `1 << c`.
    free: Vec<Vec<usize>>,
}

impl<T: Copy> Default for AdjPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> AdjPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        AdjPool {
            buf: Vec::new(),
            lists: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of node slots (the exclusive node-index bound).
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.lists.len()
    }

    /// Grows the node-slot table to at least `bound` (empty lists).
    pub fn ensure_node_bound(&mut self, bound: usize) {
        if self.lists.len() < bound {
            self.lists.resize(bound, ListRef::default());
        }
    }

    /// The list of node `n` (empty slice if `n` is out of bounds).
    #[inline]
    pub fn as_slice(&self, n: usize) -> &[T] {
        match self.lists.get(n) {
            Some(l) => &self.buf[l.start..l.start + l.len as usize],
            None => &[],
        }
    }

    /// Mutable access to the list of node `n` (empty slice if out of
    /// bounds). Entries may be rewritten in place; the length is fixed.
    #[inline]
    pub fn as_mut_slice(&mut self, n: usize) -> &mut [T] {
        match self.lists.get(n) {
            Some(&l) => &mut self.buf[l.start..l.start + l.len as usize],
            None => &mut [],
        }
    }

    /// Length of node `n`'s list.
    #[inline]
    pub fn list_len(&self, n: usize) -> usize {
        self.lists.get(n).map_or(0, |l| l.len as usize)
    }

    /// Pops a recycled block of exactly `cap` slots, if one is available.
    fn pop_free(&mut self, cap: u32) -> Option<usize> {
        let class = cap.trailing_zeros() as usize;
        self.free.get_mut(class)?.pop()
    }

    /// Returns a block to its size-class free list.
    fn push_free(&mut self, start: usize, cap: u32) {
        let class = cap.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(start);
    }

    /// Acquires a block of `cap` slots: recycled if possible, else fresh at
    /// the end of the buffer (filled with `fill`; recycled blocks keep
    /// their stale-but-initialized contents).
    fn acquire_block(&mut self, cap: u32, fill: T) -> usize {
        if let Some(start) = self.pop_free(cap) {
            return start;
        }
        let start = self.buf.len();
        self.buf.resize(start + cap as usize, fill);
        start
    }

    /// Moves node `n`'s live prefix into a block of `new_cap` slots and
    /// recycles the old block. `new_cap` must hold the current length.
    fn rehome(&mut self, n: usize, new_cap: u32, fill: T) {
        let old = self.lists[n];
        debug_assert!(old.len <= new_cap);
        let start = self.acquire_block(new_cap, fill);
        self.buf
            .copy_within(old.start..old.start + old.len as usize, start);
        if old.cap > 0 {
            self.push_free(old.start, old.cap);
        }
        self.lists[n] = ListRef {
            start,
            len: old.len,
            cap: new_cap,
        };
    }

    /// Appends `item` to node `n`'s list (growing the node table and the
    /// block as needed). Amortized O(1); list order is append order.
    pub fn push(&mut self, n: usize, item: T) {
        self.ensure_node_bound(n + 1);
        let l = self.lists[n];
        if l.len == l.cap {
            let new_cap = (l.cap * 2).max(MIN_BLOCK);
            self.rehome(n, new_cap, item);
        }
        let l = &mut self.lists[n];
        self.buf[l.start + l.len as usize] = item;
        l.len += 1;
    }

    /// Removes and returns entry `idx` of node `n`'s list in O(1) by
    /// swapping the last entry into its place. **Does not preserve list
    /// order** — only for callers whose consumers are order-insensitive.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn swap_remove(&mut self, n: usize, idx: usize) -> T {
        let l = self.lists[n];
        assert!(idx < l.len as usize, "swap_remove index out of bounds");
        let last = l.len as usize - 1;
        let item = self.buf[l.start + idx];
        self.buf[l.start + idx] = self.buf[l.start + last];
        self.lists[n].len -= 1;
        self.maybe_shrink(n);
        item
    }

    /// Keeps only the entries of node `n`'s list satisfying `pred`,
    /// preserving their relative order (the TDN compaction primitive).
    /// A list that shrank to a quarter of its block is rehomed into a
    /// smaller block and the old one recycled.
    pub fn retain(&mut self, n: usize, mut pred: impl FnMut(&T) -> bool) {
        let l = self.lists[n];
        let (start, len) = (l.start, l.len as usize);
        let mut write = 0usize;
        for read in 0..len {
            let item = self.buf[start + read];
            if pred(&item) {
                self.buf[start + write] = item;
                write += 1;
            }
        }
        self.lists[n].len = write as u32;
        self.maybe_shrink(n);
    }

    /// Rehomes node `n` into a smaller block when at most a quarter of the
    /// current block is live, so storms of same-bucket expiries hand their
    /// blocks back for reuse instead of pinning peak capacity forever.
    fn maybe_shrink(&mut self, n: usize) {
        let l = self.lists[n];
        if l.cap > MIN_BLOCK && l.len * 4 <= l.cap {
            if l.len == 0 {
                self.push_free(l.start, l.cap);
                self.lists[n] = ListRef::default();
            } else {
                let new_cap = l.len.next_power_of_two().max(MIN_BLOCK);
                let fill = self.buf[l.start];
                self.rehome(n, new_cap, fill);
            }
        }
    }

    /// Approximate heap footprint in bytes (arena buffer, list table, free
    /// lists).
    pub fn approx_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<T>()
            + self.lists.capacity() * std::mem::size_of::<ListRef>()
            + self
                .free
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
    }

    /// Arena occupancy counters for diagnostics and block-reuse tests:
    /// `(buffer_slots, recycled_blocks)`.
    #[doc(hidden)]
    pub fn arena_stats(&self) -> (usize, usize) {
        (self.buf.len(), self.free.iter().map(Vec::len).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let mut p: AdjPool<u32> = AdjPool::new();
        assert!(p.as_slice(3).is_empty());
        for i in 0..10 {
            p.push(2, i);
        }
        p.push(0, 99);
        assert_eq!(p.as_slice(2), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(p.as_slice(0), &[99]);
        assert!(p.as_slice(1).is_empty());
        assert_eq!(p.node_bound(), 3);
        assert_eq!(p.list_len(2), 10);
    }

    #[test]
    fn growth_recycles_outgrown_blocks() {
        let mut p: AdjPool<u32> = AdjPool::new();
        // Fill one list past several doublings: each outgrown block must
        // land on a free list, and a second list must pick them up instead
        // of growing the buffer.
        for i in 0..32 {
            p.push(0, i);
        }
        let (slots_before, freed) = p.arena_stats();
        assert!(freed >= 3, "outgrown 4/8/16 blocks recycled, got {freed}");
        for i in 0..16 {
            p.push(1, i);
        }
        let (slots_after, _) = p.arena_stats();
        assert_eq!(
            slots_after, slots_before,
            "second list must reuse recycled blocks"
        );
        assert_eq!(p.as_slice(0).len(), 32);
        assert_eq!(p.as_slice(1).len(), 16);
    }

    #[test]
    fn swap_remove_is_unordered_but_complete() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..5 {
            p.push(0, i);
        }
        assert_eq!(p.swap_remove(0, 1), 1);
        let mut rest = p.as_slice(0).to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 2, 3, 4]);
    }

    #[test]
    fn retain_preserves_order_and_shrinks_blocks() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..64 {
            p.push(0, i);
        }
        p.retain(0, |&x| x % 10 == 0);
        assert_eq!(p.as_slice(0), &[0, 10, 20, 30, 40, 50, 60]);
        let (_, freed) = p.arena_stats();
        assert!(freed > 0, "shrunk list must recycle its big block");
        // Retaining nothing releases the block entirely.
        p.retain(0, |_| false);
        assert!(p.as_slice(0).is_empty());
        // The list remains fully usable afterwards.
        p.push(0, 7);
        assert_eq!(p.as_slice(0), &[7]);
    }

    #[test]
    fn expiry_storm_reuses_blocks_instead_of_growing() {
        let mut p: AdjPool<u32> = AdjPool::new();
        // Warm up to peak shape once.
        for i in 0..256 {
            p.push(0, i);
        }
        p.retain(0, |_| false);
        let (peak, _) = p.arena_stats();
        // Repeated fill/drain cycles at the same peak must not grow the
        // arena: every cycle's blocks come from the free lists.
        for _ in 0..10 {
            for i in 0..256 {
                p.push(0, i);
            }
            p.retain(0, |_| false);
            let (now, _) = p.arena_stats();
            assert_eq!(now, peak, "storm cycle grew the arena");
        }
    }

    #[test]
    fn as_mut_slice_rewrites_in_place() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..4 {
            p.push(1, i);
        }
        for x in p.as_mut_slice(1) {
            *x *= 2;
        }
        assert_eq!(p.as_slice(1), &[0, 2, 4, 6]);
        assert!(p.as_mut_slice(9).is_empty());
    }

    #[test]
    fn clone_is_independent() {
        let mut p: AdjPool<u32> = AdjPool::new();
        p.push(0, 1);
        let mut q = p.clone();
        q.push(0, 2);
        assert_eq!(p.as_slice(0), &[1]);
        assert_eq!(q.as_slice(0), &[1, 2]);
    }

    #[test]
    fn accounting_tracks_buffer_growth() {
        let mut p: AdjPool<u64> = AdjPool::new();
        let empty = p.approx_bytes();
        for i in 0..100 {
            p.push(i as usize % 7, i);
        }
        assert!(p.approx_bytes() > empty);
    }
}
