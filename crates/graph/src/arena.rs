//! Paged CSR-style adjacency arena: every node's neighbor list lives in one
//! shared contiguous buffer, in power-of-two blocks.
//!
//! The `Vec<Vec<_>>` adjacency it replaces costs one heap allocation and one
//! pointer chase per node; BFS over it hops between unrelated heap pages.
//! [`AdjPool`] packs all lists into a single `Vec<T>` arena: a list is a
//! `(start, len, cap)` view into the buffer, appending is amortized O(1)
//! (grow by doubling into a recycled or fresh block), and blocks freed by
//! growth or compaction are recycled through per-size-class free lists —
//! so expiry storms that shrink lists return their blocks to the arena
//! instead of thrashing the allocator.
//!
//! List order is preserved verbatim by [`AdjPool::push`] and
//! [`AdjPool::retain`]: adjacency order drives BFS traversal order, which
//! drives `V̄_t` replay order, which the bit-identical determinism and
//! checkpoint contracts depend on. [`AdjPool::swap_remove`] is the O(1)
//! unordered eviction primitive for callers whose downstream consumers are
//! order-insensitive.

/// Smallest block capacity handed to a non-empty list.
const MIN_BLOCK: u32 = 4;

/// Node lists per dirty-tracking / snapshot chunk: chunk `c` covers list
/// indices `[c·SNAPSHOT_CHUNK, (c+1)·SNAPSHOT_CHUNK)`. Sectioned saves
/// serialize one section per chunk and skip chunks whose generation has
/// not moved since the last save.
pub const SNAPSHOT_CHUNK: usize = 1024;

/// One node's list view into the shared buffer.
#[derive(Copy, Clone, Debug, Default)]
struct ListRef {
    /// First slot of the backing block in the arena buffer.
    start: usize,
    /// Live entries (prefix of the block).
    len: u32,
    /// Block capacity; always `0` or a power of two `≥ MIN_BLOCK`.
    cap: u32,
}

/// A pool of dynamically sized neighbor lists packed into one buffer.
///
/// Indexed densely by node id. See the module docs for the layout and the
/// ordering contract.
#[derive(Clone, Debug)]
pub struct AdjPool<T: Copy> {
    buf: Vec<T>,
    lists: Vec<ListRef>,
    /// `free[c]` holds starts of recycled blocks of capacity `1 << c`.
    free: Vec<Vec<usize>>,
    /// Bumped on every *content* mutation (pushes, removals, rewrites,
    /// node-table growth). Block moves (`rehome`, shrink, free-list
    /// release) do not bump it: they change layout, not the serialized
    /// list contents.
    generation: u64,
    /// Per-chunk copy of `generation` at the chunk's last content
    /// mutation (see [`SNAPSHOT_CHUNK`]). Indexed by chunk, grown lazily.
    chunk_gen: Vec<u64>,
}

impl<T: Copy> Default for AdjPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> AdjPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        AdjPool {
            buf: Vec::new(),
            lists: Vec::new(),
            free: Vec::new(),
            generation: 0,
            chunk_gen: Vec::new(),
        }
    }

    /// Marks node `n`'s chunk dirty at a fresh generation.
    #[inline]
    fn touch(&mut self, n: usize) {
        self.generation += 1;
        let c = n / SNAPSHOT_CHUNK;
        if self.chunk_gen.len() <= c {
            self.chunk_gen.resize(c + 1, 0);
        }
        self.chunk_gen[c] = self.generation;
    }

    /// Marks node `n`'s chunk content-dirty without mutating the pool —
    /// for wrappers that serialize satellite per-node state (e.g. lazy
    /// dead-entry counters) alongside the list contents in the same
    /// section.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, n: usize) {
        self.touch(n);
    }

    /// Number of node slots (the exclusive node-index bound).
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.lists.len()
    }

    /// Grows the node-slot table to at least `bound` (empty lists).
    pub fn ensure_node_bound(&mut self, bound: usize) {
        if self.lists.len() < bound {
            // Growth changes the serialized shape of every chunk gaining
            // slots: the old tail chunk and everything after it.
            let first = self.lists.len() / SNAPSHOT_CHUNK;
            self.lists.resize(bound, ListRef::default());
            self.generation += 1;
            let last = (bound - 1) / SNAPSHOT_CHUNK;
            if self.chunk_gen.len() <= last {
                self.chunk_gen.resize(last + 1, 0);
            }
            for g in &mut self.chunk_gen[first..=last] {
                *g = self.generation;
            }
        }
    }

    /// The list of node `n` (empty slice if `n` is out of bounds).
    #[inline]
    pub fn as_slice(&self, n: usize) -> &[T] {
        match self.lists.get(n) {
            Some(l) => &self.buf[l.start..l.start + l.len as usize],
            None => &[],
        }
    }

    /// Mutable access to the list of node `n` (empty slice if out of
    /// bounds). Entries may be rewritten in place; the length is fixed.
    /// Conservatively marks the chunk dirty (the caller holds a mutable
    /// view and is assumed to write through it).
    #[inline]
    pub fn as_mut_slice(&mut self, n: usize) -> &mut [T] {
        match self.lists.get(n) {
            Some(&l) => {
                if l.len > 0 {
                    self.touch(n);
                }
                &mut self.buf[l.start..l.start + l.len as usize]
            }
            None => &mut [],
        }
    }

    /// Length of node `n`'s list.
    #[inline]
    pub fn list_len(&self, n: usize) -> usize {
        self.lists.get(n).map_or(0, |l| l.len as usize)
    }

    /// Hints the CPU to pull the first cache line of node `n`'s block
    /// toward L1. No observable effect — the bottom-up traversal loops
    /// issue this a fixed distance ahead of their scan cursor so the
    /// arena's scattered blocks arrive before they are walked.
    #[inline]
    pub fn prefetch(&self, n: usize) {
        let Some(l) = self.lists.get(n) else { return };
        if l.len == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `start` indexes a live block, so the address is within
        // the buffer allocation; prefetch has no memory effects either way.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                self.buf.as_ptr().add(l.start) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }

    /// Pops a recycled block of exactly `cap` slots, if one is available.
    fn pop_free(&mut self, cap: u32) -> Option<usize> {
        let class = cap.trailing_zeros() as usize;
        self.free.get_mut(class)?.pop()
    }

    /// Returns a block to its size-class free list.
    fn push_free(&mut self, start: usize, cap: u32) {
        let class = cap.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(start);
    }

    /// Acquires a block of `cap` slots: recycled if possible, else fresh at
    /// the end of the buffer (filled with `fill`; recycled blocks keep
    /// their stale-but-initialized contents).
    fn acquire_block(&mut self, cap: u32, fill: T) -> usize {
        if let Some(start) = self.pop_free(cap) {
            return start;
        }
        let start = self.buf.len();
        self.buf.resize(start + cap as usize, fill);
        start
    }

    /// Moves node `n`'s live prefix into a block of `new_cap` slots and
    /// recycles the old block. `new_cap` must hold the current length.
    fn rehome(&mut self, n: usize, new_cap: u32, fill: T) {
        let old = self.lists[n];
        debug_assert!(old.len <= new_cap);
        let start = self.acquire_block(new_cap, fill);
        self.buf
            .copy_within(old.start..old.start + old.len as usize, start);
        if old.cap > 0 {
            self.push_free(old.start, old.cap);
        }
        self.lists[n] = ListRef {
            start,
            len: old.len,
            cap: new_cap,
        };
    }

    /// Appends `item` to node `n`'s list (growing the node table and the
    /// block as needed). Amortized O(1); list order is append order.
    pub fn push(&mut self, n: usize, item: T) {
        self.ensure_node_bound(n + 1);
        let l = self.lists[n];
        if l.len == l.cap {
            let new_cap = (l.cap * 2).max(MIN_BLOCK);
            self.rehome(n, new_cap, item);
        }
        let l = &mut self.lists[n];
        self.buf[l.start + l.len as usize] = item;
        l.len += 1;
        self.touch(n);
    }

    /// Removes and returns entry `idx` of node `n`'s list in O(1) by
    /// swapping the last entry into its place. **Does not preserve list
    /// order** — only for callers whose consumers are order-insensitive.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn swap_remove(&mut self, n: usize, idx: usize) -> T {
        let l = self.lists[n];
        assert!(idx < l.len as usize, "swap_remove index out of bounds");
        let last = l.len as usize - 1;
        let item = self.buf[l.start + idx];
        self.buf[l.start + idx] = self.buf[l.start + last];
        self.lists[n].len -= 1;
        self.touch(n);
        self.maybe_shrink(n);
        item
    }

    /// Keeps only the entries of node `n`'s list satisfying `pred`,
    /// preserving their relative order (the TDN compaction primitive).
    /// A list that shrank to a quarter of its block is rehomed into a
    /// smaller block and the old one recycled.
    pub fn retain(&mut self, n: usize, mut pred: impl FnMut(&T) -> bool) {
        let l = self.lists[n];
        let (start, len) = (l.start, l.len as usize);
        let mut write = 0usize;
        for read in 0..len {
            let item = self.buf[start + read];
            if pred(&item) {
                self.buf[start + write] = item;
                write += 1;
            }
        }
        if write as u32 != l.len {
            self.lists[n].len = write as u32;
            self.touch(n);
        }
        self.maybe_shrink(n);
    }

    /// Rehomes node `n` into a smaller block when at most a quarter of the
    /// current block is live, so storms of same-bucket expiries hand their
    /// blocks back for reuse instead of pinning peak capacity forever.
    fn maybe_shrink(&mut self, n: usize) {
        let l = self.lists[n];
        if l.cap > MIN_BLOCK && l.len * 4 <= l.cap {
            if l.len == 0 {
                self.push_free(l.start, l.cap);
                self.lists[n] = ListRef::default();
            } else {
                let new_cap = l.len.next_power_of_two().max(MIN_BLOCK);
                let fill = self.buf[l.start];
                self.rehome(n, new_cap, fill);
            }
        }
    }

    /// Replaces node `n`'s list wholesale by bulk copy (the raw-section
    /// restore primitive). The old block, if any, is recycled.
    pub fn set_list(&mut self, n: usize, items: &[T]) {
        self.ensure_node_bound(n + 1);
        let old = self.lists[n];
        if old.cap > 0 {
            self.push_free(old.start, old.cap);
            self.lists[n] = ListRef::default();
        }
        if !items.is_empty() {
            let cap = (items.len() as u32).next_power_of_two().max(MIN_BLOCK);
            let start = self.acquire_block(cap, items[0]);
            self.buf[start..start + items.len()].copy_from_slice(items);
            self.lists[n] = ListRef {
                start,
                len: items.len() as u32,
                cap,
            };
        }
        self.touch(n);
    }

    /// The pool-wide content generation: bumped on every mutation that
    /// changes what a snapshot would serialize.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of snapshot chunks covering the current node table.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.lists.len().div_ceil(SNAPSHOT_CHUNK)
    }

    /// Generation at which chunk `chunk` last changed (0 = never touched).
    #[inline]
    pub fn chunk_generation(&self, chunk: usize) -> u64 {
        self.chunk_gen.get(chunk).copied().unwrap_or(0)
    }

    /// Releases recycled free-list blocks sitting at the arena tail and
    /// returns the freed buffer to the allocator — the budget-shedding
    /// primitive. Only tail blocks can be released (the arena is an
    /// offset-addressed bump allocator; interior holes must stay for their
    /// recorded starts to remain valid). Returns the approximate bytes
    /// released. Pure layout change: no snapshot content is affected.
    pub fn release_free_tail(&mut self) -> usize {
        let before = self.approx_bytes();
        let mut blocks: Vec<(usize, u32)> = Vec::new();
        for (class, list) in self.free.iter().enumerate() {
            for &start in list {
                blocks.push((start, 1u32 << class));
            }
        }
        blocks.sort_unstable_by_key(|b| std::cmp::Reverse(b.0));
        let mut end = self.buf.len();
        let mut dropped = crate::hash::FxHashSet::default();
        for (start, cap) in blocks {
            if start + cap as usize == end {
                end = start;
                dropped.insert(start);
            } else {
                break;
            }
        }
        if !dropped.is_empty() {
            for list in &mut self.free {
                list.retain(|s| !dropped.contains(s));
            }
            self.buf.truncate(end);
        }
        self.buf.shrink_to_fit();
        for list in &mut self.free {
            list.shrink_to_fit();
        }
        before.saturating_sub(self.approx_bytes())
    }

    /// Approximate heap footprint in bytes (arena buffer, list table, free
    /// lists, chunk generation table).
    pub fn approx_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<T>()
            + self.lists.capacity() * std::mem::size_of::<ListRef>()
            + self
                .free
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
            + self.chunk_gen.capacity() * std::mem::size_of::<u64>()
    }

    /// Arena occupancy counters for diagnostics and block-reuse tests:
    /// `(buffer_slots, recycled_blocks)`.
    #[doc(hidden)]
    pub fn arena_stats(&self) -> (usize, usize) {
        (self.buf.len(), self.free.iter().map(Vec::len).sum())
    }

    /// Slots currently held on free lists (recycled, reusable capacity).
    /// `buffer_slots = live slots + free slots + unrecycled stale slots`;
    /// the accounting identity test pins this decomposition.
    #[doc(hidden)]
    pub fn free_slots(&self) -> usize {
        self.free
            .iter()
            .enumerate()
            .map(|(class, list)| list.len() << class)
            .sum()
    }

    /// Slots occupied by live list entries.
    #[doc(hidden)]
    pub fn live_slots(&self) -> usize {
        self.lists.iter().map(|l| l.len as usize).sum()
    }

    /// Slots reserved by list blocks (live capacity, whether filled or
    /// not).
    #[doc(hidden)]
    pub fn reserved_slots(&self) -> usize {
        self.lists.iter().map(|l| l.cap as usize).sum()
    }
}

impl AdjPool<crate::node::NodeId> {
    /// Serializes chunk `chunk` as two raw `u32` runs — list lengths, then
    /// all entries concatenated in list order — the contiguous LE block
    /// format sectioned saves use instead of element-by-element encoding.
    pub fn write_chunk_snapshot(&self, chunk: usize, w: &mut codec::Writer) {
        let lo = chunk * SNAPSHOT_CHUNK;
        let hi = (lo + SNAPSHOT_CHUNK).min(self.lists.len());
        debug_assert!(lo < hi, "chunk out of range");
        let lens: Vec<u32> = (lo..hi).map(|n| self.lists[n].len).collect();
        w.put_u32_run(&lens);
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        let mut entries: Vec<u32> = Vec::with_capacity(total);
        for n in lo..hi {
            entries.extend(self.as_slice(n).iter().map(|v| v.0));
        }
        w.put_u32_run(&entries);
    }

    /// Restores chunk `chunk` from [`Self::write_chunk_snapshot`] bytes by
    /// bulk copy. `expected_lists` is the list count the chunk must hold
    /// (from the enclosing snapshot's node bound); a mismatch is typed
    /// corruption.
    pub fn read_chunk_snapshot(
        &mut self,
        chunk: usize,
        expected_lists: usize,
        r: &mut codec::Reader<'_>,
    ) -> codec::Result<()> {
        let lens = r.get_u32_run()?;
        if lens.len() != expected_lists {
            return Err(codec::CodecError::Invalid(
                "adjacency chunk holds the wrong number of lists",
            ));
        }
        let entries = r.get_u32_run()?;
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        if total != entries.len() {
            return Err(codec::CodecError::Invalid(
                "adjacency chunk lengths disagree with entry run",
            ));
        }
        let lo = chunk * SNAPSHOT_CHUNK;
        self.ensure_node_bound(lo + lens.len());
        let mut off = 0usize;
        for (i, &len) in lens.iter().enumerate() {
            let items: Vec<crate::node::NodeId> = entries[off..off + len as usize]
                .iter()
                .map(|&v| crate::node::NodeId(v))
                .collect();
            self.set_list(lo + i, &items);
            off += len as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let mut p: AdjPool<u32> = AdjPool::new();
        assert!(p.as_slice(3).is_empty());
        for i in 0..10 {
            p.push(2, i);
        }
        p.push(0, 99);
        assert_eq!(p.as_slice(2), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(p.as_slice(0), &[99]);
        assert!(p.as_slice(1).is_empty());
        assert_eq!(p.node_bound(), 3);
        assert_eq!(p.list_len(2), 10);
    }

    #[test]
    fn growth_recycles_outgrown_blocks() {
        let mut p: AdjPool<u32> = AdjPool::new();
        // Fill one list past several doublings: each outgrown block must
        // land on a free list, and a second list must pick them up instead
        // of growing the buffer.
        for i in 0..32 {
            p.push(0, i);
        }
        let (slots_before, freed) = p.arena_stats();
        assert!(freed >= 3, "outgrown 4/8/16 blocks recycled, got {freed}");
        for i in 0..16 {
            p.push(1, i);
        }
        let (slots_after, _) = p.arena_stats();
        assert_eq!(
            slots_after, slots_before,
            "second list must reuse recycled blocks"
        );
        assert_eq!(p.as_slice(0).len(), 32);
        assert_eq!(p.as_slice(1).len(), 16);
    }

    #[test]
    fn swap_remove_is_unordered_but_complete() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..5 {
            p.push(0, i);
        }
        assert_eq!(p.swap_remove(0, 1), 1);
        let mut rest = p.as_slice(0).to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 2, 3, 4]);
    }

    #[test]
    fn retain_preserves_order_and_shrinks_blocks() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..64 {
            p.push(0, i);
        }
        p.retain(0, |&x| x % 10 == 0);
        assert_eq!(p.as_slice(0), &[0, 10, 20, 30, 40, 50, 60]);
        let (_, freed) = p.arena_stats();
        assert!(freed > 0, "shrunk list must recycle its big block");
        // Retaining nothing releases the block entirely.
        p.retain(0, |_| false);
        assert!(p.as_slice(0).is_empty());
        // The list remains fully usable afterwards.
        p.push(0, 7);
        assert_eq!(p.as_slice(0), &[7]);
    }

    #[test]
    fn expiry_storm_reuses_blocks_instead_of_growing() {
        let mut p: AdjPool<u32> = AdjPool::new();
        // Warm up to peak shape once.
        for i in 0..256 {
            p.push(0, i);
        }
        p.retain(0, |_| false);
        let (peak, _) = p.arena_stats();
        // Repeated fill/drain cycles at the same peak must not grow the
        // arena: every cycle's blocks come from the free lists.
        for _ in 0..10 {
            for i in 0..256 {
                p.push(0, i);
            }
            p.retain(0, |_| false);
            let (now, _) = p.arena_stats();
            assert_eq!(now, peak, "storm cycle grew the arena");
        }
    }

    #[test]
    fn as_mut_slice_rewrites_in_place() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..4 {
            p.push(1, i);
        }
        for x in p.as_mut_slice(1) {
            *x *= 2;
        }
        assert_eq!(p.as_slice(1), &[0, 2, 4, 6]);
        assert!(p.as_mut_slice(9).is_empty());
    }

    #[test]
    fn clone_is_independent() {
        let mut p: AdjPool<u32> = AdjPool::new();
        p.push(0, 1);
        let mut q = p.clone();
        q.push(0, 2);
        assert_eq!(p.as_slice(0), &[1]);
        assert_eq!(q.as_slice(0), &[1, 2]);
    }

    #[test]
    fn accounting_tracks_buffer_growth() {
        let mut p: AdjPool<u64> = AdjPool::new();
        let empty = p.approx_bytes();
        for i in 0..100 {
            p.push(i as usize % 7, i);
        }
        assert!(p.approx_bytes() > empty);
    }

    /// The accounting identity the memory budget relies on: every arena
    /// slot is owned by exactly one party — a live list block or a free
    /// list — so `buffer_slots == reserved + free` at all times, and
    /// `approx_bytes` bills at least the whole buffer.
    #[test]
    fn accounting_identity_buffer_equals_reserved_plus_free() {
        let mut p: AdjPool<u32> = AdjPool::new();
        let check = |p: &AdjPool<u32>, at: &str| {
            let (slots, _) = p.arena_stats();
            assert_eq!(
                slots,
                p.reserved_slots() + p.free_slots(),
                "slot ownership leaked ({at})"
            );
            assert!(p.live_slots() <= p.reserved_slots(), "{at}");
            assert!(
                p.approx_bytes() >= slots * std::mem::size_of::<u32>(),
                "approx_bytes undercounts the buffer ({at})"
            );
        };
        check(&p, "empty");
        for i in 0..500u32 {
            p.push((i % 13) as usize, i);
        }
        check(&p, "after growth");
        for n in 0..13 {
            p.retain(n, |&x| x % 3 == 0);
        }
        check(&p, "after retain shrink");
        for n in 0..6 {
            while p.list_len(n) > 0 {
                p.swap_remove(n, 0);
            }
        }
        check(&p, "after full drains");
        p.release_free_tail();
        check(&p, "after free-tail release");
        for i in 0..200u32 {
            p.push((i % 5) as usize, i);
        }
        check(&p, "after regrowth");
    }

    #[test]
    fn generations_track_content_not_layout() {
        let mut p: AdjPool<u32> = AdjPool::new();
        assert_eq!(p.generation(), 0);
        p.push(0, 1);
        let g1 = p.generation();
        assert!(g1 > 0);
        assert_eq!(p.chunk_generation(0), g1);
        // Reading does not bump.
        let _ = p.as_slice(0);
        assert_eq!(p.generation(), g1);
        // A mutation in a far chunk bumps that chunk, not chunk 0.
        p.push(SNAPSHOT_CHUNK * 3 + 5, 9);
        assert!(p.chunk_generation(3) > g1);
        // Growth dirtied the intermediate chunks too (their serialized
        // list counts changed), all at the same generation event window.
        assert!(p.chunk_generation(1) > g1);
        assert!(p.chunk_generation(2) > g1);
        let g0 = p.chunk_generation(0);
        // Layout-only changes (free-tail release) never bump.
        let g = p.generation();
        p.release_free_tail();
        assert_eq!(p.generation(), g);
        assert_eq!(p.chunk_generation(0), g0);
    }

    #[test]
    fn set_list_bulk_copies_and_recycles() {
        let mut p: AdjPool<u32> = AdjPool::new();
        for i in 0..40 {
            p.push(2, i);
        }
        let (slots, _) = p.arena_stats();
        p.set_list(2, &[7, 7, 7]);
        assert_eq!(p.as_slice(2), &[7, 7, 7]);
        let (after, freed) = p.arena_stats();
        assert!(freed > 0, "old block must be recycled");
        assert_eq!(slots, after, "small replacement reuses recycled space");
        p.set_list(2, &[]);
        assert!(p.as_slice(2).is_empty());
        p.set_list(5, &[1, 2]);
        assert_eq!(p.node_bound(), 6);
        assert_eq!(p.as_slice(5), &[1, 2]);
    }

    #[test]
    fn release_free_tail_returns_tail_blocks_only() {
        let mut p: AdjPool<u32> = AdjPool::new();
        // List 0 grows to the tail, then empties: its blocks are at the
        // end of the buffer and releasable.
        for i in 0..16 {
            p.push(0, i);
        }
        p.push(1, 42); // a live block pinned mid-buffer? (ordering varies)
        for i in 0..64 {
            p.push(2, i);
        }
        p.retain(2, |_| false);
        let (before_slots, _) = p.arena_stats();
        let released = p.release_free_tail();
        let (after_slots, _) = p.arena_stats();
        assert!(after_slots <= before_slots);
        assert!(released > 0, "tail blocks must release bytes");
        // Contents survive untouched.
        assert_eq!(p.as_slice(0).len(), 16);
        assert_eq!(p.as_slice(1), &[42]);
        assert!(p.as_slice(2).is_empty());
        // The pool remains fully usable.
        for i in 0..32 {
            p.push(2, i);
        }
        assert_eq!(p.as_slice(2).len(), 32);
        let (slots, _) = p.arena_stats();
        assert_eq!(slots, p.reserved_slots() + p.free_slots());
    }

    #[test]
    fn chunk_snapshot_round_trip() {
        use crate::node::NodeId;
        let mut p: AdjPool<NodeId> = AdjPool::new();
        // Spread lists across two chunks with distinctive order.
        for (n, v) in [(0usize, 3u32), (0, 1), (5, 9), (SNAPSHOT_CHUNK + 2, 4)] {
            p.push(n, NodeId(v));
        }
        let mut restored: AdjPool<NodeId> = AdjPool::new();
        for chunk in 0..p.chunk_count() {
            let mut w = codec::Writer::new();
            p.write_chunk_snapshot(chunk, &mut w);
            let bytes = w.into_vec();
            let lo = chunk * SNAPSHOT_CHUNK;
            let expected = (lo + SNAPSHOT_CHUNK).min(p.node_bound()) - lo;
            let mut r = codec::Reader::new(&bytes);
            restored
                .read_chunk_snapshot(chunk, expected, &mut r)
                .expect("round trip");
            r.finish().expect("fully consumed");
            // Every truncation of the chunk errors cleanly.
            for cut in 0..bytes.len() {
                let mut r = codec::Reader::new(&bytes[..cut]);
                let res = AdjPool::<NodeId>::new()
                    .read_chunk_snapshot(chunk, expected, &mut r)
                    .and_then(|_| r.finish());
                assert!(res.is_err(), "prefix of {cut} bytes decoded");
            }
        }
        assert_eq!(restored.node_bound(), p.node_bound());
        for n in 0..p.node_bound() {
            assert_eq!(restored.as_slice(n), p.as_slice(n), "list {n} drifted");
        }
    }
}
