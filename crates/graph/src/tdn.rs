//! The time-decaying dynamic interaction network (TDN) of §II.
//!
//! `TdnGraph` is the live graph `G_t = (V_t, E_t)`: every edge carries an
//! expiry time `τ + l_τ(e)`; advancing the clock drains expiry buckets and
//! evicts edges (and nodes whose last incident edge expired). Multi-edges
//! between the same ordered pair are kept — their multiplicity feeds the
//! diffusion-probability estimate used by the IC-model baselines
//! (`p_uv = 2/(1+e^{−0.2 x}) − 1`, §V-C).
//!
//! Adjacency entries are removed *lazily*: each entry stores its expiry and
//! traversals skip dead entries; a per-node dead counter triggers compaction
//! once at least half of a list is dead, keeping amortized O(1) cost per
//! expired edge.

use crate::arena::AdjPool;
use crate::epoch::EpochSet;
use crate::hash::FxHashMap;
use crate::indexed_set::IndexedSet;
use crate::node::{pack_pair, Lifetime, NodeId, Time};
use crate::traits::{InGraph, OutGraph};
use std::collections::BTreeMap;

/// An adjacency entry: target node plus the edge instance's expiry time.
type Entry = (NodeId, Time);

/// One direction of lazily-compacted adjacency: an [`AdjPool`] arena of
/// `(node, expiry)` entries plus a per-node dead counter.
///
/// Entries are removed lazily — traversals skip dead ones — and a list is
/// compacted (order-preserving `retain` inside its arena block, shrinking
/// the block when most of it died) once at least half its entries are
/// dead. Compaction is deferred to the end of the advance that evicted the
/// entries (see [`TdnGraph::advance_to_with`]): only once *every* bucket
/// `≤ t` has drained does the dead counter exactly equal the number of
/// dead entries, making `retain` safe. Order preservation matters: entry
/// order drives BFS traversal order, which the determinism and checkpoint
/// contracts pin verbatim (`AdjPool::swap_remove` would be O(1) but
/// reorders).
#[derive(Default, Clone)]
struct AdjSide {
    pool: AdjPool<Entry>,
    dead: Vec<u32>,
}

impl AdjSide {
    /// Number of live entries in node `n`'s list.
    fn live(&self, n: usize) -> usize {
        self.pool.list_len(n) - self.dead[n] as usize
    }

    fn ensure_node_bound(&mut self, bound: usize) {
        self.pool.ensure_node_bound(bound);
        if self.dead.len() < bound {
            self.dead.resize(bound, 0);
        }
    }

    /// Compacts node `n` if at least half its entries are dead. Must only
    /// run when all entries with `exp ≤ now` have been evicted (dead
    /// counter exact).
    fn maybe_compact(&mut self, n: usize, now: Time) {
        if self.dead[n] as usize * 2 >= self.pool.list_len(n) {
            self.pool.retain(n, |&(_, exp)| exp > now);
            self.dead[n] = 0;
        }
    }

    /// Counts entry `n` dead (lazy removal). The dead counter is
    /// serialized with the chunk, so this is a content change for
    /// dirty-tracking purposes even though the entry bytes are untouched.
    fn kill(&mut self, n: usize) {
        self.dead[n] += 1;
        self.pool.mark_dirty(n);
    }

    fn approx_bytes(&self) -> usize {
        self.pool.approx_bytes() + self.dead.capacity() * std::mem::size_of::<u32>()
    }

    /// Serializes snapshot chunk `chunk` as raw word runs: list lengths,
    /// dead counters, then all entries split into a target run and an
    /// expiry run (structure-of-arrays keeps both runs zero-copy).
    fn write_chunk(&self, chunk: usize, w: &mut codec::Writer) {
        let lo = chunk * crate::arena::SNAPSHOT_CHUNK;
        let hi = (lo + crate::arena::SNAPSHOT_CHUNK).min(self.pool.node_bound());
        debug_assert!(lo < hi, "chunk out of range");
        let lens: Vec<u32> = (lo..hi).map(|n| self.pool.list_len(n) as u32).collect();
        w.put_u32_run(&lens);
        w.put_u32_run(&self.dead[lo..hi]);
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        let mut targets: Vec<u32> = Vec::with_capacity(total);
        let mut expiries: Vec<u64> = Vec::with_capacity(total);
        for n in lo..hi {
            for &(v, exp) in self.pool.as_slice(n) {
                targets.push(v.0);
                expiries.push(exp);
            }
        }
        w.put_u32_run(&targets);
        w.put_u64_run(&expiries);
    }

    /// Restores chunk `chunk` from [`Self::write_chunk`] bytes by bulk
    /// copy. `expected_lists` comes from the enclosing snapshot's node
    /// bound; any internal disagreement is typed corruption. Dead counters
    /// are range-checked here and recounted exactly by the caller's
    /// cross-validation.
    fn read_chunk(
        &mut self,
        chunk: usize,
        expected_lists: usize,
        r: &mut codec::Reader<'_>,
    ) -> codec::Result<()> {
        let lens = r.get_u32_run()?;
        let dead = r.get_u32_run()?;
        if lens.len() != expected_lists || dead.len() != expected_lists {
            return Err(codec::CodecError::Invalid(
                "TdnGraph adjacency chunk holds the wrong number of lists",
            ));
        }
        let targets = r.get_u32_run()?;
        let expiries = r.get_u64_run()?;
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        if targets.len() != total || expiries.len() != total {
            return Err(codec::CodecError::Invalid(
                "TdnGraph adjacency chunk lengths disagree with entry runs",
            ));
        }
        let lo = chunk * crate::arena::SNAPSHOT_CHUNK;
        self.ensure_node_bound(lo + expected_lists);
        let mut off = 0usize;
        let mut items: Vec<Entry> = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            if dead[i] > len {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph dead counter exceeds adjacency length",
                ));
            }
            items.clear();
            items.extend(
                targets[off..off + len as usize]
                    .iter()
                    .zip(&expiries[off..off + len as usize])
                    .map(|(&t, &exp)| (NodeId(t), exp)),
            );
            self.pool.set_list(lo + i, &items);
            self.dead[lo + i] = dead[i];
            off += len as usize;
        }
        Ok(())
    }
}

/// A live, timestamped directed edge of `G_t`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LiveEdge {
    /// Influencer (source).
    pub src: NodeId,
    /// Influenced node (destination).
    pub dst: NodeId,
    /// First time step at which the edge is no longer in the graph.
    pub expiry: Time,
}

impl LiveEdge {
    /// Remaining lifetime at time `now` (`expiry − now`).
    pub fn remaining(&self, now: Time) -> Lifetime {
        self.expiry.saturating_sub(now).min(Lifetime::MAX as Time) as Lifetime
    }
}

/// The time-decaying dynamic interaction network `G_t`.
#[derive(Default, Clone)]
pub struct TdnGraph {
    now: Time,
    out: AdjSide,
    inc: AdjSide,
    /// live in+out degree per node index (edge instances, incl. multi-edges).
    degree: Vec<u32>,
    /// expiry time → edges expiring at that time.
    buckets: BTreeMap<Time, Vec<(NodeId, NodeId)>>,
    /// live multiplicity per ordered pair.
    pair_count: FxHashMap<u64, u32>,
    live_nodes: IndexedSet,
    live_edges: u64,
    /// Epoch-tagged dirty set: nodes whose incident live edge set changed
    /// (insert, expiry, or re-activation) since the last
    /// [`Self::take_dirty`]. Any node whose forward or reverse reach may
    /// have changed is incident to a changed edge, so its endpoints are in
    /// here — consumers reverse/forward-close over it as needed.
    ///
    /// Maintained only while [`Self::set_dirty_tracking`] is on: an
    /// unconsumed dirty set would otherwise grow with every node ever
    /// touched (and bloat checkpoints), so graphs without an incremental
    /// consumer pay nothing.
    dirty: EpochSet,
    dirty_enabled: bool,
    /// Per-advance touched marks for the batched eviction sweep
    /// (transient scratch, never serialized).
    touched: EpochSet,
    /// Monotone counter behind [`Self::bucket_range_gen`]; like the arena
    /// generations this is process-local dirty-tracking state, never
    /// serialized.
    bucket_generation: u64,
    /// Expiry-range watermarks: coarse range (`expiry >>`
    /// [`BUCKET_RANGE_SHIFT`]) → generation of its last mutation (bucket
    /// insert or drain). Sectioned saves skip ranges whose watermark has
    /// not moved since the parent save. Ranges wholly below `now` are
    /// pruned on advance, keeping the map bounded by live expiries.
    bucket_range_gen: BTreeMap<u64, u64>,
}

/// Log2 width of a bucket-range watermark: expiry buckets are grouped into
/// ranges of `1 << BUCKET_RANGE_SHIFT` time steps for dirty tracking, so a
/// far-future range untouched between two saves costs a delta checkpoint
/// nothing.
pub const BUCKET_RANGE_SHIFT: u32 = 6;

/// Decoded-but-unvalidated snapshot parts — the element-wise and sectioned
/// restore paths both parse into this shape and hand it to
/// [`TdnGraph::assemble`] for the shared cross-validation.
struct TdnParts {
    now: Time,
    out: AdjSide,
    inc: AdjSide,
    degree: Vec<u32>,
    buckets: BTreeMap<Time, Vec<(NodeId, NodeId)>>,
    pair_count: FxHashMap<u64, u32>,
    live_nodes: IndexedSet,
    live_edges: u64,
    dirty_enabled: bool,
    dirty: EpochSet,
}

impl TdnGraph {
    /// Creates an empty graph at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time `t`.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of live edge instances (multi-edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.live_edges
    }

    /// Number of distinct live ordered pairs.
    pub fn pair_count(&self) -> usize {
        self.pair_count.len()
    }

    /// Number of live nodes (incident to ≥1 live edge).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live_nodes.len()
    }

    /// The set of live nodes.
    #[inline]
    pub fn live_nodes(&self) -> &IndexedSet {
        &self.live_nodes
    }

    /// Live multiplicity of `u → v` (the `x` in the diffusion probability).
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        self.pair_count.get(&pack_pair(u, v)).copied().unwrap_or(0)
    }

    /// Advances the clock to `t`, evicting every edge with `expiry ≤ t`.
    ///
    /// # Panics
    /// Panics if `t` is before the current time (the stream is
    /// chronological by Definition 2).
    pub fn advance_to(&mut self, t: Time) {
        self.advance_to_with(t, |_, _| {});
    }

    /// Like [`advance_to`](Self::advance_to), invoking `on_evict(u, v)` for
    /// every expiring edge instance — the hook that lets index structures
    /// (e.g. DIM's RR sketches) react to deletions.
    pub fn advance_to_with(&mut self, t: Time, mut on_evict: impl FnMut(NodeId, NodeId)) {
        assert!(t >= self.now, "time moved backwards: {} -> {}", self.now, t);
        self.now = t;
        // Batched eviction sweep: drain every bucket `≤ t` in one pass.
        // Per-edge work (pair counts, degrees, live-node removals) runs in
        // bucket order — live-node *removal order* is part of the
        // determinism contract, since the live-node position order drives
        // sampling and backfills — while the epoch-stamped `touched` set
        // coalesces same-bucket and cross-bucket expiries so each adjacency
        // list is considered for compaction exactly once per sweep, with no
        // sort/dedup pass over the (possibly much longer) edge list.
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        while let Some((&exp, _)) = self.buckets.first_key_value() {
            if exp > t {
                break;
            }
            let (_, edges) = self.buckets.pop_first().expect("bucket exists");
            self.touch_bucket_range(exp);
            for (u, v) in edges {
                self.evict(u, v);
                touched.insert(u);
                touched.insert(v);
                on_evict(u, v);
            }
        }
        // Watermarks for ranges wholly in the past can never matter again.
        self.bucket_range_gen = self.bucket_range_gen.split_off(&(t >> BUCKET_RANGE_SHIFT));
        // Compact once per touched list, after ALL buckets ≤ t are drained
        // (dead counters are exact only then).
        for &n in touched.members() {
            self.out.maybe_compact(n.index(), t);
            self.inc.maybe_compact(n.index(), t);
        }
        self.touched = touched;
    }

    /// Enables (or disables) dirty-set tracking. Disabling clears any
    /// accumulated marks. Off by default — see the field docs.
    pub fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_enabled = enabled;
        if !enabled {
            self.dirty.clear();
        }
    }

    /// Whether dirty-set tracking is on.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_enabled
    }

    /// Drains the epoch-tagged dirty set: every node whose incident live
    /// edge set changed — by insertion, expiry, or re-activation (a node
    /// returning from the dead via a new edge is simply marked again in
    /// the new epoch) — since the last call, in first-change order.
    /// Always empty unless [`Self::set_dirty_tracking`] is on.
    ///
    /// A node's forward or reverse reach can only change if some changed
    /// edge's endpoint set intersects the paths involved, so consumers
    /// maintaining reachability state close over this set (e.g. a reverse
    /// BFS per member) instead of rescanning `V_t`.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        self.dirty.drain()
    }

    /// The dirty set accumulated since the last [`Self::take_dirty`]
    /// (first-change order), without draining it.
    pub fn dirty_nodes(&self) -> &[NodeId] {
        self.dirty.members()
    }

    fn evict(&mut self, u: NodeId, v: NodeId) {
        if self.dirty_enabled {
            self.dirty.insert(u);
            self.dirty.insert(v);
        }
        let key = pack_pair(u, v);
        if let Some(c) = self.pair_count.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.pair_count.remove(&key);
            }
        }
        self.out.kill(u.index());
        self.inc.kill(v.index());
        self.live_edges -= 1;
        for n in [u, v] {
            let d = &mut self.degree[n.index()];
            *d -= 1;
            if *d == 0 {
                self.live_nodes.remove(n);
            }
        }
    }

    /// Adds edge `u → v` arriving *now* with the given lifetime (Definition 1
    /// plus the lifetime assignment of §II-B). Lifetime must be ≥ 1;
    /// `Lifetime::MAX` means "never expires" (ADN edges, Example 3).
    ///
    /// Self-loops are ignored, mirroring the paper's model assumption.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, lifetime: Lifetime) {
        if u == v || lifetime == 0 {
            return;
        }
        let expiry = if lifetime == Lifetime::MAX {
            Time::MAX
        } else {
            self.now + lifetime as Time
        };
        let bound = u.index().max(v.index()) + 1;
        self.out.ensure_node_bound(bound);
        self.inc.ensure_node_bound(bound);
        if self.degree.len() < bound {
            self.degree.resize(bound, 0);
        }
        if self.dirty_enabled {
            self.dirty.insert(u);
            self.dirty.insert(v);
        }
        self.out.pool.push(u.index(), (v, expiry));
        self.inc.pool.push(v.index(), (u, expiry));
        *self.pair_count.entry(pack_pair(u, v)).or_insert(0) += 1;
        if expiry != Time::MAX {
            self.buckets.entry(expiry).or_default().push((u, v));
            self.touch_bucket_range(expiry);
        }
        self.live_edges += 1;
        for n in [u, v] {
            let d = &mut self.degree[n.index()];
            if *d == 0 {
                self.live_nodes.insert(n);
            }
            *d += 1;
        }
    }

    /// Iterates over live edges whose *current remaining lifetime* lies in
    /// `[lo, hi)`. This is HISTAPPROX's instance-creation query (Alg. 3,
    /// `ProcessEdges`, Fig. 6(c)): an edge expiring at `now + l` has
    /// remaining lifetime exactly `l`.
    pub fn edges_with_remaining_in(
        &self,
        lo: Lifetime,
        hi: Lifetime,
    ) -> impl Iterator<Item = LiveEdge> + '_ {
        let start = self.now.saturating_add(lo.max(1) as Time);
        let end = self.now.saturating_add(hi as Time);
        self.buckets
            .range(start..end)
            .flat_map(move |(&exp, edges)| {
                edges.iter().map(move |&(u, v)| LiveEdge {
                    src: u,
                    dst: v,
                    expiry: exp,
                })
            })
    }

    /// Iterates over all live edges (multi-edges repeated).
    pub fn live_edges_iter(&self) -> impl Iterator<Item = LiveEdge> + '_ {
        self.edges_with_remaining_in(1, Lifetime::MAX)
    }

    /// Distinct live in-neighbors of `v`, deduplicated, with multiplicity.
    pub fn in_neighbors_distinct(&self, v: NodeId) -> Vec<(NodeId, u32)> {
        let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
        for &(u, exp) in self.inc.pool.as_slice(v.index()) {
            if exp > self.now {
                *counts.entry(u).or_insert(0) += 1;
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// Live out-degree (edge instances) of `u`.
    pub fn out_degree_live(&self, u: NodeId) -> usize {
        self.out
            .pool
            .as_slice(u.index())
            .iter()
            .filter(|&&(_, exp)| exp > self.now)
            .count()
    }

    /// Live in-degree (edge instances) of `v` — the `w(R)` ingredient of
    /// TIM+'s KPT estimation.
    pub fn in_degree_live(&self, v: NodeId) -> usize {
        self.inc
            .pool
            .as_slice(v.index())
            .iter()
            .filter(|&&(_, exp)| exp > self.now)
            .count()
    }

    /// Serializes the live graph for checkpointing.
    ///
    /// Everything order-sensitive is written **verbatim**: adjacency entry
    /// order drives BFS traversal order, expiry-bucket vector order drives
    /// [`Self::edges_with_remaining_in`] (HISTAPPROX's backfill feed), and
    /// the live-node set's position order drives index-based sampling.
    /// Lazy-compaction `dead` counters are stored too, so compaction fires
    /// at the same future steps as in an uninterrupted run.
    pub fn write_snapshot(&self, w: &mut codec::Writer) {
        w.put_u64(self.now);
        let put_adj = |w: &mut codec::Writer, side: &AdjSide| {
            w.put_len(side.pool.node_bound());
            for n in 0..side.pool.node_bound() {
                let list = side.pool.as_slice(n);
                w.put_len(list.len());
                for &(n, exp) in list {
                    w.put_u32(n.0);
                    w.put_u64(exp);
                }
                w.put_u32(side.dead[n]);
            }
        };
        put_adj(w, &self.out);
        put_adj(w, &self.inc);
        w.put_len(self.degree.len());
        for &d in &self.degree {
            w.put_u32(d);
        }
        w.put_len(self.buckets.len());
        for (&exp, edges) in &self.buckets {
            w.put_u64(exp);
            w.put_len(edges.len());
            for &(u, v) in edges {
                w.put_u32(u.0);
                w.put_u32(v.0);
            }
        }
        // Canonical (sorted) order: the map is only ever queried by key.
        let mut pairs: Vec<(u64, u32)> = self.pair_count.iter().map(|(&k, &c)| (k, c)).collect();
        pairs.sort_unstable();
        w.put_len(pairs.len());
        for (k, c) in pairs {
            w.put_u64(k);
            w.put_u32(c);
        }
        self.live_nodes.write_snapshot(w);
        w.put_u64(self.live_edges);
        // Dirty tracking flag + set (order verbatim): state a consumer has
        // not yet drained must survive a warm restart, or its incremental
        // view would silently miss pre-checkpoint churn. With tracking off
        // (the default) this costs nine bytes.
        w.put_bool(self.dirty_enabled);
        self.dirty.write_snapshot(w);
    }

    /// Reconstructs a graph from [`Self::write_snapshot`] bytes, validating
    /// the redundant bookkeeping (live-edge recount, dead counters, bucket
    /// keys) so a corrupted snapshot surfaces as a typed error.
    pub fn read_snapshot(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        let now = r.get_u64()?;
        let get_adj = |r: &mut codec::Reader<'_>| -> codec::Result<AdjSide> {
            let n = r.get_len(8)?;
            let mut side = AdjSide::default();
            side.ensure_node_bound(n);
            for i in 0..n {
                let len = r.get_len(12)?;
                for _ in 0..len {
                    let node = NodeId(r.get_u32()?);
                    let exp = r.get_u64()?;
                    side.pool.push(i, (node, exp));
                }
                let dead = r.get_u32()?;
                if dead as usize > len {
                    return Err(codec::CodecError::Invalid(
                        "TdnGraph dead counter exceeds adjacency length",
                    ));
                }
                side.dead[i] = dead;
            }
            Ok(side)
        };
        let out = get_adj(r)?;
        let inc = get_adj(r)?;
        let n_deg = r.get_len(4)?;
        let mut degree = Vec::with_capacity(n_deg);
        for _ in 0..n_deg {
            degree.push(r.get_u32()?);
        }
        let bound = out.pool.node_bound();
        let n_buckets = r.get_len(16)?;
        let mut buckets: BTreeMap<Time, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        for _ in 0..n_buckets {
            let exp = r.get_u64()?;
            if exp <= now {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph expiry bucket at or before the snapshot clock",
                ));
            }
            let len = r.get_len(8)?;
            let mut edges = Vec::with_capacity(len);
            for _ in 0..len {
                let u = NodeId(r.get_u32()?);
                let v = NodeId(r.get_u32()?);
                edges.push((u, v));
            }
            if buckets.insert(exp, edges).is_some() {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph duplicate expiry bucket",
                ));
            }
        }
        let n_pairs = r.get_len(12)?;
        let mut pair_count = FxHashMap::default();
        for _ in 0..n_pairs {
            let k = r.get_u64()?;
            let c = r.get_u32()?;
            if c == 0 || pair_count.insert(k, c).is_some() {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph pair multiplicity zero or duplicated",
                ));
            }
        }
        let live_nodes = IndexedSet::read_snapshot(r)?;
        let live_edges = r.get_u64()?;
        let dirty_enabled = r.get_bool()?;
        let dirty = EpochSet::read_snapshot(r, bound)?;
        Self::assemble(TdnParts {
            now,
            out,
            inc,
            degree,
            buckets,
            pair_count,
            live_nodes,
            live_edges,
            dirty_enabled,
            dirty,
        })
    }

    /// Cross-validates decoded parts and assembles the graph — the shared
    /// back half of both restore paths (element-wise and sectioned). The
    /// checksum only proves the file round-tripped the *bytes*; it does
    /// not prove the structures agree with each other, and future mutation
    /// code (eviction, compaction) indexes and decrements based on exactly
    /// these invariants. Any disagreement is a typed error here, not a
    /// panic later.
    fn assemble(parts: TdnParts) -> codec::Result<Self> {
        let TdnParts {
            now,
            out,
            inc,
            degree,
            buckets,
            pair_count,
            live_nodes,
            live_edges,
            dirty_enabled,
            dirty,
        } = parts;
        let bound = out.pool.node_bound();
        if bound != inc.pool.node_bound() || bound != degree.len() {
            return Err(codec::CodecError::Invalid(
                "TdnGraph per-node vectors disagree on node bound",
            ));
        }
        if !dirty_enabled && !dirty.is_empty() {
            return Err(codec::CodecError::Invalid(
                "TdnGraph dirty set present with tracking disabled",
            ));
        }
        if buckets
            .first_key_value()
            .is_some_and(|(&exp, _)| exp <= now)
        {
            return Err(codec::CodecError::Invalid(
                "TdnGraph expiry bucket at or before the snapshot clock",
            ));
        }
        let mut live_out = vec![0u32; bound];
        let mut live_in = vec![0u32; bound];
        let mut live_pairs: FxHashMap<u64, u32> = FxHashMap::default();
        // `(packed pair, expiry)` multiset of finite-expiry live entries;
        // buckets must consume it exactly.
        let mut expiring: FxHashMap<(u64, Time), i64> = FxHashMap::default();
        let mut recount = 0u64;
        #[allow(clippy::needless_range_loop)]
        for u in 0..bound {
            let mut dead_recount = 0u32;
            for &(v, exp) in out.pool.as_slice(u) {
                if v.index() >= bound {
                    return Err(codec::CodecError::Invalid(
                        "TdnGraph adjacency target outside node bound",
                    ));
                }
                if exp > now {
                    recount += 1;
                    live_out[u] += 1;
                    live_in[v.index()] += 1;
                    let key = pack_pair(NodeId(u as u32), v);
                    *live_pairs.entry(key).or_insert(0) += 1;
                    if exp != Time::MAX {
                        *expiring.entry((key, exp)).or_insert(0) += 1;
                    }
                } else {
                    dead_recount += 1;
                }
            }
            if dead_recount != out.dead[u] {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph dead counter disagrees with entry recount",
                ));
            }
        }
        if recount != live_edges {
            return Err(codec::CodecError::Invalid(
                "TdnGraph live edge count disagrees with adjacency recount",
            ));
        }
        // Reverse adjacency: same multiset of live edges, transposed, with
        // an exact per-list dead count too.
        {
            let mut rev_pairs: FxHashMap<u64, u32> = FxHashMap::default();
            for v in 0..bound {
                let mut dead_recount = 0u32;
                for &(u, exp) in inc.pool.as_slice(v) {
                    if u.index() >= bound {
                        return Err(codec::CodecError::Invalid(
                            "TdnGraph reverse adjacency source outside node bound",
                        ));
                    }
                    if exp > now {
                        *rev_pairs.entry(pack_pair(u, NodeId(v as u32))).or_insert(0) += 1;
                    } else {
                        dead_recount += 1;
                    }
                }
                if dead_recount != inc.dead[v] {
                    return Err(codec::CodecError::Invalid(
                        "TdnGraph reverse dead counter disagrees with entry recount",
                    ));
                }
            }
            if rev_pairs != live_pairs {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph reverse adjacency is not the transpose of forward",
                ));
            }
        }
        // Pair multiplicities must match the live recount exactly.
        if pair_count != live_pairs {
            return Err(codec::CodecError::Invalid(
                "TdnGraph pair multiplicities disagree with adjacency",
            ));
        }
        // Degrees drive node eviction (`*d -= 1`); they must equal the live
        // in+out instance counts, and the live-node set must be exactly the
        // nodes with positive degree.
        for i in 0..bound {
            let expect = live_out[i] + live_in[i];
            if degree[i] != expect {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph degree vector disagrees with adjacency recount",
                ));
            }
            if (expect > 0) != live_nodes.contains(NodeId(i as u32)) {
                return Err(codec::CodecError::Invalid(
                    "TdnGraph live-node set disagrees with degrees",
                ));
            }
        }
        if live_nodes.len() > bound {
            return Err(codec::CodecError::Invalid(
                "TdnGraph live-node set exceeds node bound",
            ));
        }
        // Buckets must consume the finite-expiry live entries exactly:
        // eviction pops buckets and decrements per-edge bookkeeping, so a
        // surplus or deficit would underflow counts at some future step.
        for (&exp, edges) in &buckets {
            for &(u, v) in edges {
                if u.index() >= bound || v.index() >= bound {
                    return Err(codec::CodecError::Invalid(
                        "TdnGraph bucket edge outside node bound",
                    ));
                }
                match expiring.get_mut(&(pack_pair(u, v), exp)) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => {
                        return Err(codec::CodecError::Invalid(
                            "TdnGraph bucket edge without a matching live entry",
                        ))
                    }
                }
            }
        }
        if expiring.values().any(|&c| c != 0) {
            return Err(codec::CodecError::Invalid(
                "TdnGraph finite-lifetime entry missing from its expiry bucket",
            ));
        }
        let mut g = TdnGraph {
            now,
            out,
            inc,
            degree,
            buckets,
            pair_count,
            live_nodes,
            live_edges,
            dirty,
            dirty_enabled,
            touched: EpochSet::new(),
            bucket_generation: 0,
            bucket_range_gen: BTreeMap::new(),
        };
        // Fresh watermarks for every live range: the restored graph is a
        // new save lineage, so its first save is a base anyway; all that
        // matters is that subsequent mutations move the marks.
        let live_exps: Vec<Time> = g.buckets.keys().copied().collect();
        for exp in live_exps {
            g.touch_bucket_range(exp);
        }
        Ok(g)
    }

    /// Moves the watermark of `exp`'s coarse range to a fresh generation.
    fn touch_bucket_range(&mut self, exp: Time) {
        self.bucket_generation += 1;
        self.bucket_range_gen
            .insert(exp >> BUCKET_RANGE_SHIFT, self.bucket_generation);
    }

    /// Emits the graph as named sections under `prefix` — the delta-aware
    /// alternative to [`Self::write_snapshot`]. Layout:
    ///
    /// - `{prefix}core`: clock, degrees, pair multiplicities (canonical
    ///   sorted runs), live-node slab, edge count, dirty state, and the
    ///   directory of live bucket ranges. Always fresh (it is small and
    ///   changes every step).
    /// - `{prefix}adj.{out,inc}.<c>`: adjacency chunk `c` of each side
    ///   ([`crate::arena::SNAPSHOT_CHUNK`] lists), skipped via arena chunk
    ///   generations when untouched since the parent save.
    /// - `{prefix}buckets.<r>`: expiry buckets of coarse range `r`,
    ///   skipped via bucket-range watermarks.
    pub fn write_sections(&self, sink: &mut codec::SectionSink, prefix: &str) {
        let bound = self.out.pool.node_bound();
        let mut w = codec::Writer::new();
        w.put_u64(self.now);
        w.put_len(bound);
        w.put_u32_run(&self.degree);
        // Canonical (sorted) order: the map is only ever queried by key.
        let mut pairs: Vec<(u64, u32)> = self.pair_count.iter().map(|(&k, &c)| (k, c)).collect();
        pairs.sort_unstable();
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let counts: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();
        w.put_u64_run(&keys);
        w.put_u32_run(&counts);
        self.live_nodes.write_snapshot_slab(&mut w);
        w.put_u64(self.live_edges);
        w.put_bool(self.dirty_enabled);
        self.dirty.write_snapshot_raw(&mut w);
        let mut ranges: Vec<u64> = Vec::new();
        for &exp in self.buckets.keys() {
            let rk = exp >> BUCKET_RANGE_SHIFT;
            if ranges.last() != Some(&rk) {
                ranges.push(rk);
            }
        }
        w.put_u64_run(&ranges);
        sink.put(&format!("{prefix}core"), w.into_vec());
        for c in 0..bound.div_ceil(crate::arena::SNAPSHOT_CHUNK) {
            for (side, dir) in [(&self.out, "out"), (&self.inc, "inc")] {
                sink.put_with_gen(
                    &format!("{prefix}adj.{dir}.{c}"),
                    side.pool.chunk_generation(c),
                    || {
                        let mut w = codec::Writer::new();
                        side.write_chunk(c, &mut w);
                        w.into_vec()
                    },
                );
            }
        }
        for &rk in &ranges {
            let generation = self.bucket_range_gen.get(&rk).copied().unwrap_or(0);
            sink.put_with_gen(&format!("{prefix}buckets.{rk}"), generation, || {
                self.write_bucket_range(rk)
            });
        }
    }

    /// Serializes one coarse expiry range as four raw runs: bucket keys,
    /// per-bucket edge counts, then sources and targets concatenated in
    /// bucket order (the order [`Self::edges_with_remaining_in`] replays).
    fn write_bucket_range(&self, rk: u64) -> Vec<u8> {
        let mut exps: Vec<u64> = Vec::new();
        let mut lens: Vec<u32> = Vec::new();
        let mut us: Vec<u32> = Vec::new();
        let mut vs: Vec<u32> = Vec::new();
        for (&exp, edges) in self.buckets.range(rk << BUCKET_RANGE_SHIFT..) {
            if exp >> BUCKET_RANGE_SHIFT != rk {
                break;
            }
            exps.push(exp);
            lens.push(edges.len() as u32);
            for &(u, v) in edges {
                us.push(u.0);
                vs.push(v.0);
            }
        }
        let mut w = codec::Writer::new();
        w.put_u64_run(&exps);
        w.put_u32_run(&lens);
        w.put_u32_run(&us);
        w.put_u32_run(&vs);
        w.into_vec()
    }

    /// Reconstructs a graph from the sections [`Self::write_sections`]
    /// emitted under `prefix`, with the same full cross-validation as
    /// [`Self::read_snapshot`].
    pub fn read_sections(
        map: &codec::SectionMap,
        prefix: &str,
    ) -> Result<Self, codec::SectionError> {
        let invalid =
            |msg: &'static str| codec::SectionError::Codec(codec::CodecError::Invalid(msg));
        let mut r = map.reader(&format!("{prefix}core"))?;
        let now = r.get_u64()?;
        let bound = r.get_len(4)?;
        let degree = r.get_u32_run()?;
        if degree.len() != bound {
            return Err(invalid("TdnGraph degree run disagrees with node bound"));
        }
        let keys = r.get_u64_run()?;
        let counts = r.get_u32_run()?;
        if keys.len() != counts.len() {
            return Err(invalid("TdnGraph pair runs disagree in length"));
        }
        let mut pair_count = FxHashMap::default();
        for (i, (&k, &c)) in keys.iter().zip(&counts).enumerate() {
            if (i > 0 && keys[i - 1] >= k) || c == 0 {
                return Err(invalid(
                    "TdnGraph pair multiplicities out of order, duplicated, or zero",
                ));
            }
            pair_count.insert(k, c);
        }
        let live_nodes = IndexedSet::read_snapshot_slab(&mut r)?;
        let live_edges = r.get_u64()?;
        let dirty_enabled = r.get_bool()?;
        let dirty = EpochSet::read_snapshot_raw(&mut r, bound)?;
        let ranges = r.get_u64_run()?;
        r.finish()?;
        let mut out = AdjSide::default();
        let mut inc = AdjSide::default();
        out.ensure_node_bound(bound);
        inc.ensure_node_bound(bound);
        for c in 0..bound.div_ceil(crate::arena::SNAPSHOT_CHUNK) {
            let lists =
                (bound - c * crate::arena::SNAPSHOT_CHUNK).min(crate::arena::SNAPSHOT_CHUNK);
            for (side, dir) in [(&mut out, "out"), (&mut inc, "inc")] {
                let mut r = map.reader(&format!("{prefix}adj.{dir}.{c}"))?;
                side.read_chunk(c, lists, &mut r)?;
                r.finish()?;
            }
        }
        let mut buckets: BTreeMap<Time, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        for (i, &rk) in ranges.iter().enumerate() {
            if i > 0 && ranges[i - 1] >= rk {
                return Err(invalid("TdnGraph bucket ranges out of order"));
            }
            let mut r = map.reader(&format!("{prefix}buckets.{rk}"))?;
            let exps = r.get_u64_run()?;
            let lens = r.get_u32_run()?;
            let us = r.get_u32_run()?;
            let vs = r.get_u32_run()?;
            r.finish()?;
            let total: usize = lens.iter().map(|&l| l as usize).sum();
            if exps.len() != lens.len() || us.len() != vs.len() || total != us.len() {
                return Err(invalid("TdnGraph bucket range runs disagree"));
            }
            let mut off = 0usize;
            for (j, (&exp, &len)) in exps.iter().zip(&lens).enumerate() {
                if exp >> BUCKET_RANGE_SHIFT != rk || (j > 0 && exps[j - 1] >= exp) || len == 0 {
                    return Err(invalid(
                        "TdnGraph bucket outside its range, out of order, or empty",
                    ));
                }
                let edges: Vec<(NodeId, NodeId)> = us[off..off + len as usize]
                    .iter()
                    .zip(&vs[off..off + len as usize])
                    .map(|(&u, &v)| (NodeId(u), NodeId(v)))
                    .collect();
                buckets.insert(exp, edges);
                off += len as usize;
            }
        }
        Ok(Self::assemble(TdnParts {
            now,
            out,
            inc,
            degree,
            buckets,
            pair_count,
            live_nodes,
            live_edges,
            dirty_enabled,
            dirty,
        })?)
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let buckets: usize = self
            .buckets
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<(NodeId, NodeId)>() + 48)
            .sum();
        self.out.approx_bytes()
            + self.inc.approx_bytes()
            + buckets
            + self.pair_count.capacity() * 12
            + self.degree.capacity() * 4
            + self.dirty.approx_bytes()
            + self.touched.approx_bytes()
    }

    /// Releases recycled adjacency-arena tail blocks back to the allocator
    /// — the memory-budget shedding hook. Pure layout change (snapshots
    /// and traversal order are unaffected); returns approximate bytes
    /// released.
    pub fn release_recycled_memory(&mut self) -> usize {
        self.out.pool.release_free_tail() + self.inc.pool.release_free_tail()
    }

    /// Combined adjacency-arena occupancy: `(buffer_slots,
    /// recycled_blocks)` summed over both directions — the block-reuse
    /// observable for expiry-storm tests.
    #[doc(hidden)]
    pub fn arena_stats(&self) -> (usize, usize) {
        let (ob, of) = self.out.pool.arena_stats();
        let (ib, inf) = self.inc.pool.arena_stats();
        (ob + ib, of + inf)
    }

    /// Debug-only check that bookkeeping matches a from-scratch recount.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let bound = self.out.pool.node_bound();
        let recount: u64 = (0..bound)
            .map(|n| {
                self.out
                    .pool
                    .as_slice(n)
                    .iter()
                    .filter(|&&(_, e)| e > self.now)
                    .count() as u64
            })
            .sum();
        assert_eq!(recount, self.live_edges, "live edge count drifted");
        let live_tracked: usize = (0..bound).map(|n| self.out.live(n)).sum();
        assert_eq!(
            live_tracked, self.live_edges as usize,
            "per-list live bookkeeping drifted"
        );
        let live_by_degree = self.degree.iter().filter(|&&d| d > 0).count();
        assert_eq!(
            live_by_degree,
            self.live_nodes.len(),
            "live node set drifted"
        );
    }
}

impl std::fmt::Debug for TdnGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdnGraph")
            .field("now", &self.now)
            .field("nodes", &self.live_nodes.len())
            .field("edges", &self.live_edges)
            .finish()
    }
}

impl OutGraph for TdnGraph {
    #[inline]
    fn for_each_out(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &(v, exp) in self.out.pool.as_slice(u.index()) {
            if exp > self.now {
                f(v);
            }
        }
    }

    #[inline]
    fn node_index_bound(&self) -> usize {
        self.out.pool.node_bound()
    }

    #[inline]
    fn contains_node(&self, u: NodeId) -> bool {
        self.live_nodes.contains(u)
    }

    #[inline]
    fn live_node_count(&self) -> usize {
        self.live_nodes.len()
    }

    #[inline]
    fn prefetch_out(&self, u: NodeId) {
        self.out.pool.prefetch(u.index());
    }
}

impl InGraph for TdnGraph {
    #[inline]
    fn for_each_in(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for &(u, exp) in self.inc.pool.as_slice(v.index()) {
            if exp > self.now {
                f(u);
            }
        }
    }

    #[inline]
    fn prefetch_in(&self, v: NodeId) {
        self.inc.pool.prefetch(v.index());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::{reach_count, ReachScratch};

    #[test]
    fn edges_expire_on_schedule() {
        let mut g = TdnGraph::new();
        g.advance_to(1);
        g.add_edge(NodeId(0), NodeId(1), 1); // gone at t=2
        g.add_edge(NodeId(0), NodeId(2), 3); // gone at t=4
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
        g.advance_to(2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2); // node 1 evicted with its only edge
        g.advance_to(3);
        assert_eq!(g.edge_count(), 1);
        g.advance_to(4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
        g.check_invariants();
    }

    #[test]
    fn fig2_example_lifetimes() {
        // The paper's Fig. 2: six edges at time t with lifetimes
        // 1,1,2,3,1,1 — at t+1 only e3 (lifetime 2) and e4 (lifetime 3)
        // survive among them.
        let mut g = TdnGraph::new();
        let t = 10;
        g.advance_to(t);
        let (u1, u2, u3, u4, u5, u6, u7) = (
            NodeId(1),
            NodeId(2),
            NodeId(3),
            NodeId(4),
            NodeId(5),
            NodeId(6),
            NodeId(7),
        );
        g.add_edge(u1, u2, 1);
        g.add_edge(u1, u3, 1);
        g.add_edge(u1, u4, 2);
        g.add_edge(u5, u3, 3);
        g.add_edge(u6, u4, 1);
        g.add_edge(u6, u7, 1);
        assert_eq!(g.edge_count(), 6);
        g.advance_to(t + 1);
        g.add_edge(u5, u2, 1);
        g.add_edge(u7, u4, 2);
        g.add_edge(u7, u6, 3);
        assert_eq!(g.edge_count(), 5); // e3, e4 survive + three new
        assert_eq!(g.multiplicity(u1, u4), 1);
        assert_eq!(g.multiplicity(u1, u2), 0);
        g.check_invariants();
    }

    #[test]
    fn multiplicity_tracks_parallel_edges() {
        let mut g = TdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1), 2);
        g.add_edge(NodeId(0), NodeId(1), 5);
        assert_eq!(g.multiplicity(NodeId(0), NodeId(1)), 2);
        g.advance_to(2);
        assert_eq!(g.multiplicity(NodeId(0), NodeId(1)), 1);
        g.advance_to(5);
        assert_eq!(g.multiplicity(NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn bfs_skips_expired_entries() {
        let mut g = TdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 10);
        let mut s = ReachScratch::new();
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 3);
        g.advance_to(1);
        // 0 -> 1 expired; 0 is no longer live but BFS from it sees only itself.
        assert_eq!(reach_count(&g, NodeId(0), &mut s), 1);
        assert_eq!(reach_count(&g, NodeId(1), &mut s), 2);
    }

    #[test]
    fn remaining_lifetime_range_query() {
        let mut g = TdnGraph::new();
        g.advance_to(5);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 2);
        g.add_edge(NodeId(0), NodeId(3), 4);
        let in_range: Vec<_> = g.edges_with_remaining_in(2, 4).map(|e| e.dst).collect();
        assert_eq!(in_range, vec![NodeId(2)]);
        let all: Vec<_> = g.live_edges_iter().collect();
        assert_eq!(all.len(), 3);
        // After one step, remaining lifetimes shrink by one.
        g.advance_to(6);
        let in_range: Vec<_> = g.edges_with_remaining_in(1, 2).map(|e| e.dst).collect();
        assert_eq!(in_range, vec![NodeId(2)]);
    }

    #[test]
    fn infinite_lifetime_edges_never_expire() {
        let mut g = TdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1), Lifetime::MAX);
        g.advance_to(1_000_000);
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_node(NodeId(0)));
    }

    #[test]
    fn compaction_keeps_adjacency_correct() {
        let mut g = TdnGraph::new();
        // Many short-lived edges from node 0, plus one long-lived one.
        for i in 1..=100u32 {
            g.add_edge(NodeId(0), NodeId(i), 1);
        }
        g.add_edge(NodeId(0), NodeId(200), 1000);
        g.advance_to(1);
        let mut out = Vec::new();
        g.for_each_out(NodeId(0), |v| out.push(v));
        assert_eq!(out, vec![NodeId(200)]);
        assert_eq!(g.edge_count(), 1);
        g.check_invariants();
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn clock_cannot_rewind() {
        let mut g = TdnGraph::new();
        g.advance_to(5);
        g.advance_to(4);
    }

    #[test]
    fn snapshot_round_trip_preserves_future_evolution() {
        // Build a graph with pending expirations, partially-dead adjacency
        // (pre-compaction), multi-edges, a non-trivial live-node order, and
        // an undrained dirty set (tracking on).
        let mut g = TdnGraph::new();
        g.set_dirty_tracking(true);
        for i in 1..=10u32 {
            g.add_edge(NodeId(0), NodeId(i), i);
        }
        g.add_edge(NodeId(0), NodeId(3), 9); // multi-edge
        g.add_edge(NodeId(7), NodeId(0), 20);
        g.advance_to(4); // some entries dead, compaction threshold not hit everywhere
        let mut w = codec::Writer::new();
        g.write_snapshot(&mut w);
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        let mut h = TdnGraph::read_snapshot(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        h.check_invariants();
        assert!(h.dirty_tracking(), "tracking flag must survive");
        assert_eq!(g.now(), h.now());
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(
            g.live_nodes().as_slice(),
            h.live_nodes().as_slice(),
            "live-node position order must survive verbatim"
        );
        let range = |g: &TdnGraph| -> Vec<LiveEdge> { g.edges_with_remaining_in(1, 30).collect() };
        assert_eq!(range(&g), range(&h), "bucket iteration order must match");
        assert_eq!(
            g.dirty_nodes(),
            h.dirty_nodes(),
            "undrained dirty set must survive the round trip verbatim"
        );
        // Evolve both identically: expiry, compaction, and new arrivals
        // must behave the same on the restored copy.
        for t in [6u64, 9, 12] {
            g.advance_to(t);
            h.advance_to(t);
            g.add_edge(NodeId(5), NodeId(t as u32), 3);
            h.add_edge(NodeId(5), NodeId(t as u32), 3);
            assert_eq!(g.edge_count(), h.edge_count(), "t={t}");
            assert_eq!(g.live_nodes().as_slice(), h.live_nodes().as_slice());
            assert_eq!(range(&g), range(&h), "t={t}");
            assert_eq!(g.take_dirty(), h.take_dirty(), "t={t}");
            h.check_invariants();
        }
    }

    #[test]
    fn snapshot_rejects_drifted_bookkeeping() {
        let mut g = TdnGraph::new();
        g.add_edge(NodeId(0), NodeId(1), 5);
        let mut w = codec::Writer::new();
        g.write_snapshot(&mut w);
        let mut bytes = w.into_vec();
        // The trailing fields are live_edges (u64), the dirty-tracking
        // flag (1 byte), and the empty dirty list (u64 length); inflate
        // live_edges and expect the recount cross-check to fire.
        let n = bytes.len();
        bytes[n - 17..n - 9].copy_from_slice(&7u64.to_le_bytes());
        let mut r = codec::Reader::new(&bytes);
        assert!(TdnGraph::read_snapshot(&mut r).is_err());
    }

    /// Hand-encodes a single-edge snapshot (0 → 1, expiry 5, now 0) with
    /// one field corrupted by `tweak`, exercising the cross-validation: a
    /// checksum cannot catch internally *consistent-looking* but mutually
    /// disagreeing structures, so the decoder must.
    fn corrupt_single_edge_snapshot(tweak: impl Fn(&mut SingleEdgeParts)) -> codec::Result<()> {
        let mut p = SingleEdgeParts {
            out_target: 1,
            inc_source: 0,
            degree: [1, 1],
            bucket_edge: (0, 1),
            bucket_exp: 5,
            pair_key: pack_pair(NodeId(0), NodeId(1)),
            live_nodes: vec![0, 1],
            dirty_enabled: true,
            dirty: vec![0, 1],
        };
        tweak(&mut p);
        let mut w = codec::Writer::new();
        w.put_u64(0); // now
        w.put_len(2); // out
        w.put_len(1);
        w.put_u32(p.out_target);
        w.put_u64(5);
        w.put_u32(0); // dead
        w.put_len(0);
        w.put_u32(0);
        w.put_len(2); // inc
        w.put_len(0);
        w.put_u32(0);
        w.put_len(1);
        w.put_u32(p.inc_source);
        w.put_u64(5);
        w.put_u32(0);
        w.put_len(2); // degree
        w.put_u32(p.degree[0]);
        w.put_u32(p.degree[1]);
        w.put_len(1); // buckets
        w.put_u64(p.bucket_exp);
        w.put_len(1);
        w.put_u32(p.bucket_edge.0);
        w.put_u32(p.bucket_edge.1);
        w.put_len(1); // pair_count
        w.put_u64(p.pair_key);
        w.put_u32(1);
        w.put_len(p.live_nodes.len()); // live_nodes
        for &n in &p.live_nodes {
            w.put_u32(n);
        }
        w.put_u64(1); // live_edges
        w.put_bool(p.dirty_enabled); // dirty tracking flag
        w.put_len(p.dirty.len()); // dirty set
        for &n in &p.dirty {
            w.put_u32(n);
        }
        let bytes = w.into_vec();
        let mut r = codec::Reader::new(&bytes);
        TdnGraph::read_snapshot(&mut r).map(|_| ())
    }

    struct SingleEdgeParts {
        out_target: u32,
        inc_source: u32,
        degree: [u32; 2],
        bucket_edge: (u32, u32),
        bucket_exp: Time,
        pair_key: u64,
        live_nodes: Vec<u32>,
        dirty_enabled: bool,
        dirty: Vec<u32>,
    }

    #[test]
    fn snapshot_cross_validates_every_structure() {
        // The untampered encoding decodes (sanity-check the harness)...
        corrupt_single_edge_snapshot(|_| {}).expect("valid hand encoding");
        // ...and each single-field corruption is a typed error — these are
        // exactly the shapes that would index out of bounds or underflow
        // counters at a later `advance_to`/`evict` if admitted.
        assert!(corrupt_single_edge_snapshot(|p| p.bucket_edge = (99, 1)).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.bucket_edge = (1, 0)).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.bucket_exp = 7).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.out_target = 99).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.inc_source = 99).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.inc_source = 1).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.degree = [2, 1]).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.degree = [0, 1]).is_err());
        assert!(
            corrupt_single_edge_snapshot(|p| p.pair_key = pack_pair(NodeId(1), NodeId(0))).is_err()
        );
        assert!(corrupt_single_edge_snapshot(|p| p.live_nodes = vec![0]).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.live_nodes = vec![0, 1, 5]).is_err());
        // Dirty-set corruption: out-of-bound or duplicated members, or
        // marks present while tracking claims to be off.
        assert!(corrupt_single_edge_snapshot(|p| p.dirty = vec![0, 9]).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.dirty = vec![1, 1]).is_err());
        assert!(corrupt_single_edge_snapshot(|p| p.dirty_enabled = false).is_err());
        // An empty or reordered dirty set is legal (it is consumer state).
        corrupt_single_edge_snapshot(|p| p.dirty = vec![]).expect("empty dirty set is valid");
        corrupt_single_edge_snapshot(|p| p.dirty = vec![1, 0]).expect("order is free");
        corrupt_single_edge_snapshot(|p| {
            p.dirty_enabled = false;
            p.dirty = vec![];
        })
        .expect("tracking off with no marks is the default shape");
    }

    #[test]
    fn dirty_tracking_is_opt_in() {
        // Off by default: no consumer, no accumulation, no snapshot bytes.
        let mut g = TdnGraph::new();
        assert!(!g.dirty_tracking());
        g.add_edge(NodeId(9), NodeId(8), 1);
        assert!(g.dirty_nodes().is_empty(), "untracked inserts mark nothing");
        g.advance_to(1);
        assert!(g.dirty_nodes().is_empty(), "untracked expiry marks nothing");
        // Disabling forgets accumulated marks.
        g.set_dirty_tracking(true);
        g.add_edge(NodeId(1), NodeId(2), 5);
        assert_eq!(g.dirty_nodes().len(), 2);
        g.set_dirty_tracking(false);
        assert!(g.dirty_nodes().is_empty());
    }

    #[test]
    fn dirty_set_tracks_insert_expiry_and_reactivation() {
        let mut g = TdnGraph::new();
        g.set_dirty_tracking(true);
        g.add_edge(NodeId(0), NodeId(1), 2);
        g.add_edge(NodeId(2), NodeId(3), 9);
        assert_eq!(
            g.take_dirty(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            "insertions mark endpoints in first-change order"
        );
        assert!(g.dirty_nodes().is_empty(), "take_dirty drains");
        // Nothing changed: advancing without expiries marks nothing.
        g.advance_to(1);
        assert!(g.dirty_nodes().is_empty());
        // Expiry of (0,1) marks both endpoints again.
        g.advance_to(2);
        assert_eq!(g.take_dirty(), vec![NodeId(0), NodeId(1)]);
        // Re-activation: node 1 died above and returns via a new edge.
        assert_eq!(g.node_count(), 2);
        g.add_edge(NodeId(1), NodeId(3), 4);
        assert_eq!(g.take_dirty(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(g.node_count(), 3);
        g.check_invariants();
    }

    #[test]
    fn same_bucket_expiry_storm_marks_each_node_once() {
        // 100 edges out of node 0 all dying at the same tick: one sweep,
        // node 0 dirty once, every target dirty once.
        let mut g = TdnGraph::new();
        g.set_dirty_tracking(true);
        for i in 1..=100u32 {
            g.add_edge(NodeId(0), NodeId(i), 1);
        }
        g.take_dirty();
        g.advance_to(1);
        let dirty = g.take_dirty();
        assert_eq!(dirty.len(), 101);
        assert_eq!(dirty[0], NodeId(0));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
        g.check_invariants();
    }

    #[test]
    fn sectioned_snapshot_round_trip_matches_element_wise() {
        // Same shape as the element-wise round-trip test: pending
        // expirations, partially-dead lists, multi-edges, undrained dirty
        // set — the sectioned path must restore an identically-evolving
        // graph.
        let mut g = TdnGraph::new();
        g.set_dirty_tracking(true);
        for i in 1..=10u32 {
            g.add_edge(NodeId(0), NodeId(i), i);
        }
        g.add_edge(NodeId(0), NodeId(3), 9);
        g.add_edge(NodeId(7), NodeId(0), 20);
        // An edge far in the future, in its own bucket range.
        g.add_edge(NodeId(2), NodeId(9), 500);
        g.advance_to(4);
        let mut sink = codec::SectionSink::new(codec::ParentIndex::new());
        g.write_sections(&mut sink, "g.");
        let (blob, _) = sink.finish();
        let map = codec::SectionMap::from_single(&blob).expect("resolve");
        let mut h = TdnGraph::read_sections(&map, "g.").expect("sectioned restore");
        h.check_invariants();
        assert!(h.dirty_tracking());
        assert_eq!(g.dirty_nodes(), h.dirty_nodes());
        let range = |g: &TdnGraph| -> Vec<LiveEdge> { g.edges_with_remaining_in(1, 600).collect() };
        assert_eq!(range(&g), range(&h));
        for t in [6u64, 9, 12] {
            g.advance_to(t);
            h.advance_to(t);
            g.add_edge(NodeId(5), NodeId(t as u32), 3);
            h.add_edge(NodeId(5), NodeId(t as u32), 3);
            assert_eq!(g.edge_count(), h.edge_count(), "t={t}");
            assert_eq!(g.live_nodes().as_slice(), h.live_nodes().as_slice());
            assert_eq!(range(&g), range(&h), "t={t}");
            assert_eq!(g.take_dirty(), h.take_dirty(), "t={t}");
            h.check_invariants();
        }
    }

    #[test]
    fn sectioned_delta_skips_stable_chunks_and_ranges() {
        let mut g = TdnGraph::new();
        // Chunk 0 and chunk 1 both populated; one far-future bucket range.
        g.add_edge(NodeId(0), NodeId(1), 10);
        g.add_edge(
            NodeId(crate::arena::SNAPSHOT_CHUNK as u32 + 3),
            NodeId(2),
            (1u32 << BUCKET_RANGE_SHIFT) * 4,
        );
        let mut sink = codec::SectionSink::new(codec::ParentIndex::new());
        g.write_sections(&mut sink, "g.");
        let (base, parent) = sink.finish();
        // Mutate only chunk 0 and a near bucket range.
        g.advance_to(1);
        g.add_edge(NodeId(0), NodeId(3), 5);
        let mut sink = codec::SectionSink::new(parent);
        g.write_sections(&mut sink, "g.");
        let (fresh, refs) = sink.counts();
        assert!(
            refs >= 3,
            "chunk-1 sides and the far range must ref (got {refs})"
        );
        assert!(fresh >= 2, "core and chunk 0 must be fresh (got {fresh})");
        let (delta, _) = sink.finish();
        assert!(delta.len() < base.len());
        // The chain restores to a graph identical to a direct restore.
        let map = codec::SectionMap::resolve(&[&delta, &base]).expect("chain");
        let h = TdnGraph::read_sections(&map, "g.").expect("chain restore");
        h.check_invariants();
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.live_nodes().as_slice(), h.live_nodes().as_slice());
        let range = |g: &TdnGraph| -> Vec<LiveEdge> {
            g.edges_with_remaining_in(1, Lifetime::MAX).collect()
        };
        assert_eq!(range(&g), range(&h));
        // A lone delta cannot restore (dangling refs are typed errors).
        let lone = codec::SectionMap::from_single(&delta);
        assert!(matches!(lone, Err(codec::SectionError::Unresolved { .. })));
    }

    #[test]
    fn in_neighbors_distinct_counts_live_multiplicity() {
        let mut g = TdnGraph::new();
        g.add_edge(NodeId(1), NodeId(0), 10);
        g.add_edge(NodeId(1), NodeId(0), 1);
        g.add_edge(NodeId(2), NodeId(0), 10);
        let inn = g.in_neighbors_distinct(NodeId(0));
        assert_eq!(inn, vec![(NodeId(1), 2), (NodeId(2), 1)]);
        g.advance_to(1);
        let inn = g.in_neighbors_distinct(NodeId(0));
        assert_eq!(inn, vec![(NodeId(1), 1), (NodeId(2), 1)]);
    }
}
