//! # tdn-faults — deterministic fault injection for the serving stack
//!
//! Chaos testing is only useful when a failing run can be replayed: a
//! fault that appears once in a thousand schedules proves nothing and
//! debugs worse. This crate makes every injected fault a **pure function
//! of `(seed, site, occurrence)`**: a [`FaultPlan`] is seeded once, each
//! injection site asks it [`FaultPlan::roll`] with a site identity
//! (fault kind + scope, e.g. the tenant whose checkpoint is being
//! written), and the decision hashes the seed with the site identity and
//! that site's occurrence counter. Because each site's operations are
//! serial in the serving layer (per-tenant work never runs concurrently
//! with itself), occurrence counters advance identically on every run and
//! at every thread count — the full fault schedule replays exactly.
//!
//! Injection sites:
//!
//! * **I/O faults** flow through [`FaultyIo`], an adapter implementing
//!   persist's [`CheckpointIo`] trait: seeded `EIO` / `ENOSPC` write
//!   failures, torn writes (a deterministic prefix of the bytes lands in
//!   the `.tmp` file, then the write errors — leaving exactly the debris
//!   a power cut leaves), and rename failures between tmp-write and
//!   rename.
//! * **Worker panics** and **crash points** are rolled directly by the
//!   serving layer and the chaos harness ([`FaultKind::WorkerPanic`],
//!   [`FaultKind::Crash`]) — the plan only decides *whether*, the caller
//!   owns *what happens*.
//!
//! Every fired fault is recorded; [`FaultPlan::trace`] returns the full
//! record sorted by site (not by wall-clock firing order, which is
//! schedule-dependent across shard threads), so two runs with the same
//! seed produce byte-identical traces.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tdn_persist::CheckpointIo;

/// What kind of failure a site injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A file write fails with `EIO` (generic I/O error). Retryable.
    IoError,
    /// A file write fails with `ENOSPC` (disk full). Retryable.
    DiskFull,
    /// A write lands a deterministic prefix of its bytes in the `.tmp`
    /// file, then errors — the on-disk debris of a power cut. Retryable,
    /// and the torn tmp file stays behind for recovery scans to clean.
    TornWrite,
    /// The rename from `.tmp` to the final path fails with `EIO`.
    /// Retryable; the orphaned tmp is removed on the failure path.
    RenameFail,
    /// A per-shard worker panics mid-batch (simulating a tracker bug).
    /// Not retryable: the tenant's in-memory state is suspect.
    WorkerPanic,
    /// A process crash point (the harness drops the server on the floor
    /// and recovers from disk). Rolled per tick by the chaos driver.
    Crash,
}

impl FaultKind {
    /// All kinds, in trace order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::IoError,
        FaultKind::DiskFull,
        FaultKind::TornWrite,
        FaultKind::RenameFail,
        FaultKind::WorkerPanic,
        FaultKind::Crash,
    ];

    /// Stable tag used in site hashing and the JSON trace.
    pub fn tag(self) -> u8 {
        match self {
            FaultKind::IoError => 0,
            FaultKind::DiskFull => 1,
            FaultKind::TornWrite => 2,
            FaultKind::RenameFail => 3,
            FaultKind::WorkerPanic => 4,
            FaultKind::Crash => 5,
        }
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io_error",
            FaultKind::DiskFull => "disk_full",
            FaultKind::TornWrite => "torn_write",
            FaultKind::RenameFail => "rename_fail",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::Crash => "crash",
        }
    }

    /// Whether the serving layer may retry after this fault without
    /// suspecting its in-memory state (true for the I/O kinds).
    pub fn retryable(self) -> bool {
        !matches!(self, FaultKind::WorkerPanic | FaultKind::Crash)
    }
}

/// Injection rates and limits for a [`FaultPlan`]. Rates are per 10 000
/// rolls (so `250` ≈ 2.5 % of the operations at that site kind fail).
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Rate per 10k for each [`FaultKind`], indexed by [`FaultKind::tag`].
    pub rates_per_10k: [u32; 6],
    /// Maximum fires per (kind, scope) site; after this many, the site
    /// goes quiet. Bounds faults so bounded-retry loops terminate.
    pub max_per_site: u32,
}

impl FaultPlanConfig {
    /// A plan that injects nothing (all rates zero) — the identity plan.
    pub fn off() -> Self {
        FaultPlanConfig {
            seed: 0,
            rates_per_10k: [0; 6],
            max_per_site: 0,
        }
    }

    /// A fresh all-zero plan with the given seed; use the builders to
    /// switch on the kinds a harness wants.
    pub fn new(seed: u64) -> Self {
        FaultPlanConfig {
            seed,
            rates_per_10k: [0; 6],
            max_per_site: 2,
        }
    }

    /// Sets the rate (per 10k rolls) for one fault kind (builder form).
    pub fn with_rate(mut self, kind: FaultKind, per_10k: u32) -> Self {
        self.rates_per_10k[kind.tag() as usize] = per_10k;
        self
    }

    /// Sets the per-site fire cap (builder form).
    pub fn with_max_per_site(mut self, cap: u32) -> Self {
        self.max_per_site = cap;
        self
    }

    /// Retryable-sites-only storm: every I/O kind at `per_10k`, panics
    /// and crashes off. Under this plan a serving layer with bounded
    /// retry must still converge to bit-identical state, which is what
    /// the fault-seeded identity test asserts.
    pub fn retryable_storm(seed: u64, per_10k: u32) -> Self {
        FaultPlanConfig::new(seed)
            .with_rate(FaultKind::IoError, per_10k)
            .with_rate(FaultKind::DiskFull, per_10k)
            .with_rate(FaultKind::TornWrite, per_10k)
            .with_rate(FaultKind::RenameFail, per_10k)
    }
}

/// One injected fault: which site fired and its per-site occurrence
/// index at the time. The triple identifies the fault uniquely and
/// reproducibly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// The kind of failure injected.
    pub kind: FaultKind,
    /// Site scope — tenant id for per-tenant sites, tick for crash
    /// points; whatever the caller keys the site by.
    pub scope: u64,
    /// 0-based index of this roll among all rolls at `(kind, scope)`.
    pub occurrence: u32,
}

/// splitmix64 finalizer — the same mixer the workload generators use.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pure fault decision: does roll `occurrence` at `(kind, scope)` fire
/// under `seed` at `rate_per_10k`? Free function so tests (and the docs'
/// determinism argument) can check it independently of any plan state.
pub fn fires(seed: u64, kind: FaultKind, scope: u64, occurrence: u32, rate_per_10k: u32) -> bool {
    if rate_per_10k == 0 {
        return false;
    }
    let h = mix(seed
        ^ mix((kind.tag() as u64) << 56 | scope)
            .wrapping_add(mix(occurrence as u64 | 0xFA17 << 32)));
    (h % 10_000) < rate_per_10k as u64
}

/// A seeded, reproducible fault schedule. Sites call [`FaultPlan::roll`];
/// the plan answers deterministically and records what fired. Shared
/// across shard threads behind an [`Arc`] — the interior mutex only
/// guards counters, never the decision (which is pure).
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    /// Occurrence counters and fire counts per (kind tag, scope).
    sites: Mutex<HashMap<(u8, u64), SiteState>>,
    /// Every fault that fired (unordered; sorted on read-out).
    trace: Mutex<Vec<FaultEvent>>,
    /// Rolls made in total (cheap liveness metric for reports).
    rolls: AtomicU64,
}

#[derive(Clone, Copy, Debug, Default)]
struct SiteState {
    occurrences: u32,
    fired: u32,
}

impl FaultPlan {
    /// Builds a plan. Wrap it in an [`Arc`] to share across the server
    /// and the harness.
    pub fn new(cfg: FaultPlanConfig) -> Self {
        FaultPlan {
            cfg,
            sites: Mutex::new(HashMap::new()),
            trace: Mutex::new(Vec::new()),
            rolls: AtomicU64::new(0),
        }
    }

    /// An inert plan that never fires (and allocates no site state).
    pub fn disabled() -> Arc<Self> {
        Arc::new(FaultPlan::new(FaultPlanConfig::off()))
    }

    /// The configuration the plan runs.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Asks whether the next operation at `(kind, scope)` should fail.
    /// Advances the site's occurrence counter either way; on a fire,
    /// records the event and returns it. Deterministic given the serial
    /// per-site ordering the serving layer guarantees.
    pub fn roll(&self, kind: FaultKind, scope: u64) -> Option<FaultEvent> {
        let rate = self.cfg.rates_per_10k[kind.tag() as usize];
        self.rolls.fetch_add(1, Ordering::Relaxed);
        if rate == 0 {
            return None;
        }
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        let site = sites.entry((kind.tag(), scope)).or_default();
        let occurrence = site.occurrences;
        site.occurrences += 1;
        if site.fired >= self.cfg.max_per_site
            || !fires(self.cfg.seed, kind, scope, occurrence, rate)
        {
            return None;
        }
        site.fired += 1;
        drop(sites);
        let event = FaultEvent {
            kind,
            scope,
            occurrence,
        };
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
        Some(event)
    }

    /// Total rolls made (fired or not).
    pub fn rolls(&self) -> u64 {
        self.rolls.load(Ordering::Relaxed)
    }

    /// Number of faults fired so far.
    pub fn injected(&self) -> usize {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Every fault fired so far, sorted by `(kind, scope, occurrence)` —
    /// a canonical order independent of the thread schedule, so equal
    /// seeds yield equal traces.
    pub fn trace(&self) -> Vec<FaultEvent> {
        let mut t = self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone();
        t.sort();
        t
    }

    /// Fired-fault counts per kind, indexed by [`FaultKind::tag`].
    pub fn counts_by_kind(&self) -> [u64; 6] {
        let mut counts = [0u64; 6];
        for e in self.trace.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            counts[e.kind.tag() as usize] += 1;
        }
        counts
    }

    /// Number of distinct kinds that fired at least once.
    pub fn kinds_fired(&self) -> usize {
        self.counts_by_kind().iter().filter(|&&c| c > 0).count()
    }
}

/// Installs a process-wide panic hook that swallows the default "thread
/// panicked" stderr report for **injected** panics (string payloads
/// containing `"injected"`) and defers to the previous hook for every
/// real panic. Chaos harnesses inject hundreds of panics by design; the
/// serving layer catches them all, and this keeps their noise out of the
/// harness output without hiding genuine failures. Idempotent enough for
/// harness use (stacking it twice just chains two filters).
pub fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.contains("injected"))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.contains("injected"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

/// A [`CheckpointIo`] that consults a [`FaultPlan`] before every file
/// operation of one scope (typically one tenant). Non-faulted operations
/// pass through to `std::fs`.
pub struct FaultyIo {
    plan: Arc<FaultPlan>,
    scope: u64,
}

impl FaultyIo {
    /// Wraps the plan for one scope (e.g. one tenant's checkpoint chain).
    pub fn new(plan: Arc<FaultPlan>, scope: u64) -> Self {
        FaultyIo { plan, scope }
    }
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5) // EIO
}

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

impl CheckpointIo for FaultyIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.plan.roll(FaultKind::IoError, self.scope).is_some() {
            return Err(eio());
        }
        if self.plan.roll(FaultKind::DiskFull, self.scope).is_some() {
            return Err(enospc());
        }
        if self.plan.roll(FaultKind::TornWrite, self.scope).is_some() {
            // A deterministic prefix lands, then the "device" dies. The
            // torn file stays on disk: exactly what recovery must cope
            // with (and what stale-tmp cleanup must remove).
            let cut = bytes.len() / 2;
            std::fs::write(path, &bytes[..cut])?;
            return Err(eio());
        }
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.plan.roll(FaultKind::RenameFail, self.scope).is_some() {
            return Err(eio());
        }
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm(seed: u64) -> FaultPlan {
        FaultPlan::new(
            FaultPlanConfig::retryable_storm(seed, 2_000)
                .with_rate(FaultKind::WorkerPanic, 1_000)
                .with_max_per_site(3),
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = storm(42);
        let b = storm(42);
        for scope in 0..20u64 {
            for _ in 0..10 {
                for kind in FaultKind::ALL {
                    assert_eq!(a.roll(kind, scope), b.roll(kind, scope));
                }
            }
        }
        assert_eq!(a.trace(), b.trace());
        assert!(a.injected() > 0, "a storm at these rates must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let a = storm(1);
        let b = storm(2);
        for scope in 0..50u64 {
            for _ in 0..20 {
                a.roll(FaultKind::IoError, scope);
                b.roll(FaultKind::IoError, scope);
            }
        }
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn decision_is_pure_in_occurrence() {
        // Re-rolling a site replays the identical fire/no-fire sequence;
        // the order other sites are rolled in cannot matter.
        let seed = 7;
        let solo: Vec<bool> = (0..64)
            .map(|i| fires(seed, FaultKind::DiskFull, 3, i, 1_500))
            .collect();
        let plan = FaultPlan::new(
            FaultPlanConfig::new(seed)
                .with_rate(FaultKind::DiskFull, 1_500)
                .with_max_per_site(u32::MAX),
        );
        // Interleave rolls on other scopes to perturb any shared state.
        let interleaved: Vec<bool> = (0..64)
            .map(|i| {
                plan.roll(FaultKind::DiskFull, (i % 5) + 100);
                plan.roll(FaultKind::DiskFull, 3).is_some()
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn per_site_cap_bounds_fires() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(9)
                .with_rate(FaultKind::IoError, 10_000) // always fires
                .with_max_per_site(2),
        );
        let fired: usize = (0..10)
            .filter(|_| plan.roll(FaultKind::IoError, 5).is_some())
            .count();
        assert_eq!(fired, 2, "cap must stop the site after two fires");
    }

    #[test]
    fn zero_rate_never_fires_and_keeps_no_state() {
        let plan = FaultPlan::disabled();
        for scope in 0..100 {
            assert!(plan.roll(FaultKind::Crash, scope).is_none());
        }
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.rolls(), 100);
    }

    #[test]
    fn trace_is_sorted_canonically() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(3)
                .with_rate(FaultKind::IoError, 10_000)
                .with_rate(FaultKind::Crash, 10_000)
                .with_max_per_site(4),
        );
        // Roll in deliberately shuffled site order.
        for scope in [9u64, 2, 7, 2, 9, 1] {
            plan.roll(FaultKind::Crash, scope);
            plan.roll(FaultKind::IoError, scope);
        }
        let trace = plan.trace();
        let mut sorted = trace.clone();
        sorted.sort();
        assert_eq!(trace, sorted);
        assert!(plan.kinds_fired() >= 2);
    }

    #[test]
    fn torn_write_leaves_partial_tmp_and_errors() {
        let dir = std::env::temp_dir().join("tdn_faults_torn");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let plan = Arc::new(FaultPlan::new(
            FaultPlanConfig::new(1).with_rate(FaultKind::TornWrite, 10_000),
        ));
        let io = FaultyIo::new(plan, 0);
        let path = dir.join("x.tmp");
        let bytes = vec![0xABu8; 100];
        let err = io.write(&path, &bytes).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert_eq!(std::fs::read(&path).unwrap().len(), 50, "torn at half");
        std::fs::remove_dir_all(&dir).ok();
    }
}
