//! Greedy maximum coverage over a pool of RR sets — the seed-selection
//! phase shared by DIM, IMM, and TIM+.

use crate::rr::RrSet;
use tdn_graph::{FxHashMap, NodeId};

/// Result of max-coverage seed selection.
#[derive(Clone, Debug)]
pub struct CoverResult {
    /// Selected seeds (selection order).
    pub seeds: Vec<NodeId>,
    /// Number of RR sets covered by the selection.
    pub covered: usize,
    /// Estimated IC influence: `n · covered / |pool|`.
    pub estimated_spread: f64,
}

/// Greedily selects ≤ `k` nodes covering the most RR sets; `n_live` scales
/// the coverage fraction into an influence estimate.
pub fn max_cover(pool: &[RrSet], k: usize, n_live: usize) -> CoverResult {
    if pool.is_empty() || k == 0 {
        return CoverResult {
            seeds: Vec::new(),
            covered: 0,
            estimated_spread: 0.0,
        };
    }
    // Inverted index: node -> RR-set indices containing it.
    let mut index: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
    for (i, rr) in pool.iter().enumerate() {
        for &v in &rr.nodes {
            index.entry(v).or_default().push(i as u32);
        }
    }
    let mut degree: FxHashMap<NodeId, usize> = index.iter().map(|(&v, l)| (v, l.len())).collect();
    let mut covered = vec![false; pool.len()];
    let mut covered_count = 0usize;
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k {
        // Lazy-greedy would also work; pools are small enough for a scan.
        let Some((&best, &d)) = degree
            .iter()
            .max_by_key(|&(v, d)| (*d, std::cmp::Reverse(*v)))
        else {
            break;
        };
        if d == 0 {
            break;
        }
        seeds.push(best);
        for &i in &index[&best] {
            let i = i as usize;
            if !covered[i] {
                covered[i] = true;
                covered_count += 1;
                // Deduct this set from every member's degree.
                for &v in &pool[i].nodes {
                    if let Some(dv) = degree.get_mut(&v) {
                        *dv = dv.saturating_sub(1);
                    }
                }
            }
        }
        degree.remove(&best);
    }
    CoverResult {
        estimated_spread: n_live as f64 * covered_count as f64 / pool.len() as f64,
        seeds,
        covered: covered_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(root: u32, nodes: &[u32]) -> RrSet {
        RrSet {
            root: NodeId(root),
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn picks_the_most_frequent_node() {
        let pool = vec![rr(1, &[1, 9]), rr(2, &[2, 9]), rr(3, &[3, 9]), rr(4, &[4])];
        let res = max_cover(&pool, 1, 100);
        assert_eq!(res.seeds, vec![NodeId(9)]);
        assert_eq!(res.covered, 3);
        assert_eq!(res.estimated_spread, 75.0);
    }

    #[test]
    fn second_seed_covers_the_remainder() {
        let pool = vec![rr(1, &[1, 9]), rr(2, &[2, 9]), rr(4, &[4])];
        let res = max_cover(&pool, 2, 30);
        assert_eq!(res.seeds[0], NodeId(9));
        assert_eq!(res.covered, 3);
    }

    #[test]
    fn stops_when_everything_is_covered() {
        let pool = vec![rr(1, &[1]), rr(1, &[1])];
        let res = max_cover(&pool, 5, 10);
        assert_eq!(res.seeds.len(), 1);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn empty_pool_is_empty_result() {
        let res = max_cover(&[], 3, 10);
        assert!(res.seeds.is_empty());
        assert_eq!(res.estimated_spread, 0.0);
    }

    #[test]
    fn deterministic_tie_break() {
        let pool = vec![rr(1, &[1]), rr(2, &[2])];
        let a = max_cover(&pool, 1, 10);
        let b = max_cover(&pool, 1, 10);
        assert_eq!(a.seeds, b.seeds);
    }
}
