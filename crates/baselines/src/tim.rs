//! TIM+ (Tang et al., SIGMOD 2014 \[4\]) — two-phase RIS influence
//! maximization: KPT estimation, then `θ = λ/KPT` RR sampling plus greedy
//! max-coverage.
//!
//! Reproduction notes: the KPT⁺ estimator follows the published Algorithm 2
//! (geometric batches, `κ(R) = 1 − (1 − w(R)/m)^k`, stop when the batch
//! mean clears `1/2ⁱ`); the intermediate refinement step of TIM+ is folded
//! into the estimator, and the pool is capped like IMM's (DESIGN.md §5).

use crate::max_cover::max_cover;
use crate::rr::{sample_rr, RrSet};
use crate::util::ln_binom;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdn_core::{InfluenceObjective, InfluenceTracker, Solution, TrackerConfig};
use tdn_graph::{Lifetime, NodeId, TdnGraph, Time};
use tdn_streams::TimedEdge;
use tdn_submodular::OracleCounter;

/// `κ(R) = 1 − (1 − w(R)/m)^k`: the probability a uniformly random seed
/// set of size `k` (by edges) would cover RR set `R`.
fn kappa(graph: &TdnGraph, rr: &RrSet, k: usize) -> f64 {
    let m = graph.edge_count().max(1) as f64;
    let w: usize = rr.nodes.iter().map(|&v| graph.in_degree_live(v)).sum();
    1.0 - (1.0 - w as f64 / m).powi(k as i32)
}

/// TIM+ KPT⁺ estimation (expected spread of a random size-k seed set).
fn estimate_kpt(graph: &TdnGraph, k: usize, max_rr: usize, rng: &mut StdRng) -> f64 {
    let n = graph.node_count();
    let nf = n as f64;
    let log2n = nf.log2().floor().max(1.0);
    let ln_n = nf.ln().max(1.0);
    for i in 1..=(log2n as i32 - 1).max(1) {
        let ci = (((6.0 * ln_n + 6.0 * log2n.ln()) * 2f64.powi(i)).ceil() as usize)
            .min(max_rr)
            .max(1);
        let mut sum = 0.0;
        let mut drawn = 0usize;
        for _ in 0..ci {
            match sample_rr(graph, rng) {
                Some(rr) => {
                    sum += kappa(graph, &rr, k);
                    drawn += 1;
                }
                None => break,
            }
        }
        if drawn == 0 {
            return 1.0;
        }
        if sum / drawn as f64 > 1.0 / 2f64.powi(i) {
            return (nf * sum / (2.0 * drawn as f64)).max(1.0);
        }
        if ci >= max_rr {
            break;
        }
    }
    1.0
}

/// TIM+ seed selection on a graph snapshot.
pub fn tim_select(
    graph: &TdnGraph,
    k: usize,
    eps: f64,
    max_rr: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let nf = n as f64;
    let ln_n = nf.ln().max(1.0);
    let kpt = estimate_kpt(graph, k, max_rr / 4, rng);
    let lambda =
        (8.0 + 2.0 * eps) * nf * (ln_n + ln_binom(n, k) + std::f64::consts::LN_2) / (eps * eps);
    let theta = ((lambda / kpt).ceil() as usize).clamp(1, max_rr);
    let mut pool: Vec<RrSet> = Vec::with_capacity(theta);
    for _ in 0..theta {
        match sample_rr(graph, rng) {
            Some(rr) => pool.push(rr),
            None => break,
        }
    }
    max_cover(&pool, k, n).seeds
}

/// TIM+ as a per-step tracker (rebuilds its index each query, like IMM).
pub struct TimTracker {
    k: usize,
    eps: f64,
    max_lifetime: Lifetime,
    max_rr: usize,
    query_every: u64,
    graph: TdnGraph,
    rng: StdRng,
    counter: OracleCounter,
    last: Solution,
    steps_seen: u64,
}

impl TimTracker {
    /// Creates the tracker; `eps` is TIM+'s parameter (§V-C uses 0.3).
    pub fn new(cfg: &TrackerConfig, eps: f64, seed: u64) -> Self {
        TimTracker {
            k: cfg.k,
            eps,
            max_lifetime: cfg.max_lifetime,
            max_rr: 20_000,
            query_every: 1,
            graph: TdnGraph::new(),
            rng: StdRng::seed_from_u64(seed),
            counter: OracleCounter::new(),
            last: Solution::empty(),
            steps_seen: 0,
        }
    }

    /// Caps the RR pool per query.
    pub fn with_max_rr(mut self, max_rr: usize) -> Self {
        self.max_rr = max_rr.max(4);
        self
    }

    /// Re-solve cadence (1 = every step).
    pub fn with_query_every(mut self, n: u64) -> Self {
        assert!(n >= 1);
        self.query_every = n;
        self
    }
}

impl InfluenceTracker for TimTracker {
    fn name(&self) -> &'static str {
        "TIM+"
    }

    fn step(&mut self, t: Time, batch: &[TimedEdge]) -> Solution {
        self.graph.advance_to(t);
        for e in batch {
            self.graph
                .add_edge(e.src, e.dst, e.lifetime.min(self.max_lifetime).max(1));
        }
        self.steps_seen += 1;
        if (self.steps_seen - 1).is_multiple_of(self.query_every) {
            let seeds = tim_select(&self.graph, self.k, self.eps, self.max_rr, &mut self.rng);
            let mut obj = InfluenceObjective::new(&self.graph, self.counter.clone());
            let value = obj.evaluate_seeds(&seeds);
            self.last = Solution { seeds, value };
        }
        self.last.clone()
    }

    fn oracle_calls(&self) -> u64 {
        self.counter.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_graph() -> TdnGraph {
        let mut g = TdnGraph::new();
        for i in 1..=6u32 {
            for _ in 0..20 {
                g.add_edge(NodeId(0), NodeId(i), 1000);
            }
        }
        for _ in 0..20 {
            g.add_edge(NodeId(50), NodeId(51), 1000);
        }
        g
    }

    #[test]
    fn kpt_is_at_least_one() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let kpt = estimate_kpt(&g, 2, 1_000, &mut rng);
        assert!(kpt >= 1.0);
        assert!(kpt <= g.node_count() as f64);
    }

    #[test]
    fn finds_the_big_hub_first() {
        let g = hub_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let seeds = tim_select(&g, 1, 0.3, 5_000, &mut rng);
        assert_eq!(seeds, vec![NodeId(0)]);
    }

    #[test]
    fn empty_graph_yields_no_seeds() {
        let g = TdnGraph::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(tim_select(&g, 3, 0.3, 100, &mut rng).is_empty());
    }

    #[test]
    fn tracker_round_trip() {
        let mut tr = TimTracker::new(&TrackerConfig::new(2, 0.1, 1000), 0.3, 4).with_max_rr(2_000);
        let mut batch = Vec::new();
        for i in 1..=4u32 {
            for _ in 0..20 {
                batch.push(TimedEdge::new(0u32, i, 10));
            }
        }
        let sol = tr.step(0, &batch);
        assert!(sol.seeds.contains(&NodeId(0)));
        assert_eq!(sol.value, 5);
        assert_eq!(tr.name(), "TIM+");
    }
}
