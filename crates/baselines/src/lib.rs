//! # tdn-baselines
//!
//! The index-based influence-maximization baselines of §V-C, built on the
//! independent cascade (IC) model with diffusion probabilities estimated
//! from interaction multiplicity:
//!
//! * [`ic`] — `p_uv = 2/(1+e^{−0.2x}) − 1`;
//! * [`rr`] — reverse-reachable set sampling and incremental extension;
//! * [`max_cover()`] — greedy maximum coverage over RR pools;
//! * [`imm::ImmTracker`] — IMM (static-index, rebuilt per query);
//! * [`tim::TimTracker`] — TIM+ (two-phase, rebuilt per query);
//! * [`dim::DimTracker`] — DIM (dynamically maintained sketches, `β`).
//!
//! All three implement [`tdn_core::InfluenceTracker`] and score their seeds
//! with the same reachability oracle as the streaming algorithms, matching
//! the paper's "ratio w.r.t. greedy" evaluation.

#![warn(missing_docs)]

pub mod dim;
pub mod ic;
pub mod imm;
pub mod max_cover;
pub mod rr;
pub mod tim;
pub mod util;

pub use dim::DimTracker;
pub use ic::diffusion_prob;
pub use imm::{imm_select, ImmTracker};
pub use max_cover::{max_cover, CoverResult};
pub use rr::{extend_rr_on_insert, hoeffding_pool_size, sample_rr, sample_rr_from, RrSet};
pub use tim::{tim_select, TimTracker};
pub use util::ln_binom;
