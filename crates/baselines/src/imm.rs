//! IMM (Tang et al., SIGMOD 2015 \[6\]) — martingale-based RIS influence
//! maximization, rerun on each query over the current graph snapshot.
//!
//! Reproduction notes (see DESIGN.md §5): the two-phase structure —
//! doubling-based `OPT` lower-bound estimation, then `θ = λ*/LB` RR-set
//! sampling and greedy max-coverage — follows the paper; constants are the
//! published ones, with a configurable cap on total RR sets so that
//! per-step reruns on streams remain feasible (the cap binds exactly in the
//! regimes where the real IMM is also impractically slow, which is the
//! behaviour Fig. 14 reports).

use crate::max_cover::max_cover;
use crate::rr::{sample_rr, RrSet};
use crate::util::ln_binom;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdn_core::{InfluenceObjective, InfluenceTracker, Solution, TrackerConfig};
use tdn_graph::{Lifetime, NodeId, TdnGraph, Time};
use tdn_streams::TimedEdge;
use tdn_submodular::OracleCounter;

/// IMM seed selection on a graph snapshot.
///
/// `eps` is IMM's accuracy parameter (the paper's experiments use 0.3);
/// `max_rr` caps the pool size.
pub fn imm_select(
    graph: &TdnGraph,
    k: usize,
    eps: f64,
    max_rr: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let nf = n as f64;
    let ln_n = nf.ln().max(1.0);
    let ln_nk = ln_binom(n, k);
    let ln2 = std::f64::consts::LN_2;
    // Phase 1: doubling search for a lower bound on OPT.
    let eps_p = eps * std::f64::consts::SQRT_2;
    let lambda_p = (2.0 + 2.0 / 3.0 * eps_p) * (ln_nk + ln_n + ln2) * nf / (eps_p * eps_p);
    let mut pool: Vec<RrSet> = Vec::new();
    let mut lb = 1.0f64;
    let levels = (nf.log2().floor() as i32).max(1);
    for i in 1..levels {
        let x = nf / 2f64.powi(i);
        let theta_i = ((lambda_p / x).ceil() as usize).min(max_rr);
        while pool.len() < theta_i {
            match sample_rr(graph, rng) {
                Some(rr) => pool.push(rr),
                None => break,
            }
        }
        if pool.is_empty() {
            break;
        }
        let cov = max_cover(&pool, k, n);
        let frac_spread = nf * cov.covered as f64 / pool.len() as f64;
        if frac_spread >= (1.0 + eps_p) * x {
            lb = frac_spread / (1.0 + eps_p);
            break;
        }
        if theta_i >= max_rr {
            lb = frac_spread.max(1.0);
            break;
        }
    }
    // Phase 2: sample to θ = λ*/LB and select.
    let e = std::f64::consts::E;
    let alpha = ln_n + ln2;
    let beta_t = (1.0 - 1.0 / e) * (ln_nk + ln_n + ln2);
    let lambda_star =
        2.0 * nf * ((1.0 - 1.0 / e) * alpha.sqrt() + beta_t.sqrt()).powi(2) / (eps * eps);
    let theta = ((lambda_star / lb).ceil() as usize).min(max_rr).max(1);
    while pool.len() < theta {
        match sample_rr(graph, rng) {
            Some(rr) => pool.push(rr),
            None => break,
        }
    }
    max_cover(&pool, k, n).seeds
}

/// IMM as a per-step tracker: rebuild the RR pool on every query (it is an
/// index for *static* graphs; the stream forces recomputation, which is why
/// its throughput is the lowest in Fig. 14).
pub struct ImmTracker {
    k: usize,
    eps: f64,
    max_lifetime: Lifetime,
    max_rr: usize,
    query_every: u64,
    graph: TdnGraph,
    rng: StdRng,
    counter: OracleCounter,
    last: Solution,
    steps_seen: u64,
}

impl ImmTracker {
    /// Creates the tracker; `eps` is IMM's own parameter (§V-C uses 0.3).
    pub fn new(cfg: &TrackerConfig, eps: f64, seed: u64) -> Self {
        ImmTracker {
            k: cfg.k,
            eps,
            max_lifetime: cfg.max_lifetime,
            max_rr: 20_000,
            query_every: 1,
            graph: TdnGraph::new(),
            rng: StdRng::seed_from_u64(seed),
            counter: OracleCounter::new(),
            last: Solution::empty(),
            steps_seen: 0,
        }
    }

    /// Caps the RR pool per query.
    pub fn with_max_rr(mut self, max_rr: usize) -> Self {
        self.max_rr = max_rr.max(1);
        self
    }

    /// Re-solve cadence (1 = every step).
    pub fn with_query_every(mut self, n: u64) -> Self {
        assert!(n >= 1);
        self.query_every = n;
        self
    }
}

impl InfluenceTracker for ImmTracker {
    fn name(&self) -> &'static str {
        "IMM"
    }

    fn step(&mut self, t: Time, batch: &[TimedEdge]) -> Solution {
        self.graph.advance_to(t);
        for e in batch {
            self.graph
                .add_edge(e.src, e.dst, e.lifetime.min(self.max_lifetime).max(1));
        }
        self.steps_seen += 1;
        if (self.steps_seen - 1).is_multiple_of(self.query_every) {
            let seeds = imm_select(&self.graph, self.k, self.eps, self.max_rr, &mut self.rng);
            let mut obj = InfluenceObjective::new(&self.graph, self.counter.clone());
            let value = obj.evaluate_seeds(&seeds);
            self.last = Solution { seeds, value };
        }
        self.last.clone()
    }

    fn oracle_calls(&self) -> u64 {
        self.counter.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_two_stars() -> TdnGraph {
        // Two hubs with multiplicity-20 spokes (p ≈ 0.96 per edge): IC and
        // reachability agree that the hubs are the influencers.
        let mut g = TdnGraph::new();
        for i in 1..=6u32 {
            for _ in 0..20 {
                g.add_edge(NodeId(0), NodeId(i), 1000);
            }
        }
        for i in 1..=4u32 {
            for _ in 0..20 {
                g.add_edge(NodeId(100), NodeId(100 + i), 1000);
            }
        }
        g
    }

    #[test]
    fn finds_the_hubs() {
        let g = dense_two_stars();
        let mut rng = StdRng::seed_from_u64(5);
        let seeds = imm_select(&g, 2, 0.3, 5_000, &mut rng);
        assert_eq!(seeds.len(), 2);
        assert!(seeds.contains(&NodeId(0)), "seeds {seeds:?}");
        assert!(seeds.contains(&NodeId(100)), "seeds {seeds:?}");
    }

    #[test]
    fn empty_graph_yields_no_seeds() {
        let g = TdnGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(imm_select(&g, 3, 0.3, 100, &mut rng).is_empty());
    }

    #[test]
    fn tracker_scores_with_reachability() {
        let mut tr = ImmTracker::new(&TrackerConfig::new(1, 0.1, 1000), 0.3, 9).with_max_rr(2_000);
        let mut batch = Vec::new();
        for i in 1..=5u32 {
            for _ in 0..20 {
                batch.push(TimedEdge::new(0u32, i, 100));
            }
        }
        let sol = tr.step(0, &batch);
        assert_eq!(sol.seeds, vec![NodeId(0)]);
        assert_eq!(sol.value, 6, "reachability spread of the hub");
        assert!(tr.oracle_calls() >= 1);
    }

    #[test]
    fn respects_budget() {
        let g = dense_two_stars();
        let mut rng = StdRng::seed_from_u64(1);
        for k in [1usize, 3, 8] {
            let seeds = imm_select(&g, k, 0.3, 2_000, &mut rng);
            assert!(seeds.len() <= k);
        }
    }
}
