//! Numeric helpers shared by the RIS baselines.

/// `ln C(n, k)` computed stably as a sum of logs (no factorial overflow).
pub fn ln_binom(n: usize, k: usize) -> f64 {
    if k == 0 || k >= n {
        return 0.0;
    }
    let k = k.min(n - k);
    (0..k)
        .map(|i| (((n - i) as f64) / ((i + 1) as f64)).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases_are_exact() {
        assert!((ln_binom(5, 2) - (10f64).ln()).abs() < 1e-12);
        assert!((ln_binom(10, 3) - (120f64).ln()).abs() < 1e-12);
        assert_eq!(ln_binom(7, 0), 0.0);
        assert_eq!(ln_binom(7, 7), 0.0);
    }

    #[test]
    fn symmetric_in_k() {
        assert!((ln_binom(30, 7) - ln_binom(30, 23)).abs() < 1e-9);
    }

    #[test]
    fn large_values_stay_finite() {
        let v = ln_binom(1_000_000, 10);
        assert!(v.is_finite() && v > 0.0);
    }
}
