//! The independent cascade (IC) model layer used by the index-based
//! baselines (DIM, IMM, TIM+).
//!
//! The paper's streaming approach is *data-driven* — it never assumes a
//! diffusion model. The baselines it compares against do: they need a
//! diffusion probability per edge, which §V-C derives from interaction
//! multiplicity as `p_uv = 2 / (1 + e^{−0.2 x}) − 1`, where `x` is the
//! number of live interactions `u → v`.

/// Diffusion probability from interaction multiplicity (§V-C).
///
/// Monotone in `x`, 0 at `x = 0`, ≈ 0.1 at `x = 1`, → 1 as `x → ∞`.
#[inline]
pub fn diffusion_prob(x: u32) -> f64 {
    2.0 / (1.0 + (-0.2 * x as f64).exp()) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_formula_endpoints() {
        assert_eq!(diffusion_prob(0), 0.0);
        let p1 = diffusion_prob(1);
        assert!((p1 - 0.0997).abs() < 1e-3, "p(1) = {p1}");
        assert!(diffusion_prob(100) > 0.999);
    }

    #[test]
    fn is_monotone_in_multiplicity() {
        let mut prev = -1.0;
        for x in 0..50 {
            let p = diffusion_prob(x);
            assert!(p > prev);
            assert!((0.0..1.0).contains(&p) || x == 0);
            prev = p;
        }
    }
}
