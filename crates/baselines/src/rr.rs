//! Reverse-reachable (RR) set sampling under the IC model (Borgs et al.,
//! the substrate of DIM, IMM, and TIM+).
//!
//! An RR set for root `w` is the random set of nodes that reach `w` in a
//! random *world* where each edge `(u, v)` exists independently with
//! probability `p_uv`. A node appearing in many RR sets has large expected
//! IC influence; greedy max-coverage over a pool of RR sets yields a
//! near-optimal IC seed set.

use crate::ic::diffusion_prob;
use rand::rngs::StdRng;
use rand::Rng;
use tdn_graph::{FxHashSet, NodeId, TdnGraph};

/// One sampled reverse-reachable set.
#[derive(Clone, Debug)]
pub struct RrSet {
    /// The uniformly sampled root.
    pub root: NodeId,
    /// Nodes that reach the root in the sampled world (root included).
    pub nodes: Vec<NodeId>,
}

impl RrSet {
    /// Width proxy: number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty (never: the root is always a member).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Samples one RR set rooted at a uniform live node; `None` on an empty
/// graph.
pub fn sample_rr(graph: &TdnGraph, rng: &mut StdRng) -> Option<RrSet> {
    let live = graph.live_nodes();
    if live.is_empty() {
        return None;
    }
    let root = live.get(rng.gen_range(0..live.len())).expect("non-empty");
    Some(sample_rr_from(graph, root, rng))
}

/// Samples one RR set with a fixed root (used by DIM's sketch refresh).
pub fn sample_rr_from(graph: &TdnGraph, root: NodeId, rng: &mut StdRng) -> RrSet {
    let mut member: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue: Vec<NodeId> = Vec::new();
    member.insert(root);
    queue.push(root);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for (u, mult) in graph.in_neighbors_distinct(v) {
            if member.contains(&u) {
                continue;
            }
            if rng.gen_bool(diffusion_prob(mult).clamp(0.0, 1.0)) {
                member.insert(u);
                queue.push(u);
            }
        }
    }
    RrSet { root, nodes: queue }
}

/// Extends an existing RR set after edge `(u, v)` was inserted: if `v` is a
/// member and `u` is not, flip the edge's coin and, on success, pull in `u`
/// and (recursively, with fresh coins) whatever reaches `u`.
///
/// Returns `true` if the set changed.
pub fn extend_rr_on_insert(
    graph: &TdnGraph,
    rr: &mut RrSet,
    u: NodeId,
    v: NodeId,
    rng: &mut StdRng,
) -> bool {
    let member: FxHashSet<NodeId> = rr.nodes.iter().copied().collect();
    if !member.contains(&v) || member.contains(&u) {
        return false;
    }
    // The new edge's multiplicity is already reflected in the graph.
    let p = diffusion_prob(graph.multiplicity(u, v));
    if !rng.gen_bool(p.clamp(0.0, 1.0)) {
        return false;
    }
    let mut member = member;
    let mut queue = vec![u];
    member.insert(u);
    rr.nodes.push(u);
    let mut head = 0;
    while head < queue.len() {
        let x = queue[head];
        head += 1;
        for (w, mult) in graph.in_neighbors_distinct(x) {
            if member.contains(&w) {
                continue;
            }
            if rng.gen_bool(diffusion_prob(mult).clamp(0.0, 1.0)) {
                member.insert(w);
                rr.nodes.push(w);
                queue.push(w);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain_graph(mult: u32) -> TdnGraph {
        // 0 -> 1 -> 2, each pair with the given multiplicity.
        let mut g = TdnGraph::new();
        for _ in 0..mult {
            g.add_edge(NodeId(0), NodeId(1), 100);
            g.add_edge(NodeId(1), NodeId(2), 100);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_rr_sets() {
        let g = TdnGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_rr(&g, &mut rng).is_none());
    }

    #[test]
    fn rr_sets_contain_their_root() {
        let g = chain_graph(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let rr = sample_rr(&g, &mut rng).unwrap();
            assert!(rr.nodes.contains(&rr.root));
        }
    }

    #[test]
    fn high_multiplicity_pulls_in_ancestors() {
        // With multiplicity 40, p ≈ 1: RR(2) should almost always be {2,1,0}.
        let g = chain_graph(40);
        let mut rng = StdRng::seed_from_u64(2);
        let mut full = 0;
        for _ in 0..100 {
            let rr = sample_rr_from(&g, NodeId(2), &mut rng);
            if rr.len() == 3 {
                full += 1;
            }
        }
        assert!(full > 95, "only {full}/100 full chains at p≈1");
    }

    #[test]
    fn low_multiplicity_rarely_traverses() {
        // With multiplicity 1, p ≈ 0.0997: RR(2) is usually just {2}.
        let g = chain_graph(1);
        let mut rng = StdRng::seed_from_u64(3);
        let singletons = (0..1000)
            .filter(|_| sample_rr_from(&g, NodeId(2), &mut rng).len() == 1)
            .count();
        assert!(
            (850..=950).contains(&singletons),
            "{singletons}/1000 singletons, expected ≈ 900"
        );
    }

    #[test]
    fn extend_on_insert_respects_membership() {
        let mut g = chain_graph(40);
        let mut rng = StdRng::seed_from_u64(4);
        let mut rr = sample_rr_from(&g, NodeId(2), &mut rng);
        assert_eq!(rr.len(), 3);
        // Insert 5 -> 2 with huge multiplicity: v = 2 is a member, so the
        // extension should almost surely pull in 5.
        for _ in 0..40 {
            g.add_edge(NodeId(5), NodeId(2), 100);
        }
        let changed = extend_rr_on_insert(&g, &mut rr, NodeId(5), NodeId(2), &mut rng);
        assert!(changed);
        assert!(rr.nodes.contains(&NodeId(5)));
        // Edge into a non-member: no-op.
        let mut rr2 = RrSet {
            root: NodeId(0),
            nodes: vec![NodeId(0)],
        };
        assert!(!extend_rr_on_insert(
            &g,
            &mut rr2,
            NodeId(5),
            NodeId(2),
            &mut rng
        ));
    }
}
