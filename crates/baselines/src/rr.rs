//! Reverse-reachable (RR) set sampling under the IC model (Borgs et al.,
//! the substrate of DIM, IMM, and TIM+).
//!
//! An RR set for root `w` is the random set of nodes that reach `w` in a
//! random *world* where each edge `(u, v)` exists independently with
//! probability `p_uv`. A node appearing in many RR sets has large expected
//! IC influence; greedy max-coverage over a pool of RR sets yields a
//! near-optimal IC seed set.

//! The deterministic-reachability analogue of this machinery — exact RR
//! sets with reservoir roots, maintained under inserts *and* expiry — now
//! lives in [`tdn_graph::sketch`] where the trackers can reach it; this
//! module keeps the IC-model (coin-flipping) samplers the static baselines
//! need, built on one shared traversal core (`grow_rr`).

use crate::ic::diffusion_prob;
use rand::rngs::StdRng;
use rand::Rng;
use tdn_graph::{FxHashSet, NodeId, SketchParams, TdnGraph};

/// One sampled reverse-reachable set.
#[derive(Clone, Debug)]
pub struct RrSet {
    /// The uniformly sampled root.
    pub root: NodeId,
    /// Nodes that reach the root in the sampled world (root included).
    pub nodes: Vec<NodeId>,
}

impl RrSet {
    /// Width proxy: number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty (never: the root is always a member).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Samples one RR set rooted at a uniform live node; `None` on an empty
/// graph.
pub fn sample_rr(graph: &TdnGraph, rng: &mut StdRng) -> Option<RrSet> {
    let live = graph.live_nodes();
    if live.is_empty() {
        return None;
    }
    let root = live.get(rng.gen_range(0..live.len())).expect("non-empty");
    Some(sample_rr_from(graph, root, rng))
}

/// Samples one RR set with a fixed root (used by DIM's sketch refresh).
pub fn sample_rr_from(graph: &TdnGraph, root: NodeId, rng: &mut StdRng) -> RrSet {
    let mut member: FxHashSet<NodeId> = FxHashSet::default();
    let mut nodes: Vec<NodeId> = Vec::new();
    member.insert(root);
    nodes.push(root);
    grow_rr(graph, &mut member, &mut nodes, 0, rng);
    RrSet { root, nodes }
}

/// Shared IC-model traversal core: processes `nodes[frontier..]` as a BFS
/// queue over reverse edges, flipping one coin per distinct in-neighbor
/// (success probability [`diffusion_prob`] of the pair multiplicity) and
/// appending successes to `nodes`/`member`. Both the from-scratch sampler
/// and the insert-time extension are this loop over different frontiers.
fn grow_rr(
    graph: &TdnGraph,
    member: &mut FxHashSet<NodeId>,
    nodes: &mut Vec<NodeId>,
    frontier: usize,
    rng: &mut StdRng,
) {
    let mut head = frontier;
    while head < nodes.len() {
        let v = nodes[head];
        head += 1;
        for (u, mult) in graph.in_neighbors_distinct(v) {
            if member.contains(&u) {
                continue;
            }
            if rng.gen_bool(diffusion_prob(mult).clamp(0.0, 1.0)) {
                member.insert(u);
                nodes.push(u);
            }
        }
    }
}

/// Pool size for a mean-type RR estimate with additive error `ε·n` at
/// failure probability `δ` — the same Hoeffding bound
/// [`tdn_graph::sketch::SketchParams::pool_size`] sizes the trackers'
/// deterministic sketch pools with, re-exported here so the static and
/// streaming estimators pre-register one formula.
pub fn hoeffding_pool_size(epsilon: f64, delta: f64) -> usize {
    SketchParams::new(epsilon, delta, 0).pool_size()
}

/// Extends an existing RR set after edge `(u, v)` was inserted: if `v` is a
/// member and `u` is not, flip the edge's coin and, on success, pull in `u`
/// and (recursively, with fresh coins) whatever reaches `u`.
///
/// Returns `true` if the set changed.
pub fn extend_rr_on_insert(
    graph: &TdnGraph,
    rr: &mut RrSet,
    u: NodeId,
    v: NodeId,
    rng: &mut StdRng,
) -> bool {
    let member: FxHashSet<NodeId> = rr.nodes.iter().copied().collect();
    if !member.contains(&v) || member.contains(&u) {
        return false;
    }
    // The new edge's multiplicity is already reflected in the graph.
    let p = diffusion_prob(graph.multiplicity(u, v));
    if !rng.gen_bool(p.clamp(0.0, 1.0)) {
        return false;
    }
    let mut member = member;
    member.insert(u);
    rr.nodes.push(u);
    let frontier = rr.nodes.len() - 1;
    grow_rr(graph, &mut member, &mut rr.nodes, frontier, rng);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain_graph(mult: u32) -> TdnGraph {
        // 0 -> 1 -> 2, each pair with the given multiplicity.
        let mut g = TdnGraph::new();
        for _ in 0..mult {
            g.add_edge(NodeId(0), NodeId(1), 100);
            g.add_edge(NodeId(1), NodeId(2), 100);
        }
        g
    }

    #[test]
    fn hoeffding_sizing_matches_the_sketch_pool() {
        // One pre-registered formula across the static and streaming
        // estimators: m = ceil(ln(2/delta) / (2 eps^2)).
        assert_eq!(
            hoeffding_pool_size(0.2, 0.1),
            SketchParams::new(0.2, 0.1, 99).pool_size()
        );
        assert_eq!(hoeffding_pool_size(0.1, 0.1), 150);
        assert!(hoeffding_pool_size(0.05, 0.1) > hoeffding_pool_size(0.1, 0.1));
    }

    #[test]
    fn empty_graph_has_no_rr_sets() {
        let g = TdnGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_rr(&g, &mut rng).is_none());
    }

    #[test]
    fn rr_sets_contain_their_root() {
        let g = chain_graph(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let rr = sample_rr(&g, &mut rng).unwrap();
            assert!(rr.nodes.contains(&rr.root));
        }
    }

    #[test]
    fn high_multiplicity_pulls_in_ancestors() {
        // With multiplicity 40, p ≈ 1: RR(2) should almost always be {2,1,0}.
        let g = chain_graph(40);
        let mut rng = StdRng::seed_from_u64(2);
        let mut full = 0;
        for _ in 0..100 {
            let rr = sample_rr_from(&g, NodeId(2), &mut rng);
            if rr.len() == 3 {
                full += 1;
            }
        }
        assert!(full > 95, "only {full}/100 full chains at p≈1");
    }

    #[test]
    fn low_multiplicity_rarely_traverses() {
        // With multiplicity 1, p ≈ 0.0997: RR(2) is usually just {2}.
        let g = chain_graph(1);
        let mut rng = StdRng::seed_from_u64(3);
        let singletons = (0..1000)
            .filter(|_| sample_rr_from(&g, NodeId(2), &mut rng).len() == 1)
            .count();
        assert!(
            (850..=950).contains(&singletons),
            "{singletons}/1000 singletons, expected ≈ 900"
        );
    }

    #[test]
    fn extend_on_insert_respects_membership() {
        let mut g = chain_graph(40);
        let mut rng = StdRng::seed_from_u64(4);
        let mut rr = sample_rr_from(&g, NodeId(2), &mut rng);
        assert_eq!(rr.len(), 3);
        // Insert 5 -> 2 with huge multiplicity: v = 2 is a member, so the
        // extension should almost surely pull in 5.
        for _ in 0..40 {
            g.add_edge(NodeId(5), NodeId(2), 100);
        }
        let changed = extend_rr_on_insert(&g, &mut rr, NodeId(5), NodeId(2), &mut rng);
        assert!(changed);
        assert!(rr.nodes.contains(&NodeId(5)));
        // Edge into a non-member: no-op.
        let mut rr2 = RrSet {
            root: NodeId(0),
            nodes: vec![NodeId(0)],
        };
        assert!(!extend_rr_on_insert(
            &g,
            &mut rr2,
            NodeId(5),
            NodeId(2),
            &mut rng
        ));
    }
}
