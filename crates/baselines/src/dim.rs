//! DIM (Ohsaka et al., VLDB 2016 \[17\]) — a dynamically *updatable* RR-set
//! index for fully dynamic graphs, with sketch-size parameter `β`.
//!
//! Maintained state: a pool of RR sketches with an inverted node→sketch
//! index. Reproduction of the update rules (DESIGN.md §5):
//!
//! * **edge insertion** `(u, v)`: every sketch containing `v` but not `u`
//!   flips the edge's IC coin and, on success, absorbs `u` plus whatever
//!   reaches `u` under fresh coins (exactly Ohsaka's incremental expansion);
//! * **edge deletion**: a sketch is *dirty* iff it contains both endpoints
//!   (its membership may have depended on the deleted edge) — dirty
//!   sketches are regenerated from a fresh uniform root. This is a
//!   conservative superset of the truly affected sketches, trading a little
//!   update work for exactness of the sampled distribution;
//! * **pool size**: `β · k · ⌈ln n⌉` sketches, resized as `n` changes (the
//!   original ties pool size to `β` and the graph size; same scaling);
//! * **vertex churn**: a round-robin slice of the pool (1/8 per step) is
//!   resampled from fresh uniform roots, so the root distribution tracks
//!   node additions/removals with bounded per-step work.
//!
//! Queries run greedy max-coverage over the pool; like the other baselines
//! the returned seeds are scored with the reachability oracle.

use crate::max_cover::max_cover;
use crate::rr::{extend_rr_on_insert, sample_rr, RrSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdn_core::{InfluenceObjective, InfluenceTracker, Solution, TrackerConfig};
use tdn_graph::{FxHashMap, FxHashSet, Lifetime, NodeId, OutGraph, TdnGraph, Time};
use tdn_streams::TimedEdge;
use tdn_submodular::OracleCounter;

/// The DIM tracker.
pub struct DimTracker {
    k: usize,
    beta: usize,
    max_lifetime: Lifetime,
    graph: TdnGraph,
    sketches: Vec<RrSet>,
    /// node → indices of sketches containing it.
    index: FxHashMap<NodeId, FxHashSet<u32>>,
    rng: StdRng,
    counter: OracleCounter,
    query_every: u64,
    last: Solution,
    steps_seen: u64,
    /// Round-robin cursor for root re-mixing (see module docs).
    refresh_cursor: usize,
}

impl DimTracker {
    /// Creates the tracker with sketch parameter `beta` (§V-C uses 32).
    pub fn new(cfg: &TrackerConfig, beta: usize, seed: u64) -> Self {
        DimTracker {
            k: cfg.k,
            beta: beta.max(1),
            max_lifetime: cfg.max_lifetime,
            graph: TdnGraph::new(),
            sketches: Vec::new(),
            index: FxHashMap::default(),
            rng: StdRng::seed_from_u64(seed),
            counter: OracleCounter::new(),
            query_every: 1,
            last: Solution::empty(),
            steps_seen: 0,
            refresh_cursor: 0,
        }
    }

    /// Re-solve cadence (1 = every step; updates always run).
    pub fn with_query_every(mut self, n: u64) -> Self {
        assert!(n >= 1);
        self.query_every = n;
        self
    }

    /// Current number of sketches.
    pub fn pool_size(&self) -> usize {
        self.sketches.len()
    }

    fn target_pool(&self) -> usize {
        let n = self.graph.node_count();
        if n == 0 {
            return 0;
        }
        self.beta * self.k * ((n as f64).ln().ceil() as usize).max(1)
    }

    fn index_add(&mut self, sketch_id: u32, nodes: &[NodeId]) {
        for &n in nodes {
            self.index.entry(n).or_default().insert(sketch_id);
        }
    }

    fn index_remove(&mut self, sketch_id: u32, nodes: &[NodeId]) {
        for n in nodes {
            if let Some(s) = self.index.get_mut(n) {
                s.remove(&sketch_id);
                if s.is_empty() {
                    self.index.remove(n);
                }
            }
        }
    }

    /// Replaces sketch `id` with a freshly sampled one (uniform root).
    fn regenerate(&mut self, id: u32) {
        let old_nodes = std::mem::take(&mut self.sketches[id as usize].nodes);
        self.index_remove(id, &old_nodes);
        if let Some(rr) = sample_rr(&self.graph, &mut self.rng) {
            let nodes = rr.nodes.clone();
            self.sketches[id as usize] = rr;
            self.index_add(id, &nodes);
        } else {
            // Graph is empty: leave a hollow sketch; pool resize removes it.
            self.sketches[id as usize].nodes = old_nodes;
            self.sketches[id as usize].nodes.clear();
        }
    }

    /// Re-mixes a slice of the pool each step so sketch roots track the
    /// *current* live-node distribution (the original DIM adds/retires
    /// sketches on vertex churn; round-robin refresh has the same fixed
    /// point and bounded per-step cost).
    fn refresh_roots(&mut self) {
        let pool = self.sketches.len();
        if pool == 0 {
            return;
        }
        let quota = (pool / 8).max(1);
        for _ in 0..quota {
            let id = (self.refresh_cursor % pool) as u32;
            self.refresh_cursor = (self.refresh_cursor + 1) % pool;
            self.regenerate(id);
        }
    }

    fn resize_pool(&mut self) {
        let target = self.target_pool();
        while self.sketches.len() < target {
            match sample_rr(&self.graph, &mut self.rng) {
                Some(rr) => {
                    let id = self.sketches.len() as u32;
                    let nodes = rr.nodes.clone();
                    self.sketches.push(rr);
                    self.index_add(id, &nodes);
                }
                None => break,
            }
        }
        while self.sketches.len() > target {
            let id = (self.sketches.len() - 1) as u32;
            let nodes = std::mem::take(&mut self.sketches[id as usize].nodes);
            self.index_remove(id, &nodes);
            self.sketches.pop();
        }
    }
}

impl InfluenceTracker for DimTracker {
    fn name(&self) -> &'static str {
        "DIM"
    }

    fn step(&mut self, t: Time, batch: &[TimedEdge]) -> Solution {
        // Deletions: collect dirty sketches while the graph evicts.
        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        {
            let index = &self.index;
            self.graph.advance_to_with(t, |u, v| {
                if let (Some(su), Some(sv)) = (index.get(&u), index.get(&v)) {
                    let (small, large) = if su.len() <= sv.len() {
                        (su, sv)
                    } else {
                        (sv, su)
                    };
                    for &id in small {
                        if large.contains(&id) {
                            dirty.insert(id);
                        }
                    }
                }
            });
        }
        for id in dirty {
            self.regenerate(id);
        }
        // Insertions: incremental sketch expansion per new edge.
        for e in batch {
            let l = e.lifetime.min(self.max_lifetime).max(1);
            self.graph.add_edge(e.src, e.dst, l);
            if let Some(ids) = self.index.get(&e.dst) {
                let candidates: Vec<u32> = ids.iter().copied().collect();
                for id in candidates {
                    let sketch = &mut self.sketches[id as usize];
                    let before = sketch.nodes.len();
                    if extend_rr_on_insert(&self.graph, sketch, e.src, e.dst, &mut self.rng) {
                        let added: Vec<NodeId> =
                            self.sketches[id as usize].nodes[before..].to_vec();
                        self.index_add(id, &added);
                    }
                }
            }
        }
        // Roots that died invalidate their sketches.
        let dead_roots: Vec<u32> = self
            .sketches
            .iter()
            .enumerate()
            .filter(|(_, rr)| !rr.nodes.is_empty() && !self.graph.contains_node(rr.root))
            .map(|(i, _)| i as u32)
            .collect();
        for id in dead_roots {
            self.regenerate(id);
        }
        self.resize_pool();
        self.refresh_roots();
        self.steps_seen += 1;
        if (self.steps_seen - 1).is_multiple_of(self.query_every) {
            let res = max_cover(&self.sketches, self.k, self.graph.node_count());
            let mut obj = InfluenceObjective::new(&self.graph, self.counter.clone());
            let value = obj.evaluate_seeds(&res.seeds);
            self.last = Solution {
                seeds: res.seeds,
                value,
            };
        }
        self.last.clone()
    }

    fn oracle_calls(&self) -> u64 {
        self.counter.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize) -> TrackerConfig {
        TrackerConfig::new(k, 0.1, 1000)
    }

    fn hub_batch(center: u32, spokes: u32, mult: usize, lifetime: Lifetime) -> Vec<TimedEdge> {
        let mut b = Vec::new();
        for i in 1..=spokes {
            for _ in 0..mult {
                b.push(TimedEdge::new(center, center + i, lifetime));
            }
        }
        b
    }

    #[test]
    fn finds_a_dense_hub() {
        let mut dim = DimTracker::new(&cfg(1), 8, 11);
        let sol = dim.step(0, &hub_batch(0, 6, 20, 100));
        assert_eq!(sol.seeds, vec![NodeId(0)]);
        assert_eq!(sol.value, 7);
        assert!(dim.pool_size() > 0);
    }

    #[test]
    fn adapts_after_expiry() {
        let mut dim = DimTracker::new(&cfg(1), 8, 12);
        let mut batch = hub_batch(0, 6, 20, 2); // big hub, short-lived
        batch.extend(hub_batch(100, 2, 20, 50)); // small hub, long-lived
        let sol = dim.step(0, &batch);
        assert_eq!(sol.seeds, vec![NodeId(0)]);
        // After the big hub expires, the small one must take over.
        let sol = dim.step(2, &[]);
        assert_eq!(sol.seeds, vec![NodeId(100)]);
        assert_eq!(sol.value, 3);
    }

    #[test]
    fn incremental_insertion_grows_sketch_coverage() {
        let mut dim = DimTracker::new(&cfg(1), 8, 13);
        dim.step(0, &hub_batch(0, 3, 20, 100));
        // New super-source feeding the hub: 50 -> 0, heavy multiplicity.
        let batch: Vec<TimedEdge> = (0..20).map(|_| TimedEdge::new(50u32, 0u32, 100)).collect();
        dim.step(1, &batch);
        // 50 reaches everything 0 reaches plus 0 itself, so once root
        // re-mixing has caught up with the vertex addition it must win.
        let mut sol = Solution::empty();
        for t in 2..=12 {
            sol = dim.step(t, &[]);
        }
        assert_eq!(sol.seeds, vec![NodeId(50)]);
        assert_eq!(sol.value, 5);
    }

    #[test]
    fn empty_graph_is_fine() {
        let mut dim = DimTracker::new(&cfg(2), 4, 1);
        assert_eq!(dim.step(0, &[]), Solution::empty());
        assert_eq!(dim.pool_size(), 0);
    }

    #[test]
    fn index_stays_consistent() {
        let mut dim = DimTracker::new(&cfg(2), 4, 14);
        for round in 0..10u32 {
            let batch = hub_batch(round * 10, 3, 5, 3);
            dim.step(round as u64, &batch);
        }
        // Every index entry must point to a sketch actually containing it.
        for (&node, ids) in dim.index.iter() {
            for &id in ids {
                assert!(
                    dim.sketches[id as usize].nodes.contains(&node),
                    "stale index entry {node:?} -> sketch {id}"
                );
            }
        }
        // And every sketch member must be indexed.
        for (i, rr) in dim.sketches.iter().enumerate() {
            for &n in &rr.nodes {
                assert!(dim.index[&n].contains(&(i as u32)));
            }
        }
    }
}
