//! # tdn-streams
//!
//! Interaction streams (Definition 2), lifetime-assignment policies
//! (§II-B), and the synthetic dataset generators standing in for the six
//! real traces of Table I.
//!
//! * [`interaction`] — `⟨u, v, τ⟩` triples and lifetime-tagged edges;
//! * [`lifetime`] — ∞ / constant-window / truncated-geometric / uniform
//!   lifetime assigners (Examples 3–5);
//! * [`batch`] — per-time-step batching of chronological streams;
//! * [`zipf`] — heavy-tail sampling;
//! * [`gen`] — LBSN check-in, Twitter cascade, and Q&A comment generators;
//! * [`datasets`] — the six Table I presets plus stream statistics;
//! * [`io`] — SNAP-style `src dst timestamp` text round-tripping, for
//!   replaying real traces through the trackers;
//! * [`tenants`] — interleaved multi-tenant firehose for the serving
//!   layer (per-tenant purity + heavy-tailed tenant activity).

#![warn(missing_docs)]

pub mod batch;
pub mod datasets;
pub mod gen;
pub mod interaction;
pub mod io;
pub mod lifetime;
pub mod tenants;
pub mod zipf;

pub use batch::StepBatches;
pub use datasets::{dataset_stats, Dataset, DatasetStats, DatasetStream};
pub use gen::cascade::{BurstWindow, CascadeConfig, CascadeGen};
pub use gen::lbsn::{LbsnConfig, LbsnGen};
pub use gen::qa::{QaConfig, QaGen};
pub use gen::DriftingRanks;
pub use interaction::{Interaction, TimedEdge};
pub use io::{
    read_interactions, read_numeric_interactions, write_interactions, IoError, ParseError,
    ParseErrorKind,
};
pub use lifetime::{
    ConstantLifetime, GeometricLifetime, InfiniteLifetime, LifetimeAssigner, PowerLawLifetime,
    UniformLifetime,
};
pub use tenants::{TenantBatch, TenantWorkload, TenantWorkloadConfig};
pub use zipf::ZipfSampler;
