//! Lifetime assignment policies (§II-B).
//!
//! The TDN model is configured entirely through the lifetime given to each
//! arriving edge. The paper's special cases (Examples 3–5):
//!
//! * [`InfiniteLifetime`] — addition-only networks (ADNs);
//! * [`ConstantLifetime`] — sliding-window networks of width `W`;
//! * [`GeometricLifetime`] — probabilistic decay: forget each live edge
//!   with probability `p` per step ⇔ lifetimes `~ Geometric(p)`, truncated
//!   at the cap `L` (the experimental setting of §V-B).

use crate::interaction::Interaction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdn_graph::Lifetime;

/// A policy assigning a lifetime to each arriving interaction.
pub trait LifetimeAssigner {
    /// Assigns `l_τ(e)` for interaction `e`.
    fn assign(&mut self, e: &Interaction) -> Lifetime;

    /// The upper bound `L` (`Lifetime::MAX` when unbounded).
    fn max_lifetime(&self) -> Lifetime;
}

/// Every edge lives forever: the ADN of Example 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct InfiniteLifetime;

impl LifetimeAssigner for InfiniteLifetime {
    fn assign(&mut self, _e: &Interaction) -> Lifetime {
        Lifetime::MAX
    }

    fn max_lifetime(&self) -> Lifetime {
        Lifetime::MAX
    }
}

/// Every edge lives exactly `W` steps: the sliding window of Example 4.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLifetime(pub Lifetime);

impl LifetimeAssigner for ConstantLifetime {
    fn assign(&mut self, _e: &Interaction) -> Lifetime {
        self.0
    }

    fn max_lifetime(&self) -> Lifetime {
        self.0
    }
}

/// Truncated geometric lifetimes: `Pr(l) ∝ (1−p)^{l−1} p` on `{1, …, L}`
/// (Example 5 and the experimental setting of §V-B).
#[derive(Clone, Debug)]
pub struct GeometricLifetime {
    p: f64,
    cap: Lifetime,
    rng: StdRng,
}

impl GeometricLifetime {
    /// Creates the assigner with forget probability `p ∈ (0, 1)`, cap `L`,
    /// and a deterministic seed.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and `cap ≥ 1`.
    pub fn new(p: f64, cap: Lifetime, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must lie in (0,1), got {p}");
        assert!(cap >= 1, "lifetime cap must be at least 1");
        GeometricLifetime {
            p,
            cap,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The forget probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples one truncated-geometric lifetime via inverse CDF.
    pub fn sample(&mut self) -> Lifetime {
        // Truncated inverse CDF: U uniform in (0,1), scaled to the mass of
        // {1..L}, then l = 1 + floor(ln(1−U·mass) / ln(1−p)).
        let q = 1.0 - self.p;
        let mass = 1.0 - q.powf(self.cap as f64);
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let l = 1.0 + ((1.0 - u * mass).ln() / q.ln()).floor();
        (l as Lifetime).clamp(1, self.cap)
    }
}

impl LifetimeAssigner for GeometricLifetime {
    fn assign(&mut self, _e: &Interaction) -> Lifetime {
        self.sample()
    }

    fn max_lifetime(&self) -> Lifetime {
        self.cap
    }
}

/// Power-law lifetimes: `Pr(l) ∝ l^{−α}` on `{1, …, L}` — one of the
/// skewed distributions the paper's §III remark calls out as making
/// BASICREDUCTION efficient (most edges short-lived, a heavy tail of
/// long-lived ones).
#[derive(Clone, Debug)]
pub struct PowerLawLifetime {
    /// Cumulative distribution over lifetimes 1..=L.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl PowerLawLifetime {
    /// Creates the assigner with exponent `alpha > 0` and cap `L`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `cap ≥ 1`.
    pub fn new(alpha: f64, cap: Lifetime, seed: u64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        assert!(cap >= 1, "lifetime cap must be at least 1");
        let mut cdf = Vec::with_capacity(cap as usize);
        let mut acc = 0.0;
        for l in 1..=cap {
            acc += (l as f64).powf(-alpha);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        *cdf.last_mut().expect("cap >= 1") = 1.0;
        PowerLawLifetime {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples one lifetime via inverse CDF.
    pub fn sample(&mut self) -> Lifetime {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        (self.cdf.partition_point(|&c| c < u) as Lifetime + 1).min(self.cdf.len() as Lifetime)
    }
}

impl LifetimeAssigner for PowerLawLifetime {
    fn assign(&mut self, _e: &Interaction) -> Lifetime {
        self.sample()
    }

    fn max_lifetime(&self) -> Lifetime {
        self.cdf.len() as Lifetime
    }
}

/// Uniform lifetimes on `{lo, …, hi}` — not in the paper, used by tests and
/// the decay-model example to stress non-monotone lifetime mixes.
#[derive(Clone, Debug)]
pub struct UniformLifetime {
    lo: Lifetime,
    hi: Lifetime,
    rng: StdRng,
}

impl UniformLifetime {
    /// Creates the assigner over the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo == 0` or `lo > hi`.
    pub fn new(lo: Lifetime, hi: Lifetime, seed: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "need 1 ≤ lo ≤ hi, got [{lo}, {hi}]");
        UniformLifetime {
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LifetimeAssigner for UniformLifetime {
    fn assign(&mut self, _e: &Interaction) -> Lifetime {
        self.rng.gen_range(self.lo..=self.hi)
    }

    fn max_lifetime(&self) -> Lifetime {
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> Interaction {
        Interaction::new(0u32, 1u32, 0)
    }

    #[test]
    fn constant_and_infinite() {
        let mut w = ConstantLifetime(5);
        assert_eq!(w.assign(&probe()), 5);
        assert_eq!(w.max_lifetime(), 5);
        let mut inf = InfiniteLifetime;
        assert_eq!(inf.assign(&probe()), Lifetime::MAX);
    }

    #[test]
    fn geometric_respects_bounds() {
        let mut g = GeometricLifetime::new(0.01, 100, 42);
        for _ in 0..10_000 {
            let l = g.assign(&probe());
            assert!((1..=100).contains(&l));
        }
    }

    #[test]
    fn geometric_mean_tracks_one_over_p() {
        // With p = 0.01 and a generous cap, the mean should be near 1/p.
        let mut g = GeometricLifetime::new(0.01, 10_000, 7);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| g.sample() as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 100.0).abs() < 5.0,
            "mean {mean} too far from 100 (= 1/p)"
        );
    }

    #[test]
    fn geometric_skews_short_for_large_p() {
        let mut g = GeometricLifetime::new(0.5, 1000, 11);
        let n = 20_000;
        let ones = (0..n).filter(|_| g.sample() == 1).count();
        let frac = ones as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.02,
            "Pr(l=1) = {frac}, expected ≈ 0.5"
        );
    }

    #[test]
    fn geometric_truncation_renormalizes() {
        // With cap = 1, every lifetime is exactly 1 no matter the U draw.
        let mut g = GeometricLifetime::new(0.001, 1, 3);
        for _ in 0..1000 {
            assert_eq!(g.sample(), 1);
        }
    }

    #[test]
    fn geometric_is_deterministic_per_seed() {
        let mut a = GeometricLifetime::new(0.05, 500, 99);
        let mut b = GeometricLifetime::new(0.05, 500, 99);
        let sa: Vec<_> = (0..100).map(|_| a.sample()).collect();
        let sb: Vec<_> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut p = PowerLawLifetime::new(2.0, 50, 4);
        for _ in 0..5_000 {
            let l = p.assign(&probe());
            assert!((1..=50).contains(&l));
        }
        assert_eq!(p.max_lifetime(), 50);
    }

    #[test]
    fn power_law_is_heavy_headed() {
        // With alpha = 2, Pr(l = 1) = 1/zeta-ish ≈ 0.62 over 1..=100.
        let mut p = PowerLawLifetime::new(2.0, 100, 8);
        let n = 20_000;
        let ones = (0..n).filter(|_| p.sample() == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((0.57..0.67).contains(&frac), "Pr(l=1) = {frac}");
    }

    #[test]
    fn power_law_tail_exists() {
        let mut p = PowerLawLifetime::new(1.2, 1_000, 9);
        let max = (0..20_000).map(|_| p.sample()).max().unwrap();
        assert!(max > 100, "no heavy tail observed (max {max})");
    }

    #[test]
    fn uniform_respects_range() {
        let mut u = UniformLifetime::new(3, 9, 5);
        for _ in 0..1000 {
            let l = u.assign(&probe());
            assert!((3..=9).contains(&l));
        }
        assert_eq!(u.max_lifetime(), 9);
    }
}
