//! Synthetic interaction generators replacing the paper's real traces.
//!
//! The algorithms only ever see `⟨u, v, τ⟩` triples; what shapes the
//! results is (a) heavy-tailed source popularity, (b) how that popularity
//! *drifts* over time (so the influential set churns, Fig. 1), and (c) for
//! the Twitter datasets, multi-hop cascade structure (so influence spread
//! exceeds out-degree). Each generator reproduces those properties for its
//! dataset family; see `DESIGN.md` §5 for the substitution argument.

pub mod cascade;
pub mod lbsn;
pub mod qa;

use rand::rngs::StdRng;
use rand::Rng;

/// A rank→entity permutation whose top ranks drift over time.
///
/// Zipf sampling chooses a *rank*; the permutation maps ranks to entity
/// ids. Periodically a hot rank is swapped with a uniformly random rank,
/// which promotes a previously cold entity into the head of the
/// distribution — the "new place starts trending" / "new account goes
/// viral" dynamic that makes the tracked top-k time-varying.
#[derive(Clone, Debug)]
pub struct DriftingRanks {
    perm: Vec<u32>,
    /// Swap one hot rank every this many events (0 = frozen).
    interval: u64,
    /// Ranks `0..hot_zone` are eligible to be displaced.
    hot_zone: usize,
    countdown: u64,
}

impl DriftingRanks {
    /// Identity permutation over `n` entities with the given drift cadence.
    pub fn new(n: usize, interval: u64, hot_zone: usize) -> Self {
        DriftingRanks {
            perm: (0..n as u32).collect(),
            interval,
            hot_zone: hot_zone.max(1).min(n),
            countdown: interval,
        }
    }

    /// Maps a sampled rank to an entity id.
    #[inline]
    pub fn entity(&self, rank: usize) -> u32 {
        self.perm[rank]
    }

    /// Advances the drift clock by one event; possibly swaps ranks.
    pub fn tick(&mut self, rng: &mut StdRng) {
        if self.interval == 0 {
            return;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.interval;
            let hot = rng.gen_range(0..self.hot_zone);
            let other = rng.gen_range(0..self.perm.len());
            self.perm.swap(hot, other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn drift_changes_the_head_eventually() {
        let mut d = DriftingRanks::new(100, 5, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let before = d.entity(0);
        let mut changed = false;
        for _ in 0..500 {
            d.tick(&mut rng);
            if d.entity(0) != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "head rank never drifted");
    }

    #[test]
    fn permutation_stays_a_bijection() {
        let mut d = DriftingRanks::new(50, 1, 10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            d.tick(&mut rng);
        }
        let mut seen: Vec<u32> = (0..50).map(|r| d.entity(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50u32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_interval_freezes_ranks() {
        let mut d = DriftingRanks::new(10, 0, 5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            d.tick(&mut rng);
        }
        assert_eq!(
            (0..10).map(|r| d.entity(r)).collect::<Vec<_>>(),
            (0..10u32).collect::<Vec<_>>()
        );
    }
}
