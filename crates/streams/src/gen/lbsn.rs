//! Location-based social network (LBSN) check-in generator — the synthetic
//! stand-in for the Brightkite and Gowalla traces of §V-A.
//!
//! A check-in `⟨place, user, t⟩` means the place attracted the user, i.e.
//! the place influences the user; a place's influence spread is the number
//! of distinct users who checked in (the paper's "place popularity").
//! Node-id layout: places occupy `0..places`, users `places..places+users`.

use crate::gen::DriftingRanks;
use crate::interaction::Interaction;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdn_graph::{NodeId, Time};

/// Configuration for the LBSN generator.
#[derive(Clone, Debug)]
pub struct LbsnConfig {
    /// Number of distinct users.
    pub users: u32,
    /// Number of distinct places (≫ users in Brightkite/Gowalla).
    pub places: u32,
    /// Zipf exponent of place popularity.
    pub place_zipf: f64,
    /// Zipf exponent of user activity.
    pub user_zipf: f64,
    /// Swap one hot place rank every this many check-ins (0 = static).
    pub drift_interval: u64,
    /// Size of the contested head of the popularity ranking.
    pub hot_zone: usize,
    /// Check-ins emitted per time step.
    pub events_per_step: u32,
    /// RNG seed (generators are fully deterministic per seed).
    pub seed: u64,
}

impl Default for LbsnConfig {
    fn default() -> Self {
        LbsnConfig {
            users: 500,
            places: 7_700,
            place_zipf: 1.1,
            user_zipf: 0.8,
            drift_interval: 200,
            hot_zone: 30,
            events_per_step: 1,
            seed: 0xB816_4A11,
        }
    }
}

/// Streaming check-in generator (infinite; take as many events as needed).
#[derive(Clone, Debug)]
pub struct LbsnGen {
    cfg: LbsnConfig,
    place_ranks: DriftingRanks,
    place_zipf: ZipfSampler,
    user_zipf: ZipfSampler,
    rng: StdRng,
    t: Time,
    emitted_this_step: u32,
}

impl LbsnGen {
    /// Creates the generator from its configuration.
    pub fn new(cfg: LbsnConfig) -> Self {
        let place_zipf = ZipfSampler::new(cfg.places as usize, cfg.place_zipf);
        let user_zipf = ZipfSampler::new(cfg.users as usize, cfg.user_zipf);
        let place_ranks = DriftingRanks::new(cfg.places as usize, cfg.drift_interval, cfg.hot_zone);
        let rng = StdRng::seed_from_u64(cfg.seed);
        LbsnGen {
            cfg,
            place_ranks,
            place_zipf,
            user_zipf,
            rng,
            t: 0,
            emitted_this_step: 0,
        }
    }

    /// Node id of place `p` (places occupy the low id range).
    pub fn place_id(&self, p: u32) -> NodeId {
        NodeId(p)
    }

    /// Node id of user `u`.
    pub fn user_id(&self, u: u32) -> NodeId {
        NodeId(self.cfg.places + u)
    }

    /// Whether `n` is a place id under this generator's layout.
    pub fn is_place(&self, n: NodeId) -> bool {
        n.0 < self.cfg.places
    }
}

impl Iterator for LbsnGen {
    type Item = Interaction;

    fn next(&mut self) -> Option<Interaction> {
        let place_rank = self.place_zipf.sample(&mut self.rng);
        let place = self.place_ranks.entity(place_rank);
        self.place_ranks.tick(&mut self.rng);
        let user = self.user_zipf.sample(&mut self.rng) as u32;
        let it = Interaction {
            src: self.place_id(place),
            dst: self.user_id(user),
            t: self.t,
        };
        self.emitted_this_step += 1;
        if self.emitted_this_step >= self.cfg.events_per_step {
            self.emitted_this_step = 0;
            self.t += 1;
        }
        Some(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdn_graph::FxHashSet;

    #[test]
    fn ids_partition_places_and_users() {
        let g = LbsnGen::new(LbsnConfig::default());
        for it in g.clone().take(5_000) {
            assert!(it.src.0 < 7_700, "src must be a place");
            assert!(it.dst.0 >= 7_700, "dst must be a user");
        }
        assert!(g.is_place(NodeId(0)));
        assert!(!g.is_place(NodeId(7_700)));
    }

    #[test]
    fn time_advances_with_events_per_step() {
        let cfg = LbsnConfig {
            events_per_step: 3,
            ..LbsnConfig::default()
        };
        let g = LbsnGen::new(cfg);
        let ts: Vec<Time> = g.take(7).map(|i| i.t).collect();
        assert_eq!(ts, vec![0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let g = LbsnGen::new(LbsnConfig {
            drift_interval: 0, // freeze ranks for a clean measurement
            ..LbsnConfig::default()
        });
        let mut counts = std::collections::HashMap::new();
        for it in g.take(20_000) {
            *counts.entry(it.src).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top place should dwarf the median.
        assert!(freqs[0] > 400, "top place too cold: {}", freqs[0]);
        assert!(freqs[0] as f64 / freqs[freqs.len() / 2] as f64 > 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = LbsnGen::new(LbsnConfig::default()).take(100).collect();
        let b: Vec<_> = LbsnGen::new(LbsnConfig::default()).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<_> = LbsnGen::new(LbsnConfig {
            seed: 1,
            ..LbsnConfig::default()
        })
        .take(100)
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn drift_rotates_the_popular_set() {
        let g = LbsnGen::new(LbsnConfig {
            drift_interval: 50,
            ..LbsnConfig::default()
        });
        let events: Vec<_> = g.take(40_000).collect();
        let early: FxHashSet<NodeId> = events[..5_000].iter().map(|i| i.src).collect();
        let late: FxHashSet<NodeId> = events[35_000..].iter().map(|i| i.src).collect();
        // Some late hot places were never seen early on.
        assert!(late.difference(&early).count() > 0);
    }
}
