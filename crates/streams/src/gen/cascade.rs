//! Re-tweet cascade generator — the synthetic stand-in for the
//! Twitter-Higgs (single announcement burst) and Twitter-HK (multi-wave
//! protest) traces of §V-A.
//!
//! `⟨u, v, t⟩` means `v` re-tweeted (or mentioned) `u`. Unlike check-ins,
//! re-tweets cascade: a re-tweeter may itself be re-tweeted, producing
//! multi-hop influence trees. The generator maintains a bounded *frontier*
//! of recent re-tweeters; each event either extends a cascade from the
//! frontier or starts a fresh one at a Zipf-popular author. Burst windows
//! raise the cascade-continuation probability and concentrate authorship,
//! reproducing the deep viral trees around the Higgs announcement and the
//! successive waves of the Umbrella Movement.

use crate::gen::DriftingRanks;
use crate::interaction::Interaction;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use tdn_graph::{NodeId, Time};

/// A burst window during which cascades deepen.
#[derive(Clone, Copy, Debug)]
pub struct BurstWindow {
    /// First step of the burst (inclusive).
    pub start: Time,
    /// Last step of the burst (exclusive).
    pub end: Time,
    /// Cascade-continuation probability inside the window.
    pub depth_prob: f64,
    /// Zipf exponent of authorship inside the window (hotter = larger).
    pub author_zipf: f64,
}

/// Configuration for the cascade generator.
#[derive(Clone, Debug)]
pub struct CascadeConfig {
    /// Number of distinct users.
    pub users: u32,
    /// Baseline Zipf exponent of authorship.
    pub author_zipf: f64,
    /// Zipf exponent of who re-tweets (mild: most users re-tweet rarely).
    pub retweeter_zipf: f64,
    /// Baseline probability that a re-tweeter is pushed onto the frontier
    /// (i.e. the cascade continues through them).
    pub depth_prob: f64,
    /// Probability an event continues a cascade from the frontier rather
    /// than starting fresh, given the frontier is non-empty.
    pub continue_prob: f64,
    /// Maximum frontier size (bounds cascade memory).
    pub frontier_cap: usize,
    /// Burst windows (may be empty; Higgs has one, HK several).
    pub bursts: Vec<BurstWindow>,
    /// Swap one hot author rank every this many events (0 = static).
    pub drift_interval: u64,
    /// Size of the contested head of the author ranking.
    pub hot_zone: usize,
    /// Events per time step.
    pub events_per_step: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            users: 30_000,
            author_zipf: 1.05,
            retweeter_zipf: 0.6,
            depth_prob: 0.25,
            continue_prob: 0.45,
            frontier_cap: 64,
            bursts: Vec::new(),
            drift_interval: 400,
            hot_zone: 40,
            events_per_step: 1,
            seed: 0x0771_77E2,
        }
    }
}

/// Streaming re-tweet generator (infinite).
#[derive(Clone, Debug)]
pub struct CascadeGen {
    cfg: CascadeConfig,
    author_ranks: DriftingRanks,
    author_zipf: ZipfSampler,
    burst_author_zipfs: Vec<ZipfSampler>,
    retweeter_zipf: ZipfSampler,
    frontier: VecDeque<NodeId>,
    rng: StdRng,
    t: Time,
    emitted_this_step: u32,
}

impl CascadeGen {
    /// Creates the generator from its configuration.
    pub fn new(cfg: CascadeConfig) -> Self {
        let author_zipf = ZipfSampler::new(cfg.users as usize, cfg.author_zipf);
        let burst_author_zipfs = cfg
            .bursts
            .iter()
            .map(|b| ZipfSampler::new(cfg.users as usize, b.author_zipf))
            .collect();
        let retweeter_zipf = ZipfSampler::new(cfg.users as usize, cfg.retweeter_zipf);
        let author_ranks = DriftingRanks::new(cfg.users as usize, cfg.drift_interval, cfg.hot_zone);
        let rng = StdRng::seed_from_u64(cfg.seed);
        CascadeGen {
            cfg,
            author_ranks,
            author_zipf,
            burst_author_zipfs,
            retweeter_zipf,
            frontier: VecDeque::new(),
            rng,
            t: 0,
            emitted_this_step: 0,
        }
    }

    /// The active burst window at step `t`, if any.
    fn active_burst(&self, t: Time) -> Option<usize> {
        self.cfg
            .bursts
            .iter()
            .position(|b| (b.start..b.end).contains(&t))
    }
}

impl Iterator for CascadeGen {
    type Item = Interaction;

    fn next(&mut self) -> Option<Interaction> {
        let burst = self.active_burst(self.t);
        let depth_prob = burst.map_or(self.cfg.depth_prob, |i| self.cfg.bursts[i].depth_prob);
        // Source: continue a cascade from the frontier, or a fresh author.
        let from_frontier = !self.frontier.is_empty() && self.rng.gen_bool(self.cfg.continue_prob);
        let src = if from_frontier {
            let idx = self.rng.gen_range(0..self.frontier.len());
            self.frontier[idx]
        } else {
            let zipf = burst
                .map(|i| &self.burst_author_zipfs[i])
                .unwrap_or(&self.author_zipf);
            let rank = zipf.sample(&mut self.rng);
            let author = self.author_ranks.entity(rank);
            self.author_ranks.tick(&mut self.rng);
            NodeId(author)
        };
        // Destination: a Zipf-mild re-tweeter distinct from the source.
        let dst = loop {
            let r = NodeId(self.retweeter_zipf.sample(&mut self.rng) as u32);
            if r != src {
                break r;
            }
        };
        if self.rng.gen_bool(depth_prob) {
            if self.frontier.len() == self.cfg.frontier_cap {
                self.frontier.pop_front();
            }
            self.frontier.push_back(dst);
        }
        let it = Interaction {
            src,
            dst,
            t: self.t,
        };
        self.emitted_this_step += 1;
        if self.emitted_this_step >= self.cfg.events_per_step {
            self.emitted_this_step = 0;
            self.t += 1;
        }
        Some(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdn_graph::{reach_count, AdnGraph, ReachScratch};

    #[test]
    fn no_self_interactions() {
        let g = CascadeGen::new(CascadeConfig::default());
        for it in g.take(10_000) {
            assert_ne!(it.src, it.dst);
        }
    }

    #[test]
    fn cascades_produce_multi_hop_reach() {
        // Build an ADN from a prefix of the stream; top authors must reach
        // strictly more nodes than their out-degree (i.e. ≥ 2 hops happen).
        let gen = CascadeGen::new(CascadeConfig::default());
        let mut adn = AdnGraph::new();
        let mut out_deg: std::collections::HashMap<NodeId, u64> = Default::default();
        for it in gen.take(20_000) {
            if adn.add_edge(it.src, it.dst) {
                *out_deg.entry(it.src).or_insert(0) += 1;
            }
        }
        let mut scratch = ReachScratch::new();
        let mut found_deeper = false;
        for (&n, &d) in out_deg.iter() {
            let r = reach_count(&adn, n, &mut scratch);
            assert!(r > d);
            if r > d + 1 {
                found_deeper = true;
            }
        }
        assert!(found_deeper, "no multi-hop cascade found in 20k events");
    }

    #[test]
    fn bursts_deepen_cascades() {
        let mk = |bursts: Vec<BurstWindow>| {
            let gen = CascadeGen::new(CascadeConfig {
                bursts,
                drift_interval: 0,
                ..CascadeConfig::default()
            });
            // Average reach of the top author over a window of events.
            let mut adn = AdnGraph::new();
            for it in gen.take(15_000) {
                adn.add_edge(it.src, it.dst);
            }
            let mut scratch = ReachScratch::new();
            adn.nodes()
                .map(|n| reach_count(&adn, n, &mut scratch))
                .max()
                .unwrap_or(0)
        };
        let calm = mk(vec![]);
        let burst = mk(vec![BurstWindow {
            start: 0,
            end: 20_000,
            depth_prob: 0.8,
            author_zipf: 1.6,
        }]);
        assert!(
            burst > calm,
            "burst max reach {burst} not deeper than calm {calm}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = CascadeGen::new(CascadeConfig::default())
            .take(200)
            .collect();
        let b: Vec<_> = CascadeGen::new(CascadeConfig::default())
            .take(200)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn burst_window_detection() {
        let cfg = CascadeConfig {
            bursts: vec![BurstWindow {
                start: 10,
                end: 20,
                depth_prob: 0.9,
                author_zipf: 1.5,
            }],
            ..CascadeConfig::default()
        };
        let g = CascadeGen::new(cfg);
        assert_eq!(g.active_burst(9), None);
        assert_eq!(g.active_burst(10), Some(0));
        assert_eq!(g.active_burst(19), Some(0));
        assert_eq!(g.active_burst(20), None);
    }
}
