//! Q&A comment generator — the synthetic stand-in for the Stack Overflow
//! comment-on-question (c2q) and comment-on-answer (c2a) traces of §V-A.
//!
//! `⟨u, v, t⟩` means `v` commented on `u`'s question (c2q) or answer (c2a):
//! `u` attracted `v`'s attention. All participants share one id universe.
//! Threads matter: a popular post attracts many commenters in a short span,
//! and commenters themselves post content that gets commented on — which
//! yields shallow-but-wide influence trees with occasional 2–3 hop chains.

use crate::gen::DriftingRanks;
use crate::interaction::Interaction;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use tdn_graph::{NodeId, Time};

/// Configuration for the Q&A generator.
#[derive(Clone, Debug)]
pub struct QaConfig {
    /// Number of distinct users.
    pub users: u32,
    /// Zipf exponent of post-owner popularity.
    pub owner_zipf: f64,
    /// Zipf exponent of commenter activity.
    pub commenter_zipf: f64,
    /// Probability a commenter becomes a recent owner (their reply attracts
    /// follow-up comments) — the chain-building knob.
    pub chain_prob: f64,
    /// Probability an event targets a recent owner instead of a fresh one.
    pub thread_prob: f64,
    /// Bound on the recent-owner pool.
    pub recent_cap: usize,
    /// Swap one hot owner rank every this many events (0 = static).
    pub drift_interval: u64,
    /// Size of the contested head of the owner ranking.
    pub hot_zone: usize,
    /// Events per time step.
    pub events_per_step: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QaConfig {
    fn default() -> Self {
        QaConfig {
            users: 160_000,
            owner_zipf: 1.0,
            commenter_zipf: 0.7,
            chain_prob: 0.15,
            thread_prob: 0.5,
            recent_cap: 128,
            drift_interval: 300,
            hot_zone: 50,
            events_per_step: 1,
            seed: 0x50_C2A,
        }
    }
}

/// Streaming Q&A comment generator (infinite).
#[derive(Clone, Debug)]
pub struct QaGen {
    cfg: QaConfig,
    owner_ranks: DriftingRanks,
    owner_zipf: ZipfSampler,
    commenter_zipf: ZipfSampler,
    recent_owners: VecDeque<NodeId>,
    rng: StdRng,
    t: Time,
    emitted_this_step: u32,
}

impl QaGen {
    /// Creates the generator from its configuration.
    pub fn new(cfg: QaConfig) -> Self {
        let owner_zipf = ZipfSampler::new(cfg.users as usize, cfg.owner_zipf);
        let commenter_zipf = ZipfSampler::new(cfg.users as usize, cfg.commenter_zipf);
        let owner_ranks = DriftingRanks::new(cfg.users as usize, cfg.drift_interval, cfg.hot_zone);
        let rng = StdRng::seed_from_u64(cfg.seed);
        QaGen {
            cfg,
            owner_ranks,
            owner_zipf,
            commenter_zipf,
            recent_owners: VecDeque::new(),
            rng,
            t: 0,
            emitted_this_step: 0,
        }
    }
}

impl Iterator for QaGen {
    type Item = Interaction;

    fn next(&mut self) -> Option<Interaction> {
        let from_thread = !self.recent_owners.is_empty() && self.rng.gen_bool(self.cfg.thread_prob);
        let src = if from_thread {
            let idx = self.rng.gen_range(0..self.recent_owners.len());
            self.recent_owners[idx]
        } else {
            let rank = self.owner_zipf.sample(&mut self.rng);
            let owner = self.owner_ranks.entity(rank);
            self.owner_ranks.tick(&mut self.rng);
            NodeId(owner)
        };
        let dst = loop {
            let c = NodeId(self.commenter_zipf.sample(&mut self.rng) as u32);
            if c != src {
                break c;
            }
        };
        if self.rng.gen_bool(self.cfg.chain_prob) {
            if self.recent_owners.len() == self.cfg.recent_cap {
                self.recent_owners.pop_front();
            }
            self.recent_owners.push_back(dst);
        }
        let it = Interaction {
            src,
            dst,
            t: self.t,
        };
        self.emitted_this_step += 1;
        if self.emitted_this_step >= self.cfg.events_per_step {
            self.emitted_this_step = 0;
            self.t += 1;
        }
        Some(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_self_comments() {
        let g = QaGen::new(QaConfig::default());
        for it in g.take(10_000) {
            assert_ne!(it.src, it.dst);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = QaGen::new(QaConfig::default()).take(300).collect();
        let b: Vec<_> = QaGen::new(QaConfig::default()).take(300).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn owner_popularity_is_heavy_tailed() {
        let g = QaGen::new(QaConfig {
            drift_interval: 0,
            thread_prob: 0.0,
            ..QaConfig::default()
        });
        let mut counts = std::collections::HashMap::new();
        for it in g.take(30_000) {
            *counts.entry(it.src).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 200, "hottest owner only {max} events");
    }

    #[test]
    fn threads_concentrate_sources() {
        // With high thread probability, sources concentrate into the recent
        // pool, so far fewer distinct sources appear than without threading.
        let distinct_sources = |thread_prob: f64| {
            let g = QaGen::new(QaConfig {
                thread_prob,
                chain_prob: 0.02, // slow pool churn isolates the threading effect
                ..QaConfig::default()
            });
            let srcs: std::collections::HashSet<_> = g.take(5_000).map(|i| i.src).collect();
            srcs.len()
        };
        let threaded = distinct_sources(0.9);
        let flat = distinct_sources(0.0);
        assert!(
            threaded * 2 < flat,
            "threaded {threaded} not much smaller than flat {flat}"
        );
    }
}
