//! The six dataset presets of Table I, as seeded synthetic generators.
//!
//! Each preset mirrors its real counterpart's *interaction schema*, relative
//! node-universe size, and temporal character (drift, bursts, density);
//! stream lengths are scaled for laptop-class runs. `EXPERIMENTS.md`
//! tabulates paper-reported vs. generated statistics.

use crate::gen::cascade::{BurstWindow, CascadeConfig, CascadeGen};
use crate::gen::lbsn::{LbsnConfig, LbsnGen};
use crate::gen::qa::{QaConfig, QaGen};
use crate::interaction::Interaction;
use tdn_graph::FxHashSet;

/// The six interaction datasets of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Brightkite LBSN check-ins (place → user).
    Brightkite,
    /// Gowalla LBSN check-ins (place → user).
    Gowalla,
    /// Twitter re-tweets around the Higgs announcement (single burst).
    TwitterHiggs,
    /// Twitter re-tweets during the Umbrella Movement (multi-wave).
    TwitterHk,
    /// Stack Overflow comment-on-question interactions.
    StackOverflowC2q,
    /// Stack Overflow comment-on-answer interactions.
    StackOverflowC2a,
}

impl Dataset {
    /// All presets, in Table I order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Brightkite,
        Dataset::Gowalla,
        Dataset::TwitterHiggs,
        Dataset::TwitterHk,
        Dataset::StackOverflowC2q,
        Dataset::StackOverflowC2a,
    ];

    /// Short machine name (file/CSV friendly).
    pub fn slug(self) -> &'static str {
        match self {
            Dataset::Brightkite => "brightkite",
            Dataset::Gowalla => "gowalla",
            Dataset::TwitterHiggs => "twitter-higgs",
            Dataset::TwitterHk => "twitter-hk",
            Dataset::StackOverflowC2q => "stackoverflow-c2q",
            Dataset::StackOverflowC2a => "stackoverflow-c2a",
        }
    }

    /// Paper-reported statistics `(nodes description, #interactions)` from
    /// Table I, for side-by-side reporting.
    pub fn paper_stats(self) -> (&'static str, u64) {
        match self {
            Dataset::Brightkite => ("51,406 users / 772,966 places", 4_747_281),
            Dataset::Gowalla => ("107,092 users / 1,280,969 places", 6_442_892),
            Dataset::TwitterHiggs => ("304,198 users", 555_481),
            Dataset::TwitterHk => ("49,808 users", 2_930_439),
            Dataset::StackOverflowC2q => ("1,627,635 users", 13_664_641),
            Dataset::StackOverflowC2a => ("1,639,761 users", 17_535_031),
        }
    }

    /// Builds the preset's generator with the given seed.
    pub fn stream(self, seed: u64) -> DatasetStream {
        match self {
            Dataset::Brightkite => DatasetStream::Lbsn(LbsnGen::new(LbsnConfig {
                users: 514,
                places: 7_730,
                place_zipf: 1.1,
                user_zipf: 0.8,
                drift_interval: 180,
                hot_zone: 30,
                events_per_step: 1,
                seed,
            })),
            Dataset::Gowalla => DatasetStream::Lbsn(LbsnGen::new(LbsnConfig {
                users: 1_071,
                places: 12_810,
                place_zipf: 1.0,
                user_zipf: 0.8,
                drift_interval: 150,
                hot_zone: 40,
                events_per_step: 1,
                seed: seed ^ 0x060A_A11A,
            })),
            Dataset::TwitterHiggs => DatasetStream::Cascade(CascadeGen::new(CascadeConfig {
                users: 30_420,
                author_zipf: 1.05,
                retweeter_zipf: 0.6,
                depth_prob: 0.25,
                continue_prob: 0.45,
                frontier_cap: 64,
                bursts: vec![BurstWindow {
                    start: 2_000,
                    end: 3_600,
                    depth_prob: 0.6,
                    author_zipf: 1.5,
                }],
                drift_interval: 400,
                hot_zone: 40,
                events_per_step: 1,
                seed: seed ^ 0x0041_6653,
            })),
            Dataset::TwitterHk => DatasetStream::Cascade(CascadeGen::new(CascadeConfig {
                users: 4_980,
                author_zipf: 1.1,
                retweeter_zipf: 0.65,
                depth_prob: 0.3,
                continue_prob: 0.5,
                frontier_cap: 48,
                bursts: vec![
                    BurstWindow {
                        start: 800,
                        end: 1_600,
                        depth_prob: 0.55,
                        author_zipf: 1.4,
                    },
                    BurstWindow {
                        start: 3_000,
                        end: 3_800,
                        depth_prob: 0.6,
                        author_zipf: 1.5,
                    },
                    BurstWindow {
                        start: 6_000,
                        end: 7_000,
                        depth_prob: 0.55,
                        author_zipf: 1.45,
                    },
                ],
                drift_interval: 250,
                hot_zone: 30,
                events_per_step: 1,
                seed: seed ^ 0x48_4B,
            })),
            Dataset::StackOverflowC2q => DatasetStream::Qa(QaGen::new(QaConfig {
                users: 162_000,
                owner_zipf: 1.0,
                commenter_zipf: 0.7,
                chain_prob: 0.12,
                thread_prob: 0.45,
                recent_cap: 96,
                drift_interval: 300,
                hot_zone: 50,
                events_per_step: 1,
                seed: seed ^ 0xC20,
            })),
            Dataset::StackOverflowC2a => DatasetStream::Qa(QaGen::new(QaConfig {
                users: 164_000,
                owner_zipf: 1.05,
                commenter_zipf: 0.75,
                chain_prob: 0.2,
                thread_prob: 0.55,
                recent_cap: 128,
                drift_interval: 250,
                hot_zone: 60,
                events_per_step: 1,
                seed: seed ^ 0xC2A,
            })),
        }
    }

    /// Scaled stream length used by the Table I statistics run (the paper's
    /// interaction counts ÷ ~100).
    pub fn table1_events(self) -> u64 {
        match self {
            Dataset::Brightkite => 47_473,
            Dataset::Gowalla => 64_429,
            Dataset::TwitterHiggs => 5_555 * 10, // ÷10: the Higgs trace is short
            Dataset::TwitterHk => 29_304,
            Dataset::StackOverflowC2q => 136_646,
            Dataset::StackOverflowC2a => 175_350,
        }
    }
}

/// A concrete generator for one dataset preset.
///
/// An enum (not a boxed trait object) so streams stay `Clone` and fully
/// deterministic for tests.
#[derive(Clone, Debug)]
pub enum DatasetStream {
    /// LBSN check-ins.
    Lbsn(LbsnGen),
    /// Twitter cascades.
    Cascade(CascadeGen),
    /// Q&A comments.
    Qa(QaGen),
}

impl Iterator for DatasetStream {
    type Item = Interaction;

    fn next(&mut self) -> Option<Interaction> {
        match self {
            DatasetStream::Lbsn(g) => g.next(),
            DatasetStream::Cascade(g) => g.next(),
            DatasetStream::Qa(g) => g.next(),
        }
    }
}

/// Statistics of a generated stream prefix (the Table I analog).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    /// Distinct source nodes observed.
    pub src_nodes: u64,
    /// Distinct destination nodes observed.
    pub dst_nodes: u64,
    /// Distinct nodes overall.
    pub nodes: u64,
    /// Total interactions.
    pub interactions: u64,
    /// Distinct ordered pairs.
    pub distinct_pairs: u64,
    /// Last time step reached.
    pub last_t: u64,
}

/// Scans `events` interactions from a stream and summarizes them.
pub fn dataset_stats(stream: impl Iterator<Item = Interaction>, events: u64) -> DatasetStats {
    let mut srcs = FxHashSet::default();
    let mut dsts = FxHashSet::default();
    let mut all = FxHashSet::default();
    let mut pairs = FxHashSet::default();
    let mut n = 0u64;
    let mut last_t = 0u64;
    for it in stream.take(events as usize) {
        srcs.insert(it.src);
        dsts.insert(it.dst);
        all.insert(it.src);
        all.insert(it.dst);
        pairs.insert(tdn_graph::pack_pair(it.src, it.dst));
        n += 1;
        last_t = it.t;
    }
    DatasetStats {
        src_nodes: srcs.len() as u64,
        dst_nodes: dsts.len() as u64,
        nodes: all.len() as u64,
        interactions: n,
        distinct_pairs: pairs.len() as u64,
        last_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_generates() {
        for d in Dataset::ALL {
            let stats = dataset_stats(d.stream(1), 2_000);
            assert_eq!(stats.interactions, 2_000, "{}", d.slug());
            assert!(stats.nodes > 100, "{} too few nodes", d.slug());
            assert!(
                stats.last_t >= 1_999,
                "{} must be one event per step",
                d.slug()
            );
        }
    }

    #[test]
    fn slugs_are_unique() {
        let slugs: FxHashSet<&str> = Dataset::ALL.iter().map(|d| d.slug()).collect();
        assert_eq!(slugs.len(), 6);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for d in Dataset::ALL {
            let a: Vec<_> = d.stream(7).take(50).collect();
            let b: Vec<_> = d.stream(7).take(50).collect();
            assert_eq!(a, b, "{}", d.slug());
        }
    }

    #[test]
    fn lbsn_presets_have_more_places_than_users_checked_in() {
        // Brightkite's signature: the source universe (places) is much
        // larger than the destination universe (users).
        let stats = dataset_stats(Dataset::Brightkite.stream(3), 20_000);
        assert!(stats.dst_nodes < 600);
        assert!(stats.src_nodes > stats.dst_nodes);
    }
}
