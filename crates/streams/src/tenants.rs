//! Multi-tenant interleaved workloads for the serving layer.
//!
//! A tracker-as-a-service front-end sees one interleaved firehose of
//! `(tenant, event)` pairs covering hundreds of independent networks.
//! [`TenantWorkload`] generates that firehose with the two properties the
//! serving-layer tests lean on:
//!
//! 1. **Per-tenant purity** — a tenant's batch at tick `t` is a pure
//!    function of `(seed, tenant, t)` (each batch derives a fresh
//!    splitmix-seeded RNG; no cross-tenant generator state). The
//!    interleaved firehose restricted to one tenant is therefore
//!    *bit-identical* to that tenant's standalone stream, which is what
//!    lets the backend-identity test compare serve-routed feeds against
//!    direct single-tenant `step` calls.
//! 2. **Heavy-tailed tenant activity** — tenant `i` emits at a rate
//!    `∝ (i+1)^{−s}`, so a few tenants dominate the firehose while the
//!    long tail posts sporadically (sparse tenants skip ticks entirely,
//!    exercising the trackers' skipped-tick catch-up paths and the
//!    server's idempotent replay guard).

use crate::interaction::TimedEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdn_graph::{Lifetime, Time};

/// Configuration for a multi-tenant workload.
#[derive(Clone, Debug)]
pub struct TenantWorkloadConfig {
    /// Number of tenants (independent networks).
    pub tenants: u32,
    /// Time ticks per tenant (`0..ticks`).
    pub ticks: u64,
    /// Mean batch size of the busiest tenant (rank 0); tenant `i`
    /// scales it by `(i+1)^{−tenant_zipf}`.
    pub events_per_tick: u32,
    /// Zipf exponent of cross-tenant activity skew.
    pub tenant_zipf: f64,
    /// Per-tenant node universe (`0..nodes`).
    pub nodes: u32,
    /// Zipf exponent of per-tenant source popularity.
    pub node_zipf: f64,
    /// Edge lifetimes are uniform in `1..=max_lifetime`.
    pub max_lifetime: Lifetime,
    /// Workload seed; everything below is deterministic per seed.
    pub seed: u64,
}

impl Default for TenantWorkloadConfig {
    fn default() -> Self {
        TenantWorkloadConfig {
            tenants: 16,
            ticks: 64,
            events_per_tick: 12,
            tenant_zipf: 0.9,
            nodes: 400,
            node_zipf: 1.0,
            max_lifetime: 8,
            seed: 0x7E4A_4175,
        }
    }
}

/// One tenant's edge batch arriving at tick `t` of the firehose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantBatch {
    /// The tenant (network) the batch belongs to.
    pub tenant: u32,
    /// Arrival tick (strictly increasing within a tenant).
    pub t: Time,
    /// The edges (never empty — idle ticks are skipped, not emitted).
    pub edges: Vec<TimedEdge>,
}

/// Deterministic multi-tenant workload generator. See the module docs.
#[derive(Clone, Debug)]
pub struct TenantWorkload {
    cfg: TenantWorkloadConfig,
    /// Zipf CDF over node ranks, shared by all tenants (stateless).
    node_cdf: crate::zipf::ZipfSampler,
}

/// splitmix64 finalizer — decorrelates the per-(tenant, tick) seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TenantWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    /// Panics if `tenants`, `nodes < 2`, or `max_lifetime` is zero
    /// (degenerate workloads).
    pub fn new(cfg: TenantWorkloadConfig) -> Self {
        assert!(cfg.tenants > 0, "need at least one tenant");
        assert!(cfg.nodes >= 2, "need at least two nodes per tenant");
        assert!(cfg.max_lifetime > 0, "lifetimes start at 1");
        let node_cdf = crate::zipf::ZipfSampler::new(cfg.nodes as usize, cfg.node_zipf);
        TenantWorkload { cfg, node_cdf }
    }

    /// The configuration the workload was built from.
    pub fn config(&self) -> &TenantWorkloadConfig {
        &self.cfg
    }

    /// Mean batch size of tenant `tenant` (its Zipf-scaled rate).
    fn rate(&self, tenant: u32) -> f64 {
        self.cfg.events_per_tick as f64 * ((tenant + 1) as f64).powf(-self.cfg.tenant_zipf)
    }

    /// Tenant `tenant`'s batch at tick `t` — a pure function of
    /// `(seed, tenant, t)`. Empty when the tenant is idle that tick.
    pub fn batch_at(&self, tenant: u32, t: Time) -> Vec<TimedEdge> {
        let mut rng = StdRng::seed_from_u64(mix(
            self.cfg.seed ^ mix((tenant as u64) << 32 | 0xBA7C).wrapping_add(mix(t ^ 0x71C4))
        ));
        let rate = self.rate(tenant);
        let mut n = rate as u64;
        // Bernoulli on the fractional part keeps the long tail's expected
        // rate exact while letting sparse tenants skip most ticks.
        if rng.gen_range(0.0..1.0) < rate - n as f64 {
            n += 1;
        }
        let mut edges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let src = self.node_cdf.sample(&mut rng) as u32;
            // Uniform destination, nudged off the diagonal.
            let mut dst = rng.gen_range(0..self.cfg.nodes);
            if dst == src {
                dst = (dst + 1) % self.cfg.nodes;
            }
            let lifetime = rng.gen_range(1..=self.cfg.max_lifetime);
            edges.push(TimedEdge::new(src, dst, lifetime));
        }
        edges
    }

    /// Tenant `tenant`'s full standalone stream: its non-empty
    /// `(t, batch)` pairs in tick order — exactly what a dedicated
    /// single-tenant driver would feed.
    pub fn tenant_stream(&self, tenant: u32) -> Vec<(Time, Vec<TimedEdge>)> {
        (0..self.cfg.ticks)
            .filter_map(|t| {
                let edges = self.batch_at(tenant, t);
                (!edges.is_empty()).then_some((t, edges))
            })
            .collect()
    }

    /// The interleaved firehose: every tenant's non-empty batches, tick-
    /// major with the tenant order rotating per tick (so no tenant is
    /// always first and shard queues fill in shifting order, while each
    /// tenant still observes strictly increasing `t`).
    pub fn interleaved(&self) -> impl Iterator<Item = TenantBatch> + '_ {
        let tenants = self.cfg.tenants as u64;
        (0..self.cfg.ticks).flat_map(move |t| {
            (0..tenants).filter_map(move |slot| {
                let tenant = ((slot + t) % tenants) as u32;
                let edges = self.batch_at(tenant, t);
                (!edges.is_empty()).then_some(TenantBatch { tenant, t, edges })
            })
        })
    }

    /// Total event (edge) count across the whole firehose.
    pub fn total_events(&self) -> u64 {
        self.interleaved().map(|b| b.edges.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TenantWorkload {
        TenantWorkload::new(TenantWorkloadConfig {
            tenants: 8,
            ticks: 40,
            events_per_tick: 6,
            ..TenantWorkloadConfig::default()
        })
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = small().interleaved().collect();
        let b: Vec<_> = small().interleaved().collect();
        assert_eq!(a, b);
        let other = TenantWorkload::new(TenantWorkloadConfig {
            tenants: 8,
            ticks: 40,
            events_per_tick: 6,
            seed: 99,
            ..TenantWorkloadConfig::default()
        });
        assert_ne!(a, other.interleaved().collect::<Vec<_>>());
    }

    #[test]
    fn firehose_restricted_to_a_tenant_is_its_standalone_stream() {
        // The property the serve backend-identity test is built on.
        let w = small();
        for tenant in 0..w.config().tenants {
            let from_firehose: Vec<(Time, Vec<TimedEdge>)> = w
                .interleaved()
                .filter(|b| b.tenant == tenant)
                .map(|b| (b.t, b.edges))
                .collect();
            assert_eq!(from_firehose, w.tenant_stream(tenant), "tenant {tenant}");
        }
    }

    #[test]
    fn per_tenant_ticks_strictly_increase() {
        let w = small();
        let mut last: Vec<Option<Time>> = vec![None; w.config().tenants as usize];
        for b in w.interleaved() {
            assert!(!b.edges.is_empty(), "idle ticks must be skipped");
            let prev = &mut last[b.tenant as usize];
            if let Some(p) = *prev {
                assert!(b.t > p, "tenant {} went {} -> {}", b.tenant, p, b.t);
            }
            *prev = Some(b.t);
        }
    }

    #[test]
    fn activity_is_skewed_and_the_tail_skips_ticks() {
        let w = TenantWorkload::new(TenantWorkloadConfig {
            tenants: 32,
            ticks: 200,
            events_per_tick: 10,
            tenant_zipf: 1.2,
            ..TenantWorkloadConfig::default()
        });
        let mut events = vec![0u64; 32];
        let mut ticks_active = vec![0u64; 32];
        for b in w.interleaved() {
            events[b.tenant as usize] += b.edges.len() as u64;
            ticks_active[b.tenant as usize] += 1;
        }
        assert!(events[0] > 8 * events[31].max(1), "no head/tail skew");
        assert!(
            ticks_active[31] < 200,
            "the coldest tenant should skip some ticks"
        );
        assert!(
            events.iter().all(|&e| e > 0),
            "every tenant posts eventually"
        );
    }

    #[test]
    fn edges_respect_the_universe_and_lifetime_bounds() {
        let w = small();
        for b in w.interleaved() {
            for e in &b.edges {
                assert!(e.src.0 < w.config().nodes);
                assert!(e.dst.0 < w.config().nodes);
                assert_ne!(e.src, e.dst);
                assert!(e.lifetime >= 1 && e.lifetime <= w.config().max_lifetime);
            }
        }
    }
}
