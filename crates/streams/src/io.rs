//! Reading and writing interaction streams as plain text.
//!
//! The SNAP temporal traces the paper evaluates on ship as whitespace-
//! separated `src dst timestamp` lines; this module round-trips that
//! format so users with the real datasets can replay them through the
//! trackers. String entity names are interned to dense [`NodeId`]s.

use crate::interaction::Interaction;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use tdn_graph::{NodeId, NodeInterner, Time};

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    /// Line number (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`read_interactions`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input line.
    Parse(ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads `src dst timestamp` lines (whitespace-separated; `#` comments and
/// blank lines skipped). Entity tokens may be arbitrary strings; they are
/// interned into `names`. Interactions must be chronological; self-loops
/// are skipped (the model forbids them).
pub fn read_interactions(
    reader: impl Read,
    names: &mut NodeInterner,
) -> Result<Vec<Interaction>, IoError> {
    let mut out = Vec::new();
    let mut last_t: Option<Time> = None;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(src), Some(dst), Some(ts)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(IoError::Parse(ParseError {
                line: idx + 1,
                message: format!("expected `src dst timestamp`, got {line:?}"),
            }));
        };
        let t: Time = ts.parse().map_err(|e| {
            IoError::Parse(ParseError {
                line: idx + 1,
                message: format!("bad timestamp {ts:?}: {e}"),
            })
        })?;
        if let Some(last) = last_t {
            if t < last {
                return Err(IoError::Parse(ParseError {
                    line: idx + 1,
                    message: format!("timestamps must be non-decreasing ({last} -> {t})"),
                }));
            }
        }
        last_t = Some(t);
        let src = names.intern(src);
        let dst = names.intern(dst);
        if src == dst {
            continue;
        }
        out.push(Interaction { src, dst, t });
    }
    Ok(out)
}

/// Writes interactions as `src dst timestamp` lines, using `names` for
/// entity tokens when available (raw ids otherwise).
pub fn write_interactions(
    writer: impl Write,
    interactions: &[Interaction],
    names: Option<&NodeInterner>,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    let token = |n: NodeId| -> String {
        names
            .and_then(|it| it.name(n).map(str::to_owned))
            .unwrap_or_else(|| n.0.to_string())
    };
    for it in interactions {
        writeln!(out, "{}\t{}\t{}", token(it.src), token(it.dst), it.t)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_named_interactions() {
        let mut names = NodeInterner::new();
        let input = "alice bob 0\n# a comment\n\nbob carol 1\nalice carol 5\n";
        let evs = read_interactions(input.as_bytes(), &mut names).unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(names.len(), 3);
        assert_eq!(evs[0].t, 0);
        assert_eq!(evs[2].t, 5);
        let mut buf = Vec::new();
        write_interactions(&mut buf, &evs, Some(&names)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "alice\tbob\t0\nbob\tcarol\t1\nalice\tcarol\t5\n");
        // And reading back yields the same interactions.
        let mut names2 = NodeInterner::new();
        let evs2 = read_interactions(text.as_bytes(), &mut names2).unwrap();
        assert_eq!(evs.len(), evs2.len());
        for (a, b) in evs.iter().zip(&evs2) {
            assert_eq!(a.t, b.t);
            assert_eq!(names.name(a.src), names2.name(b.src));
        }
    }

    #[test]
    fn skips_self_loops() {
        let mut names = NodeInterner::new();
        let evs = read_interactions("x x 0\nx y 1\n".as_bytes(), &mut names).unwrap();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn rejects_time_travel() {
        let mut names = NodeInterner::new();
        let err = read_interactions("a b 5\nb c 3\n".as_bytes(), &mut names).unwrap_err();
        let IoError::Parse(p) = err else {
            panic!("expected parse error")
        };
        assert_eq!(p.line, 2);
        assert!(p.message.contains("non-decreasing"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let mut names = NodeInterner::new();
        assert!(read_interactions("a b\n".as_bytes(), &mut names).is_err());
        assert!(read_interactions("a b xyz\n".as_bytes(), &mut names).is_err());
    }

    #[test]
    fn numeric_ids_write_without_interner() {
        let evs = vec![Interaction::new(3u32, 4u32, 7)];
        let mut buf = Vec::new();
        write_interactions(&mut buf, &evs, None).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "3\t4\t7\n");
    }
}
