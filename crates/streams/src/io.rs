//! Reading and writing interaction streams as plain text.
//!
//! The SNAP temporal traces the paper evaluates on ship as whitespace-
//! separated `src dst timestamp` lines; this module round-trips that
//! format so users with the real datasets can replay them through the
//! trackers. String entity names are interned to dense [`NodeId`]s.

use crate::interaction::Interaction;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use tdn_graph::{NodeId, NodeInterner, Time};

/// What exactly went wrong on a trace line — typed so a server ingesting
/// an untrusted trace can branch on the failure class (skip vs abort vs
/// alert) instead of string-matching a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Fewer than the three `src dst timestamp` fields.
    MissingFields {
        /// Fields actually present on the line.
        got: usize,
    },
    /// More than three fields — silently ignoring trailing tokens would
    /// misparse traces whose column order differs (e.g. `src ts dst`).
    ExtraFields {
        /// Fields actually present on the line.
        got: usize,
    },
    /// The timestamp field is not a non-negative integer that fits
    /// [`Time`].
    BadTimestamp {
        /// The offending token.
        token: String,
    },
    /// A numeric node id does not fit [`NodeId`]'s `u32` (or is not a
    /// non-negative integer at all) — only raised by the strict numeric
    /// reader, [`read_numeric_interactions`].
    BadNodeId {
        /// The offending token.
        token: String,
    },
    /// Timestamps went backwards; interactions must be chronological.
    TimeTravel {
        /// Timestamp of the previous interaction.
        previous: Time,
        /// The (smaller) timestamp on this line.
        found: Time,
    },
}

impl std::fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseErrorKind::MissingFields { got } => {
                write!(f, "expected `src dst timestamp`, found {got} field(s)")
            }
            ParseErrorKind::ExtraFields { got } => {
                write!(f, "expected `src dst timestamp`, found {got} fields")
            }
            ParseErrorKind::BadTimestamp { token } => {
                write!(f, "bad timestamp {token:?} (need a non-negative integer)")
            }
            ParseErrorKind::BadNodeId { token } => {
                write!(f, "bad node id {token:?} (need an integer in [0, 2^32))")
            }
            ParseErrorKind::TimeTravel { previous, found } => {
                write!(
                    f,
                    "timestamps must be non-decreasing ({previous} -> {found})"
                )
            }
        }
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    /// Line number (1-based).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`read_interactions`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input line.
    Parse(ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Splits one trace line into exactly three fields, or reports the arity
/// failure. Shared by the interned and strict-numeric readers.
fn three_fields(line: &str, lineno: usize) -> Result<(&str, &str, &str), IoError> {
    let mut parts = line.split_whitespace();
    let fields = (parts.next(), parts.next(), parts.next());
    let extra = parts.count();
    match fields {
        (Some(a), Some(b), Some(c)) if extra == 0 => Ok((a, b, c)),
        (Some(_), Some(_), Some(_)) => Err(IoError::Parse(ParseError {
            line: lineno,
            kind: ParseErrorKind::ExtraFields { got: 3 + extra },
        })),
        (a, b, _) => Err(IoError::Parse(ParseError {
            line: lineno,
            kind: ParseErrorKind::MissingFields {
                got: a.is_some() as usize + b.is_some() as usize,
            },
        })),
    }
}

/// Parses and range-checks the timestamp field. `u64::parse` already
/// rejects signs, non-digits, and values past `Time::MAX` (reported as a
/// typed error, never a silent wrap).
fn parse_timestamp(ts: &str, lineno: usize, last_t: Option<Time>) -> Result<Time, IoError> {
    let t: Time = ts.parse().map_err(|_| {
        IoError::Parse(ParseError {
            line: lineno,
            kind: ParseErrorKind::BadTimestamp {
                token: ts.to_string(),
            },
        })
    })?;
    if let Some(last) = last_t {
        if t < last {
            return Err(IoError::Parse(ParseError {
                line: lineno,
                kind: ParseErrorKind::TimeTravel {
                    previous: last,
                    found: t,
                },
            }));
        }
    }
    Ok(t)
}

/// Reads `src dst timestamp` lines (whitespace-separated; `#` comments and
/// blank lines skipped). Entity tokens may be arbitrary strings; they are
/// interned into `names`. Interactions must be chronological; self-loops
/// are skipped (the model forbids them). Every malformation — wrong field
/// count, a non-numeric or overflowing timestamp, time travel — is a typed
/// [`ParseError`] carrying the 1-based line number, never a panic or a
/// silent misparse.
pub fn read_interactions(
    reader: impl Read,
    names: &mut NodeInterner,
) -> Result<Vec<Interaction>, IoError> {
    let mut out = Vec::new();
    let mut last_t: Option<Time> = None;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (src, dst, ts) = three_fields(line, idx + 1)?;
        let t = parse_timestamp(ts, idx + 1, last_t)?;
        last_t = Some(t);
        let src = names.intern(src);
        let dst = names.intern(dst);
        if src == dst {
            continue;
        }
        out.push(Interaction { src, dst, t });
    }
    Ok(out)
}

/// Like [`read_interactions`], but for traces whose entity tokens are raw
/// numeric ids (the common SNAP layout): `src` and `dst` must be integers
/// in `[0, 2^32)` and are used as [`NodeId`]s directly — no interner, no
/// per-token allocation. An id that is negative, non-numeric, or too large
/// for `u32` is a typed [`ParseErrorKind::BadNodeId`] with its line
/// number, not a silent truncation.
pub fn read_numeric_interactions(reader: impl Read) -> Result<Vec<Interaction>, IoError> {
    let node = |tok: &str, lineno: usize| -> Result<NodeId, IoError> {
        tok.parse::<u32>().map(NodeId).map_err(|_| {
            IoError::Parse(ParseError {
                line: lineno,
                kind: ParseErrorKind::BadNodeId {
                    token: tok.to_string(),
                },
            })
        })
    };
    let mut out = Vec::new();
    let mut last_t: Option<Time> = None;
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (src, dst, ts) = three_fields(line, idx + 1)?;
        let t = parse_timestamp(ts, idx + 1, last_t)?;
        last_t = Some(t);
        let src = node(src, idx + 1)?;
        let dst = node(dst, idx + 1)?;
        if src == dst {
            continue;
        }
        out.push(Interaction { src, dst, t });
    }
    Ok(out)
}

/// Writes interactions as `src dst timestamp` lines, using `names` for
/// entity tokens when available (raw ids otherwise).
pub fn write_interactions(
    writer: impl Write,
    interactions: &[Interaction],
    names: Option<&NodeInterner>,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    let token = |n: NodeId| -> String {
        names
            .and_then(|it| it.name(n).map(str::to_owned))
            .unwrap_or_else(|| n.0.to_string())
    };
    for it in interactions {
        writeln!(out, "{}\t{}\t{}", token(it.src), token(it.dst), it.t)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_named_interactions() {
        let mut names = NodeInterner::new();
        let input = "alice bob 0\n# a comment\n\nbob carol 1\nalice carol 5\n";
        let evs = read_interactions(input.as_bytes(), &mut names).unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(names.len(), 3);
        assert_eq!(evs[0].t, 0);
        assert_eq!(evs[2].t, 5);
        let mut buf = Vec::new();
        write_interactions(&mut buf, &evs, Some(&names)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "alice\tbob\t0\nbob\tcarol\t1\nalice\tcarol\t5\n");
        // And reading back yields the same interactions.
        let mut names2 = NodeInterner::new();
        let evs2 = read_interactions(text.as_bytes(), &mut names2).unwrap();
        assert_eq!(evs.len(), evs2.len());
        for (a, b) in evs.iter().zip(&evs2) {
            assert_eq!(a.t, b.t);
            assert_eq!(names.name(a.src), names2.name(b.src));
        }
    }

    #[test]
    fn skips_self_loops() {
        let mut names = NodeInterner::new();
        let evs = read_interactions("x x 0\nx y 1\n".as_bytes(), &mut names).unwrap();
        assert_eq!(evs.len(), 1);
    }

    /// Unwraps the typed parse arm of an [`IoError`].
    fn parse_err<T>(res: Result<T, IoError>) -> ParseError {
        match res {
            Ok(_) => panic!("malformed input parsed successfully"),
            Err(IoError::Parse(p)) => p,
            Err(IoError::Io(e)) => panic!("expected a parse error, got i/o: {e}"),
        }
    }

    #[test]
    fn rejects_time_travel() {
        let mut names = NodeInterner::new();
        let p = parse_err(read_interactions("a b 5\nb c 3\n".as_bytes(), &mut names));
        assert_eq!(p.line, 2);
        assert_eq!(
            p.kind,
            ParseErrorKind::TimeTravel {
                previous: 5,
                found: 3
            }
        );
    }

    #[test]
    fn missing_fields_name_the_line_and_arity() {
        let mut names = NodeInterner::new();
        // Comments and blanks do not advance the reported line number
        // incorrectly: the bad line is physical line 3.
        let p = parse_err(read_interactions(
            "# header\na b 0\na b\n".as_bytes(),
            &mut names,
        ));
        assert_eq!(p.line, 3);
        assert_eq!(p.kind, ParseErrorKind::MissingFields { got: 2 });
        let p = parse_err(read_interactions("justone\n".as_bytes(), &mut names));
        assert_eq!(
            (p.line, p.kind),
            (1, ParseErrorKind::MissingFields { got: 1 })
        );
    }

    #[test]
    fn extra_fields_are_an_error_not_a_silent_misparse() {
        // A 4-column trace (e.g. `src dst weight timestamp`) must fail
        // loudly — the old reader would have read the *weight* column as
        // the timestamp.
        let mut names = NodeInterner::new();
        let p = parse_err(read_interactions("a b 3 77\n".as_bytes(), &mut names));
        assert_eq!(
            (p.line, p.kind),
            (1, ParseErrorKind::ExtraFields { got: 4 })
        );
    }

    #[test]
    fn non_numeric_and_overflowing_timestamps_are_typed() {
        let mut names = NodeInterner::new();
        for bad in ["xyz", "-4", "1.5", "18446744073709551616"] {
            let input = format!("a b {bad}\n");
            let p = parse_err(read_interactions(input.as_bytes(), &mut names));
            assert_eq!(p.line, 1, "token {bad:?}");
            assert_eq!(
                p.kind,
                ParseErrorKind::BadTimestamp {
                    token: bad.to_string()
                }
            );
        }
    }

    #[test]
    fn numeric_reader_round_trips_and_rejects_overflowing_ids() {
        let evs = read_numeric_interactions("3 4 0\n5 6 1\n".as_bytes()).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            (evs[0].src, evs[0].dst, evs[0].t),
            (NodeId(3), NodeId(4), 0)
        );
        // u32::MAX is a valid id; one past it overflows NodeId.
        assert!(read_numeric_interactions("4294967295 0 0\n".as_bytes()).is_ok());
        for bad in ["4294967296", "-1", "bob", "0x10"] {
            let input = format!("7 {bad} 0\n");
            let p = parse_err(read_numeric_interactions(input.as_bytes()));
            assert_eq!(p.line, 1, "token {bad:?}");
            assert_eq!(
                p.kind,
                ParseErrorKind::BadNodeId {
                    token: bad.to_string()
                }
            );
        }
        // The strict reader shares the arity and timestamp checks.
        let p = parse_err(read_numeric_interactions("1 2\n".as_bytes()));
        assert_eq!(p.kind, ParseErrorKind::MissingFields { got: 2 });
        let p = parse_err(read_numeric_interactions("1 2 nope\n".as_bytes()));
        assert_eq!(
            p.kind,
            ParseErrorKind::BadTimestamp {
                token: "nope".into()
            }
        );
        // Self-loops are skipped, not errors (model rule, same as interned).
        let evs = read_numeric_interactions("9 9 0\n9 10 0\n".as_bytes()).unwrap();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn numeric_ids_write_without_interner() {
        let evs = vec![Interaction::new(3u32, 4u32, 7)];
        let mut buf = Vec::new();
        write_interactions(&mut buf, &evs, None).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "3\t4\t7\n");
    }
}
