//! Zipf (power-law) sampling for heavy-tailed workload generation.
//!
//! Every real dataset in Table I has heavy-tailed activity: a few places
//! attract most check-ins, a few users author most re-tweeted content.
//! The generators sample ranks from `Pr(r) ∝ (r+1)^{−s}` using a
//! precomputed cumulative table and binary search (O(log n) per draw,
//! exact, no external distribution crate needed).

use rand::Rng;

/// Table-based Zipf sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` degenerates to the uniform distribution).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over an empty domain (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (rank 0 is the most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.2);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_dominates_for_large_s() {
        let z = ZipfSampler::new(1000, 2.0);
        assert!(z.pmf(0) > 0.6);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / n as f64;
            let expect = z.pmf(r);
            assert!(
                (emp - expect).abs() < 0.01,
                "rank {r}: empirical {emp} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn samples_are_in_range() {
        let z = ZipfSampler::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
