//! Interactions (Definition 1) and lifetime-tagged edges.

use tdn_graph::{Lifetime, NodeId, Time};

/// An interaction `⟨u, v, τ⟩`: node `u` exerts influence on node `v` at
/// time `τ` (Definition 1). E.g. `v` re-tweeted `u`, or `v` checked into
/// place `u`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// Influencer.
    pub src: NodeId,
    /// Influenced node.
    pub dst: NodeId,
    /// Arrival time step.
    pub t: Time,
}

impl Interaction {
    /// Convenience constructor.
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, t: Time) -> Self {
        Interaction {
            src: src.into(),
            dst: dst.into(),
            t,
        }
    }
}

/// An interaction that has been assigned a lifetime and is ready to be fed
/// to a tracker (§II-B: the lifetime is fixed at arrival and only ever
/// counts down).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimedEdge {
    /// Influencer.
    pub src: NodeId,
    /// Influenced node.
    pub dst: NodeId,
    /// Assigned lifetime `l_τ(e) ∈ {1, …, L}` (or `Lifetime::MAX` for ADN).
    pub lifetime: Lifetime,
}

impl TimedEdge {
    /// Convenience constructor.
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, lifetime: Lifetime) -> Self {
        TimedEdge {
            src: src.into(),
            dst: dst.into(),
            lifetime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_accept_raw_u32() {
        let i = Interaction::new(1u32, 2u32, 7);
        assert_eq!(i.src, NodeId(1));
        assert_eq!(i.dst, NodeId(2));
        assert_eq!(i.t, 7);
        let e = TimedEdge::new(3u32, 4u32, 9);
        assert_eq!(e.lifetime, 9);
    }
}
