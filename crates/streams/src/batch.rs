//! Grouping a chronological interaction stream into per-time-step batches.
//!
//! Definition 2 allows a batch of interactions per discrete step `Ē_t`; the
//! trackers consume one batch per step. [`StepBatches`] adapts any
//! chronological `Iterator<Item = Interaction>` into batches, padding
//! *empty* steps so the TDN clock still advances when nothing arrives.

use crate::interaction::Interaction;
use tdn_graph::Time;

/// Iterator adapter yielding `(t, Vec<Interaction>)` per time step.
pub struct StepBatches<I: Iterator<Item = Interaction>> {
    inner: I,
    pending: Option<Interaction>,
    next_t: Time,
    done: bool,
}

impl<I: Iterator<Item = Interaction>> StepBatches<I> {
    /// Wraps a chronological stream (non-decreasing `t`).
    pub fn new(inner: I) -> Self {
        StepBatches {
            inner,
            pending: None,
            next_t: 0,
            done: false,
        }
    }
}

impl<I: Iterator<Item = Interaction>> Iterator for StepBatches<I> {
    type Item = (Time, Vec<Interaction>);

    fn next(&mut self) -> Option<(Time, Vec<Interaction>)> {
        if self.done {
            return None;
        }
        let t = self.next_t;
        let mut batch = Vec::new();
        // Flush a buffered interaction from a previous call.
        if let Some(p) = self.pending {
            assert!(p.t >= t, "stream must be chronological");
            if p.t == t {
                batch.push(p);
                self.pending = None;
            } else {
                // An empty step before the buffered interaction's step.
                self.next_t = t + 1;
                return Some((t, batch));
            }
        }
        loop {
            match self.inner.next() {
                None => {
                    self.done = true;
                    if batch.is_empty() {
                        return None;
                    }
                    break;
                }
                Some(it) => {
                    assert!(it.t >= t, "stream must be chronological");
                    if it.t == t {
                        batch.push(it);
                    } else {
                        self.pending = Some(it);
                        break;
                    }
                }
            }
        }
        self.next_t = t + 1;
        Some((t, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(s: u32, d: u32, t: Time) -> Interaction {
        Interaction::new(s, d, t)
    }

    #[test]
    fn groups_by_time_step() {
        let evs = vec![it(0, 1, 0), it(1, 2, 0), it(2, 3, 1), it(3, 4, 3)];
        let batches: Vec<_> = StepBatches::new(evs.into_iter()).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].0, 0);
        assert_eq!(batches[0].1.len(), 2);
        assert_eq!(batches[1].0, 1);
        assert_eq!(batches[1].1.len(), 1);
        // Step 2 is empty but still emitted (the clock must advance).
        assert_eq!(batches[2], (2, vec![]));
        assert_eq!(batches[3].0, 3);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let batches: Vec<_> = StepBatches::new(std::iter::empty()).collect();
        assert!(batches.is_empty());
    }

    #[test]
    fn stream_not_starting_at_zero_pads_leading_steps() {
        let evs = vec![it(0, 1, 2)];
        let batches: Vec<_> = StepBatches::new(evs.into_iter()).collect();
        assert_eq!(batches.len(), 3);
        assert!(batches[0].1.is_empty());
        assert!(batches[1].1.is_empty());
        assert_eq!(batches[2].1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_time_travel() {
        let evs = vec![it(0, 1, 5), it(1, 2, 3)];
        let _: Vec<_> = StepBatches::new(evs.into_iter()).collect();
    }
}
