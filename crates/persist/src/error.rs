//! Typed checkpoint errors.
//!
//! Every failure mode of the persistence layer — I/O, a foreign or
//! truncated file, a version from the future, a checkpoint taken under a
//! different tracker configuration, a delta whose base snapshot is gone —
//! surfaces as a [`PersistError`] variant. Restoring **never panics** on
//! bad input: the acceptance test for the subsystem is that a corrupt or
//! mismatched file degrades into an error the operator can act on.

use crate::manifest::TrackerKind;
use std::fmt;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic (not a checkpoint,
    /// or the header itself is truncated).
    BadMagic,
    /// The file's format version is newer than this build understands.
    /// (Older versions are migrated when the format evolves; versions 2 and
    /// 3 are readable, version 3 is written.)
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file holds a different tracker type than the caller asked for.
    WrongTracker {
        /// Kind the caller tried to restore.
        expected: TrackerKind,
        /// Kind tag recorded in the manifest.
        found: u8,
    },
    /// The checkpoint was taken under a different `TrackerConfig` (`k`,
    /// `ε`, `L`, or pruning flag differ). Restoring state into a tracker
    /// with different parameters would silently change the algorithm, so
    /// this fails loudly instead.
    ConfigMismatch {
        /// Fingerprint of the caller's config.
        expected: u64,
        /// Fingerprint recorded in the manifest.
        found: u64,
    },
    /// Stored bytes do not hash to their recorded checksum (bit rot or a
    /// partially overwritten file).
    ChecksumMismatch {
        /// Which section inside the sectioned payload failed, when the
        /// corruption could be localized; `None` means the whole-payload
        /// envelope checksum failed before any section was examined.
        section: Option<String>,
    },
    /// A section required for restore is absent from the container (or,
    /// after resolving a delta chain, was never materialized by any link).
    MissingSection {
        /// Name of the absent or unresolved section.
        section: String,
    },
    /// A delta checkpoint references a base or intermediate snapshot that
    /// could not be found (deleted, renamed, or never copied alongside the
    /// delta).
    MissingBase {
        /// Snapshot id the dangling delta expected as its parent.
        snapshot_id: u64,
    },
    /// Resolving a delta chain revisited a snapshot id — the parent links
    /// form a loop instead of terminating at a base (only possible with
    /// corrupt or hand-crafted files; ids are content-derived).
    ChainCycle {
        /// First snapshot id encountered twice.
        snapshot_id: u64,
    },
    /// The payload failed to decode (truncation, implausible lengths,
    /// out-of-domain values, trailing bytes).
    Corrupt(codec::CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            PersistError::BadMagic => {
                write!(f, "not a TDN checkpoint file (bad or truncated magic)")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format v{found} is not supported (this build reads v{supported})"
            ),
            PersistError::WrongTracker { expected, found } => write!(
                f,
                "checkpoint holds tracker kind tag {found}, expected {expected:?}"
            ),
            PersistError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different tracker config \
                 (hash {found:#018x}, expected {expected:#018x})"
            ),
            PersistError::ChecksumMismatch { section: None } => {
                write!(f, "checkpoint payload checksum mismatch (corrupt file)")
            }
            PersistError::ChecksumMismatch {
                section: Some(section),
            } => write!(
                f,
                "checkpoint section {section:?} failed its checksum (corrupt file)"
            ),
            PersistError::MissingSection { section } => write!(
                f,
                "checkpoint is missing required section {section:?} \
                 (truncated container or incomplete delta chain)"
            ),
            PersistError::MissingBase { snapshot_id } => write!(
                f,
                "delta checkpoint needs parent snapshot {snapshot_id:#018x}, \
                 which was not found"
            ),
            PersistError::ChainCycle { snapshot_id } => write!(
                f,
                "delta chain loops back to snapshot {snapshot_id:#018x} \
                 instead of reaching a base"
            ),
            PersistError::Corrupt(e) => write!(f, "checkpoint payload is corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<codec::CodecError> for PersistError {
    fn from(e: codec::CodecError) -> Self {
        PersistError::Corrupt(e)
    }
}

impl From<codec::SectionError> for PersistError {
    fn from(e: codec::SectionError) -> Self {
        match e {
            codec::SectionError::Codec(c) => PersistError::Corrupt(c),
            codec::SectionError::Missing { section }
            | codec::SectionError::Unresolved { section } => {
                PersistError::MissingSection { section }
            }
            codec::SectionError::ChecksumMismatch { section } => PersistError::ChecksumMismatch {
                section: Some(section),
            },
            codec::SectionError::Duplicate { .. } => PersistError::Corrupt(
                codec::CodecError::Invalid("duplicate section name in container"),
            ),
        }
    }
}
