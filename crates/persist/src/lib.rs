//! # tdn-persist — checkpoint/restore with bit-identical warm restart
//!
//! A production tracker cannot rebuild `G_t` and every SIEVEADN instance
//! from the full interaction history after a restart: the paper's point
//! (Zhao et al., ICDE 2019) is that the *state* is bounded while the
//! history is not. This crate snapshots that bounded state — graphs
//! (adjacency and expiry-bucket order verbatim), threshold ladders, sieve
//! slots, instance sets, RNG state, and oracle-call tallies — into a
//! versioned, length-prefixed binary file, and restores it so that
//! feeding the remaining stream yields **bit-identical** solutions,
//! spreads, and oracle tallies to a run that never stopped, at any
//! `TDN_THREADS` setting (the acceptance style of Yang et al.,
//! arXiv:1602.04490: a restored tracker must be indistinguishable from an
//! uninterrupted one).
//!
//! ## File format
//!
//! A [`Manifest`] header (magic, format version, tracker kind, config
//! hash, stream position, payload length), the state payload, and an
//! FNV-1a payload checksum — see [`manifest`] for the byte layout and
//! `DESIGN.md § Persistence & recovery` for what is and is not serialized.
//! Restores fail loudly with a typed [`PersistError`] on any mismatch:
//! foreign files, future format versions, a different `TrackerConfig`,
//! truncation, or bit rot. They never panic.
//!
//! ## Example
//!
//! ```
//! use tdn_core::{HistApprox, InfluenceTracker, TrackerConfig};
//! use tdn_persist::{checkpoint_to_vec, restore_from_slice};
//! use tdn_streams::TimedEdge;
//!
//! let cfg = TrackerConfig::new(2, 0.1, 100);
//! let mut live = HistApprox::new(&cfg);
//! live.step(0, &[TimedEdge::new(1u32, 2u32, 5), TimedEdge::new(1u32, 3u32, 9)]);
//!
//! // Snapshot after one processed step, then "crash".
//! let bytes = checkpoint_to_vec(&live, &cfg, 1);
//!
//! // Warm restart: the restored tracker continues exactly where the
//! // interrupted one left off.
//! let (next_step, mut warm): (u64, HistApprox) =
//!     restore_from_slice(&bytes, &cfg).expect("fresh checkpoint restores");
//! assert_eq!(next_step, 1);
//! let batch = [TimedEdge::new(4u32, 1u32, 3)];
//! assert_eq!(warm.step(1, &batch), live.step(1, &batch));
//! assert_eq!(warm.oracle_calls(), live.oracle_calls());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod manifest;

use std::path::Path;
use tdn_core::{BasicReduction, HistApprox, RandomTracker, SieveAdnTracker, TrackerConfig};

pub use error::PersistError;
pub use manifest::{Manifest, TrackerKind, FORMAT_VERSION, MAGIC};

/// A tracker type that can be checkpointed and warm-restarted.
///
/// Implementations delegate to the tracker's own `write_snapshot` /
/// `read_snapshot` methods (which live next to the private state they
/// serialize); this trait adds the manifest kind tag so the persistence
/// layer can refuse to decode a payload into the wrong type.
pub trait Persist: Sized {
    /// Manifest tag for this tracker type.
    const KIND: TrackerKind;

    /// Appends the tracker's full live state to `w`.
    fn write_state(&self, w: &mut codec::Writer);

    /// Rebuilds a tracker from bytes produced by [`Persist::write_state`].
    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self>;
}

impl Persist for SieveAdnTracker {
    const KIND: TrackerKind = TrackerKind::SieveAdn;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        SieveAdnTracker::read_snapshot(r)
    }
}

impl Persist for BasicReduction {
    const KIND: TrackerKind = TrackerKind::BasicReduction;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        BasicReduction::read_snapshot(r)
    }
}

impl Persist for HistApprox {
    const KIND: TrackerKind = TrackerKind::HistApprox;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        HistApprox::read_snapshot(r)
    }
}

impl Persist for RandomTracker {
    const KIND: TrackerKind = TrackerKind::Random;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        RandomTracker::read_snapshot(r)
    }
}

/// Fingerprints a tracker configuration (FNV-1a over its exact serialized
/// form, `ε` as raw bits). Stored in every manifest; restore compares it
/// against the caller's config and fails with
/// [`PersistError::ConfigMismatch`] on any difference — resuming sieve
/// state under different `k`/`ε`/`L` would silently change the algorithm.
pub fn config_hash(cfg: &TrackerConfig) -> u64 {
    let mut w = codec::Writer::new();
    cfg.write_snapshot(&mut w);
    codec::fnv1a64(w.as_slice())
}

/// Serializes a checkpoint into memory: manifest header, state payload,
/// payload checksum. `step` is the stream position — the number of steps
/// the tracker has already processed (feeding resumes at that index).
pub fn checkpoint_to_vec<T: Persist>(tracker: &T, cfg: &TrackerConfig, step: u64) -> Vec<u8> {
    let mut payload = codec::Writer::new();
    tracker.write_state(&mut payload);
    let payload = payload.into_vec();
    let mut w = codec::Writer::new();
    Manifest {
        format_version: FORMAT_VERSION,
        kind: T::KIND,
        config_hash: config_hash(cfg),
        step,
        payload_len: payload.len() as u64,
    }
    .write(&mut w);
    let mut bytes = w.into_vec();
    let checksum = codec::fnv1a64(&payload);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Restores a tracker from in-memory checkpoint bytes, verifying magic,
/// version, tracker kind, config hash, payload length, and checksum before
/// decoding. Returns the stream position alongside the tracker.
pub fn restore_from_slice<T: Persist>(
    bytes: &[u8],
    cfg: &TrackerConfig,
) -> Result<(u64, T), PersistError> {
    let mut r = codec::Reader::new(bytes);
    let manifest = Manifest::read(&mut r)?;
    if manifest.kind != T::KIND {
        return Err(PersistError::WrongTracker {
            expected: T::KIND,
            found: manifest.kind as u8,
        });
    }
    let expected_hash = config_hash(cfg);
    if manifest.config_hash != expected_hash {
        return Err(PersistError::ConfigMismatch {
            expected: expected_hash,
            found: manifest.config_hash,
        });
    }
    // Subtract instead of `payload_len + 8`: a corrupt header near
    // u64::MAX would overflow the addition (a panic in debug builds, a
    // wrapped — and therefore passing — bound in release).
    if (r.remaining() as u64).saturating_sub(8) < manifest.payload_len {
        return Err(PersistError::Corrupt(codec::CodecError::Truncated {
            needed: manifest
                .payload_len
                .saturating_add(8)
                .min(usize::MAX as u64) as usize,
            remaining: r.remaining(),
        }));
    }
    let payload_len = manifest.payload_len as usize;
    let rest = &bytes[bytes.len() - r.remaining()..];
    let payload = &rest[..payload_len];
    let mut tail = codec::Reader::new(&rest[payload_len..]);
    let stored_checksum = tail.get_u64()?;
    tail.finish()?;
    if codec::fnv1a64(payload) != stored_checksum {
        return Err(PersistError::ChecksumMismatch);
    }
    let mut pr = codec::Reader::new(payload);
    let tracker = T::read_state(&mut pr)?;
    pr.finish()?;
    Ok((manifest.step, tracker))
}

/// Parses just the manifest from in-memory checkpoint bytes (no payload
/// decoding — cheap inspection of what a file holds).
pub fn peek_manifest(bytes: &[u8]) -> Result<Manifest, PersistError> {
    Manifest::read(&mut codec::Reader::new(bytes))
}

/// Writes a checkpoint file. The write is atomic-by-rename: bytes land in
/// `<path>.tmp` first, so a crash mid-write cannot leave a half-written
/// file at the final path (it would fail the checksum anyway, but the
/// previous good checkpoint survives).
pub fn save_checkpoint<T: Persist>(
    path: &Path,
    tracker: &T,
    cfg: &TrackerConfig,
    step: u64,
) -> Result<(), PersistError> {
    let bytes = checkpoint_to_vec(tracker, cfg, step);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and restores a checkpoint file written by [`save_checkpoint`].
pub fn load_checkpoint<T: Persist>(
    path: &Path,
    cfg: &TrackerConfig,
) -> Result<(u64, T), PersistError> {
    let bytes = std::fs::read(path)?;
    restore_from_slice(&bytes, cfg)
}

/// Reads just the manifest of a checkpoint file.
pub fn read_manifest(path: &Path) -> Result<Manifest, PersistError> {
    // The header is 37 bytes; read a small prefix instead of the payload.
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 64];
    let mut got = 0;
    while got < head.len() {
        match file.read(&mut head[got..])? {
            0 => break,
            n => got += n,
        }
    }
    peek_manifest(&head[..got])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdn_core::InfluenceTracker;
    use tdn_streams::TimedEdge;

    /// `unwrap_err` needs `Debug` on the success type; trackers don't
    /// implement it, so unwrap the error arm by hand.
    fn expect_err<T>(res: Result<(u64, T), PersistError>) -> PersistError {
        match res {
            Ok(_) => panic!("restore unexpectedly succeeded"),
            Err(e) => e,
        }
    }

    fn small_hist() -> (TrackerConfig, HistApprox) {
        let cfg = TrackerConfig::new(2, 0.1, 50);
        let mut h = HistApprox::new(&cfg);
        h.step(
            0,
            &[
                TimedEdge::new(0u32, 1u32, 3),
                TimedEdge::new(0u32, 2u32, 7),
                TimedEdge::new(5u32, 6u32, 20),
            ],
        );
        h.step(1, &[TimedEdge::new(6u32, 7u32, 4)]);
        (cfg, h)
    }

    #[test]
    fn round_trip_preserves_answers_and_tallies() {
        let (cfg, mut live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let (step, mut warm): (u64, HistApprox) = restore_from_slice(&bytes, &cfg).unwrap();
        assert_eq!(step, 2);
        assert_eq!(warm.oracle_calls(), live.oracle_calls());
        for t in 2..12 {
            let batch = [TimedEdge::new((t % 4) as u32, 40 + t as u32, 5)];
            assert_eq!(warm.step(t, &batch), live.step(t, &batch), "t={t}");
            assert_eq!(warm.oracle_calls(), live.oracle_calls(), "t={t}");
        }
    }

    #[test]
    fn manifest_peek_reports_position_and_kind() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 7);
        let m = peek_manifest(&bytes).unwrap();
        assert_eq!(m.kind, TrackerKind::HistApprox);
        assert_eq!(m.step, 7);
        assert_eq!(m.format_version, FORMAT_VERSION);
        assert_eq!(m.config_hash, config_hash(&cfg));
    }

    #[test]
    fn config_mismatch_is_loud() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let other = TrackerConfig::new(3, 0.1, 50);
        let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &other));
        assert!(matches!(err, PersistError::ConfigMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_tracker_kind_is_loud() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let err = expect_err(restore_from_slice::<BasicReduction>(&bytes, &cfg));
        assert!(matches!(err, PersistError::WrongTracker { .. }), "{err}");
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        for cut in 0..bytes.len() {
            let res = restore_from_slice::<HistApprox>(&bytes[..cut], &cfg);
            assert!(
                res.is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum_or_decode() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        // Flip one byte in the middle of the payload.
        let mut corrupt = bytes.clone();
        let at = bytes.len() / 2;
        corrupt[at] ^= 0xFF;
        assert!(restore_from_slice::<HistApprox>(&corrupt, &cfg).is_err());
    }

    #[test]
    fn hostile_payload_length_is_an_error_not_a_panic() {
        // A corrupt header announcing a near-u64::MAX payload must not
        // overflow the bounds arithmetic (debug panic / release wrap) or
        // reach the slicing code.
        let (cfg, live) = small_hist();
        let mut bytes = checkpoint_to_vec(&live, &cfg, 2);
        for hostile in [u64::MAX, u64::MAX - 7, (bytes.len() as u64) * 2] {
            bytes[29..37].copy_from_slice(&hostile.to_le_bytes());
            let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &cfg));
            assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        }
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        let cfg = TrackerConfig::new(2, 0.1, 50);
        let err = expect_err(restore_from_slice::<HistApprox>(
            b"PNG\x89 not a checkpoint",
            &cfg,
        ));
        assert!(matches!(err, PersistError::BadMagic), "{err}");
        // Craft a header claiming format version 99.
        let (cfg2, live) = small_hist();
        let mut bytes = checkpoint_to_vec(&live, &cfg2, 2);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &cfg2));
        assert!(
            matches!(err, PersistError::UnsupportedVersion { found: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let (cfg, mut live) = small_hist();
        let dir = std::env::temp_dir().join("tdn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.ckpt");
        save_checkpoint(&path, &live, &cfg, 2).unwrap();
        let m = read_manifest(&path).unwrap();
        assert_eq!(m.step, 2);
        let (step, mut warm): (u64, HistApprox) = load_checkpoint(&path, &cfg).unwrap();
        assert_eq!(step, 2);
        let batch = [TimedEdge::new(9u32, 10u32, 3)];
        assert_eq!(warm.step(2, &batch), live.step(2, &batch));
        std::fs::remove_dir_all(&dir).ok();
    }
}
