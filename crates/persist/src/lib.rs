//! # tdn-persist — checkpoint/restore with bit-identical warm restart
//!
//! A production tracker cannot rebuild `G_t` and every SIEVEADN instance
//! from the full interaction history after a restart: the paper's point
//! (Zhao et al., ICDE 2019) is that the *state* is bounded while the
//! history is not. This crate snapshots that bounded state — graphs
//! (adjacency and expiry-bucket order verbatim), threshold ladders, sieve
//! slots, instance sets, RNG state, and oracle-call tallies — into a
//! versioned, length-prefixed binary file, and restores it so that
//! feeding the remaining stream yields **bit-identical** solutions,
//! spreads, and oracle tallies to a run that never stopped, at any
//! `TDN_THREADS` setting (the acceptance style of Yang et al.,
//! arXiv:1602.04490: a restored tracker must be indistinguishable from an
//! uninterrupted one).
//!
//! ## File format
//!
//! A [`Manifest`] header (magic, format version, tracker kind, config
//! hash, stream position, payload length, snapshot kind and lineage ids),
//! the state payload, and an FNV-1a checksum — see [`manifest`] for the
//! byte layout and `DESIGN.md § Scale-ready persistence` for what is and
//! is not serialized. Since format 3 the payload is a **sectioned
//! container** (`codec::SectionWriter`): named, length-prefixed,
//! individually checksummed sections behind a table of contents, so
//! corruption reports name the failing section and unchanged sections can
//! be elided from delta checkpoints. Format-2 files (monolithic payload)
//! restore through the retained legacy path.
//!
//! ## Base + delta checkpoints
//!
//! A **base** snapshot is self-contained. A **delta** snapshot stores only
//! the sections that changed since its parent; unchanged sections shrink
//! to `(length, checksum)` references. Restoring a delta resolves the
//! parent chain — [`restore_from_chain`] for in-memory links,
//! [`load_checkpoint`] transparently walking sibling files by snapshot id.
//! [`CheckpointChain`] manages a directory of chained saves and compacts
//! (writes a fresh base) when the chain exceeds its [`CompactionPolicy`].
//! Restores fail loudly with a typed [`PersistError`] on any mismatch:
//! foreign files, future format versions, a different `TrackerConfig`,
//! truncation, bit rot, a missing base, or a cyclic chain. They never
//! panic.
//!
//! ## Panic audit (serving-layer hardening)
//!
//! Every `unwrap`/`expect`/`panic!` in this crate lives in `#[cfg(test)]`
//! code or doctests; none is reachable from the restore paths. The layers
//! below uphold the same rule: `codec::Reader` is panic-free by contract
//! (typed `CodecError` on truncation, length overflow, and domain
//! violations), section resolution returns typed `SectionError`s, and
//! every tracker decoder propagates those. The guarantee is *enforced*,
//! not just asserted: `tests/corrupt_inputs.rs` sweeps exhaustive
//! truncations and byte flips plus seeded multi-site damage, splices, and
//! foreign blobs through [`restore_from_chain`] / [`restore_from_slice`]
//! and requires a typed error — a panic anywhere in the stack fails the
//! suite.
//!
//! ## Example
//!
//! ```
//! use tdn_core::{HistApprox, InfluenceTracker, TrackerConfig};
//! use tdn_persist::{checkpoint_to_vec, restore_from_slice};
//! use tdn_streams::TimedEdge;
//!
//! let cfg = TrackerConfig::new(2, 0.1, 100);
//! let mut live = HistApprox::new(&cfg);
//! live.step(0, &[TimedEdge::new(1u32, 2u32, 5), TimedEdge::new(1u32, 3u32, 9)]);
//!
//! // Snapshot after one processed step, then "crash".
//! let bytes = checkpoint_to_vec(&live, &cfg, 1);
//!
//! // Warm restart: the restored tracker continues exactly where the
//! // interrupted one left off.
//! let (next_step, mut warm): (u64, HistApprox) =
//!     restore_from_slice(&bytes, &cfg).expect("fresh checkpoint restores");
//! assert_eq!(next_step, 1);
//! let batch = [TimedEdge::new(4u32, 1u32, 3)];
//! assert_eq!(warm.step(1, &batch), live.step(1, &batch));
//! assert_eq!(warm.oracle_calls(), live.oracle_calls());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod io;
pub mod manifest;

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tdn_core::{BasicReduction, HistApprox, RandomTracker, SieveAdnTracker, TrackerConfig};

pub use error::PersistError;
pub use io::{CheckpointIo, StdIo};
pub use manifest::{Manifest, SnapshotKind, TrackerKind, FORMAT_VERSION, MAGIC, MIN_READ_VERSION};

/// A tracker type that can be checkpointed and warm-restarted.
///
/// Implementations delegate to the tracker's own `write_snapshot` /
/// `read_snapshot` methods (which live next to the private state they
/// serialize); this trait adds the manifest kind tag so the persistence
/// layer can refuse to decode a payload into the wrong type.
///
/// The sectioned hooks ([`Persist::write_sections`] /
/// [`Persist::read_sections`]) drive the format-3 payload. The defaults
/// wrap the monolithic state in a single `"state"` section — correct for
/// every tracker, but deltas then only dedup when the *entire* state is
/// byte-identical. Trackers that want fine-grained deltas (SIEVEADN's
/// graph chunks, sieve ladder, memo) override both hooks.
pub trait Persist: Sized {
    /// Manifest tag for this tracker type.
    const KIND: TrackerKind;

    /// Appends the tracker's full live state to `w` (format-2 layout; also
    /// the payload of the default `"state"` section).
    fn write_state(&self, w: &mut codec::Writer);

    /// Rebuilds a tracker from bytes produced by [`Persist::write_state`].
    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self>;

    /// Emits the tracker's state as named sections into `sink`. Sections
    /// whose bytes (or generation counters) match the sink's parent index
    /// become references automatically — that is what makes a save a
    /// *delta*.
    fn write_sections(&self, sink: &mut codec::SectionSink) {
        let mut w = codec::Writer::new();
        self.write_state(&mut w);
        sink.put("state", w.into_vec());
    }

    /// Rebuilds a tracker from a resolved [`codec::SectionMap`] (a lone
    /// base container, or a fully resolved delta chain).
    fn read_sections(map: &codec::SectionMap) -> Result<Self, PersistError> {
        let mut r = map.reader("state")?;
        let tracker = Self::read_state(&mut r)?;
        r.finish()?;
        Ok(tracker)
    }
}

impl Persist for SieveAdnTracker {
    const KIND: TrackerKind = TrackerKind::SieveAdn;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        SieveAdnTracker::read_snapshot(r)
    }

    fn write_sections(&self, sink: &mut codec::SectionSink) {
        SieveAdnTracker::write_sections(self, sink);
    }

    fn read_sections(map: &codec::SectionMap) -> Result<Self, PersistError> {
        Ok(SieveAdnTracker::read_sections(map)?)
    }
}

impl Persist for BasicReduction {
    const KIND: TrackerKind = TrackerKind::BasicReduction;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        BasicReduction::read_snapshot(r)
    }
}

impl Persist for HistApprox {
    const KIND: TrackerKind = TrackerKind::HistApprox;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        HistApprox::read_snapshot(r)
    }
}

impl Persist for RandomTracker {
    const KIND: TrackerKind = TrackerKind::Random;

    fn write_state(&self, w: &mut codec::Writer) {
        self.write_snapshot(w);
    }

    fn read_state(r: &mut codec::Reader<'_>) -> codec::Result<Self> {
        RandomTracker::read_snapshot(r)
    }
}

/// Fingerprints a tracker configuration (FNV-1a over its exact serialized
/// form, `ε` as raw bits). Stored in every manifest; restore compares it
/// against the caller's config and fails with
/// [`PersistError::ConfigMismatch`] on any difference — resuming sieve
/// state under different `k`/`ε`/`L` would silently change the algorithm.
/// The memory budget is deliberately excluded (operational, not logical,
/// state — see `TrackerConfig::write_snapshot`).
pub fn config_hash(cfg: &TrackerConfig) -> u64 {
    let mut w = codec::Writer::new();
    cfg.write_snapshot(&mut w);
    codec::fnv1a64(w.as_slice())
}

/// Derives a snapshot's content identity from what it contains and where
/// it sits in the chain. Deterministic (no clocks, no randomness), so the
/// same state checkpointed at the same step under the same parent gets the
/// same id on every machine.
fn snapshot_id_for(payload_checksum: u64, step: u64, parent_id: u64) -> u64 {
    let mut w = codec::Writer::new();
    w.put_u64(payload_checksum);
    w.put_u64(step);
    w.put_u64(parent_id);
    codec::fnv1a64(w.as_slice())
}

/// Wraps a finished section container in the format-3 envelope: manifest
/// header, payload, and a trailing FNV-1a checksum covering *both* (so a
/// flipped bit anywhere in the file fails the restore). Returns the bytes
/// and the content-derived snapshot id recorded in the header.
fn envelope<T: Persist>(
    cfg: &TrackerConfig,
    step: u64,
    snapshot_kind: SnapshotKind,
    parent_id: u64,
    payload: Vec<u8>,
) -> (Vec<u8>, u64) {
    let payload_checksum = codec::fnv1a64(&payload);
    let snapshot_id = snapshot_id_for(payload_checksum, step, parent_id);
    let mut w = codec::Writer::new();
    Manifest {
        format_version: FORMAT_VERSION,
        kind: T::KIND,
        config_hash: config_hash(cfg),
        step,
        payload_len: payload.len() as u64,
        snapshot_kind,
        snapshot_id,
        parent_id,
    }
    .write(&mut w);
    let mut bytes = w.into_vec();
    bytes.extend_from_slice(&payload);
    let file_checksum = codec::fnv1a64(&bytes);
    bytes.extend_from_slice(&file_checksum.to_le_bytes());
    (bytes, snapshot_id)
}

/// Serializes a self-contained base checkpoint into memory: manifest
/// header, sectioned state payload, checksum. `step` is the stream
/// position — the number of steps the tracker has already processed
/// (feeding resumes at that index).
pub fn checkpoint_to_vec<T: Persist>(tracker: &T, cfg: &TrackerConfig, step: u64) -> Vec<u8> {
    checkpoint_base_to_vec(tracker, cfg, step).0
}

/// Like [`checkpoint_to_vec`], but also returns the [`codec::ParentIndex`]
/// describing every section written (for a later
/// [`checkpoint_delta_to_vec`]) and the snapshot id recorded in the
/// header.
pub fn checkpoint_base_to_vec<T: Persist>(
    tracker: &T,
    cfg: &TrackerConfig,
    step: u64,
) -> (Vec<u8>, codec::ParentIndex, u64) {
    let mut sink = codec::SectionSink::new(codec::ParentIndex::new());
    tracker.write_sections(&mut sink);
    let (payload, next) = sink.finish();
    let (bytes, snapshot_id) = envelope::<T>(cfg, step, SnapshotKind::Base, 0, payload);
    (bytes, next, snapshot_id)
}

/// Serializes a delta checkpoint: sections unchanged since the parent
/// (matched by generation counter or by byte checksum) are stored as
/// references, everything else inline. `parent` and `parent_id` come from
/// the previous [`checkpoint_base_to_vec`] / `checkpoint_delta_to_vec`
/// call. Returns the bytes, the index for the *next* delta, and this
/// snapshot's id.
pub fn checkpoint_delta_to_vec<T: Persist>(
    tracker: &T,
    cfg: &TrackerConfig,
    step: u64,
    parent: &codec::ParentIndex,
    parent_id: u64,
) -> (Vec<u8>, codec::ParentIndex, u64) {
    let mut sink = codec::SectionSink::new(parent.clone());
    tracker.write_sections(&mut sink);
    let (payload, next) = sink.finish();
    let (bytes, snapshot_id) = envelope::<T>(cfg, step, SnapshotKind::Delta, parent_id, payload);
    (bytes, next, snapshot_id)
}

/// Validates everything that can be checked without touching tracker
/// state: magic, version, kind tag, config hash, payload bounds, and the
/// envelope checksum. Returns the parsed manifest and the payload slice.
fn validate_envelope<'a, T: Persist>(
    bytes: &'a [u8],
    cfg: &TrackerConfig,
) -> Result<(Manifest, &'a [u8]), PersistError> {
    let mut r = codec::Reader::new(bytes);
    let manifest = Manifest::read(&mut r)?;
    if manifest.kind != T::KIND {
        return Err(PersistError::WrongTracker {
            expected: T::KIND,
            found: manifest.kind as u8,
        });
    }
    let expected_hash = config_hash(cfg);
    if manifest.config_hash != expected_hash {
        return Err(PersistError::ConfigMismatch {
            expected: expected_hash,
            found: manifest.config_hash,
        });
    }
    // Subtract instead of `payload_len + 8`: a corrupt header near
    // u64::MAX would overflow the addition (a panic in debug builds, a
    // wrapped — and therefore passing — bound in release).
    if (r.remaining() as u64).saturating_sub(8) < manifest.payload_len {
        return Err(PersistError::Corrupt(codec::CodecError::Truncated {
            needed: manifest
                .payload_len
                .saturating_add(8)
                .min(usize::MAX as u64) as usize,
            remaining: r.remaining(),
        }));
    }
    let header_len = bytes.len() - r.remaining();
    let payload_len = manifest.payload_len as usize;
    let payload = &bytes[header_len..header_len + payload_len];
    let mut tail = codec::Reader::new(&bytes[header_len + payload_len..]);
    let stored_checksum = tail.get_u64()?;
    tail.finish()?;
    // Format 3 checksums header + payload together; format 2 predates that
    // and covers the payload only.
    let computed = if manifest.format_version >= 3 {
        codec::fnv1a64(&bytes[..header_len + payload_len])
    } else {
        codec::fnv1a64(payload)
    };
    if computed != stored_checksum {
        return Err(PersistError::ChecksumMismatch { section: None });
    }
    Ok((manifest, payload))
}

/// Restores a tracker from in-memory checkpoint bytes, verifying magic,
/// version, tracker kind, config hash, payload length, and checksum before
/// decoding. Handles format-2 (monolithic) and format-3 (sectioned) base
/// snapshots; a delta fails with [`PersistError::MissingBase`] — resolve
/// its parents first and use [`restore_from_chain`], or go through
/// [`load_checkpoint`] which does so automatically. Returns the stream
/// position alongside the tracker.
pub fn restore_from_slice<T: Persist>(
    bytes: &[u8],
    cfg: &TrackerConfig,
) -> Result<(u64, T), PersistError> {
    let (manifest, payload) = validate_envelope::<T>(bytes, cfg)?;
    match manifest.snapshot_kind {
        SnapshotKind::Delta => Err(PersistError::MissingBase {
            snapshot_id: manifest.parent_id,
        }),
        SnapshotKind::Base if manifest.format_version >= 3 => {
            let map = codec::SectionMap::from_single(payload)?;
            Ok((manifest.step, T::read_sections(&map)?))
        }
        SnapshotKind::Base => {
            let mut pr = codec::Reader::new(payload);
            let tracker = T::read_state(&mut pr)?;
            pr.finish()?;
            Ok((manifest.step, tracker))
        }
    }
}

/// Restores a tracker from an explicit delta chain, ordered tip first:
/// `links[0]` is the snapshot to restore, each following link is its
/// parent, and the last link must be a base. Every envelope is validated
/// (kind, config, checksum) and the parent-id linkage is checked before
/// sections are resolved; a broken link fails with
/// [`PersistError::MissingBase`], a repeated snapshot id with
/// [`PersistError::ChainCycle`].
pub fn restore_from_chain<T: Persist>(
    links: &[&[u8]],
    cfg: &TrackerConfig,
) -> Result<(u64, T), PersistError> {
    let first = links
        .first()
        .ok_or(PersistError::Corrupt(codec::CodecError::Invalid(
            "empty checkpoint chain",
        )))?;
    if links.len() == 1 {
        return restore_from_slice(first, cfg);
    }
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(links.len());
    let mut tip_step = 0u64;
    let mut expected_parent = 0u64;
    let mut seen = HashSet::new();
    for (i, bytes) in links.iter().enumerate() {
        let (m, payload) = validate_envelope::<T>(bytes, cfg)?;
        if m.format_version < 3 {
            return Err(PersistError::Corrupt(codec::CodecError::Invalid(
                "format-2 checkpoints cannot participate in a delta chain",
            )));
        }
        if i == 0 {
            tip_step = m.step;
        } else if m.snapshot_id != expected_parent {
            return Err(PersistError::MissingBase {
                snapshot_id: expected_parent,
            });
        }
        if !seen.insert(m.snapshot_id) {
            return Err(PersistError::ChainCycle {
                snapshot_id: m.snapshot_id,
            });
        }
        let last = i + 1 == links.len();
        match m.snapshot_kind {
            SnapshotKind::Base if !last => {
                return Err(PersistError::Corrupt(codec::CodecError::Invalid(
                    "base snapshot must terminate the chain",
                )));
            }
            SnapshotKind::Delta if last => {
                return Err(PersistError::MissingBase {
                    snapshot_id: m.parent_id,
                });
            }
            _ => {}
        }
        expected_parent = m.parent_id;
        payloads.push(payload);
    }
    let map = codec::SectionMap::resolve(&payloads)?;
    Ok((tip_step, T::read_sections(&map)?))
}

/// Parses just the manifest from in-memory checkpoint bytes (no payload
/// decoding — cheap inspection of what a file holds).
pub fn peek_manifest(bytes: &[u8]) -> Result<Manifest, PersistError> {
    Manifest::read(&mut codec::Reader::new(bytes))
}

/// Writes a self-contained base checkpoint file. The write is
/// atomic-by-rename: bytes land in `<path>.tmp` first, so a crash
/// mid-write cannot leave a half-written file at the final path (it would
/// fail the checksum anyway, but the previous good checkpoint survives).
pub fn save_checkpoint<T: Persist>(
    path: &Path,
    tracker: &T,
    cfg: &TrackerConfig,
    step: u64,
) -> Result<(), PersistError> {
    save_checkpoint_with(&StdIo, path, tracker, cfg, step)
}

/// [`save_checkpoint`] through an explicit [`CheckpointIo`] — the entry
/// point fault-injection harnesses use to make the tmp write, the rename,
/// or both fail deterministically.
pub fn save_checkpoint_with<T: Persist>(
    io: &dyn CheckpointIo,
    path: &Path,
    tracker: &T,
    cfg: &TrackerConfig,
    step: u64,
) -> Result<(), PersistError> {
    let bytes = checkpoint_to_vec(tracker, cfg, step);
    write_atomic_with(io, path, &bytes)
}

/// Atomic-by-rename write through a [`CheckpointIo`]: bytes land in
/// `<path>.tmp` first, then rename into place. If the rename fails the
/// orphaned tmp file is best-effort removed (an injected or real rename
/// failure must not leave debris that a later recovery scan has to clean);
/// a *crash* between write and rename still can, which is exactly what
/// [`clean_stale_tmp`] and `Server::recover` handle.
pub fn write_atomic_with(
    io: &dyn CheckpointIo,
    path: &Path,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    io.write(&tmp, bytes)?;
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Removes stale `*.tmp` debris left in `dir` by crashes between a
/// checkpoint's tmp write and its rename. When `prefix` is given, only
/// files named `{prefix}-*.tmp` are touched (so concurrent chains sharing
/// a directory never clean each other's in-flight writes); `None` sweeps
/// the whole directory and is only safe when no writer is active (e.g.
/// during `Server::recover`). Returns the removed paths, sorted. A missing
/// directory is not an error — there is nothing to clean.
pub fn clean_stale_tmp(dir: &Path, prefix: Option<&str>) -> Result<Vec<PathBuf>, PersistError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let want_prefix = prefix.map(|p| format!("{p}-"));
    let mut removed = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.ends_with(".tmp") || !path.is_file() {
            continue;
        }
        if let Some(p) = &want_prefix {
            if !name.starts_with(p.as_str()) {
                continue;
            }
        }
        std::fs::remove_file(&path)?;
        removed.push(path);
    }
    removed.sort();
    Ok(removed)
}

/// Reads and restores a checkpoint file. A base restores directly; a delta
/// triggers chain resolution — sibling files with the same extension are
/// scanned for each required parent snapshot id until a base is reached.
/// A parent that cannot be found fails with [`PersistError::MissingBase`];
/// parent links that revisit a snapshot id fail with
/// [`PersistError::ChainCycle`].
pub fn load_checkpoint<T: Persist>(
    path: &Path,
    cfg: &TrackerConfig,
) -> Result<(u64, T), PersistError> {
    let tip = std::fs::read(path)?;
    let manifest = peek_manifest(&tip)?;
    if manifest.snapshot_kind == SnapshotKind::Base {
        return restore_from_slice(&tip, cfg);
    }
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let ext = path.extension().map(|e| e.to_os_string());
    let mut links: Vec<Vec<u8>> = vec![tip];
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(manifest.snapshot_id);
    let mut need = manifest.parent_id;
    loop {
        if need == 0 {
            // A delta without a parent id is structurally corrupt; surface
            // it as the missing-base it effectively is.
            return Err(PersistError::MissingBase { snapshot_id: 0 });
        }
        if !seen.insert(need) {
            return Err(PersistError::ChainCycle { snapshot_id: need });
        }
        let parent = find_snapshot_in_dir(&dir, ext.as_deref(), need)?
            .ok_or(PersistError::MissingBase { snapshot_id: need })?;
        let pm = peek_manifest(&parent)?;
        let is_base = pm.snapshot_kind == SnapshotKind::Base;
        need = pm.parent_id;
        links.push(parent);
        if is_base {
            break;
        }
    }
    let refs: Vec<&[u8]> = links.iter().map(Vec::as_slice).collect();
    restore_from_chain(&refs, cfg)
}

/// Scans `dir` for a checkpoint file (matching `ext`, if the tip had an
/// extension) whose manifest records `snapshot_id`. Non-checkpoint files
/// and unreadable manifests are skipped, not errors — checkpoint
/// directories may hold logs, tmp files, or foreign data.
fn find_snapshot_in_dir(
    dir: &Path,
    ext: Option<&std::ffi::OsStr>,
    snapshot_id: u64,
) -> Result<Option<Vec<u8>>, PersistError> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_file() || path.extension() != ext {
            continue;
        }
        let Ok(m) = read_manifest(&path) else {
            continue;
        };
        if m.format_version >= 3 && m.snapshot_id == snapshot_id {
            return Ok(Some(std::fs::read(&path)?));
        }
    }
    Ok(None)
}

/// Reads just the manifest of a checkpoint file.
pub fn read_manifest(path: &Path) -> Result<Manifest, PersistError> {
    // The header is at most 64 bytes; read a small prefix instead of the
    // payload.
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 64];
    let mut got = 0;
    while got < head.len() {
        match file.read(&mut head[got..])? {
            0 => break,
            n => got += n,
        }
    }
    peek_manifest(&head[..got])
}

/// When a [`CheckpointChain`] stops writing deltas and takes a fresh base.
///
/// Both limits bound restore cost: resolving a chain reads every link, so
/// restore time grows with chain length and with the bytes accumulated in
/// deltas. Compaction triggers when either the number of deltas since the
/// last base exceeds `max_chain_len`, or the cumulative delta bytes exceed
/// `max_delta_ratio` times the base's size (past that point a fresh base
/// is no more expensive to write than the chain is to read).
#[derive(Clone, Debug)]
pub struct CompactionPolicy {
    /// Maximum number of deltas after a base before the next save is
    /// forced to be a base.
    pub max_chain_len: usize,
    /// Maximum cumulative delta bytes as a fraction of the base's bytes
    /// before the next save is forced to be a base.
    pub max_delta_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_chain_len: 8,
            max_delta_ratio: 1.0,
        }
    }
}

/// What a [`CheckpointChain`] save produced.
#[derive(Clone, Debug)]
pub struct SaveReceipt {
    /// File the snapshot was written to.
    pub path: PathBuf,
    /// Content-derived snapshot id recorded in the manifest.
    pub snapshot_id: u64,
    /// Whether this save was a base or a delta.
    pub kind: SnapshotKind,
    /// Total file size in bytes (header + payload + checksum).
    pub bytes: u64,
    /// Sections written inline.
    pub fresh_sections: usize,
    /// Sections elided as references to the parent.
    pub ref_sections: usize,
}

/// In-memory bookkeeping for the newest snapshot in a chain.
struct ChainTip {
    snapshot_id: u64,
    parent: codec::ParentIndex,
    deltas_since_base: usize,
    base_bytes: u64,
    delta_bytes: u64,
}

/// A directory of chained checkpoint files: periodic saves write deltas
/// against the previous save and automatically compact to a fresh base
/// when the [`CompactionPolicy`] says the chain has grown too costly to
/// restore.
///
/// Files are named `{prefix}-{step:08}-{snapshot_id:016x}.tdnc`, so
/// lexicographic order is step order and [`load_checkpoint`] can resolve
/// parents by scanning the directory. The chain keeps no state on disk
/// beyond the files themselves: a new `CheckpointChain` (e.g. after a
/// process restart) simply starts with a base.
pub struct CheckpointChain {
    dir: PathBuf,
    prefix: String,
    policy: CompactionPolicy,
    io: Arc<dyn CheckpointIo>,
    tip: Option<ChainTip>,
}

impl CheckpointChain {
    /// Creates a chain writing `{prefix}-*.tdnc` files under `dir` with
    /// the default [`CompactionPolicy`]. Nothing touches the filesystem
    /// until the first save.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        CheckpointChain {
            dir: dir.into(),
            prefix: prefix.into(),
            policy: CompactionPolicy::default(),
            io: Arc::new(StdIo),
            tip: None,
        }
    }

    /// Replaces the compaction policy (builder form).
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Routes this chain's file operations through `io` (builder form).
    /// Restores still read with plain `std::fs` — fault injection targets
    /// the write path, where state can actually be lost.
    pub fn with_io(mut self, io: Arc<dyn CheckpointIo>) -> Self {
        self.io = io;
        self
    }

    /// Removes stale `{prefix}-*.tmp` debris from this chain's directory
    /// (crash leftovers between tmp write and rename). Prefix-scoped, so
    /// it is safe while other chains write to the same directory. Returns
    /// the removed paths.
    pub fn clean_stale_tmp(&self) -> Result<Vec<PathBuf>, PersistError> {
        clean_stale_tmp(&self.dir, Some(&self.prefix))
    }

    /// Snapshot id of the newest save, if any.
    pub fn tip_snapshot_id(&self) -> Option<u64> {
        self.tip.as_ref().map(|t| t.snapshot_id)
    }

    /// Number of deltas written since the last base (0 right after a base
    /// or before any save).
    pub fn deltas_since_base(&self) -> usize {
        self.tip.as_ref().map_or(0, |t| t.deltas_since_base)
    }

    /// Saves a snapshot, choosing delta or base automatically: the first
    /// save is a base, subsequent saves are deltas until the policy's
    /// chain-length or byte-ratio limit is reached, which forces a fresh
    /// base (compaction).
    pub fn save<T: Persist>(
        &mut self,
        tracker: &T,
        cfg: &TrackerConfig,
        step: u64,
    ) -> Result<SaveReceipt, PersistError> {
        let compact = match &self.tip {
            None => true,
            Some(tip) => {
                tip.deltas_since_base >= self.policy.max_chain_len
                    || tip.delta_bytes as f64 > self.policy.max_delta_ratio * tip.base_bytes as f64
            }
        };
        if compact {
            self.save_base(tracker, cfg, step)
        } else {
            self.save_delta(tracker, cfg, step)
        }
    }

    /// Writes a self-contained base snapshot and restarts the chain on it.
    pub fn save_base<T: Persist>(
        &mut self,
        tracker: &T,
        cfg: &TrackerConfig,
        step: u64,
    ) -> Result<SaveReceipt, PersistError> {
        // Drop the old tip before touching the disk: if the write fails,
        // the next save starts a fresh base instead of chaining onto a
        // snapshot whose on-disk fate is unknown.
        self.tip = None;
        let mut sink = codec::SectionSink::new(codec::ParentIndex::new());
        tracker.write_sections(&mut sink);
        let (fresh, refs) = sink.counts();
        let (payload, next) = sink.finish();
        let (bytes, snapshot_id) = envelope::<T>(cfg, step, SnapshotKind::Base, 0, payload);
        let path = self.write_file(step, snapshot_id, &bytes)?;
        self.tip = Some(ChainTip {
            snapshot_id,
            parent: next,
            deltas_since_base: 0,
            base_bytes: bytes.len() as u64,
            delta_bytes: 0,
        });
        Ok(SaveReceipt {
            path,
            snapshot_id,
            kind: SnapshotKind::Base,
            bytes: bytes.len() as u64,
            fresh_sections: fresh,
            ref_sections: refs,
        })
    }

    /// Writes a delta against the current tip. Falls back to
    /// [`CheckpointChain::save_base`] when there is no tip yet (a delta
    /// needs a parent).
    pub fn save_delta<T: Persist>(
        &mut self,
        tracker: &T,
        cfg: &TrackerConfig,
        step: u64,
    ) -> Result<SaveReceipt, PersistError> {
        // Take the tip for the same crash-safety reason as `save_base`: a
        // failed write must not leave the chain pointing at a snapshot
        // that may not exist on disk.
        let Some(tip) = self.tip.take() else {
            return self.save_base(tracker, cfg, step);
        };
        let mut sink = codec::SectionSink::new(tip.parent.clone());
        tracker.write_sections(&mut sink);
        let (fresh, refs) = sink.counts();
        let (payload, next) = sink.finish();
        let (bytes, snapshot_id) =
            envelope::<T>(cfg, step, SnapshotKind::Delta, tip.snapshot_id, payload);
        let path = self.write_file(step, snapshot_id, &bytes)?;
        self.tip = Some(ChainTip {
            snapshot_id,
            parent: next,
            deltas_since_base: tip.deltas_since_base + 1,
            base_bytes: tip.base_bytes,
            delta_bytes: tip.delta_bytes + bytes.len() as u64,
        });
        Ok(SaveReceipt {
            path,
            snapshot_id,
            kind: SnapshotKind::Delta,
            bytes: bytes.len() as u64,
            fresh_sections: fresh,
            ref_sections: refs,
        })
    }

    /// Path of the newest checkpoint in the chain's directory (by
    /// zero-padded step in the filename), or `None` when no chain file
    /// exists yet. Useful after a restart, when the in-memory tip is gone.
    pub fn latest_path(&self) -> Result<Option<PathBuf>, PersistError> {
        let mut best: Option<PathBuf> = None;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let want_prefix = format!("{}-", self.prefix);
        for entry in entries {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.starts_with(&want_prefix) || !name.ends_with(".tdnc") {
                continue;
            }
            if best
                .as_ref()
                .and_then(|b| b.file_name().and_then(|n| n.to_str()))
                .is_none_or(|b| name > b)
            {
                best = Some(path);
            }
        }
        Ok(best)
    }

    fn write_file(
        &self,
        step: u64,
        snapshot_id: u64,
        bytes: &[u8],
    ) -> Result<PathBuf, PersistError> {
        self.io.create_dir_all(&self.dir)?;
        let path = self
            .dir
            .join(format!("{}-{step:08}-{snapshot_id:016x}.tdnc", self.prefix));
        write_atomic_with(self.io.as_ref(), &path, bytes)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdn_core::InfluenceTracker;
    use tdn_streams::TimedEdge;

    /// `unwrap_err` needs `Debug` on the success type; trackers don't
    /// implement it, so unwrap the error arm by hand.
    fn expect_err<T>(res: Result<(u64, T), PersistError>) -> PersistError {
        match res {
            Ok(_) => panic!("restore unexpectedly succeeded"),
            Err(e) => e,
        }
    }

    fn small_hist() -> (TrackerConfig, HistApprox) {
        let cfg = TrackerConfig::new(2, 0.1, 50);
        let mut h = HistApprox::new(&cfg);
        h.step(
            0,
            &[
                TimedEdge::new(0u32, 1u32, 3),
                TimedEdge::new(0u32, 2u32, 7),
                TimedEdge::new(5u32, 6u32, 20),
            ],
        );
        h.step(1, &[TimedEdge::new(6u32, 7u32, 4)]);
        (cfg, h)
    }

    fn small_sieve() -> (TrackerConfig, SieveAdnTracker) {
        let cfg = TrackerConfig::new(2, 0.2, 50);
        let mut t = SieveAdnTracker::new(&cfg);
        t.step(
            0,
            &[
                TimedEdge::new(0u32, 1u32, 3),
                TimedEdge::new(1u32, 2u32, 7),
                TimedEdge::new(5u32, 6u32, 20),
            ],
        );
        t.step(1, &[TimedEdge::new(6u32, 7u32, 4)]);
        (cfg, t)
    }

    fn batch_for(t: u64) -> Vec<TimedEdge> {
        vec![
            TimedEdge::new((t % 5) as u32, (7 + t % 11) as u32, 1 + (t % 6) as u32),
            TimedEdge::new((t % 3) as u32, (4 + t % 9) as u32, 2 + (t % 4) as u32),
        ]
    }

    #[test]
    fn round_trip_preserves_answers_and_tallies() {
        let (cfg, mut live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let (step, mut warm): (u64, HistApprox) = restore_from_slice(&bytes, &cfg).unwrap();
        assert_eq!(step, 2);
        assert_eq!(warm.oracle_calls(), live.oracle_calls());
        for t in 2..12 {
            let batch = [TimedEdge::new((t % 4) as u32, 40 + t as u32, 5)];
            assert_eq!(warm.step(t, &batch), live.step(t, &batch), "t={t}");
            assert_eq!(warm.oracle_calls(), live.oracle_calls(), "t={t}");
        }
    }

    #[test]
    fn manifest_peek_reports_position_and_kind() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 7);
        let m = peek_manifest(&bytes).unwrap();
        assert_eq!(m.kind, TrackerKind::HistApprox);
        assert_eq!(m.step, 7);
        assert_eq!(m.format_version, FORMAT_VERSION);
        assert_eq!(m.config_hash, config_hash(&cfg));
        assert_eq!(m.snapshot_kind, SnapshotKind::Base);
        assert_eq!(m.parent_id, 0);
        assert_ne!(m.snapshot_id, 0);
    }

    #[test]
    fn config_mismatch_is_loud() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let other = TrackerConfig::new(3, 0.1, 50);
        let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &other));
        assert!(matches!(err, PersistError::ConfigMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_tracker_kind_is_loud() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        let err = expect_err(restore_from_slice::<BasicReduction>(&bytes, &cfg));
        assert!(matches!(err, PersistError::WrongTracker { .. }), "{err}");
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        for cut in 0..bytes.len() {
            let res = restore_from_slice::<HistApprox>(&bytes[..cut], &cfg);
            assert!(
                res.is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_anywhere_fail_the_restore() {
        // Format 3's envelope checksum covers the header too, so *every*
        // byte of the file is protected — including the stream position
        // and snapshot ids, which format 2 could not verify.
        let (cfg, live) = small_hist();
        let bytes = checkpoint_to_vec(&live, &cfg, 2);
        for at in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x5A;
            assert!(
                restore_from_slice::<HistApprox>(&corrupt, &cfg).is_err(),
                "flip at byte {at}/{} restored",
                bytes.len()
            );
        }
    }

    #[test]
    fn hostile_payload_length_is_an_error_not_a_panic() {
        // A corrupt header announcing a near-u64::MAX payload must not
        // overflow the bounds arithmetic (debug panic / release wrap) or
        // reach the slicing code.
        let (cfg, live) = small_hist();
        let mut bytes = checkpoint_to_vec(&live, &cfg, 2);
        for hostile in [u64::MAX, u64::MAX - 7, (bytes.len() as u64) * 2] {
            bytes[29..37].copy_from_slice(&hostile.to_le_bytes());
            let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &cfg));
            assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        }
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        let cfg = TrackerConfig::new(2, 0.1, 50);
        let err = expect_err(restore_from_slice::<HistApprox>(
            b"PNG\x89 not a checkpoint",
            &cfg,
        ));
        assert!(matches!(err, PersistError::BadMagic), "{err}");
        // Craft a header claiming format version 99.
        let (cfg2, live) = small_hist();
        let mut bytes = checkpoint_to_vec(&live, &cfg2, 2);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = expect_err(restore_from_slice::<HistApprox>(&bytes, &cfg2));
        assert!(
            matches!(err, PersistError::UnsupportedVersion { found: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let (cfg, mut live) = small_hist();
        let dir = std::env::temp_dir().join("tdn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.ckpt");
        save_checkpoint(&path, &live, &cfg, 2).unwrap();
        let m = read_manifest(&path).unwrap();
        assert_eq!(m.step, 2);
        let (step, mut warm): (u64, HistApprox) = load_checkpoint(&path, &cfg).unwrap();
        assert_eq!(step, 2);
        let batch = [TimedEdge::new(9u32, 10u32, 3)];
        assert_eq!(warm.step(2, &batch), live.step(2, &batch));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_chain_round_trips_in_memory() {
        let (cfg, mut live) = small_sieve();
        let (base, idx, base_id) = checkpoint_base_to_vec(&live, &cfg, 2);
        live.step(2, &batch_for(2));
        let (d1, idx, d1_id) = checkpoint_delta_to_vec(&live, &cfg, 3, &idx, base_id);
        live.step(3, &batch_for(3));
        let (d2, _, _) = checkpoint_delta_to_vec(&live, &cfg, 4, &idx, d1_id);

        let (step, mut warm): (u64, SieveAdnTracker) =
            restore_from_chain(&[&d2, &d1, &base], &cfg).unwrap();
        assert_eq!(step, 4);
        assert_eq!(warm.oracle_calls(), live.oracle_calls());
        for t in 4..10 {
            assert_eq!(warm.step(t, &batch_for(t)), live.step(t, &batch_for(t)));
            assert_eq!(warm.oracle_calls(), live.oracle_calls(), "t={t}");
        }
    }

    #[test]
    fn lone_delta_is_a_missing_base() {
        let (cfg, mut live) = small_sieve();
        let (_, idx, base_id) = checkpoint_base_to_vec(&live, &cfg, 2);
        live.step(2, &batch_for(2));
        let (delta, _, _) = checkpoint_delta_to_vec(&live, &cfg, 3, &idx, base_id);
        let err = expect_err(restore_from_slice::<SieveAdnTracker>(&delta, &cfg));
        assert!(
            matches!(err, PersistError::MissingBase { snapshot_id } if snapshot_id == base_id),
            "{err}"
        );
        // Same through the chain API with the base omitted.
        let err = expect_err(restore_from_chain::<SieveAdnTracker>(&[&delta], &cfg));
        assert!(matches!(err, PersistError::MissingBase { .. }), "{err}");
    }

    #[test]
    fn broken_linkage_and_cycles_are_typed_errors() {
        let (cfg, mut live) = small_sieve();
        let (base, idx, base_id) = checkpoint_base_to_vec(&live, &cfg, 2);
        live.step(2, &batch_for(2));
        let (d1, idx2, d1_id) = checkpoint_delta_to_vec(&live, &cfg, 3, &idx, base_id);
        live.step(3, &batch_for(3));
        let (d2, _, _) = checkpoint_delta_to_vec(&live, &cfg, 4, &idx2, d1_id);

        // Skipping d1 breaks the parent linkage.
        let err = expect_err(restore_from_chain::<SieveAdnTracker>(&[&d2, &base], &cfg));
        assert!(
            matches!(err, PersistError::MissingBase { snapshot_id } if snapshot_id == d1_id),
            "{err}"
        );
        // A repeated link is a cycle, not an infinite loop.
        let err = expect_err(restore_from_chain::<SieveAdnTracker>(
            &[&d1, &d1, &base],
            &cfg,
        ));
        assert!(
            matches!(
                err,
                PersistError::ChainCycle { .. } | PersistError::MissingBase { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn checkpoint_chain_saves_deltas_and_load_checkpoint_resolves_them() {
        let (cfg, mut live) = small_sieve();
        let dir = std::env::temp_dir().join("tdn_persist_chain_test");
        std::fs::remove_dir_all(&dir).ok();
        // A toy tracker's deltas are nearly base-sized (fixed overhead
        // dominates), which would trip the byte-ratio compaction this test
        // is not about — pin a permissive policy so every follow-up save
        // stays a delta.
        let mut chain = CheckpointChain::new(&dir, "sieve").with_policy(CompactionPolicy {
            max_chain_len: 64,
            max_delta_ratio: 1e9,
        });

        let r0 = chain.save(&live, &cfg, 2).unwrap();
        assert_eq!(r0.kind, SnapshotKind::Base);
        let mut receipts = vec![r0];
        for t in 2..6 {
            live.step(t, &batch_for(t));
            let r = chain.save(&live, &cfg, t + 1).unwrap();
            assert_eq!(r.kind, SnapshotKind::Delta, "t={t}");
            receipts.push(r);
        }
        // Restore from the newest delta; parents resolve by directory scan.
        let tip = receipts.last().unwrap();
        let (step, mut warm): (u64, SieveAdnTracker) = load_checkpoint(&tip.path, &cfg).unwrap();
        assert_eq!(step, 6);
        assert_eq!(warm.oracle_calls(), live.oracle_calls());
        for t in 6..12 {
            assert_eq!(warm.step(t, &batch_for(t)), live.step(t, &batch_for(t)));
        }
        assert_eq!(
            chain.latest_path().unwrap().as_deref(),
            Some(tip.path.as_path())
        );
        // Deleting the base makes the tip unrestorable — loudly.
        std::fs::remove_file(&receipts[0].path).unwrap();
        let err = match load_checkpoint::<SieveAdnTracker>(&tip.path, &cfg) {
            Ok(_) => panic!("restored without its base"),
            Err(e) => e,
        };
        assert!(matches!(err, PersistError::MissingBase { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Test double: fails the first `fail_renames` rename calls.
    struct RenameBomb {
        remaining: std::sync::Mutex<u32>,
    }

    impl CheckpointIo for RenameBomb {
        fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            std::fs::write(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            let mut left = self.remaining.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(std::io::Error::from_raw_os_error(5)); // EIO
            }
            std::fs::rename(from, to)
        }
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            std::fs::read(path)
        }
        fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
            std::fs::create_dir_all(path)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            std::fs::remove_file(path)
        }
    }

    fn dir_names(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn failed_rename_is_typed_and_leaves_no_tmp_debris() {
        let (cfg, live) = small_hist();
        let dir = std::env::temp_dir().join("tdn_persist_rename_bomb");
        std::fs::remove_dir_all(&dir).ok();
        let io = Arc::new(RenameBomb {
            remaining: std::sync::Mutex::new(1),
        });
        let mut chain = CheckpointChain::new(&dir, "h").with_io(io);
        let err = chain.save(&live, &cfg, 2).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        // The tmp was cleaned up on the failure path and no final file
        // exists — the directory holds no trace of the failed save.
        assert!(dir_names(&dir).is_empty(), "{:?}", dir_names(&dir));
        // The chain did not keep a tip pointing at a phantom snapshot: the
        // next save starts a fresh base and succeeds.
        let r = chain.save(&live, &cfg, 2).unwrap();
        assert_eq!(r.kind, SnapshotKind::Base);
        let (step, _): (u64, HistApprox) = load_checkpoint(&r.path, &cfg).unwrap();
        assert_eq!(step, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_cleanup_is_prefix_scoped() {
        let (cfg, live) = small_hist();
        let dir = std::env::temp_dir().join("tdn_persist_tmp_cleanup");
        std::fs::remove_dir_all(&dir).ok();
        let mut chain = CheckpointChain::new(&dir, "a");
        let receipt = chain.save(&live, &cfg, 2).unwrap();
        // Simulate crashes between write and rename for two chains.
        std::fs::write(dir.join("a-00000003-00000000deadbeef.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("b-00000001-00000000cafef00d.tmp"), b"torn").unwrap();

        let removed = chain.clean_stale_tmp().unwrap();
        assert_eq!(removed.len(), 1, "{removed:?}");
        assert_eq!(
            dir_names(&dir),
            vec![
                receipt
                    .path
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned(),
                "b-00000001-00000000cafef00d.tmp".to_string(),
            ],
            "prefix-scoped cleanup touched a foreign chain's tmp"
        );

        // The dir-wide sweep (recovery context: no active writers) takes
        // the rest but never a real checkpoint.
        let removed = clean_stale_tmp(&dir, None).unwrap();
        assert_eq!(removed.len(), 1, "{removed:?}");
        assert_eq!(
            dir_names(&dir),
            vec![receipt
                .path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned()]
        );
        // Cleaning a missing directory reports nothing to do.
        assert!(clean_stale_tmp(Path::new("/nonexistent/tdn"), None)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_policy_forces_fresh_bases() {
        let (cfg, mut live) = small_sieve();
        let dir = std::env::temp_dir().join("tdn_persist_compaction_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut chain = CheckpointChain::new(&dir, "c").with_policy(CompactionPolicy {
            max_chain_len: 2,
            max_delta_ratio: 1e9, // only the length limit can trigger
        });
        let mut kinds = Vec::new();
        for t in 2..10 {
            live.step(t, &batch_for(t));
            kinds.push(chain.save(&live, &cfg, t + 1).unwrap().kind);
        }
        // base, delta, delta, base, delta, delta, ...
        for (i, kind) in kinds.iter().enumerate() {
            let expected = if i % 3 == 0 {
                SnapshotKind::Base
            } else {
                SnapshotKind::Delta
            };
            assert_eq!(*kind, expected, "save {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
