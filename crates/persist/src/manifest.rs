//! The checkpoint manifest header.
//!
//! Every checkpoint file starts with a fixed-layout header that can be
//! parsed without decoding the (much larger) state payload:
//!
//! | field | bytes | contents |
//! |-------|-------|----------|
//! | magic | 8 | `b"TDNCKPT\0"` |
//! | format version | 4 | little-endian `u32`, currently 2 |
//! | tracker kind | 1 | [`TrackerKind`] tag |
//! | config hash | 8 | FNV-1a of the serialized `TrackerConfig` |
//! | stream position | 8 | steps already processed (restore resumes here) |
//! | payload length | 8 | byte length of the state payload |
//!
//! The payload follows, then an 8-byte FNV-1a checksum of the payload.
//! Versioning rule: the version is bumped whenever any snapshot layout
//! changes; readers reject versions they do not understand *before*
//! touching the payload (see `DESIGN.md § Persistence & recovery`).

use crate::error::PersistError;

/// File magic: identifies TDN checkpoints regardless of version.
pub const MAGIC: [u8; 8] = *b"TDNCKPT\0";

/// The format version this build writes and reads. Version 2 added the
/// incremental spread-maintenance engine's state (spread mode tags, spread
/// memos, engine tallies, and the TDN dirty set) to the payload layout.
pub const FORMAT_VERSION: u32 = 2;

/// Which tracker type a checkpoint holds. The tag is part of the on-disk
/// format: restoring a file into the wrong tracker type fails with
/// [`PersistError::WrongTracker`] instead of misinterpreting the payload.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TrackerKind {
    /// [`tdn_core::SieveAdnTracker`] (Alg. 1, addition-only).
    SieveAdn = 1,
    /// [`tdn_core::BasicReduction`] (Alg. 2, `L` staggered instances).
    BasicReduction = 2,
    /// [`tdn_core::HistApprox`] (Alg. 3, compressed histogram).
    HistApprox = 3,
    /// [`tdn_core::RandomTracker`] (§V-C baseline; carries RNG state).
    Random = 4,
}

impl TrackerKind {
    /// Parses a manifest tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(TrackerKind::SieveAdn),
            2 => Some(TrackerKind::BasicReduction),
            3 => Some(TrackerKind::HistApprox),
            4 => Some(TrackerKind::Random),
            _ => None,
        }
    }
}

/// Parsed checkpoint header (everything before the state payload).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// On-disk format version.
    pub format_version: u32,
    /// Tracker type held by the payload.
    pub kind: TrackerKind,
    /// FNV-1a fingerprint of the `TrackerConfig` the run used.
    pub config_hash: u64,
    /// Stream position: number of steps the tracker had processed when the
    /// checkpoint was taken. A restored run resumes feeding at this index.
    pub step: u64,
    /// Byte length of the state payload that follows the header.
    pub payload_len: u64,
}

impl Manifest {
    /// Serializes the header.
    pub(crate) fn write(&self, w: &mut codec::Writer) {
        for b in MAGIC {
            w.put_u8(b);
        }
        w.put_u32(self.format_version);
        w.put_u8(self.kind as u8);
        w.put_u64(self.config_hash);
        w.put_u64(self.step);
        w.put_u64(self.payload_len);
    }

    /// Parses and validates a header: magic first, then version, then the
    /// kind tag — so the most actionable error wins when several things are
    /// wrong at once.
    pub(crate) fn read(r: &mut codec::Reader<'_>) -> Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        for slot in &mut magic {
            *slot = r.get_u8().map_err(|_| PersistError::BadMagic)?;
        }
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let format_version = r.get_u32()?;
        if format_version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }
        let tag = r.get_u8()?;
        let config_hash = r.get_u64()?;
        let step = r.get_u64()?;
        let payload_len = r.get_u64()?;
        let kind = TrackerKind::from_tag(tag).ok_or(PersistError::Corrupt(
            codec::CodecError::Invalid("unknown tracker kind tag"),
        ))?;
        Ok(Manifest {
            format_version,
            kind,
            config_hash,
            step,
            payload_len,
        })
    }
}
