//! The checkpoint manifest header.
//!
//! Every checkpoint file starts with a fixed-layout header that can be
//! parsed without decoding the (much larger) state payload. The format-3
//! layout:
//!
//! | field | bytes | offset | contents |
//! |-------|-------|--------|----------|
//! | magic | 8 | 0 | `b"TDNCKPT\0"` |
//! | format version | 4 | 8 | little-endian `u32`, currently 3 |
//! | tracker kind | 1 | 12 | [`TrackerKind`] tag |
//! | config hash | 8 | 13 | FNV-1a of the serialized `TrackerConfig` |
//! | stream position | 8 | 21 | steps already processed (restore resumes here) |
//! | payload length | 8 | 29 | byte length of the state payload |
//! | snapshot kind | 1 | 37 | [`SnapshotKind`] tag (base or delta) |
//! | snapshot id | 8 | 38 | content-derived identity of this snapshot |
//! | parent id | 8 | 46 | snapshot id of the delta's parent (0 for a base) |
//! | reserved | 10 | 54 | zero padding to a 64-byte header |
//!
//! The payload follows at byte 64 (8-byte aligned, so the sectioned
//! container's aligned word runs stay aligned in the file), then an 8-byte
//! FNV-1a checksum covering the **header and payload** together — unlike
//! format 2, a bit flip anywhere in the header (stream position, snapshot
//! ids, reserved bytes) fails the restore instead of silently changing
//! resume metadata. Format-2 files — a 37-byte header followed immediately
//! by a monolithic payload and a payload-only checksum — remain readable:
//! the shared prefix through `payload length` is byte-identical across
//! both versions, and a v2 file parses as an implicit base snapshot with
//! zeroed snapshot/parent ids.
//!
//! Versioning rule: the version is bumped whenever any snapshot layout
//! changes; readers reject versions they do not understand *before*
//! touching the payload (see `DESIGN.md § Scale-ready persistence`).

use crate::error::PersistError;

/// File magic: identifies TDN checkpoints regardless of version.
pub const MAGIC: [u8; 8] = *b"TDNCKPT\0";

/// The format version this build writes. Version 3 introduced sectioned
/// payloads (per-section checksums behind a table of contents) and the
/// base + delta snapshot model; version 2 files (monolithic payload) are
/// still read. Version 2 added the incremental spread-maintenance engine's
/// state to the payload layout.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version this build still reads.
pub const MIN_READ_VERSION: u32 = 2;

/// Byte offset of the payload in a format-3 file (the header is padded to
/// 64 bytes so aligned word runs inside the sectioned payload stay
/// 8-byte aligned on disk).
pub const V3_PAYLOAD_OFFSET: usize = 64;

/// Byte offset of the payload in a format-2 file (header was 37 bytes,
/// payload followed immediately).
pub const V2_PAYLOAD_OFFSET: usize = 37;

/// Which tracker type a checkpoint holds. The tag is part of the on-disk
/// format: restoring a file into the wrong tracker type fails with
/// [`PersistError::WrongTracker`] instead of misinterpreting the payload.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TrackerKind {
    /// [`tdn_core::SieveAdnTracker`] (Alg. 1, addition-only).
    SieveAdn = 1,
    /// [`tdn_core::BasicReduction`] (Alg. 2, `L` staggered instances).
    BasicReduction = 2,
    /// [`tdn_core::HistApprox`] (Alg. 3, compressed histogram).
    HistApprox = 3,
    /// [`tdn_core::RandomTracker`] (§V-C baseline; carries RNG state).
    Random = 4,
}

impl TrackerKind {
    /// Parses a manifest tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(TrackerKind::SieveAdn),
            2 => Some(TrackerKind::BasicReduction),
            3 => Some(TrackerKind::HistApprox),
            4 => Some(TrackerKind::Random),
            _ => None,
        }
    }
}

/// Whether a checkpoint is self-contained or references a parent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SnapshotKind {
    /// Self-contained: every section's payload is inline. Format-2 files
    /// are implicitly bases.
    Base = 1,
    /// Sections unchanged since the parent snapshot are stored as
    /// `(length, checksum)` references; restoring needs the parent chain.
    Delta = 2,
}

impl SnapshotKind {
    /// Parses a manifest tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SnapshotKind::Base),
            2 => Some(SnapshotKind::Delta),
            _ => None,
        }
    }
}

/// Parsed checkpoint header (everything before the state payload).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// On-disk format version.
    pub format_version: u32,
    /// Tracker type held by the payload.
    pub kind: TrackerKind,
    /// FNV-1a fingerprint of the `TrackerConfig` the run used.
    pub config_hash: u64,
    /// Stream position: number of steps the tracker had processed when the
    /// checkpoint was taken. A restored run resumes feeding at this index.
    pub step: u64,
    /// Byte length of the state payload that follows the header.
    pub payload_len: u64,
    /// Base or delta. Format-2 files parse as [`SnapshotKind::Base`].
    pub snapshot_kind: SnapshotKind,
    /// Content-derived identity: FNV-1a over (payload checksum, step,
    /// parent id). Zero for format-2 files, which predate snapshot ids.
    pub snapshot_id: u64,
    /// For a delta, the [`Manifest::snapshot_id`] of its parent; zero for a
    /// base.
    pub parent_id: u64,
}

impl Manifest {
    /// Serializes the header in the format-3 layout (64 bytes).
    pub(crate) fn write(&self, w: &mut codec::Writer) {
        debug_assert_eq!(self.format_version, FORMAT_VERSION);
        for b in MAGIC {
            w.put_u8(b);
        }
        w.put_u32(self.format_version);
        w.put_u8(self.kind as u8);
        w.put_u64(self.config_hash);
        w.put_u64(self.step);
        w.put_u64(self.payload_len);
        w.put_u8(self.snapshot_kind as u8);
        w.put_u64(self.snapshot_id);
        w.put_u64(self.parent_id);
        for _ in 0..(V3_PAYLOAD_OFFSET - 54) {
            w.put_u8(0);
        }
    }

    /// Parses and validates a header: magic first, then version, then the
    /// kind tag — so the most actionable error wins when several things are
    /// wrong at once. Accepts formats 2 and 3; a v2 header yields an
    /// implicit base with zeroed snapshot ids.
    pub(crate) fn read(r: &mut codec::Reader<'_>) -> Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        for slot in &mut magic {
            *slot = r.get_u8().map_err(|_| PersistError::BadMagic)?;
        }
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let format_version = r.get_u32()?;
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&format_version) {
            return Err(PersistError::UnsupportedVersion {
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }
        let tag = r.get_u8()?;
        let config_hash = r.get_u64()?;
        let step = r.get_u64()?;
        let payload_len = r.get_u64()?;
        let kind = TrackerKind::from_tag(tag).ok_or(PersistError::Corrupt(
            codec::CodecError::Invalid("unknown tracker kind tag"),
        ))?;
        let (snapshot_kind, snapshot_id, parent_id) = if format_version >= 3 {
            let kind_tag = r.get_u8()?;
            let snapshot_kind = SnapshotKind::from_tag(kind_tag).ok_or(PersistError::Corrupt(
                codec::CodecError::Invalid("unknown snapshot kind tag"),
            ))?;
            let snapshot_id = r.get_u64()?;
            let parent_id = r.get_u64()?;
            for _ in 0..(V3_PAYLOAD_OFFSET - 54) {
                r.get_u8()?;
            }
            (snapshot_kind, snapshot_id, parent_id)
        } else {
            (SnapshotKind::Base, 0, 0)
        };
        if snapshot_kind == SnapshotKind::Base && parent_id != 0 {
            return Err(PersistError::Corrupt(codec::CodecError::Invalid(
                "base snapshot carries a parent id",
            )));
        }
        Ok(Manifest {
            format_version,
            kind,
            config_hash,
            step,
            payload_len,
            snapshot_kind,
            snapshot_id,
            parent_id,
        })
    }
}
