//! The filesystem boundary of the persistence layer.
//!
//! Every byte the checkpoint subsystem moves to or from disk goes through
//! a [`CheckpointIo`] implementation. Production code uses [`StdIo`]
//! (plain `std::fs`); the fault-injection harness (`tdn-faults`) swaps in
//! an adapter that fails seeded operations with `EIO`/`ENOSPC`, tears
//! writes mid-buffer, or drops the rename of an atomic write — which is
//! how the chaos suite proves that the recovery paths survive a hostile
//! disk without the tests ever touching a real bad device.
//!
//! The trait covers exactly the operations the save/cleanup paths
//! perform. Read-side hardening does not need injection hooks: corrupt
//! *contents* are exercised directly by writing damaged files (see
//! `tests/corrupt_inputs.rs`), and a failed read is already a typed
//! [`PersistError::Io`](crate::PersistError::Io).

use std::io;
use std::path::Path;

/// The file operations the checkpoint layer performs, virtualized so
/// tests can make any of them fail deterministically.
pub trait CheckpointIo: Send + Sync {
    /// Writes `bytes` to `path`, replacing any existing file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates `path` and any missing ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production implementation: plain `std::fs`, no interception.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdIo;

impl CheckpointIo for StdIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}
