//! Fuzz-style corrupt-input sweep for the chain restore path.
//!
//! A server restoring an untrusted checkpoint chain must never panic —
//! every truncation, bit flip, splice, or shuffle has to surface as a
//! typed [`PersistError`]. These tests feed systematically and
//! pseudo-randomly damaged chain files through [`restore_from_chain`]
//! (and the single-file path) and assert that the result is always an
//! `Err`: a panic anywhere in the envelope validation, section
//! resolution, or tracker decode stack fails the test harness itself,
//! so a pass certifies the whole restore path panic-free on these
//! inputs.
//!
//! The damage generator is a deterministic xorshift so failures
//! reproduce exactly; no wall-clock or OS randomness is involved.

use tdn_core::{BasicReduction, HistApprox, InfluenceTracker, SieveAdnTracker, TrackerConfig};
use tdn_persist::{
    checkpoint_base_to_vec, checkpoint_delta_to_vec, restore_from_chain, restore_from_slice,
    PersistError,
};
use tdn_streams::TimedEdge;

/// Deterministic xorshift64* for reproducible fuzz cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn batch_for(t: u64) -> Vec<TimedEdge> {
    vec![
        TimedEdge::new((t % 7) as u32, (9 + t % 13) as u32, 1 + (t % 5) as u32),
        TimedEdge::new((t % 4) as u32, (5 + t % 11) as u32, 2 + (t % 6) as u32),
    ]
}

/// A 3-link chain (delta → delta → base) for a SIEVEADN tracker.
fn sieve_chain() -> (TrackerConfig, Vec<Vec<u8>>) {
    let cfg = TrackerConfig::new(2, 0.2, 50);
    let mut t = SieveAdnTracker::new(&cfg);
    t.step(0, &batch_for(0));
    t.step(1, &batch_for(1));
    let (base, idx, base_id) = checkpoint_base_to_vec(&t, &cfg, 2);
    t.step(2, &batch_for(2));
    let (d1, idx, d1_id) = checkpoint_delta_to_vec(&t, &cfg, 3, &idx, base_id);
    t.step(3, &batch_for(3));
    let (d2, _, _) = checkpoint_delta_to_vec(&t, &cfg, 4, &idx, d1_id);
    (cfg, vec![d2, d1, base])
}

fn restore_sieve(links: &[Vec<u8>], cfg: &TrackerConfig) -> Result<(), PersistError> {
    let refs: Vec<&[u8]> = links.iter().map(Vec::as_slice).collect();
    restore_from_chain::<SieveAdnTracker>(&refs, cfg).map(|_| ())
}

#[test]
fn pristine_chain_restores() {
    // Control: the undamaged chain must restore, or every assertion
    // below is vacuous.
    let (cfg, links) = sieve_chain();
    assert!(restore_sieve(&links, &cfg).is_ok());
}

#[test]
fn every_single_link_truncation_is_a_typed_error() {
    let (cfg, links) = sieve_chain();
    for li in 0..links.len() {
        for cut in 0..links[li].len() {
            let mut damaged = links.clone();
            damaged[li] = damaged[li][..cut].to_vec();
            assert!(
                restore_sieve(&damaged, &cfg).is_err(),
                "link {li} truncated to {cut}/{} bytes restored",
                links[li].len()
            );
        }
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error() {
    // Exhaustive over every byte of every link: the envelope checksum
    // covers header + payload, so no flipped byte may survive.
    let (cfg, links) = sieve_chain();
    for li in 0..links.len() {
        for at in 0..links[li].len() {
            let mut damaged = links.clone();
            damaged[li][at] ^= 0xA7;
            assert!(
                restore_sieve(&damaged, &cfg).is_err(),
                "flip at link {li} byte {at} restored"
            );
        }
    }
}

#[test]
fn random_multi_site_damage_never_panics() {
    // 600 seeded cases, each flipping 2–9 bytes and possibly truncating
    // one link — the combinations single-site sweeps cannot reach.
    let (cfg, links) = sieve_chain();
    let mut rng = Rng(0x00DE_FACE_D05E_ED01);
    for case in 0..600u32 {
        let mut damaged = links.clone();
        let flips = 2 + rng.below(8);
        for _ in 0..flips {
            let li = rng.below(damaged.len());
            if damaged[li].is_empty() {
                continue;
            }
            let at = rng.below(damaged[li].len());
            damaged[li][at] ^= (1 << rng.below(8)) as u8;
        }
        if rng.below(4) == 0 {
            let li = rng.below(damaged.len());
            let cut = rng.below(damaged[li].len() + 1);
            damaged[li].truncate(cut);
        }
        // Damaged chains must error; the astronomically unlikely case
        // where the flips cancel out would restore — treat an Ok as
        // suspicious and verify it is byte-identical to the original.
        if restore_sieve(&damaged, &cfg).is_ok() {
            assert_eq!(damaged, links, "case {case}: damaged chain restored");
        }
    }
}

#[test]
fn shuffled_spliced_and_foreign_chains_error() {
    let (cfg, links) = sieve_chain();
    let (d2, d1, base) = (&links[0], &links[1], &links[2]);

    // Reversed order: base first is not a valid tip-first chain.
    assert!(restore_sieve(&[base.clone(), d1.clone(), d2.clone()], &cfg).is_err());
    // Duplicated link: a cycle, not an infinite loop.
    assert!(restore_sieve(&[d2.clone(), d1.clone(), d1.clone(), base.clone()], &cfg).is_err());
    // Missing middle link breaks parent linkage.
    assert!(restore_sieve(&[d2.clone(), base.clone()], &cfg).is_err());
    // Empty chain and empty links.
    assert!(restore_sieve(&[], &cfg).is_err());
    assert!(restore_sieve(&[Vec::new()], &cfg).is_err());
    assert!(restore_sieve(&[d2.clone(), Vec::new(), base.clone()], &cfg).is_err());

    // Splicing a *different tracker's* base under our deltas must fail
    // the kind check, not decode garbage.
    let hcfg = TrackerConfig::new(2, 0.2, 50);
    let mut h = HistApprox::new(&hcfg);
    h.step(0, &batch_for(0));
    let (hbase, _, _) = checkpoint_base_to_vec(&h, &hcfg, 1);
    assert!(restore_sieve(&[d2.clone(), d1.clone(), hbase.clone()], &cfg).is_err());
    // And a wholly foreign blob anywhere in the chain.
    let foreign = b"GIF89a definitely not a checkpoint".to_vec();
    assert!(restore_sieve(&[foreign.clone(), d1.clone(), base.clone()], &cfg).is_err());
    assert!(restore_sieve(&[d2.clone(), foreign, base.clone()], &cfg).is_err());
}

#[test]
fn single_file_restore_survives_random_damage_for_every_tracker() {
    // The same sweep through `restore_from_slice` for each persisted
    // tracker family, so per-tracker `read_state`/`read_sections`
    // decoders get corrupt bytes too (BasicReduction/HistApprox do not
    // override the sectioned hooks). Every damaged prefix is strictly
    // shorter than the original, so restore can never legitimately
    // succeed — any `Ok` (or panic) is a failure.
    fn sweep<T: tdn_persist::Persist>(
        bytes: &[u8],
        cfg: &TrackerConfig,
        rng: &mut Rng,
        label: &str,
    ) {
        for cut in 0..bytes.len() {
            let mut damaged = bytes[..cut].to_vec();
            if !damaged.is_empty() {
                let at = rng.below(damaged.len());
                damaged[at] ^= 0x3C;
            }
            assert!(
                restore_from_slice::<T>(&damaged, cfg).is_err(),
                "{label}: damaged prefix {cut}/{} restored",
                bytes.len()
            );
        }
    }

    let cfg = TrackerConfig::new(2, 0.15, 20);
    let mut rng = Rng(0xBAD5_EED5_0F0F_0F0F);
    let mut s = SieveAdnTracker::new(&cfg);
    s.step(0, &batch_for(0));
    sweep::<SieveAdnTracker>(
        &checkpoint_base_to_vec(&s, &cfg, 1).0,
        &cfg,
        &mut rng,
        "sieve",
    );
    let mut b = BasicReduction::new(&cfg);
    b.step(0, &batch_for(0));
    sweep::<BasicReduction>(
        &checkpoint_base_to_vec(&b, &cfg, 1).0,
        &cfg,
        &mut rng,
        "basic",
    );
    let mut h = HistApprox::new(&cfg);
    h.step(0, &batch_for(0));
    sweep::<HistApprox>(
        &checkpoint_base_to_vec(&h, &cfg, 1).0,
        &cfg,
        &mut rng,
        "hist",
    );
}
