//! Experiment scale presets.
//!
//! `full` follows the paper's parameters (5 000–10 000 steps, full sweeps);
//! `quick` shrinks horizons and sweeps for CI-class machines while keeping
//! every qualitative comparison intact.

/// Knobs controlling experiment size.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Steps for Fig. 7 (BasicReduction is the expensive tracker there).
    pub steps_fig7: u64,
    /// Steps for Figs. 8–10.
    pub steps_main: u64,
    /// Steps for the Fig. 11/12 parameter sweeps (many (k, L) points).
    pub steps_sweep: u64,
    /// Steps for Figs. 13–14 (RIS baselines rebuild per step).
    pub steps_ris: u64,
    /// Arrival windows for the `scale` persistence/memory experiment
    /// (each window is one dense batch; see `experiments::scale`).
    pub steps_persist: u64,
    /// Forget probabilities for Fig. 7's sweep.
    pub p_values: Vec<f64>,
    /// Budgets for Fig. 11's sweep.
    pub k_values: Vec<usize>,
    /// Lifetime caps for Fig. 12's sweep.
    pub l_values: Vec<u32>,
    /// Budgets for Figs. 13–14's k sweep.
    pub k_values_ris: Vec<usize>,
    /// Lifetime caps for Figs. 13–14's L sweep.
    pub l_values_ris: Vec<u32>,
    /// RR-pool cap for IMM/TIM+.
    pub max_rr: usize,
    /// DIM's sketch parameter β (§V-C uses 32).
    pub dim_beta: usize,
    /// Tenants hosted by the `serve` experiment.
    pub serve_tenants: u32,
    /// Firehose ticks for the `serve` experiment.
    pub serve_ticks: u64,
    /// Mean batch size of the busiest `serve` tenant (tail Zipf-decays).
    pub serve_events_per_tick: u32,
    /// Floor on total `serve` firehose events (the run fails below it, so
    /// the load test cannot shrink into vacuity; ≥ 1M at full scale).
    pub serve_min_events: u64,
    /// Tenants hosted by the `chaos` fault-injection experiment.
    pub chaos_tenants: u32,
    /// Firehose ticks for the `chaos` experiment.
    pub chaos_ticks: u64,
    /// Mean batch size of the busiest `chaos` tenant.
    pub chaos_events_per_tick: u32,
    /// Floor on seeded fault events the `chaos` storm must inject (the
    /// run fails below it, so the chaos test cannot shrink into vacuity).
    pub chaos_min_faults: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Paper-scale settings.
    pub fn full() -> Self {
        Scale {
            steps_fig7: 5_000,
            steps_main: 5_000,
            steps_sweep: 2_500,
            steps_ris: 2_000,
            steps_persist: 128,
            p_values: vec![0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008],
            k_values: (1..=10).map(|i| i * 10).collect(),
            l_values: (1..=10).map(|i| i * 10_000).collect(),
            k_values_ris: vec![10, 20, 30, 40, 50],
            l_values_ris: vec![10_000, 20_000, 30_000, 40_000, 50_000],
            max_rr: 10_000,
            dim_beta: 32,
            serve_tenants: 600,
            serve_ticks: 4_000,
            serve_events_per_tick: 28,
            serve_min_events: 1_000_000,
            chaos_tenants: 96,
            chaos_ticks: 600,
            chaos_events_per_tick: 10,
            chaos_min_faults: 1_000,
            seed: 42,
        }
    }

    /// CI-scale settings (minutes, not hours).
    pub fn quick() -> Self {
        Scale {
            steps_fig7: 800,
            steps_main: 1_000,
            steps_sweep: 600,
            steps_ris: 300,
            steps_persist: 48,
            p_values: vec![0.001, 0.002, 0.004, 0.008],
            k_values: vec![10, 30, 50, 70, 100],
            l_values: vec![10_000, 40_000, 70_000, 100_000],
            k_values_ris: vec![10, 30, 50],
            l_values_ris: vec![10_000, 30_000, 50_000],
            max_rr: 2_000,
            dim_beta: 32,
            serve_tenants: 40,
            serve_ticks: 120,
            serve_events_per_tick: 8,
            serve_min_events: 1_000,
            chaos_tenants: 24,
            chaos_ticks: 160,
            chaos_events_per_tick: 6,
            chaos_min_faults: 200,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.steps_main < f.steps_main);
        assert!(q.steps_persist < f.steps_persist);
        assert!(q.p_values.len() <= f.p_values.len());
        assert!(q.max_rr < f.max_rr);
        assert!(q.serve_min_events < f.serve_min_events);
        assert!(q.chaos_min_faults < f.chaos_min_faults);
        assert!(
            q.chaos_min_faults >= 200,
            "quick chaos storm still injects >= 200 faults"
        );
        assert!(
            f.serve_min_events >= 1_000_000,
            "full serve run is >= 1M events"
        );
        assert_eq!(q.dim_beta, 32, "quick keeps the paper's beta");
    }

    #[test]
    fn full_matches_paper_sweeps() {
        let f = Scale::full();
        assert_eq!(f.p_values.len(), 8);
        assert_eq!(f.k_values, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(f.dim_beta, 32);
    }
}
