//! Fig. 7 — BASICREDUCTION vs HISTAPPROX on the two LBSN datasets:
//! (a/c) average solution value and (b/d) total oracle calls as the
//! lifetime skew `p` varies (ε = 0.1, k = 10, L = 1000, Geo(p) lifetimes).
//!
//! Expected shape (paper): HISTAPPROX's value ratio to BASICREDUCTION stays
//! above 0.98 while using < 0.1× the oracle calls; BASICREDUCTION's call
//! count falls as `p` grows (short lifetimes fan out to fewer instances).

use crate::driver::{run_tracker, PreparedStream, RunLog};
use crate::report::{f, print_table, CsvWriter};
use crate::scale::Scale;
use std::path::Path;
use tdn_core::{BasicReduction, HistApprox, TrackerConfig};
use tdn_streams::Dataset;

const L: u32 = 1_000;
const K: usize = 10;
const EPS: f64 = 0.1;

/// One `(dataset, p)` cell of Fig. 7.
pub struct Cell {
    /// Dataset slug.
    pub dataset: &'static str,
    /// Forget probability.
    pub p: f64,
    /// BASICREDUCTION measurements.
    pub basic: RunLog,
    /// HISTAPPROX measurements.
    pub hist: RunLog,
}

/// Runs the sweep (library entry so tests and benches reuse it).
pub fn sweep(scale: &Scale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for dataset in [Dataset::Brightkite, Dataset::Gowalla] {
        for &p in &scale.p_values {
            let stream = PreparedStream::geometric(dataset, scale.seed, p, L, scale.steps_fig7);
            let cfg = TrackerConfig::new(K, EPS, L);
            let mut basic = BasicReduction::new(&cfg);
            let mut hist = HistApprox::new(&cfg);
            cells.push(Cell {
                dataset: dataset.slug(),
                p,
                basic: run_tracker(&mut basic, &stream),
                hist: run_tracker(&mut hist, &stream),
            });
        }
    }
    cells
}

/// Runs Fig. 7 and writes `fig7.csv`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let cells = sweep(scale);
    let mut csv = CsvWriter::create(
        out_dir,
        "fig7",
        &[
            "dataset",
            "p",
            "algo",
            "mean_value",
            "oracle_calls",
            "wall_secs",
        ],
    )?;
    let mut rows = Vec::new();
    for c in &cells {
        for log in [&c.basic, &c.hist] {
            csv.row(&[
                c.dataset.to_string(),
                format!("{}", c.p),
                log.name.clone(),
                f(log.mean_value()),
                log.total_calls().to_string(),
                f(log.wall_secs),
            ])?;
        }
        rows.push(vec![
            c.dataset.to_string(),
            format!("{}", c.p),
            f(c.hist.mean_value() / c.basic.mean_value().max(1e-9)),
            f(c.hist.total_calls() as f64 / c.basic.total_calls().max(1) as f64),
        ]);
    }
    csv.finish()?;
    print_table(
        "Fig. 7: HistApprox vs BasicReduction (value ratio, call ratio)",
        &["dataset", "p", "value ratio", "call ratio"],
        &rows,
    );
    Ok(())
}
