//! Experiment runners, one per table/figure of the paper plus ablations.
//! See DESIGN.md §6 for the per-experiment index.

pub mod ablations;
pub mod chaos;
pub mod fig11_12;
pub mod fig13_14;
pub mod fig7;
pub mod fig8_10;
pub mod flatgraph;
pub mod hotpath;
pub mod restore;
pub mod scale;
pub mod serve;
pub mod sketch;
pub mod table1;
pub mod throughput;
pub mod widetrav;
