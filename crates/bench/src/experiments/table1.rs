//! Table I — interaction dataset summary, regenerated from the synthetic
//! presets and printed side by side with the paper's reported numbers.

use crate::report::{print_table, CsvWriter};
use std::path::Path;
use tdn_streams::{dataset_stats, Dataset};

/// Runs the Table I statistics scan and writes `table1.csv`.
pub fn run(out_dir: &Path) -> std::io::Result<()> {
    let mut csv = CsvWriter::create(
        out_dir,
        "table1",
        &[
            "dataset",
            "nodes",
            "src_nodes",
            "dst_nodes",
            "interactions",
            "distinct_pairs",
            "paper_nodes",
            "paper_interactions",
        ],
    )?;
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let events = d.table1_events();
        let stats = dataset_stats(d.stream(42), events);
        let (paper_nodes, paper_inter) = d.paper_stats();
        rows.push(vec![
            d.slug().to_string(),
            stats.nodes.to_string(),
            stats.src_nodes.to_string(),
            stats.dst_nodes.to_string(),
            stats.interactions.to_string(),
            stats.distinct_pairs.to_string(),
            paper_nodes.to_string(),
            paper_inter.to_string(),
        ]);
        csv.row(&rows.last().expect("just pushed").clone())?;
    }
    csv.finish()?;
    print_table(
        "Table I: interaction datasets (generated vs paper)",
        &[
            "dataset",
            "nodes",
            "src",
            "dst",
            "interactions",
            "pairs",
            "paper nodes",
            "paper interactions",
        ],
        &rows,
    );
    Ok(())
}
