//! Ablations beyond the paper's figures, for the design choices DESIGN.md
//! calls out:
//!
//! * **refeed** — HISTAPPROX with/without the §IV-remark query-time refeed
//!   that upgrades `(1/3 − ε)` to `(1/2 − ε)`;
//! * **window vs decay** — Example 1's "Alice" scenario: a long-standing
//!   influencer goes quiet; sliding-window lifetimes forget her abruptly
//!   while geometric decay (same mean) retains her;
//! * **lazy** — CELF lazy evaluation vs eager greedy oracle-call counts;
//! * **prune** — the singleton-value threshold prune in SIEVEADN: identical
//!   solutions, fewer oracle calls.

use crate::driver::{run_tracker, PreparedStream};
use crate::report::{f, print_table, CsvWriter};
use crate::scale::Scale;
use std::path::Path;
use tdn_core::{GreedyTracker, HistApprox, InfluenceObjective, InfluenceTracker, TrackerConfig};
use tdn_graph::{NodeId, Time};
use tdn_streams::{ConstantLifetime, Dataset, GeometricLifetime, Interaction};
use tdn_submodular::{eager_greedy, lazy_greedy, OracleCounter};

/// Example 1's scenario: Alice (node 0) is re-tweeted steadily except
/// during a quiet window; background chatter churns around her.
pub fn alice_stream(steps: u64, quiet_start: Time, quiet_end: Time) -> Vec<Interaction> {
    let mut out = Vec::new();
    for t in 0..steps {
        // Background: a rotating pair of minor interactions.
        let a = 100 + (t * 13 % 50) as u32;
        let b = 200 + (t * 29 % 150) as u32;
        out.push(Interaction::new(a, b, t));
        // Alice gets re-tweeted twice every third step, unless quiet.
        if t % 3 == 0 && !(quiet_start..quiet_end).contains(&t) {
            out.push(Interaction::new(0u32, 300 + (t * 7 % 120) as u32, t));
            out.push(Interaction::new(0u32, 300 + (t * 11 % 120) as u32, t));
        }
    }
    out
}

fn alice_presence(
    stream: &PreparedStream,
    quiet_start: Time,
    quiet_end: Time,
    cfg: &TrackerConfig,
) -> f64 {
    let mut tracker = HistApprox::new(cfg);
    let mut present = 0u64;
    let mut total = 0u64;
    for (t, batch) in &stream.steps {
        let sol = tracker.step(*t, batch);
        if (quiet_start..quiet_end).contains(t) {
            total += 1;
            if sol.seeds.contains(&NodeId(0)) {
                present += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        present as f64 / total as f64
    }
}

/// Window-vs-decay ablation (Example 1).
pub fn run_window(out_dir: &Path, _scale: &Scale) -> std::io::Result<()> {
    let steps = 600u64;
    let (qs, qe) = (300u64, 420u64);
    let events = alice_stream(steps, qs, qe);
    let window_w = 60u32;
    // Same mean lifetime for both policies: W vs Geo(1/W).
    let windowed =
        PreparedStream::with_assigner(events.iter().copied(), ConstantLifetime(window_w), steps);
    let decayed = PreparedStream::with_assigner(
        events.iter().copied(),
        GeometricLifetime::new(1.0 / window_w as f64, 100_000, 7),
        steps,
    );
    let cfg = TrackerConfig::new(3, 0.1, 100_000);
    let p_window = alice_presence(&windowed, qs, qe, &cfg);
    let p_decay = alice_presence(&decayed, qs, qe, &cfg);
    let mut csv = CsvWriter::create(
        out_dir,
        "ablation_window",
        &["policy", "alice_presence_during_quiet"],
    )?;
    csv.row(&["sliding_window".into(), f(p_window)])?;
    csv.row(&["geometric_decay".into(), f(p_decay)])?;
    csv.finish()?;
    print_table(
        "Ablation (Example 1): Alice retained during her quiet period?",
        &["policy", "presence fraction"],
        &[
            vec!["sliding_window".into(), f(p_window)],
            vec!["geometric_decay".into(), f(p_decay)],
        ],
    );
    Ok(())
}

/// Refeed ablation (§IV remark).
pub fn run_refeed(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let mut csv = CsvWriter::create(
        out_dir,
        "ablation_refeed",
        &["dataset", "variant", "mean_value", "oracle_calls"],
    )?;
    let mut rows = Vec::new();
    for dataset in [Dataset::Brightkite, Dataset::TwitterHk] {
        let stream = PreparedStream::geometric(dataset, scale.seed, 0.002, 1_000, scale.steps_fig7);
        let cfg = TrackerConfig::new(10, 0.1, 1_000);
        let mut plain = HistApprox::new(&cfg);
        let mut refeed = HistApprox::new(&cfg).with_refeed();
        let lp = run_tracker(&mut plain, &stream);
        let lr = run_tracker(&mut refeed, &stream);
        for log in [&lp, &lr] {
            csv.row(&[
                dataset.slug().to_string(),
                if std::ptr::eq(log, &lr) {
                    "refeed"
                } else {
                    "plain"
                }
                .to_string(),
                f(log.mean_value()),
                log.total_calls().to_string(),
            ])?;
        }
        rows.push(vec![
            dataset.slug().to_string(),
            f(lp.mean_value()),
            f(lr.mean_value()),
            f(lr.total_calls() as f64 / lp.total_calls().max(1) as f64),
        ]);
    }
    csv.finish()?;
    print_table(
        "Ablation (§IV remark): refeed variant",
        &["dataset", "plain value", "refeed value", "call overhead"],
        &rows,
    );
    Ok(())
}

/// CELF-vs-eager greedy ablation.
pub fn run_lazy(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let stream = PreparedStream::geometric(Dataset::Gowalla, scale.seed, 0.001, 10_000, 800);
    let cfg = TrackerConfig::new(10, 0.1, 10_000);
    let mut greedy = GreedyTracker::new(&cfg);
    for (t, batch) in &stream.steps {
        greedy.step(*t, batch);
    }
    // Compare lazy vs eager on the final graph snapshot.
    let graph = greedy.graph();
    let candidates: Vec<NodeId> = graph.live_nodes().iter().collect();
    let lazy_counter = OracleCounter::new();
    let mut lazy_obj = InfluenceObjective::new(graph, lazy_counter.clone());
    let lazy_res = lazy_greedy(&mut lazy_obj, candidates.iter().copied(), 10);
    let eager_counter = OracleCounter::new();
    let mut eager_obj = InfluenceObjective::new(graph, eager_counter.clone());
    let eager_res = eager_greedy(&mut eager_obj, &candidates, 10);
    assert_eq!(
        lazy_res.value, eager_res.value,
        "CELF must not change values"
    );
    let mut csv = CsvWriter::create(
        out_dir,
        "ablation_lazy",
        &["variant", "value", "oracle_calls"],
    )?;
    csv.row(&[
        "celf".into(),
        f(lazy_res.value),
        lazy_counter.get().to_string(),
    ])?;
    csv.row(&[
        "eager".into(),
        f(eager_res.value),
        eager_counter.get().to_string(),
    ])?;
    csv.finish()?;
    print_table(
        "Ablation: CELF lazy evaluation vs eager greedy",
        &["variant", "value", "oracle calls"],
        &[
            vec![
                "celf".into(),
                f(lazy_res.value),
                lazy_counter.get().to_string(),
            ],
            vec![
                "eager".into(),
                f(eager_res.value),
                eager_counter.get().to_string(),
            ],
        ],
    );
    Ok(())
}

/// Singleton-prune ablation: same answers, fewer oracle calls.
pub fn run_prune(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let stream = PreparedStream::geometric(Dataset::Brightkite, scale.seed, 0.002, 1_000, 800);
    let cfg_on = TrackerConfig::new(10, 0.1, 1_000);
    let cfg_off = cfg_on.clone().without_singleton_prune();
    let mut on = HistApprox::new(&cfg_on);
    let mut off = HistApprox::new(&cfg_off);
    let lon = run_tracker(&mut on, &stream);
    let loff = run_tracker(&mut off, &stream);
    assert_eq!(lon.values, loff.values, "prune must be value-preserving");
    let mut csv = CsvWriter::create(
        out_dir,
        "ablation_prune",
        &["variant", "mean_value", "oracle_calls"],
    )?;
    csv.row(&[
        "prune_on".into(),
        f(lon.mean_value()),
        lon.total_calls().to_string(),
    ])?;
    csv.row(&[
        "prune_off".into(),
        f(loff.mean_value()),
        loff.total_calls().to_string(),
    ])?;
    csv.finish()?;
    print_table(
        "Ablation: singleton-value threshold prune",
        &["variant", "mean value", "oracle calls"],
        &[
            vec![
                "prune_on".into(),
                f(lon.mean_value()),
                lon.total_calls().to_string(),
            ],
            vec![
                "prune_off".into(),
                f(loff.mean_value()),
                loff.total_calls().to_string(),
            ],
        ],
    );
    Ok(())
}

/// Memory ablation: BASICREDUCTION's `O(L)` instances vs HISTAPPROX's
/// compressed histogram (Theorem 5 vs Theorem 8), measured as approximate
/// heap bytes along a shared stream.
pub fn run_memory(out_dir: &Path, _scale: &Scale) -> std::io::Result<()> {
    let l = 500u32;
    let steps = 1_000u64;
    let stream = PreparedStream::geometric(Dataset::Brightkite, 7, 0.002, l, steps);
    let cfg = TrackerConfig::new(10, 0.1, l);
    let mut basic = tdn_core::BasicReduction::new(&cfg);
    let mut hist = HistApprox::new(&cfg);
    let mut csv = CsvWriter::create(
        out_dir,
        "ablation_memory",
        &[
            "step",
            "basic_bytes",
            "hist_bytes",
            "basic_instances",
            "hist_instances",
        ],
    )?;
    let mut peak = (0usize, 0usize);
    for (t, batch) in &stream.steps {
        basic.step(*t, batch);
        hist.step(*t, batch);
        let (b, h) = (basic.approx_bytes(), hist.approx_bytes());
        peak.0 = peak.0.max(b);
        peak.1 = peak.1.max(h);
        if t % 50 == 0 {
            csv.row(&[
                t.to_string(),
                b.to_string(),
                h.to_string(),
                basic.num_instances().to_string(),
                hist.num_instances().to_string(),
            ])?;
        }
    }
    csv.finish()?;
    print_table(
        "Ablation (Thm 5 vs Thm 8): peak approximate memory",
        &["tracker", "peak bytes", "instances at end"],
        &[
            vec![
                "BasicReduction".into(),
                peak.0.to_string(),
                basic.num_instances().to_string(),
            ],
            vec![
                "HistApprox".into(),
                peak.1.to_string(),
                hist.num_instances().to_string(),
            ],
        ],
    );
    Ok(())
}

/// Runs all ablations.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    run_window(out_dir, scale)?;
    run_refeed(out_dir, scale)?;
    run_lazy(out_dir, scale)?;
    run_prune(out_dir, scale)?;
    run_memory(out_dir, scale)?;
    Ok(())
}
