//! Figs. 8, 9, 10 — solution quality and oracle-call efficiency of
//! HISTAPPROX (ε ∈ {0.1, 0.15, 0.2}) against Greedy and Random on all six
//! datasets (k = 10, L = 10 000, Geo(0.001) lifetimes):
//!
//! * Fig. 8 — solution value over time per dataset;
//! * Fig. 9 — time-averaged value ratio w.r.t. Greedy;
//! * Fig. 10 — cumulative oracle-call ratio w.r.t. Greedy over time.
//!
//! Expected shape (paper): HISTAPPROX ≈ Greedy ≫ Random in value; ratios in
//! Fig. 9 above ~0.85 and decreasing slightly with ε; call ratios in
//! Fig. 10 well below 1 and decreasing with ε.

use crate::driver::{run_tracker, PreparedStream, RunLog};
use crate::report::{f, print_table, CsvWriter};
use crate::scale::Scale;
use std::path::Path;
use tdn_core::{GreedyTracker, HistApprox, RandomTracker, TrackerConfig};
use tdn_streams::Dataset;

const L: u32 = 10_000;
const K: usize = 10;
const P: f64 = 0.001;
const EPS_GRID: [f64; 3] = [0.1, 0.15, 0.2];

/// All runs for one dataset.
pub struct DatasetRuns {
    /// Dataset slug.
    pub dataset: &'static str,
    /// Greedy reference.
    pub greedy: RunLog,
    /// Random floor.
    pub random: RunLog,
    /// HISTAPPROX per ε (same order as the `EPS_GRID` constant).
    pub hist: Vec<(f64, RunLog)>,
}

/// Runs one dataset's tracker suite.
pub fn run_dataset(dataset: Dataset, scale: &Scale) -> DatasetRuns {
    let stream = PreparedStream::geometric(dataset, scale.seed, P, L, scale.steps_main);
    let cfg = TrackerConfig::new(K, 0.1, L);
    let mut greedy = GreedyTracker::new(&cfg);
    let mut random = RandomTracker::new(&cfg, scale.seed ^ 0x9E37);
    let greedy_log = run_tracker(&mut greedy, &stream);
    let random_log = run_tracker(&mut random, &stream);
    let mut hist = Vec::new();
    for &eps in &EPS_GRID {
        let cfg_e = TrackerConfig::new(K, eps, L);
        let mut h = HistApprox::new(&cfg_e);
        hist.push((eps, run_tracker(&mut h, &stream)));
    }
    DatasetRuns {
        dataset: dataset.slug(),
        greedy: greedy_log,
        random: random_log,
        hist,
    }
}

/// Runs Figs. 8–10 on all six datasets, writing `fig8.csv`, `fig9.csv`,
/// `fig10.csv`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let mut fig8 = CsvWriter::create(out_dir, "fig8", &["dataset", "step", "algo", "value"])?;
    let mut fig9 = CsvWriter::create(out_dir, "fig9", &["dataset", "algo", "value_ratio"])?;
    let mut fig10 = CsvWriter::create(
        out_dir,
        "fig10",
        &["dataset", "step", "algo", "cum_call_ratio"],
    )?;
    let mut fig9_rows = Vec::new();
    for dataset in Dataset::ALL {
        let runs = run_dataset(dataset, scale);
        let stride = (runs.greedy.values.len() / 250).max(1);
        // Fig. 8: value over time.
        let mut series: Vec<(&str, String, &RunLog)> = vec![
            ("greedy", "greedy".into(), &runs.greedy),
            ("random", "random".into(), &runs.random),
        ];
        for (eps, log) in &runs.hist {
            series.push(("hist", format!("histapprox(eps={eps})"), log));
        }
        for (_, label, log) in &series {
            for (i, v) in log.values.iter().enumerate().step_by(stride) {
                fig8.row(&[
                    runs.dataset.to_string(),
                    i.to_string(),
                    label.clone(),
                    v.to_string(),
                ])?;
            }
        }
        // Fig. 9: averaged ratio to greedy.
        for (_, label, log) in series.iter().filter(|(kind, _, _)| *kind != "greedy") {
            let r = log.mean_ratio_to(&runs.greedy);
            fig9.row(&[runs.dataset.to_string(), label.clone(), f(r)])?;
            fig9_rows.push(vec![runs.dataset.to_string(), label.clone(), f(r)]);
        }
        // Fig. 10: cumulative call ratio over time (HistApprox only, as in
        // the paper).
        for (eps, log) in &runs.hist {
            for (i, c) in log.calls.iter().enumerate().step_by(stride) {
                let g = runs.greedy.calls[i].max(1);
                fig10.row(&[
                    runs.dataset.to_string(),
                    i.to_string(),
                    format!("histapprox(eps={eps})"),
                    f(*c as f64 / g as f64),
                ])?;
            }
        }
    }
    fig8.finish()?;
    fig9.finish()?;
    fig10.finish()?;
    print_table(
        "Fig. 9: value ratio w.r.t. Greedy (higher is better)",
        &["dataset", "algo", "ratio"],
        &fig9_rows,
    );
    Ok(())
}
