//! Sketch-estimator conformance experiment: the RR-sketch spread mode
//! ([`SpreadMode::Sketch`]) against the exact reachability oracle, at
//! dataset scale.
//!
//! Two sections, mirroring the two maintenance paths of
//! `tdn_graph::sketch::SketchPool`:
//!
//! 1. **`adn`** — HISTAPPROX runs the prepared stream in sketch mode;
//!    after every probe interval each live instance's pool is audited
//!    against exact reach counts on that instance's own graph (the
//!    ε·n Hoeffding envelope), and the solutions are scored against a
//!    full-recompute replay of the same stream (coverage ratio — both
//!    solution values are exact cover sizes, only seed *selection* is
//!    sketch-driven). Thread-count determinism is asserted bit for bit.
//! 2. **`tdn_decay`** — a standalone pool rides a time-decaying
//!    [`TdnGraph`] through the same arrivals with dirty-node tracking
//!    driving [`SketchPool::apply_expiry`]: the expiry-invalidation path
//!    the ADN instances never exercise, audited with the same envelope.
//!
//! Every gate goes through [`ensure`], so an envelope breach, a coverage
//! collapse, or a determinism break exits non-zero — the CI smoke run
//! cannot pass vacuously. Results land in `BENCH_sketch.json` (schema in
//! `EXPERIMENTS.md`).

use crate::checks::ensure;
use crate::driver::PreparedStream;
use crate::report::f;
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use tdn_core::{HistApprox, InfluenceTracker, SieveAdn, SpreadMode, TrackerConfig};
use tdn_graph::{reach_count, ReachScratch, SketchParams, SketchPool, TdnGraph};
use tdn_streams::Dataset;

const EPS: f64 = 0.15;
const DELTA: f64 = 0.02;
const SKETCH_SEED: u64 = 0x5EED_BE0C;
const K: usize = 10;
const SIEVE_EPS: f64 = 0.2;
const L: u32 = 200;
const P: f64 = 0.01;
/// Ticks coalesced per arrival batch.
const BATCH_TICKS: usize = 8;
/// Envelope audits per run (evenly spaced over the stream).
const PROBES: usize = 8;
/// Universe nodes audited per pool per probe (deterministic stride
/// sample; the ε·n bound holds per node, so any subset is a valid audit).
const SAMPLE_CAP: usize = 128;

/// Pre-registered envelope budget: `max(2, ⌈3·δ·checked⌉)`. Hoeffding's
/// per-check violation probability δ is loose by ~an order of magnitude
/// (exact binomial tail at the worst-case p = 1/2), so a 3δ rate holds
/// with wide margin while still failing loudly on estimator drift.
fn allowed_violations(checked: u64) -> u64 {
    ((3.0 * DELTA * checked as f64).ceil() as u64).max(2)
}

/// Envelope audit tally. The integer half doubles as a determinism
/// artifact: replays at different thread counts must agree exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct Envelope {
    checked: u64,
    violations: u64,
    worst_rel: f64,
    sum_rel: f64,
}

impl Envelope {
    fn mean_rel(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.sum_rel / self.checked as f64
        }
    }
}

/// Audits one pool against exact reach counts on `g` (stride-sampled
/// universe; relative error is `|est − exact| / n`, the scale of the
/// ε-envelope itself).
fn audit_pool(
    pool: &SketchPool,
    g: &(impl tdn_graph::OutGraph + Sync),
    scratch: &mut ReachScratch,
    env: &mut Envelope,
) {
    let n = pool.universe_len();
    if n == 0 {
        return;
    }
    let bound = pool.params().error_bound(n);
    let stride = n.div_ceil(SAMPLE_CAP).max(1);
    for &v in pool.universe().iter().step_by(stride) {
        let exact = reach_count(g, v, scratch) as f64;
        let err = (pool.estimate(v) - exact).abs();
        env.checked += 1;
        if err > bound + 1e-9 {
            env.violations += 1;
        }
        let rel = err / n as f64;
        env.sum_rel += rel;
        env.worst_rel = env.worst_rel.max(rel);
    }
}

/// One HISTAPPROX replay: per-step solution values, final oracle tally,
/// and the envelope tally from auditing every instance pool at each
/// probe step.
fn replay_hist(
    cfg: &TrackerConfig,
    mode: SpreadMode,
    stream: &PreparedStream,
    threads: usize,
) -> (Vec<u64>, u64, Envelope) {
    exec::with_threads(threads, || {
        let mut tracker = HistApprox::new(cfg).with_spread_mode(mode);
        let probe_every = (stream.len() / PROBES).max(1);
        let mut values = Vec::with_capacity(stream.len());
        let mut env = Envelope::default();
        let mut scratch = ReachScratch::new();
        for (i, (t, batch)) in stream.steps.iter().enumerate() {
            values.push(tracker.step(*t, batch).value);
            let sketching = matches!(mode, SpreadMode::Sketch(_));
            if sketching && (i % probe_every == probe_every - 1 || i + 1 == stream.len()) {
                for (_deadline, inst) in tracker.instances() {
                    audit_instance(inst, &mut scratch, &mut env);
                }
            }
        }
        let calls = tracker.oracle_calls();
        (values, calls, env)
    })
}

fn audit_instance(inst: &SieveAdn, scratch: &mut ReachScratch, env: &mut Envelope) {
    let pool = inst
        .sketch_pool()
        .expect("sketch-mode instances must maintain a pool");
    audit_pool(pool, inst.graph(), scratch, env);
}

/// The `tdn_decay` section: a pool maintained on a decaying [`TdnGraph`]
/// (inserts via `absorb_batch`, expiry via dirty-tracking +
/// `apply_expiry`), audited at every probe step.
fn run_decay(stream: &PreparedStream) -> (Envelope, u64, usize) {
    let params = SketchParams::new(EPS, DELTA, SKETCH_SEED);
    let mut g = TdnGraph::new();
    g.set_dirty_tracking(true);
    let mut pool = SketchPool::new(params);
    let mut env = Envelope::default();
    let mut scratch = ReachScratch::new();
    let mut expired = 0u64;
    let probe_every = (stream.len() / PROBES).max(1);
    for (i, (t, batch)) in stream.steps.iter().enumerate() {
        // Expire first (G_t is the graph *at* t), repair, then insert.
        let before = g.edge_count();
        g.advance_to(*t);
        expired += before - g.edge_count();
        let dirty = g.take_dirty();
        pool.apply_expiry(&g, &dirty);
        let mut fresh = Vec::with_capacity(batch.len());
        for e in batch {
            let before = g.edge_count();
            g.add_edge(e.src, e.dst, e.lifetime);
            if g.edge_count() > before {
                fresh.push((e.src, e.dst));
            }
        }
        g.take_dirty(); // inserts also mark dirty; absorb handles them
        pool.absorb_batch(&g, &fresh);
        if i % probe_every == probe_every - 1 || i + 1 == stream.len() {
            audit_pool(&pool, &g, &mut scratch, &mut env);
        }
    }
    (env, expired, pool.universe_len())
}

/// Runs the sketch conformance experiment and writes `BENCH_sketch.json`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let params = SketchParams::new(EPS, DELTA, SKETCH_SEED);
    let stream = PreparedStream::geometric(Dataset::Brightkite, scale.seed, P, L, scale.steps_ris)
        .coalesce(BATCH_TICKS);
    let cfg = TrackerConfig::new(K, SIEVE_EPS, L);
    let mode = SpreadMode::Sketch(params);

    // Sketch replays at 1 and 4 engine threads — the determinism half.
    let (values_1, calls_1, env_1) = replay_hist(&cfg, mode, &stream, 1);
    let (values_4, calls_4, env_4) = replay_hist(&cfg, mode, &stream, 4);
    let deterministic = values_1 == values_4
        && calls_1 == calls_4
        && env_1.checked == env_4.checked
        && env_1.violations == env_4.violations;
    ensure(
        deterministic,
        "sketch-mode HISTAPPROX diverged across thread counts",
    )?;

    // Envelope gate.
    let budget = allowed_violations(env_1.checked);
    ensure(env_1.checked > 0, "no envelope check ran — vacuous audit")?;
    ensure(
        env_1.violations <= budget,
        format!(
            "sketch envelope breached: {}/{} audits outside eps*n (budget {})",
            env_1.violations, env_1.checked, budget
        ),
    )?;

    // Quality gate: coverage ratio vs the exact (full-recompute) replay.
    let (values_exact, _, _) = replay_hist(&cfg, SpreadMode::FullRecompute, &stream, 1);
    let mut ratios: Vec<f64> = Vec::new();
    for (s, e) in values_1.iter().zip(&values_exact) {
        if *e >= 2 {
            ratios.push(*s as f64 / *e as f64);
        }
    }
    ensure(!ratios.is_empty(), "no step scored for coverage — vacuous")?;
    let cov_min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let cov_mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    ensure(
        cov_mean >= 0.8,
        format!("mean sketch coverage ratio {cov_mean:.3} below the 0.8 floor"),
    )?;

    // Expiry path on the decaying graph.
    let (decay_env, expired, universe_final) = run_decay(&stream);
    let decay_budget = allowed_violations(decay_env.checked);
    ensure(
        decay_env.checked > 0 && expired > 0,
        "decay section is vacuous (no audits or no expiries)",
    )?;
    ensure(
        decay_env.violations <= decay_budget,
        format!(
            "decay-path envelope breached: {}/{} audits outside eps*n (budget {})",
            decay_env.violations, decay_env.checked, decay_budget
        ),
    )?;

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_sketch.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"sketch_conformance\",")?;
    writeln!(
        out,
        "  \"params\": {{\"eps\": {EPS}, \"delta\": {DELTA}, \"pool_size\": {}, \"seed\": {SKETCH_SEED}}},",
        params.pool_size(),
    )?;
    writeln!(
        out,
        "  \"workload\": {{\"dataset\": \"{}\", \"steps\": {}, \"edges\": {}, \
         \"k\": {K}, \"sieve_eps\": {SIEVE_EPS}, \"max_lifetime\": {L}, \"geo_p\": {P}, \"seed\": {}}},",
        Dataset::Brightkite.slug(),
        stream.len(),
        stream.edges,
        scale.seed,
    )?;
    writeln!(out, "  \"adn\": {{")?;
    writeln!(out, "    \"tracker\": \"HistApprox\",")?;
    writeln!(out, "    \"checked\": {},", env_1.checked)?;
    writeln!(out, "    \"violations\": {},", env_1.violations)?;
    writeln!(out, "    \"budget\": {budget},")?;
    writeln!(out, "    \"worst_rel_err\": {},", f(env_1.worst_rel))?;
    writeln!(out, "    \"mean_rel_err\": {},", f(env_1.mean_rel()))?;
    writeln!(out, "    \"coverage_ratio_mean\": {},", f(cov_mean))?;
    writeln!(out, "    \"coverage_ratio_min\": {},", f(cov_min))?;
    writeln!(out, "    \"scored_steps\": {}", ratios.len())?;
    writeln!(out, "  }},")?;
    writeln!(out, "  \"tdn_decay\": {{")?;
    writeln!(out, "    \"checked\": {},", decay_env.checked)?;
    writeln!(out, "    \"violations\": {},", decay_env.violations)?;
    writeln!(out, "    \"budget\": {decay_budget},")?;
    writeln!(out, "    \"worst_rel_err\": {},", f(decay_env.worst_rel))?;
    writeln!(out, "    \"mean_rel_err\": {},", f(decay_env.mean_rel()))?;
    writeln!(out, "    \"expired_edges\": {expired},")?;
    writeln!(out, "    \"final_universe\": {universe_final}")?;
    writeln!(out, "  }},")?;
    writeln!(out, "  \"within_envelope\": true,")?;
    writeln!(out, "  \"deterministic\": {deterministic}")?;
    writeln!(out, "}}")?;
    out.flush()?;

    println!(
        "sketch envelope (ADN): {}/{} audits outside eps*n (budget {}), worst rel err {:.4}, \
         mean coverage {:.3}",
        env_1.violations, env_1.checked, budget, env_1.worst_rel, cov_mean,
    );
    println!(
        "sketch envelope (TDN decay): {}/{} audits outside eps*n (budget {}), {} edges expired",
        decay_env.violations, decay_env.checked, decay_budget, expired,
    );
    println!("wrote {}", path.display());
    Ok(())
}
