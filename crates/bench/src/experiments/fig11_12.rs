//! Figs. 11 and 12 — HISTAPPROX's value and oracle-call ratios w.r.t.
//! Greedy as the budget `k` (Fig. 11) and the lifetime bound `L` (Fig. 12)
//! vary, on Brightkite and Gowalla (ε = 0.2, Geo(0.001)).
//!
//! Expected shape (paper): value ratio stays high across both sweeps; the
//! call ratio *falls* with `k` (HISTAPPROX scales `log k`, Greedy scales
//! `k`); `L` barely affects either ratio.

use crate::driver::{run_tracker, PreparedStream};
use crate::report::{f, print_table, CsvWriter};
use crate::scale::Scale;
use std::path::Path;
use tdn_core::{GreedyTracker, HistApprox, TrackerConfig};
use tdn_streams::Dataset;

const EPS: f64 = 0.2;
const P: f64 = 0.001;

/// One sweep point.
pub struct Point {
    /// Dataset slug.
    pub dataset: &'static str,
    /// Sweep coordinate (k or L).
    pub x: u64,
    /// Time-averaged value ratio HISTAPPROX / Greedy.
    pub value_ratio: f64,
    /// Total oracle-call ratio HISTAPPROX / Greedy.
    pub call_ratio: f64,
}

fn measure(dataset: Dataset, k: usize, l: u32, scale: &Scale) -> (f64, f64) {
    let stream = PreparedStream::geometric(dataset, scale.seed, P, l, scale.steps_sweep);
    let cfg = TrackerConfig::new(k, EPS, l);
    let mut greedy = GreedyTracker::new(&cfg);
    let mut hist = HistApprox::new(&cfg);
    let glog = run_tracker(&mut greedy, &stream);
    let hlog = run_tracker(&mut hist, &stream);
    (
        hlog.mean_ratio_to(&glog),
        hlog.total_calls() as f64 / glog.total_calls().max(1) as f64,
    )
}

/// Fig. 11: sweep `k` at L = 10 000.
pub fn sweep_k(scale: &Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for dataset in [Dataset::Brightkite, Dataset::Gowalla] {
        for &k in &scale.k_values {
            let (vr, cr) = measure(dataset, k, 10_000, scale);
            out.push(Point {
                dataset: dataset.slug(),
                x: k as u64,
                value_ratio: vr,
                call_ratio: cr,
            });
        }
    }
    out
}

/// Fig. 12: sweep `L` at k = 10.
pub fn sweep_l(scale: &Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for dataset in [Dataset::Brightkite, Dataset::Gowalla] {
        for &l in &scale.l_values {
            let (vr, cr) = measure(dataset, 10, l, scale);
            out.push(Point {
                dataset: dataset.slug(),
                x: l as u64,
                value_ratio: vr,
                call_ratio: cr,
            });
        }
    }
    out
}

fn emit(out_dir: &Path, name: &str, xlabel: &str, points: &[Point]) -> std::io::Result<()> {
    let mut csv = CsvWriter::create(
        out_dir,
        name,
        &["dataset", xlabel, "value_ratio", "call_ratio"],
    )?;
    let mut rows = Vec::new();
    for p in points {
        let row = vec![
            p.dataset.to_string(),
            p.x.to_string(),
            f(p.value_ratio),
            f(p.call_ratio),
        ];
        csv.row(&row)?;
        rows.push(row);
    }
    csv.finish()?;
    print_table(
        &format!("{name}: HistApprox/Greedy ratios vs {xlabel}"),
        &["dataset", xlabel, "value ratio", "call ratio"],
        &rows,
    );
    Ok(())
}

/// Runs Fig. 11 and writes `fig11.csv`.
pub fn run_fig11(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    emit(out_dir, "fig11", "k", &sweep_k(scale))
}

/// Runs Fig. 12 and writes `fig12.csv`.
pub fn run_fig12(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    emit(out_dir, "fig12", "L", &sweep_l(scale))
}
