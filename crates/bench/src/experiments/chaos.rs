//! Chaos experiment: seeded fault storms against the serving layer, with
//! supervised recovery — the deterministic chaos engine's end-to-end
//! certification run.
//!
//! Five sections:
//!
//! 1. **Reference run** — the chaos firehose through a fault-free server;
//!    its per-tenant fingerprints are ground truth.
//! 2. **Fault storm** — the same firehose through a server armed with a
//!    seeded [`FaultPlan`]: checkpoint I/O errors (EIO / ENOSPC), torn
//!    writes, rename failures, injected worker panics, and driver-rolled
//!    **crash points** (the server is dropped and recovered from disk
//!    mid-stream). A supervisor loop revives quarantined tenants and
//!    replays their streams; bounded queues push back on the front-end
//!    (reject-newest, flush-and-resubmit). Write-path availability and
//!    repair latency are sampled throughout.
//! 3. **Determinism** — the *entire storm* is run twice; the canonical
//!    fault traces and final fingerprints must be byte-identical.
//! 4. **Overload** — a drop-oldest run with tiny queues; every shed
//!    event must be accounted (lossless-or-accounted invariant).
//! 5. **Gates** — ≥ [`Scale::chaos_min_faults`] injected faults across
//!    ≥ 4 site kinds, **zero escaped panics**, and every tenant
//!    bit-identical to the reference after supervised repair (or
//!    explicitly quarantined with a typed reason). Any violation exits
//!    non-zero via [`ensure`].

use crate::checks::ensure;
use crate::report::{f, percentile, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use tdn_core::{SieveAdnTracker, Solution, TrackerConfig};
use tdn_faults::{silence_injected_panics, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
use tdn_graph::Time;
use tdn_serve::{FlushReport, RetryPolicy, ServeConfig, ServeError, Server, ShedPolicy, TenantId};
use tdn_streams::{TenantWorkload, TenantWorkloadConfig};

const SHARDS: usize = 4;
const K: usize = 8;
const SIEVE_EPS: f64 = 0.25;
const NODES: u32 = 200;
const MAX_LIFETIME: u32 = 10;
/// Injection rates per 10k rolls: the four retryable I/O kinds.
const IO_RATE: u32 = 800;
/// Injection rate per 10k batches for worker panics.
const PANIC_RATE: u32 = 150;
/// Injection rate per 10k ticks for crash points.
const CRASH_RATE: u32 = 200;
/// Fires allowed per (kind, scope) site; bounds the storm so bounded
/// retry always terminates.
const MAX_PER_SITE: u32 = 2;
/// Pending-batch cap per shard in the storm (reject-newest).
const QUEUE_CAP: usize = 4;
/// Supervised-repair rounds allowed after the stream ends.
const FINAL_REPAIR_ROUNDS: usize = 8;

fn workload(scale: &Scale) -> TenantWorkload {
    TenantWorkload::new(TenantWorkloadConfig {
        tenants: scale.chaos_tenants,
        ticks: scale.chaos_ticks,
        events_per_tick: scale.chaos_events_per_tick,
        tenant_zipf: 0.9,
        nodes: NODES,
        node_zipf: 1.0,
        max_lifetime: MAX_LIFETIME,
        seed: scale.seed ^ 0xC4A0_5000,
    })
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig::new(K, SIEVE_EPS, MAX_LIFETIME)
}

fn plan_cfg(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig::new(seed)
        .with_rate(FaultKind::IoError, IO_RATE)
        .with_rate(FaultKind::DiskFull, IO_RATE)
        .with_rate(FaultKind::TornWrite, IO_RATE)
        .with_rate(FaultKind::RenameFail, IO_RATE)
        .with_rate(FaultKind::WorkerPanic, PANIC_RATE)
        .with_rate(FaultKind::Crash, CRASH_RATE)
        .with_max_per_site(MAX_PER_SITE)
}

fn io_err(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

type Fingerprint = (TenantId, Option<Time>, Solution, u64);

fn fingerprints(server: &Server<SieveAdnTracker>) -> Vec<Fingerprint> {
    server
        .tenants()
        .into_iter()
        .map(|tenant| {
            let snap = server.query(tenant).expect("tenant provisioned");
            (tenant, snap.t, snap.solution.clone(), snap.oracle_calls)
        })
        .collect()
}

/// Everything one storm run produces (compared across the two runs for
/// the determinism gate).
struct StormOutcome {
    trace: Vec<FaultEvent>,
    counts_by_kind: [u64; 6],
    injected: u64,
    rolls: u64,
    fingerprints: Vec<Fingerprint>,
    report: FlushReport,
    escaped_panics: u64,
    crashes: u64,
    revives: u64,
    resubmissions: u64,
    stale_tmp_removed: u64,
    recovery_quarantined: u64,
    availability: Vec<f64>,
    repair_ms: Vec<f64>,
    recover_ms: Vec<f64>,
    /// Tenants still quarantined after the final repair rounds, with
    /// their typed reason tags.
    unrepaired: Vec<(TenantId, String)>,
}

/// The supervisor-facing driver: runs the full chaos storm once.
///
/// Every flush runs under `catch_unwind` purely to *count* escaped
/// panics — the serving layer's own `catch_unwind` must make that count
/// zero (the gate).
fn storm_run(scale: &Scale, seed: u64, dir: &Path) -> std::io::Result<StormOutcome> {
    let w = workload(scale);
    let tenants = w.config().tenants as u64;
    let ticks = scale.chaos_ticks;
    let _ = std::fs::remove_dir_all(dir);
    let plan = Arc::new(FaultPlan::new(plan_cfg(seed)));
    // Retry budget must exceed the worst consecutive-failure run a site
    // cap allows (4 I/O kinds × MAX_PER_SITE fires), or a fault storm
    // could quarantine via exhaustion alone and mask real differences.
    let cfg = ServeConfig::new(SHARDS, tracker_cfg())
        .with_checkpoints(dir, 2)
        .with_queue_limit(QUEUE_CAP, ShedPolicy::RejectNewest)
        .with_retry(RetryPolicy {
            max_attempts: 4 * MAX_PER_SITE + 4,
            base_backoff_ticks: 1,
        })
        .with_faults(Arc::clone(&plan));

    let mut server = Server::<SieveAdnTracker>::new(cfg.clone()).map_err(io_err)?;
    let mut out = StormOutcome {
        trace: Vec::new(),
        counts_by_kind: [0; 6],
        injected: 0,
        rolls: 0,
        fingerprints: Vec::new(),
        report: FlushReport::default(),
        escaped_panics: 0,
        crashes: 0,
        revives: 0,
        resubmissions: 0,
        stale_tmp_removed: 0,
        recovery_quarantined: 0,
        availability: Vec::new(),
        repair_ms: Vec::new(),
        recover_ms: Vec::new(),
        unrepaired: Vec::new(),
    };

    // Submits one batch, flushing and resubmitting on backpressure — the
    // lossless reject-newest discipline (the rejected data rides back in
    // the error).
    fn submit_lossless(
        server: &mut Server<SieveAdnTracker>,
        tenant: TenantId,
        t: Time,
        edges: Vec<tdn_streams::TimedEdge>,
        out: &mut StormOutcome,
    ) -> std::io::Result<()> {
        let mut edges = edges;
        loop {
            match server.submit_batch(tenant, t, edges) {
                Ok(()) => return Ok(()),
                Err(ServeError::Backpressure { edges: back, .. }) => {
                    out.resubmissions += 1;
                    flush_counted(server, out)?;
                    edges = back;
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    fn flush_counted(
        server: &mut Server<SieveAdnTracker>,
        out: &mut StormOutcome,
    ) -> std::io::Result<()> {
        match catch_unwind(AssertUnwindSafe(|| server.flush())) {
            Ok(report) => {
                out.report.merge(&report.map_err(io_err)?);
                Ok(())
            }
            Err(_) => {
                out.escaped_panics += 1;
                Err(std::io::Error::other("panic escaped Server::flush"))
            }
        }
    }

    // Revives every quarantined tenant and replays its stream through
    // `upto` (exclusive); the watermark guard drops the already-applied
    // prefix. Returns how many tenants were revived.
    fn repair_quarantined(
        server: &mut Server<SieveAdnTracker>,
        w: &TenantWorkload,
        upto: Time,
        out: &mut StormOutcome,
    ) -> std::io::Result<u64> {
        let quarantined: Vec<TenantId> = server
            .health_report()
            .quarantine_list()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        let repaired = quarantined.len() as u64;
        for tenant in quarantined {
            let started = Instant::now();
            server.revive_tenant(tenant).map_err(io_err)?;
            for t in 0..upto {
                let edges = w.batch_at(tenant as u32, t);
                if !edges.is_empty() {
                    submit_lossless(server, tenant, t, edges, out)?;
                }
            }
            flush_counted(server, out)?;
            out.revives += 1;
            out.repair_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
        Ok(repaired)
    }

    for t in 0..ticks {
        // Rotating tenant order, matching TenantWorkload::interleaved.
        for slot in 0..tenants {
            let tenant = (slot + t) % tenants;
            let edges = w.batch_at(tenant as u32, t);
            if !edges.is_empty() {
                submit_lossless(&mut server, tenant, t, edges, &mut out)?;
            }
        }
        flush_counted(&mut server, &mut out)?;
        // Write-path availability sample, before the supervisor repairs.
        let health = server.health_report();
        let total = health.tenants.len().max(1);
        out.availability
            .push((total - health.quarantined) as f64 / total as f64);
        repair_quarantined(&mut server, &w, t + 1, &mut out)?;

        // Crash point: drop the server on the floor and recover from the
        // (fault-scarred) checkpoint directory.
        if plan.roll(FaultKind::Crash, t).is_some() {
            drop(server);
            let started = Instant::now();
            let (recovered, rec) =
                Server::<SieveAdnTracker>::recover(cfg.clone()).map_err(io_err)?;
            out.recover_ms.push(started.elapsed().as_secs_f64() * 1e3);
            server = recovered;
            out.crashes += 1;
            out.stale_tmp_removed += rec.stale_tmp_removed as u64;
            out.recovery_quarantined += rec.quarantined.len() as u64;
            for (tenant, _) in &rec.quarantined {
                server.revive_tenant(*tenant).map_err(io_err)?;
            }
            // At-least-once replay of the whole applied prefix, for every
            // tenant; the idempotence guard skips what survived on disk.
            for tt in 0..=t {
                for slot in 0..tenants {
                    let tenant = (slot + tt) % tenants;
                    let edges = w.batch_at(tenant as u32, tt);
                    if !edges.is_empty() {
                        submit_lossless(&mut server, tenant, tt, edges, &mut out)?;
                    }
                }
                flush_counted(&mut server, &mut out)?;
            }
        }
    }

    // Final supervised repair: keep reviving until the fleet is clean or
    // the round budget is spent (per-site fault caps guarantee the storm
    // runs dry, so this terminates well inside the budget).
    for _ in 0..FINAL_REPAIR_ROUNDS {
        if repair_quarantined(&mut server, &w, ticks, &mut out)? == 0 {
            break;
        }
    }
    for (tenant, reason) in server.health_report().quarantine_list() {
        out.unrepaired.push((tenant, reason.tag().to_string()));
    }

    out.trace = plan.trace();
    out.counts_by_kind = plan.counts_by_kind();
    out.injected = plan.injected() as u64;
    out.rolls = plan.rolls();
    out.fingerprints = fingerprints(&server);
    let _ = std::fs::remove_dir_all(dir);
    Ok(out)
}

/// Runs the chaos experiment and writes `BENCH_chaos.json`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    silence_injected_panics();
    let w = workload(scale);
    let ticks = scale.chaos_ticks;
    let storm_seed = scale.seed ^ 0xFA17_5702;

    // ---- 1. Reference: the same firehose, no faults --------------------
    let mut reference =
        Server::<SieveAdnTracker>::new(ServeConfig::new(SHARDS, tracker_cfg())).map_err(io_err)?;
    let tenants = w.config().tenants as u64;
    for t in 0..ticks {
        for slot in 0..tenants {
            let tenant = (slot + t) % tenants;
            let edges = w.batch_at(tenant as u32, t);
            if !edges.is_empty() {
                reference
                    .submit_batch(tenant, t, edges)
                    .expect("unbounded queues never reject");
            }
        }
        reference.flush().map_err(io_err)?;
    }
    let truth = fingerprints(&reference);

    // ---- 2 & 3. The storm, twice (determinism gate) --------------------
    let dir = out_dir.join("chaos_chains");
    let storm = storm_run(scale, storm_seed, &dir)?;
    let rerun = storm_run(scale, storm_seed, &dir)?;
    ensure(
        storm.trace == rerun.trace,
        "CHAOS NONDETERMINISM: same seed produced different fault traces",
    )?;
    ensure(
        storm.fingerprints == rerun.fingerprints,
        "CHAOS NONDETERMINISM: same seed produced different final states",
    )?;
    ensure(
        storm.escaped_panics == 0 && rerun.escaped_panics == 0,
        "a panic escaped the serving layer",
    )?;

    // ---- 5a. Identity: bit-identical or explicitly quarantined ---------
    let quarantined_ids: Vec<TenantId> = storm.unrepaired.iter().map(|(id, _)| *id).collect();
    let truth_by_id: std::collections::BTreeMap<TenantId, &Fingerprint> =
        truth.iter().map(|fp| (fp.0, fp)).collect();
    let mut divergent = 0u64;
    for fp in &storm.fingerprints {
        let matches = truth_by_id.get(&fp.0).is_some_and(|t| *t == fp);
        if !matches && !quarantined_ids.contains(&fp.0) {
            divergent += 1;
        }
    }
    ensure(
        divergent == 0,
        format!(
            "CHAOS IDENTITY VIOLATION: {divergent} tenants diverged from the reference \
             without being quarantined"
        ),
    )?;
    ensure(
        storm.fingerprints.len() == truth.len(),
        "storm lost or invented tenants",
    )?;

    // ---- 5b. Storm size gates ------------------------------------------
    ensure(
        storm.injected >= scale.chaos_min_faults,
        format!(
            "storm too small: {} faults < floor {}",
            storm.injected, scale.chaos_min_faults
        ),
    )?;
    let kinds_fired = storm.counts_by_kind.iter().filter(|&&c| c > 0).count();
    ensure(
        kinds_fired >= 4,
        format!("storm too narrow: only {kinds_fired} fault kinds fired"),
    )?;
    ensure(storm.crashes > 0, "no crash points fired")?;
    ensure(
        storm.report.panics > 0 && storm.report.checkpoint_failures > 0,
        "storm exercised neither panics nor checkpoint failures",
    )?;

    // ---- 4. Overload: drop-oldest accounting ---------------------------
    let mut overload = Server::<SieveAdnTracker>::new(
        ServeConfig::new(2, tracker_cfg()).with_queue_limit(2, ShedPolicy::DropOldest),
    )
    .map_err(io_err)?;
    let mut submitted = 0u64;
    let overload_ticks = ticks.min(40);
    let mut overload_report = FlushReport::default();
    for t in 0..overload_ticks {
        for slot in 0..tenants {
            let tenant = (slot + t) % tenants;
            let edges = w.batch_at(tenant as u32, t);
            if !edges.is_empty() {
                submitted += edges.len() as u64;
                overload
                    .submit_batch(tenant, t, edges)
                    .expect("drop-oldest never rejects");
            }
        }
        if t % 4 == 3 {
            overload_report.merge(&overload.flush().map_err(io_err)?);
        }
    }
    overload_report.merge(&overload.flush().map_err(io_err)?);
    ensure(
        overload_report.shed_events > 0,
        "overload run never shed (caps too loose to test anything)",
    )?;
    ensure(
        submitted
            == overload_report.events
                + overload_report.skipped_events
                + overload_report.shed_events,
        "OVERLOAD ACCOUNTING VIOLATION: submitted events not fully accounted",
    )?;

    // ---- Report ---------------------------------------------------------
    let avail_mean =
        storm.availability.iter().sum::<f64>() / storm.availability.len().max(1) as f64;
    let avail_min = storm
        .availability
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let repair_p50 = percentile(&storm.repair_ms, 0.5);
    let repair_p99 = percentile(&storm.repair_ms, 0.99);
    let recover_p50 = percentile(&storm.recover_ms, 0.5);
    let recover_p99 = percentile(&storm.recover_ms, 0.99);

    let kind_rows: Vec<Vec<String>> = FaultKind::ALL
        .iter()
        .map(|k| {
            vec![
                k.name().to_string(),
                storm.counts_by_kind[k.tag() as usize].to_string(),
                if k.retryable() { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "chaos fault storm (fired per kind)",
        &["kind", "fired", "retryable"],
        &kind_rows,
    );
    println!(
        "chaos storm: {} faults over {} rolls ({kinds_fired} kinds), {} crashes, \
         {} revives, {} resubmissions, 0 escaped panics",
        storm.injected, storm.rolls, storm.crashes, storm.revives, storm.resubmissions,
    );
    println!(
        "chaos identity: {} tenants bit-identical, {} explicitly quarantined; \
         write availability mean {:.2}% min {:.2}%; repair p50/p99 {:.2}/{:.2} ms",
        storm.fingerprints.len() - storm.unrepaired.len(),
        storm.unrepaired.len(),
        avail_mean * 100.0,
        avail_min * 100.0,
        repair_p50,
        repair_p99,
    );

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_chaos.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"chaos\",")?;
    writeln!(
        out,
        "  \"workload\": {{\"tenants\": {}, \"ticks\": {ticks}, \"events_per_tick\": {}, \
         \"seed\": {}}},",
        w.config().tenants,
        w.config().events_per_tick,
        w.config().seed,
    )?;
    writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"tracker\": \"SieveAdnTracker\", \
         \"queue_cap\": {QUEUE_CAP}, \"storm_seed\": {storm_seed}, \"io_rate_per_10k\": {IO_RATE}, \
         \"panic_rate_per_10k\": {PANIC_RATE}, \"crash_rate_per_10k\": {CRASH_RATE}, \
         \"max_per_site\": {MAX_PER_SITE}}},",
    )?;
    writeln!(
        out,
        "  \"storm\": {{\"fault_events\": {}, \"rolls\": {}, \"kinds_fired\": {kinds_fired}, \
         \"crashes\": {}, \"revives\": {}, \"resubmissions\": {}, \"stale_tmp_removed\": {}, \
         \"recovery_quarantined\": {}, \"escaped_panics\": {}}},",
        storm.injected,
        storm.rolls,
        storm.crashes,
        storm.revives,
        storm.resubmissions,
        storm.stale_tmp_removed,
        storm.recovery_quarantined,
        storm.escaped_panics,
    )?;
    writeln!(out, "  \"faults_by_kind\": {{")?;
    for (i, k) in FaultKind::ALL.iter().enumerate() {
        writeln!(
            out,
            "    \"{}\": {}{}",
            k.name(),
            storm.counts_by_kind[k.tag() as usize],
            if i + 1 == FaultKind::ALL.len() {
                ""
            } else {
                ","
            },
        )?;
    }
    writeln!(out, "  }},")?;
    writeln!(
        out,
        "  \"flush_totals\": {{\"steps\": {}, \"events\": {}, \"skipped_events\": {}, \
         \"panics\": {}, \"panicked_events\": {}, \"quarantined_events\": {}, \
         \"rejected_events\": {}, \"checkpoints\": {}, \"checkpoint_failures\": {}, \
         \"checkpoints_deferred\": {}}},",
        storm.report.steps,
        storm.report.events,
        storm.report.skipped_events,
        storm.report.panics,
        storm.report.panicked_events,
        storm.report.quarantined_events,
        storm.report.rejected_events,
        storm.report.checkpoints,
        storm.report.checkpoint_failures,
        storm.report.checkpoints_deferred,
    )?;
    writeln!(
        out,
        "  \"availability\": {{\"write_path_mean\": {}, \"write_path_min\": {}}},",
        f(avail_mean),
        f(avail_min),
    )?;
    writeln!(
        out,
        "  \"repair_latency_ms\": {{\"p50\": {}, \"p99\": {}, \"samples\": {}}},",
        f(repair_p50),
        f(repair_p99),
        storm.repair_ms.len(),
    )?;
    writeln!(
        out,
        "  \"recover_latency_ms\": {{\"p50\": {}, \"p99\": {}, \"samples\": {}}},",
        f(recover_p50),
        f(recover_p99),
        storm.recover_ms.len(),
    )?;
    writeln!(
        out,
        "  \"overload\": {{\"submitted\": {submitted}, \"applied\": {}, \"skipped\": {}, \
         \"shed\": {}, \"accounted\": true}},",
        overload_report.events, overload_report.skipped_events, overload_report.shed_events,
    )?;
    writeln!(
        out,
        "  \"identity\": {{\"tenants\": {}, \"bit_identical\": {}, \"quarantined\": {}, \
         \"bit_identical_or_quarantined\": true}},",
        storm.fingerprints.len(),
        storm.fingerprints.len() - storm.unrepaired.len(),
        storm.unrepaired.len(),
    )?;
    writeln!(
        out,
        "  \"trace\": {{\"deterministic\": true, \"len\": {}, \"head\": [",
        storm.trace.len(),
    )?;
    for (i, e) in storm.trace.iter().take(8).enumerate() {
        writeln!(
            out,
            "    {{\"kind\": \"{}\", \"scope\": {}, \"occurrence\": {}}}{}",
            e.kind.name(),
            e.scope,
            e.occurrence,
            if i + 1 == storm.trace.len().min(8) {
                ""
            } else {
                ","
            },
        )?;
    }
    writeln!(out, "  ]}}")?;
    writeln!(out, "}}")?;
    out.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
