//! Flat-graph-core experiment: the 64-lane bit-parallel traversal backend
//! over the CSR adjacency arena versus the scalar backend it replaced.
//!
//! Every workload replays the *identical* prepared stream through three
//! tracker configurations:
//!
//! * `scalar` — [`SpreadMode::Incremental`] with
//!   [`TraversalKind::Scalar`]: the pre-flat-core hot path (one full
//!   reverse BFS per marked source, one forward BFS per rebuilt spread),
//!   running on the same flat structures — the "before" measurement;
//! * `batch64` — [`SpreadMode::Incremental`] with
//!   [`TraversalKind::Batch64`] (the default): shared ordered `V̄_t`
//!   sweep, lane-batched dirty/delta marking, 64-lane rebuild counting;
//! * `full` — [`SpreadMode::FullRecompute`]: the naive reference.
//!
//! The run **fails with a non-zero exit** unless all three produce
//! bit-identical per-step solution values and oracle tallies — at
//! 1 thread *and* 4 threads — and unless the batched backend clears the
//! acceptance bar (≥ 1.5× over scalar on the rebuild-heavy headline
//! workloads). A mid-run checkpoint written by the scalar configuration is
//! restored into a batch64 tracker and continued, asserting that
//! checkpoints cross traversal backends cleanly (the byte format carries
//! state, never strategy). Memory curves (`approx_bytes` samples, the
//! Figs. 13/14 analogue) are recorded for both backends, and the
//! accounting itself is sanity-checked against the bitset/arena layouts
//! before anything is measured.

use crate::checks::ensure;
use crate::driver::PreparedStream;
use crate::report::{f, percentile, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use tdn_core::{
    HistApprox, InfluenceTracker, SieveAdnTracker, SpreadMode, SpreadStatsSnapshot, TrackerConfig,
    TraversalKind,
};
use tdn_graph::{AdnGraph, CoverSet, NodeId, TdnGraph};
use tdn_persist::{checkpoint_to_vec, restore_from_slice};
use tdn_streams::Dataset;

const EPS: f64 = 0.3;
const P: f64 = 0.001;
const K: usize = 10;

/// Which tracker a workload measures.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Tracker {
    /// SIEVEADN over the addition-only view (phases 3–4 dominate).
    SieveAdn,
    /// HISTAPPROX end to end.
    HistApprox,
}

impl Tracker {
    fn name(self) -> &'static str {
        match self {
            Tracker::SieveAdn => "SieveADN",
            Tracker::HistApprox => "HistApprox",
        }
    }
}

/// One grid point.
struct Workload {
    name: &'static str,
    tracker: Tracker,
    dataset: Dataset,
    /// Ticks coalesced per arrival batch. Large batches mean many novel
    /// sources per batch — the dirty set dominates `V̄_t`, the cost model
    /// rebuilds, and the rebuild sweep is where the 64-lane backend lives.
    batch_ticks: usize,
    max_lifetime: u32,
    steps_factor: u64,
    /// Whether this workload counts toward the ≥ 1.5× acceptance bar
    /// (spread-rebuild-heavy shapes only; the others are honest controls).
    headline: bool,
}

/// The measured grid. Cascade streams with coarse batches are the
/// rebuild-heavy headline: every batch dirties deep, heavily-overlapping
/// ancestor cones whose downstream spreads all need recounting — 64 of
/// them per flat traversal instead of one BFS each. The small-batch and
/// bipartite points are controls where patching already served most
/// lookups and the batched backend can only break even.
static WORKLOADS: [Workload; 5] = [
    Workload {
        name: "rebuild_cascade_hk",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 48,
        max_lifetime: 10_000,
        steps_factor: 6,
        headline: true,
    },
    Workload {
        name: "rebuild_cascade_higgs",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHiggs,
        batch_ticks: 48,
        max_lifetime: 10_000,
        steps_factor: 8,
        headline: true,
    },
    Workload {
        name: "rebuild_hist_long_decay",
        tracker: Tracker::HistApprox,
        dataset: Dataset::TwitterHiggs,
        batch_ticks: 32,
        max_lifetime: 10_000,
        steps_factor: 6,
        headline: true,
    },
    Workload {
        name: "patch_small_batch_control",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 4,
        max_lifetime: 10_000,
        steps_factor: 4,
        headline: false,
    },
    Workload {
        name: "bipartite_control",
        tracker: Tracker::HistApprox,
        dataset: Dataset::Brightkite,
        batch_ticks: 8,
        max_lifetime: 10_000,
        steps_factor: 1,
        headline: false,
    },
];

/// One configuration's measurements over a workload.
struct CellLog {
    values: Vec<u64>,
    calls: Vec<u64>,
    step_secs: Vec<f64>,
    wall_secs: f64,
    /// `(step, approx_bytes)` samples.
    memory: Vec<(u64, u64)>,
    engine: SpreadStatsSnapshot,
}

enum AnyTracker {
    // Both variants boxed: the trackers weigh hundreds of bytes each
    // (clippy::large_enum_variant), and one is built per measured cell.
    SieveAdn(Box<SieveAdnTracker>),
    HistApprox(Box<HistApprox>),
}

impl AnyTracker {
    fn build(sel: Tracker, cfg: &TrackerConfig, mode: SpreadMode, tr: TraversalKind) -> Self {
        match sel {
            Tracker::SieveAdn => AnyTracker::SieveAdn(Box::new(
                SieveAdnTracker::new(cfg)
                    .with_spread_mode(mode)
                    .with_traversal(tr),
            )),
            Tracker::HistApprox => AnyTracker::HistApprox(Box::new(
                HistApprox::new(cfg)
                    .with_spread_mode(mode)
                    .with_traversal(tr),
            )),
        }
    }

    fn step(&mut self, t: u64, batch: &[tdn_streams::TimedEdge]) -> u64 {
        match self {
            AnyTracker::SieveAdn(tr) => tr.step(t, batch).value,
            AnyTracker::HistApprox(tr) => tr.step(t, batch).value,
        }
    }

    fn calls(&self) -> u64 {
        match self {
            AnyTracker::SieveAdn(tr) => tr.oracle_calls(),
            AnyTracker::HistApprox(tr) => tr.oracle_calls(),
        }
    }

    fn approx_bytes(&self) -> u64 {
        match self {
            AnyTracker::SieveAdn(tr) => tr.instance().approx_bytes() as u64,
            AnyTracker::HistApprox(tr) => tr.approx_bytes() as u64,
        }
    }

    fn engine(&self) -> SpreadStatsSnapshot {
        match self {
            AnyTracker::SieveAdn(tr) => tr.spread_stats(),
            AnyTracker::HistApprox(tr) => tr.spread_stats(),
        }
    }
}

fn run_cell(
    sel: Tracker,
    stream: &PreparedStream,
    cfg: &TrackerConfig,
    mode: SpreadMode,
    tr: TraversalKind,
    threads: usize,
) -> CellLog {
    exec::with_threads(threads, || {
        let mut tracker = AnyTracker::build(sel, cfg, mode, tr);
        let sample_every = (stream.len() / 32).max(1);
        let mut log = CellLog {
            values: Vec::with_capacity(stream.len()),
            calls: Vec::with_capacity(stream.len()),
            step_secs: Vec::with_capacity(stream.len()),
            wall_secs: 0.0,
            memory: Vec::new(),
            engine: SpreadStatsSnapshot::default(),
        };
        let start = Instant::now();
        for (i, (t, batch)) in stream.steps.iter().enumerate() {
            let step_start = Instant::now();
            let value = tracker.step(*t, batch);
            log.step_secs.push(step_start.elapsed().as_secs_f64());
            log.values.push(value);
            log.calls.push(tracker.calls());
            if (i + 1) % sample_every == 0 {
                log.memory.push((i as u64 + 1, tracker.approx_bytes()));
            }
        }
        log.wall_secs = start.elapsed().as_secs_f64();
        log.engine = tracker.engine();
        log
    })
}

/// First-principles checks of the memory accounting the curves rely on:
/// bitset covers bill their dense word arrays, adjacency arenas bill their
/// buffers, and a fill/drain storm leaves recycled blocks accounted, not
/// leaked into untracked allocations.
fn accounting_sanity() -> std::io::Result<()> {
    // A cover holding one node at index 1023 needs exactly 16 words.
    let mut cover = CoverSet::new();
    cover.insert(NodeId(1023));
    ensure(
        cover.approx_bytes() >= 16 * 8,
        "CoverSet accounting misses its word array",
    )?;
    ensure(
        cover.approx_bytes() <= 4 * 16 * 8 + 64,
        format!(
            "CoverSet accounting wildly over-reports: {} bytes for 16 words",
            cover.approx_bytes()
        ),
    )?;
    // Covers iterate (and therefore checkpoint) in canonical order.
    cover.insert(NodeId(3));
    let order: Vec<u32> = cover.iter().map(|n| n.0).collect();
    ensure(order == vec![3, 1023], "CoverSet iteration not canonical")?;
    // ADN arena accounting grows with edges.
    let mut adn = AdnGraph::new();
    let empty = adn.approx_bytes();
    for i in 0..64u32 {
        adn.add_edge(NodeId(0), NodeId(i + 1));
    }
    ensure(
        adn.approx_bytes() > empty,
        "AdnGraph arena accounting ignores growth",
    )?;
    // A TDN expiry storm recycles blocks; the arena stays accounted and
    // does not regrow on the next identical cycle.
    let mut tdn = TdnGraph::new();
    let mut t = 0u64;
    for i in 1..=64u32 {
        tdn.add_edge(NodeId(0), NodeId(i), 1);
    }
    t += 1;
    tdn.advance_to(t);
    let after_storm = tdn.approx_bytes();
    let (slots, recycled) = tdn.arena_stats();
    ensure(recycled > 0, "expiry storm recycled no arena blocks")?;
    for i in 1..=64u32 {
        tdn.add_edge(NodeId(0), NodeId(i), 1);
    }
    tdn.advance_to(t + 1);
    let (slots2, _) = tdn.arena_stats();
    ensure(
        slots2 == slots,
        "second storm cycle grew the arena instead of reusing blocks",
    )?;
    ensure(
        tdn.approx_bytes() == after_storm,
        "storm cycle changed accounted bytes without changing state shape",
    )?;
    Ok(())
}

/// Mid-run checkpoint portability across traversal backends: bytes written
/// by a scalar-backend tracker restore into a batch64-backend tracker and
/// continue bit-identically (the format carries state, never strategy).
fn checkpoint_crosses_backends(
    stream: &PreparedStream,
    cfg: &TrackerConfig,
) -> std::io::Result<()> {
    let cut = stream.len() / 2;
    let mut scalar = HistApprox::new(cfg).with_traversal(TraversalKind::Scalar);
    for (t, batch) in &stream.steps[..cut] {
        scalar.step(*t, batch);
    }
    let bytes = checkpoint_to_vec(&scalar, cfg, cut as u64);
    let (resume, warm): (u64, HistApprox) = restore_from_slice(&bytes, cfg)
        .map_err(|e| std::io::Error::other(format!("cross-backend restore failed: {e}")))?;
    ensure(resume == cut as u64, "restored stream position drifted")?;
    let mut warm = warm.with_traversal(TraversalKind::Batch64);
    let mut straight = HistApprox::new(cfg).with_traversal(TraversalKind::Batch64);
    for (t, batch) in &stream.steps[..cut] {
        straight.step(*t, batch);
    }
    for (t, batch) in &stream.steps[cut..] {
        let a = warm.step(*t, batch);
        let b = straight.step(*t, batch);
        ensure(
            a == b,
            format!("cross-backend warm tail diverged at t = {t}"),
        )?;
    }
    ensure(
        warm.oracle_calls() == straight.oracle_calls(),
        "cross-backend warm tally diverged",
    )?;
    Ok(())
}

/// One workload's paired measurements.
struct GridPoint {
    w: &'static Workload,
    edges: u64,
    steps: usize,
    scalar: CellLog,
    batch64: CellLog,
    full: CellLog,
}

impl GridPoint {
    fn speedup_vs_scalar(&self) -> f64 {
        self.scalar.wall_secs / self.batch64.wall_secs.max(1e-9)
    }

    fn speedup_vs_full(&self) -> f64 {
        self.full.wall_secs / self.batch64.wall_secs.max(1e-9)
    }
}

/// Runs the grid, enforces bit-identity and the acceptance bar, writes
/// `BENCH_flatgraph.json`, and prints the summary table.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    accounting_sanity()?;
    // Discarded warm-up (allocator/page-fault one-time costs).
    {
        let warm = PreparedStream::geometric(Dataset::TwitterHiggs, scale.seed, P, 10_000, 200)
            .coalesce(8);
        run_cell(
            Tracker::HistApprox,
            &warm,
            &TrackerConfig::new(K, EPS, 10_000),
            SpreadMode::Incremental,
            TraversalKind::Batch64,
            1,
        );
    }
    let mut points = Vec::new();
    for w in &WORKLOADS {
        let stream = PreparedStream::geometric(
            w.dataset,
            scale.seed,
            P,
            w.max_lifetime,
            scale.steps_main * w.steps_factor,
        )
        .coalesce(w.batch_ticks);
        let cfg = TrackerConfig::new(K, EPS, w.max_lifetime);
        let scalar = run_cell(
            w.tracker,
            &stream,
            &cfg,
            SpreadMode::Incremental,
            TraversalKind::Scalar,
            1,
        );
        let batch64 = run_cell(
            w.tracker,
            &stream,
            &cfg,
            SpreadMode::Incremental,
            TraversalKind::Batch64,
            1,
        );
        let full = run_cell(
            w.tracker,
            &stream,
            &cfg,
            SpreadMode::FullRecompute,
            TraversalKind::Batch64,
            1,
        );
        // Bit-identity across backends and modes at 1 thread...
        ensure(
            batch64.values == scalar.values && batch64.calls == scalar.calls,
            format!("[{}] batch64 diverged from the scalar backend", w.name),
        )?;
        ensure(
            batch64.values == full.values && batch64.calls == full.calls,
            format!(
                "[{}] incremental engine diverged from full recompute",
                w.name
            ),
        )?;
        ensure(
            batch64.engine == scalar.engine,
            format!(
                "[{}] engine tallies depend on the traversal backend",
                w.name
            ),
        )?;
        // ...and across thread counts for both backends.
        for (tag, tr, reference) in [
            ("batch64", TraversalKind::Batch64, &batch64),
            ("scalar", TraversalKind::Scalar, &scalar),
        ] {
            let threaded = run_cell(w.tracker, &stream, &cfg, SpreadMode::Incremental, tr, 4);
            ensure(
                threaded.values == reference.values && threaded.calls == reference.calls,
                format!("[{}] {tag} backend not thread-count invariant", w.name),
            )?;
        }
        // Memory accounting sanity on the live runs: every sample must be
        // positive, and both backends' footprints must stay within 4× of
        // each other (they share every state structure; only scratch
        // shapes differ).
        for (log, tag) in [(&batch64, "batch64"), (&scalar, "scalar")] {
            ensure(
                !log.memory.is_empty() && log.memory.iter().all(|&(_, b)| b > 0),
                format!("[{}] {tag} memory curve has empty/zero samples", w.name),
            )?;
        }
        let (mb, ms) = (
            batch64.memory.last().unwrap().1 as f64,
            scalar.memory.last().unwrap().1 as f64,
        );
        ensure(
            mb / ms < 4.0 && ms / mb < 4.0,
            format!("[{}] backend footprints diverged: {mb} vs {ms}", w.name),
        )?;
        points.push(GridPoint {
            w,
            edges: stream.edges,
            steps: stream.len(),
            scalar,
            batch64,
            full,
        });
    }
    // Cross-backend checkpoint portability on the first headline stream.
    {
        let w = &WORKLOADS[2];
        let stream = PreparedStream::geometric(
            w.dataset,
            scale.seed ^ 0x5EED,
            P,
            w.max_lifetime,
            scale.steps_main,
        )
        .coalesce(w.batch_ticks);
        checkpoint_crosses_backends(&stream, &TrackerConfig::new(K, EPS, w.max_lifetime))?;
    }
    let headline_best = points
        .iter()
        .filter(|p| p.w.headline)
        .map(GridPoint::speedup_vs_scalar)
        .fold(f64::NAN, f64::max);
    ensure(
        headline_best >= 1.5,
        format!(
            "acceptance bar missed: best rebuild-heavy speedup vs the scalar \
             backend is {headline_best:.2}x (< 1.5x)"
        ),
    )?;
    let best_vs_full = points
        .iter()
        .map(GridPoint::speedup_vs_full)
        .fold(f64::NAN, f64::max);

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_flatgraph.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"flatgraph_core\",")?;
    writeln!(
        out,
        "  \"config\": {{\"k\": {K}, \"eps\": {EPS}, \"geo_p\": {P}, \"seed\": {}}},",
        scale.seed
    )?;
    writeln!(out, "  \"identical_all\": true,")?;
    writeln!(out, "  \"checkpoint_cross_backend\": true,")?;
    writeln!(out, "  \"best_speedup_vs_scalar\": {},", f(headline_best))?;
    writeln!(out, "  \"best_speedup_vs_full\": {},", f(best_vs_full))?;
    writeln!(out, "  \"workloads\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let e = &p.batch64.engine;
        writeln!(out, "    {{")?;
        writeln!(
            out,
            "      \"name\": \"{}\", \"tracker\": \"{}\", \"dataset\": \"{}\", \
             \"batch_ticks\": {}, \"max_lifetime\": {}, \"steps\": {}, \"edges\": {}, \
             \"headline\": {},",
            p.w.name,
            p.w.tracker.name(),
            p.w.dataset.slug(),
            p.w.batch_ticks,
            p.w.max_lifetime,
            p.steps,
            p.edges,
            p.w.headline,
        )?;
        for (tag, log, comma) in [
            ("scalar", &p.scalar, ","),
            ("batch64", &p.batch64, ","),
            ("full", &p.full, ","),
        ] {
            writeln!(
                out,
                "      \"{tag}\": {{\"wall_secs\": {}, \"p50_step_ms\": {}, \
                 \"p99_step_ms\": {}}}{comma}",
                f(log.wall_secs),
                f(percentile(&log.step_secs, 0.5) * 1e3),
                f(percentile(&log.step_secs, 0.99) * 1e3),
            )?;
        }
        writeln!(
            out,
            "      \"speedup_vs_scalar\": {}, \"speedup_vs_full\": {}, \
             \"identical\": true, \"oracle_calls\": {},",
            f(p.speedup_vs_scalar()),
            f(p.speedup_vs_full()),
            p.batch64.calls.last().copied().unwrap_or(0),
        )?;
        writeln!(
            out,
            "      \"engine\": {{\"redundant_edges\": {}, \"sink_delta_edges\": {}, \
             \"novel_edges\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"patched_batches\": {}, \"rebuilt_batches\": {}}},",
            e.redundant_edges,
            e.sink_delta_edges,
            e.novel_edges,
            e.cache_hits,
            e.cache_misses,
            e.patched_batches,
            e.rebuilt_batches,
        )?;
        writeln!(out, "      \"memory\": [")?;
        for (j, ((step, bb), (_, sb))) in p.batch64.memory.iter().zip(&p.scalar.memory).enumerate()
        {
            let msep = if j + 1 < p.batch64.memory.len() {
                ","
            } else {
                ""
            };
            writeln!(
                out,
                "        {{\"step\": {step}, \"batch64_bytes\": {bb}, \"scalar_bytes\": {sb}}}{msep}"
            )?;
        }
        writeln!(out, "      ]")?;
        writeln!(out, "    }}{sep}")?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    out.flush()?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let e = &p.batch64.engine;
            let rebuild_share = if e.patched_batches + e.rebuilt_batches > 0 {
                e.rebuilt_batches as f64 / (e.patched_batches + e.rebuilt_batches) as f64
            } else {
                0.0
            };
            vec![
                p.w.name.to_string(),
                p.w.tracker.name().to_string(),
                p.w.batch_ticks.to_string(),
                f(p.scalar.wall_secs),
                f(p.batch64.wall_secs),
                format!("{:.2}x", p.speedup_vs_scalar()),
                format!("{:.2}x", p.speedup_vs_full()),
                format!("{:.0}%", rebuild_share * 100.0),
            ]
        })
        .collect();
    print_table(
        "Flat graph core: 64-lane batched traversal vs scalar backend (identical answers)",
        &[
            "workload",
            "tracker",
            "batch",
            "scalar s",
            "batch64 s",
            "vs scalar",
            "vs full",
            "rebuilds",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
    Ok(())
}
