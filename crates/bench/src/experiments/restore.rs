//! Checkpoint/restore experiment: warm-restart cost versus full replay.
//!
//! The persistence layer's promise (see `tdn-persist`) is that a tracker
//! restored from a checkpoint at step `t` and fed the remaining stream is
//! **bit-identical** — solutions, spreads, oracle-call tallies — to one
//! that never stopped. This experiment runs HISTAPPROX over a prepared
//! stream with periodic checkpointing, then:
//!
//! 1. restores from the last checkpoint and replays the tail, asserting
//!    the bit-identical guarantee on the live workload;
//! 2. measures the warm-restart cost (load + decode) against the cost of
//!    rebuilding the same state by replaying the stream prefix from
//!    scratch — the whole point of checkpointing: restart cost becomes
//!    proportional to *state*, not *history*.
//!
//! Results land in `BENCH_restore.json` (schema documented in
//! `EXPERIMENTS.md`) so successive commits can track restore latency and
//! checkpoint sizes.

use crate::checks::ensure;
use crate::driver::{run_tracker_checkpointed, run_tracker_from, PreparedStream};
use crate::report::{f, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use tdn_core::{HistApprox, InfluenceTracker, TrackerConfig};
use tdn_persist::load_checkpoint;
use tdn_streams::Dataset;

const EPS: f64 = 0.3;
const P: f64 = 0.001;
const K: usize = 10;
const L: u32 = 10_000;
/// Ticks coalesced per arrival batch (the serving-scale arrival shape, as
/// in the throughput experiment).
const BATCH_TICKS: usize = 16;

/// Runs the checkpoint/restore experiment and writes `BENCH_restore.json`.
///
/// `checkpoint_every` is the `--checkpoint-every` CLI knob: a checkpoint is
/// written after every `N` processed steps (default: an eighth of the
/// stream, so the quick scale still exercises several snapshots).
pub fn run(out_dir: &Path, scale: &Scale, checkpoint_every: Option<usize>) -> std::io::Result<()> {
    let stream =
        PreparedStream::geometric(Dataset::TwitterHiggs, scale.seed, P, L, scale.steps_main)
            .coalesce(BATCH_TICKS);
    let cfg = TrackerConfig::new(K, EPS, L);
    let every = checkpoint_every.unwrap_or_else(|| (stream.len() / 8).max(1));
    // The driver skips a checkpoint on the final step (nothing left to
    // resume into), so an interval that never fires mid-stream is a usage
    // error, reported cleanly rather than via a failed assertion.
    if every >= stream.len() {
        return Err(std::io::Error::other(format!(
            "--checkpoint-every {every} never fires: the prepared stream has only {} steps \
             (choose a value below that)",
            stream.len()
        )));
    }
    let ckpt_dir = out_dir.join("checkpoints");

    // Uninterrupted run, checkpointing as it goes.
    let mut live = HistApprox::new(&cfg);
    let (full_log, checkpoints) =
        run_tracker_checkpointed(&mut live, &stream, &cfg, every, &ckpt_dir)
            .map_err(|e| std::io::Error::other(format!("checkpointing failed: {e}")))?;

    // Warm restart from the last checkpoint; replay the tail.
    let last = checkpoints.last().expect("non-empty");
    let load_start = Instant::now();
    let (step, mut warm): (u64, HistApprox) = load_checkpoint(&last.path, &cfg)
        .map_err(|e| std::io::Error::other(format!("restore failed: {e}")))?;
    let load_secs = load_start.elapsed().as_secs_f64();
    ensure(step == last.step, "manifest stream position drifted")?;
    let resume_at = step as usize;
    let warm_log = run_tracker_from(&mut warm, &stream, resume_at);

    // The acceptance test: the warm tail must be bit-identical to the
    // uninterrupted run's tail — per-step values AND cumulative oracle
    // tallies (the restored counter resumes at the saved count).
    let deterministic = warm_log.values[..] == full_log.values[resume_at..]
        && warm_log.calls[..] == full_log.calls[resume_at..];
    ensure(
        deterministic,
        "restored HISTAPPROX diverged from the uninterrupted run",
    )?;

    // The alternative a deployment without checkpoints faces: rebuild the
    // same state by replaying the whole prefix from scratch.
    let replay_start = Instant::now();
    let mut cold = HistApprox::new(&cfg);
    for (t, batch) in &stream.steps[..resume_at] {
        cold.step(*t, batch);
    }
    let replay_secs = replay_start.elapsed().as_secs_f64();
    let speedup = if load_secs > 0.0 {
        replay_secs / load_secs
    } else {
        f64::INFINITY
    };

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_restore.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"checkpoint_restore\",")?;
    writeln!(out, "  \"tracker\": \"HistApprox\",")?;
    writeln!(
        out,
        "  \"workload\": {{\"dataset\": \"{}\", \"steps\": {}, \"edges\": {}, \
         \"k\": {K}, \"eps\": {EPS}, \"max_lifetime\": {L}, \"geo_p\": {P}, \"seed\": {}}},",
        Dataset::TwitterHiggs.slug(),
        stream.len(),
        stream.edges,
        scale.seed,
    )?;
    writeln!(out, "  \"checkpoint_every\": {every},")?;
    writeln!(out, "  \"checkpoints\": [")?;
    for (i, c) in checkpoints.iter().enumerate() {
        let sep = if i + 1 < checkpoints.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"step\": {}, \"bytes\": {}, \"save_ms\": {}}}{sep}",
            c.step,
            c.bytes,
            f(c.save_secs * 1e3),
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"restore\": {{")?;
    writeln!(out, "    \"step\": {},", last.step)?;
    writeln!(out, "    \"checkpoint_bytes\": {},", last.bytes)?;
    writeln!(out, "    \"load_ms\": {},", f(load_secs * 1e3))?;
    writeln!(out, "    \"replay_secs\": {},", f(replay_secs))?;
    writeln!(out, "    \"speedup_vs_replay\": {},", f(speedup))?;
    writeln!(out, "    \"tail_steps\": {}", warm_log.values.len())?;
    writeln!(out, "  }},")?;
    writeln!(out, "  \"deterministic\": {deterministic}")?;
    writeln!(out, "}}")?;
    out.flush()?;

    let rows: Vec<Vec<String>> = checkpoints
        .iter()
        .map(|c| {
            vec![
                c.step.to_string(),
                format!("{:.1}", c.bytes as f64 / 1024.0),
                f(c.save_secs * 1e3),
            ]
        })
        .collect();
    print_table(
        "Periodic checkpoints (HISTAPPROX)",
        &["step", "KiB", "save ms"],
        &rows,
    );
    println!(
        "warm restart at step {}: load {:.1} ms vs replay {:.2} s ({:.0}x), tail bit-identical",
        last.step,
        load_secs * 1e3,
        replay_secs,
        speedup,
    );
    println!("wrote {}", path.display());
    Ok(())
}
