//! Wide-traversal experiment: the wide-lane direction-optimizing engine
//! ([`TraversalKind::Wide`] — up to 256 lanes per traversal, automatic
//! top-down/bottom-up sweeps, work-stealing lane scheduling) versus the
//! 64-lane top-down [`TraversalKind::Batch64`] baseline it replaced as the
//! default.
//!
//! Every workload replays the *identical* prepared stream through both
//! engines; rebuild-heavy shapes (coarse batches → many marked sources per
//! batch → full lane complements and wide frontiers) are the headline, and
//! a sparse small-batch stream rides along as the honest control where
//! wider labels and direction switching have nothing to amortize.
//!
//! The run **fails with a non-zero exit** unless:
//!
//! * the full pinned grid — lane widths {64, 128, 256} × sweep directions
//!   {top-down, auto} ([`TraversalKind::Fixed`]) — and the adaptive `Wide`
//!   engine produce per-step solution values and oracle tallies
//!   bit-identical to the `Batch64` baseline, at 1 thread *and* 4 threads;
//! * at least one `Auto`-direction cell actually exercised the bottom-up
//!   path (observed via [`tdn_graph::bottom_up_sweeps`] — a switch that
//!   never fires would make the direction grid vacuous);
//! * the wide engine clears the acceptance bar (≥ 1.3× wall-clock over
//!   `Batch64` on the best rebuild-heavy headline workload).
//!
//! Results land in `BENCH_widetrav.json` (see EXPERIMENTS.md for the
//! schema); the control's speedup is reported unfiltered, whether or not
//! it pays.

use crate::checks::ensure;
use crate::driver::PreparedStream;
use crate::report::{f, percentile, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use tdn_core::{
    HistApprox, InfluenceTracker, SieveAdnTracker, SpreadMode, SweepDirection, TrackerConfig,
    TraversalKind,
};
use tdn_streams::Dataset;

const EPS: f64 = 0.3;
const P: f64 = 0.001;
const K: usize = 10;

/// The pinned identity grid: every lane width the label machinery supports
/// crossed with both sweep policies.
const GRID: [(usize, SweepDirection); 6] = [
    (64, SweepDirection::TopDown),
    (64, SweepDirection::Auto),
    (128, SweepDirection::TopDown),
    (128, SweepDirection::Auto),
    (256, SweepDirection::TopDown),
    (256, SweepDirection::Auto),
];

fn direction_name(d: SweepDirection) -> &'static str {
    match d {
        SweepDirection::TopDown => "top_down",
        SweepDirection::Auto => "auto",
    }
}

/// Which tracker a workload measures.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Tracker {
    /// SIEVEADN over the addition-only view (phases 3–4 dominate).
    SieveAdn,
    /// HISTAPPROX end to end (adds the multi-instance stealing fan-out).
    HistApprox,
}

impl Tracker {
    fn name(self) -> &'static str {
        match self {
            Tracker::SieveAdn => "SieveADN",
            Tracker::HistApprox => "HistApprox",
        }
    }
}

/// One grid point.
struct Workload {
    name: &'static str,
    tracker: Tracker,
    dataset: Dataset,
    /// Ticks coalesced per arrival batch. Coarse batches mean many marked
    /// sources and rebuild misses per batch — full 256-lane complements
    /// and frontiers dense enough to trip the bottom-up switch.
    batch_ticks: usize,
    max_lifetime: u32,
    steps_factor: u64,
    /// Whether this workload counts toward the ≥ 1.3× acceptance bar.
    headline: bool,
    /// Whether the full pinned width × direction grid replays this stream
    /// (expensive: 6 extra cells × 2 thread counts); non-grid workloads
    /// still verify `Wide` against `Batch64` at both thread counts.
    full_grid: bool,
}

/// The measured grid. Coarse cascade batches are the rebuild-heavy
/// headline: each batch marks hundreds of sources, so lane complements
/// fill all 256 lanes and rebuild sweeps touch most of the graph — wide
/// words amortize queue traffic 4× and dense frontiers pull bottom-up.
/// The sparse small-batch point is the control: a handful of lanes per
/// batch fits one 64-bit word and frontiers stay narrow, so the wide
/// engine must merely break even there.
static WORKLOADS: [Workload; 3] = [
    Workload {
        name: "rebuild_wide_hk",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 256,
        max_lifetime: 10_000,
        steps_factor: 48,
        headline: true,
        full_grid: true,
    },
    Workload {
        name: "rebuild_hist_higgs",
        tracker: Tracker::HistApprox,
        dataset: Dataset::TwitterHiggs,
        batch_ticks: 48,
        max_lifetime: 10_000,
        steps_factor: 6,
        headline: true,
        full_grid: false,
    },
    Workload {
        name: "sparse_small_batch_control",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 2,
        max_lifetime: 10_000,
        steps_factor: 3,
        headline: false,
        full_grid: true,
    },
];

/// One configuration's measurements over a workload.
struct CellLog {
    values: Vec<u64>,
    calls: Vec<u64>,
    step_secs: Vec<f64>,
    wall_secs: f64,
}

enum AnyTracker {
    // Both variants boxed: the trackers weigh hundreds of bytes each
    // (clippy::large_enum_variant), and one is built per measured cell.
    SieveAdn(Box<SieveAdnTracker>),
    HistApprox(Box<HistApprox>),
}

impl AnyTracker {
    fn build(sel: Tracker, cfg: &TrackerConfig, tr: TraversalKind) -> Self {
        match sel {
            Tracker::SieveAdn => AnyTracker::SieveAdn(Box::new(
                SieveAdnTracker::new(cfg)
                    .with_spread_mode(SpreadMode::Incremental)
                    .with_traversal(tr),
            )),
            Tracker::HistApprox => AnyTracker::HistApprox(Box::new(
                HistApprox::new(cfg)
                    .with_spread_mode(SpreadMode::Incremental)
                    .with_traversal(tr),
            )),
        }
    }

    fn step(&mut self, t: u64, batch: &[tdn_streams::TimedEdge]) -> u64 {
        match self {
            AnyTracker::SieveAdn(tr) => tr.step(t, batch).value,
            AnyTracker::HistApprox(tr) => tr.step(t, batch).value,
        }
    }

    fn calls(&self) -> u64 {
        match self {
            AnyTracker::SieveAdn(tr) => tr.oracle_calls(),
            AnyTracker::HistApprox(tr) => tr.oracle_calls(),
        }
    }
}

fn run_cell(
    sel: Tracker,
    stream: &PreparedStream,
    cfg: &TrackerConfig,
    tr: TraversalKind,
    threads: usize,
) -> CellLog {
    exec::with_threads(threads, || {
        let mut tracker = AnyTracker::build(sel, cfg, tr);
        let mut log = CellLog {
            values: Vec::with_capacity(stream.len()),
            calls: Vec::with_capacity(stream.len()),
            step_secs: Vec::with_capacity(stream.len()),
            wall_secs: 0.0,
        };
        let start = Instant::now();
        for (t, batch) in &stream.steps {
            let step_start = Instant::now();
            let value = tracker.step(*t, batch);
            log.step_secs.push(step_start.elapsed().as_secs_f64());
            log.values.push(value);
            log.calls.push(tracker.calls());
        }
        log.wall_secs = start.elapsed().as_secs_f64();
        log
    })
}

/// Timed repetitions per engine on headline workloads. The computation is
/// deterministic, so the minimum-wall repetition is the least-perturbed
/// measurement — single runs on a busy 1-core host can swing either side
/// of the acceptance bar on scheduler noise alone. Repetitions interleave
/// the two engines (b64, wide, b64, wide, …) so drifting host load hits
/// both about equally and the per-engine minima come from comparable
/// windows.
const MEASURE_REPS: usize = 3;

/// Keeps `best` pointing at the repetition with the smallest wall clock
/// (values/calls are identical across repetitions of the same cell).
fn keep_min(best: &mut Option<CellLog>, next: CellLog) {
    if best.as_ref().is_none_or(|b| next.wall_secs < b.wall_secs) {
        *best = Some(next);
    }
}

/// One verified grid cell (identity only; pinned cells are not timed
/// comparatively — their job is proving the whole grid bit-identical).
struct GridCell {
    lanes: usize,
    direction: SweepDirection,
    threads: usize,
}

/// One workload's paired measurements.
struct GridPoint {
    w: &'static Workload,
    edges: u64,
    steps: usize,
    batch64: CellLog,
    wide: CellLog,
    grid: Vec<GridCell>,
}

impl GridPoint {
    fn speedup_vs_batch64(&self) -> f64 {
        self.batch64.wall_secs / self.wide.wall_secs.max(1e-9)
    }
}

/// Runs the grid, enforces bit-identity, the bottom-up-switch witness, and
/// the acceptance bar; writes `BENCH_widetrav.json`; prints the summary.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    // Discarded warm-up (allocator/page-fault one-time costs).
    {
        let warm = PreparedStream::geometric(Dataset::TwitterHiggs, scale.seed, P, 10_000, 200)
            .coalesce(8);
        run_cell(
            Tracker::SieveAdn,
            &warm,
            &TrackerConfig::new(K, EPS, 10_000),
            TraversalKind::Wide,
            1,
        );
    }
    let sweeps_before = tdn_graph::bottom_up_sweeps();
    let mut points = Vec::new();
    for w in &WORKLOADS {
        let stream = PreparedStream::geometric(
            w.dataset,
            scale.seed,
            P,
            w.max_lifetime,
            scale.steps_main * w.steps_factor,
        )
        .coalesce(w.batch_ticks);
        let cfg = TrackerConfig::new(K, EPS, w.max_lifetime);
        let reps = if w.headline { MEASURE_REPS } else { 1 };
        let (mut batch64, mut wide) = (None, None);
        for _ in 0..reps {
            keep_min(
                &mut batch64,
                run_cell(w.tracker, &stream, &cfg, TraversalKind::Batch64, 1),
            );
            keep_min(
                &mut wide,
                run_cell(w.tracker, &stream, &cfg, TraversalKind::Wide, 1),
            );
        }
        let (batch64, wide) = (batch64.expect("reps >= 1"), wide.expect("reps >= 1"));
        ensure(
            wide.values == batch64.values && wide.calls == batch64.calls,
            format!(
                "[{}] wide engine diverged from the Batch64 baseline",
                w.name
            ),
        )?;
        // Thread-count invariance for both engines.
        for (tag, tr, reference) in [
            ("wide", TraversalKind::Wide, &wide),
            ("batch64", TraversalKind::Batch64, &batch64),
        ] {
            let threaded = run_cell(w.tracker, &stream, &cfg, tr, 4);
            ensure(
                threaded.values == reference.values && threaded.calls == reference.calls,
                format!("[{}] {tag} engine not thread-count invariant", w.name),
            )?;
        }
        // The pinned width × direction grid, each cell against the same
        // baseline log.
        let mut grid = Vec::new();
        if w.full_grid {
            for &(lanes, direction) in &GRID {
                for threads in [1usize, 4] {
                    let tr = TraversalKind::Fixed { lanes, direction };
                    let cell = run_cell(w.tracker, &stream, &cfg, tr, threads);
                    ensure(
                        cell.values == batch64.values && cell.calls == batch64.calls,
                        format!(
                            "[{}] grid cell lanes={lanes} direction={} threads={threads} \
                             diverged from the Batch64 baseline",
                            w.name,
                            direction_name(direction),
                        ),
                    )?;
                    grid.push(GridCell {
                        lanes,
                        direction,
                        threads,
                    });
                }
            }
        }
        points.push(GridPoint {
            w,
            edges: stream.edges,
            steps: stream.len(),
            batch64,
            wide,
            grid,
        });
    }
    // The direction grid is only meaningful if Auto sweeps actually went
    // bottom-up somewhere in the run.
    let bottom_up_sweeps = tdn_graph::bottom_up_sweeps() - sweeps_before;
    ensure(
        bottom_up_sweeps > 0,
        "no traversal ever switched to a bottom-up sweep; the direction grid is vacuous",
    )?;
    let headline_best = points
        .iter()
        .filter(|p| p.w.headline)
        .map(GridPoint::speedup_vs_batch64)
        .fold(f64::NAN, f64::max);
    ensure(
        headline_best >= 1.3,
        format!(
            "acceptance bar missed: best rebuild-heavy speedup vs the Batch64 \
             baseline is {headline_best:.2}x (< 1.3x)"
        ),
    )?;
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_widetrav.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"widetrav\",")?;
    writeln!(
        out,
        "  \"config\": {{\"k\": {K}, \"eps\": {EPS}, \"geo_p\": {P}, \"seed\": {}}},",
        scale.seed
    )?;
    writeln!(out, "  \"host_cores\": {cores},")?;
    writeln!(out, "  \"identical_grid\": true,")?;
    writeln!(out, "  \"bottom_up_sweeps\": {bottom_up_sweeps},")?;
    writeln!(out, "  \"best_speedup_vs_batch64\": {},", f(headline_best))?;
    writeln!(out, "  \"workloads\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        writeln!(out, "    {{")?;
        writeln!(
            out,
            "      \"name\": \"{}\", \"tracker\": \"{}\", \"dataset\": \"{}\", \
             \"batch_ticks\": {}, \"max_lifetime\": {}, \"steps\": {}, \"edges\": {}, \
             \"headline\": {},",
            p.w.name,
            p.w.tracker.name(),
            p.w.dataset.slug(),
            p.w.batch_ticks,
            p.w.max_lifetime,
            p.steps,
            p.edges,
            p.w.headline,
        )?;
        for (tag, log) in [("batch64", &p.batch64), ("wide", &p.wide)] {
            writeln!(
                out,
                "      \"{tag}\": {{\"wall_secs\": {}, \"p50_step_ms\": {}, \
                 \"p99_step_ms\": {}}},",
                f(log.wall_secs),
                f(percentile(&log.step_secs, 0.5) * 1e3),
                f(percentile(&log.step_secs, 0.99) * 1e3),
            )?;
        }
        writeln!(
            out,
            "      \"speedup_vs_batch64\": {}, \"identical\": true, \"oracle_calls\": {},",
            f(p.speedup_vs_batch64()),
            p.wide.calls.last().copied().unwrap_or(0),
        )?;
        writeln!(out, "      \"grid\": [")?;
        for (j, c) in p.grid.iter().enumerate() {
            let gsep = if j + 1 < p.grid.len() { "," } else { "" };
            writeln!(
                out,
                "        {{\"lanes\": {}, \"direction\": \"{}\", \"threads\": {}, \
                 \"identical\": true}}{gsep}",
                c.lanes,
                direction_name(c.direction),
                c.threads,
            )?;
        }
        writeln!(out, "      ]")?;
        writeln!(out, "    }}{sep}")?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    out.flush()?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.w.name.to_string(),
                p.w.tracker.name().to_string(),
                p.w.batch_ticks.to_string(),
                f(p.batch64.wall_secs),
                f(p.wide.wall_secs),
                format!("{:.2}x", p.speedup_vs_batch64()),
                if p.grid.is_empty() {
                    "wide=b64".to_string()
                } else {
                    format!("{} cells", p.grid.len())
                },
            ]
        })
        .collect();
    print_table(
        "Wide-lane direction-optimizing engine vs Batch64 baseline (identical answers)",
        &[
            "workload",
            "tracker",
            "batch",
            "batch64 s",
            "wide s",
            "speedup",
            "grid",
        ],
        &rows,
    );
    println!(
        "bottom-up sweeps observed: {bottom_up_sweeps}; wrote {}",
        path.display()
    );
    Ok(())
}
