//! Scale experiment: delta-checkpoint chains and the memory budget under a
//! growing, community-structured SIEVEADN workload.
//!
//! Three acceptance criteria from the scale-ready persistence stack are
//! asserted while the experiment runs (see DESIGN.md "Scale-ready
//! persistence" and "Memory budget"):
//!
//! 1. **Delta economy** — every delta save written by a
//!    [`CheckpointChain`] must cost < 25 % of a full snapshot taken at the
//!    same step (the contemporaneous `checkpoint_to_vec` bytes, measured
//!    in memory, not against the — much smaller — base written earlier).
//! 2. **Chain restore fidelity** — restoring through the *entire* delta
//!    chain and replaying the stream tail is bit-identical (per-step
//!    solutions and cumulative oracle tallies) to the uninterrupted run,
//!    at `TDN_THREADS` 1 and 4.
//! 3. **Budget ceiling** — a run under a memory budget completes with its
//!    post-step footprint never above the ceiling, with the *same*
//!    answers, while the unconstrained control run exceeds that ceiling.
//!
//! The workload is deterministic (no RNG): each step one fresh window of
//! `WINDOW` nodes arrives, wired into dense `GROUP`-node communities
//! (`OUT_DEG` out-edges per node). The window width equals the graph's
//! snapshot-chunk width, so a step dirties exactly one adjacency chunk per
//! direction and everything older rides along as cheap section references
//! — the shape delta checkpoints are built for — while reachability stays
//! bounded by the community size, keeping the oracle cheap at any scale.
//!
//! Results land in `BENCH_scale.json` (schema documented in
//! EXPERIMENTS.md).

use crate::checks::ensure;
use crate::report::{f, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;
use tdn_core::{InfluenceTracker, SieveAdnTracker, Solution, TrackerConfig};
use tdn_graph::Time;
use tdn_persist::{
    checkpoint_to_vec, load_checkpoint, CheckpointChain, CompactionPolicy, SnapshotKind,
};
use tdn_streams::TimedEdge;

const K: usize = 10;
const EPS: f64 = 0.25;
const L: u32 = 10_000;
/// Nodes arriving per step. Equal to the graph's adjacency snapshot-chunk
/// width, so each step's arrivals land in exactly one fresh chunk.
const WINDOW: usize = 1024;
/// Community size: reachability (and so oracle cost) is capped at this.
const GROUP: usize = 16;
/// Out-edges per node, all within its community.
const OUT_DEG: usize = 8;
/// A checkpoint is saved every this many steps once saving starts.
const SAVE_EVERY: u64 = 2;
/// The acceptance ceiling on `delta bytes / contemporaneous full bytes`.
const MAX_DELTA_RATIO: f64 = 0.25;
/// Thread counts the chain-restore replay is verified at.
const RESTORE_THREADS: [usize; 2] = [1, 4];

/// One chain save, with the contemporaneous full-snapshot cost measured
/// alongside for the delta-economy ratio.
struct SavePoint {
    step: u64,
    kind: SnapshotKind,
    bytes: u64,
    full_bytes: u64,
    fresh_sections: usize,
    ref_sections: usize,
    save_ms: f64,
    path: PathBuf,
}

impl SavePoint {
    fn ratio(&self) -> f64 {
        self.bytes as f64 / self.full_bytes as f64
    }
}

/// Builds the deterministic community stream: step `s` introduces nodes
/// `[s·WINDOW, (s+1)·WINDOW)` wired as dense GROUP-node communities.
fn community_stream(steps: u64) -> Vec<(Time, Vec<TimedEdge>)> {
    (0..steps)
        .map(|s| {
            let base = s as usize * WINDOW;
            let mut batch = Vec::with_capacity(WINDOW * OUT_DEG);
            for group in (0..WINDOW).step_by(GROUP) {
                for j in 0..GROUP {
                    let src = (base + group + j) as u32;
                    for d in 1..=OUT_DEG {
                        let dst = (base + group + (j + d) % GROUP) as u32;
                        batch.push(TimedEdge::new(src, dst, L));
                    }
                }
            }
            (s as Time, batch)
        })
        .collect()
}

/// Replays the whole stream on a fresh tracker under an optional budget,
/// sampling the post-step footprint. Returns the peak footprint, every
/// per-step solution, the final oracle tally, and the shed counters.
fn replay_budgeted(
    stream: &[(Time, Vec<TimedEdge>)],
    cfg: &TrackerConfig,
    budget: Option<usize>,
) -> (usize, Vec<Solution>, u64, tdn_core::SpreadStatsSnapshot) {
    let cfg = match budget {
        Some(b) => cfg.clone().with_memory_budget(b),
        None => cfg.clone(),
    };
    let mut tracker = SieveAdnTracker::new(&cfg);
    let mut peak = 0usize;
    let sols = stream
        .iter()
        .map(|(t, batch)| {
            let sol = tracker.step(*t, batch);
            peak = peak.max(tracker.approx_bytes());
            sol
        })
        .collect();
    (peak, sols, tracker.oracle_calls(), tracker.spread_stats())
}

fn persist_err(e: tdn_persist::PersistError) -> std::io::Error {
    std::io::Error::other(format!("persistence failed: {e}"))
}

/// Runs the scale experiment, asserts the three acceptance criteria, and
/// writes `BENCH_scale.json`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let steps = scale.steps_persist;
    ensure(steps >= 8, "scale experiment needs at least 8 steps")?;
    let stream = community_stream(steps);
    let edges: u64 = stream.iter().map(|(_, b)| b.len() as u64).sum();
    let cfg = TrackerConfig::new(K, EPS, L);

    // Saving spans the middle half of the stream — the base lands once the
    // state is non-trivial, and a quarter of the stream remains after the
    // chain tip so the restore replay has a real tail to verify against.
    let save_start = steps / 4;
    let cut = steps * 3 / 4;

    let chain_dir = out_dir.join("scale_chain");
    if chain_dir.exists() {
        std::fs::remove_dir_all(&chain_dir)?;
    }
    std::fs::create_dir_all(&chain_dir)?;
    // Compaction is disabled on purpose: the experiment measures a pure
    // base + delta-chain, so a forced re-base mid-run would contaminate
    // both the ratio and the restore-latency curve.
    let mut chain = CheckpointChain::new(&chain_dir, "scale").with_policy(CompactionPolicy {
        max_chain_len: usize::MAX,
        max_delta_ratio: f64::INFINITY,
    });

    // Phase 1: uninterrupted reference run, checkpointing as it goes and
    // sampling the post-step footprint (the budget phase's control run).
    let mut live = SieveAdnTracker::new(&cfg);
    let mut reference: Vec<Solution> = Vec::with_capacity(stream.len());
    let mut control_peak = 0usize;
    let mut saves: Vec<SavePoint> = Vec::new();
    for (t, batch) in &stream {
        reference.push(live.step(*t, batch));
        control_peak = control_peak.max(live.approx_bytes());
        let done = t + 1;
        if done >= save_start && done <= cut && (done - save_start).is_multiple_of(SAVE_EVERY) {
            let t0 = Instant::now();
            let receipt = chain.save(&live, &cfg, done).map_err(persist_err)?;
            let save_ms = t0.elapsed().as_secs_f64() * 1e3;
            let full_bytes = checkpoint_to_vec(&live, &cfg, done).len() as u64;
            saves.push(SavePoint {
                step: done,
                kind: receipt.kind,
                bytes: receipt.bytes,
                full_bytes,
                fresh_sections: receipt.fresh_sections,
                ref_sections: receipt.ref_sections,
                save_ms,
                path: receipt.path,
            });
        }
    }
    let final_calls = live.oracle_calls();
    ensure(saves.len() >= 3, "too few checkpoints to form a chain")?;
    ensure(
        saves[0].kind == SnapshotKind::Base
            && saves[1..].iter().all(|s| s.kind == SnapshotKind::Delta),
        "chain shape drifted: expected one base followed by deltas only",
    )?;

    // Criterion 1: every delta costs < 25 % of a full snapshot at the same
    // step.
    let deltas = &saves[1..];
    let max_ratio = deltas.iter().map(SavePoint::ratio).fold(0.0, f64::max);
    let mean_ratio = deltas.iter().map(SavePoint::ratio).sum::<f64>() / deltas.len() as f64;
    ensure(
        max_ratio < MAX_DELTA_RATIO,
        format!(
            "delta economy regressed: worst delta is {:.1}% of a contemporaneous full \
             snapshot (limit {:.0}%)",
            max_ratio * 100.0,
            MAX_DELTA_RATIO * 100.0
        ),
    )?;

    // Phase 2: restore latency versus chain length — every save point is a
    // valid restore target; the i-th resolves an (i+1)-link chain.
    let mut restores: Vec<(usize, u64, f64)> = Vec::with_capacity(saves.len());
    for (i, sp) in saves.iter().enumerate() {
        let t0 = Instant::now();
        let (at, _warm): (u64, SieveAdnTracker) =
            load_checkpoint(&sp.path, &cfg).map_err(persist_err)?;
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;
        ensure(at == sp.step, "manifest stream position drifted")?;
        restores.push((i + 1, sp.step, load_ms));
    }

    // Criterion 2: restoring through the full chain and replaying the tail
    // is bit-identical to the uninterrupted run, at 1 and 4 threads.
    let tip = saves.last().expect("non-empty");
    for threads in RESTORE_THREADS {
        let (at, mut warm): (u64, SieveAdnTracker) =
            load_checkpoint(&tip.path, &cfg).map_err(persist_err)?;
        let tail = &stream[at as usize..];
        let sols: Vec<Solution> = exec::with_threads(threads, || {
            tail.iter().map(|(t, b)| warm.step(*t, b)).collect()
        });
        ensure(
            sols == reference[at as usize..],
            format!("chain restore diverged from the uninterrupted run at {threads} thread(s)"),
        )?;
        ensure(
            warm.oracle_calls() == final_calls,
            format!("oracle tallies diverged after chain restore at {threads} thread(s)"),
        )?;
    }

    // Phase 3 / criterion 3: the memory budget. A floor probe (1-byte
    // budget, sheds every step) bounds the irreducible footprint; the
    // ceiling is set halfway between floor and control peak, so the
    // control provably exceeds it and shedding provably gets under it —
    // with bit-identical answers in both budgeted runs.
    let (floor_peak, floor_sols, floor_calls, floor_stats) =
        replay_budgeted(&stream, &cfg, Some(1));
    ensure(
        floor_sols == reference && floor_calls == final_calls,
        "floor-budget shedding changed answers",
    )?;
    ensure(
        floor_stats.shed_fallback > 0,
        "floor-budget run never reached the fallback shedding level",
    )?;
    ensure(
        control_peak as f64 >= floor_peak as f64 * 1.05,
        format!(
            "workload cannot demonstrate the budget: control peak {control_peak} is within \
             5% of the shed floor {floor_peak}"
        ),
    )?;
    let ceiling = floor_peak + (control_peak - floor_peak) / 2;
    let (constrained_peak, constrained_sols, constrained_calls, constrained_stats) =
        replay_budgeted(&stream, &cfg, Some(ceiling));
    ensure(
        constrained_peak <= ceiling,
        format!("budgeted run exceeded its ceiling: post-step peak {constrained_peak} > {ceiling}"),
    )?;
    ensure(
        constrained_sols == reference && constrained_calls == final_calls,
        "budget shedding changed answers",
    )?;
    ensure(
        constrained_stats.shed_memo > 0,
        "budgeted run finished under the ceiling without shedding — ceiling not binding",
    )?;

    // Machine-readable record.
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_scale.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"scale_persistence\",")?;
    writeln!(out, "  \"tracker\": \"SieveADN\",")?;
    writeln!(
        out,
        "  \"workload\": {{\"steps\": {steps}, \"edges\": {edges}, \"nodes\": {}, \
         \"window\": {WINDOW}, \"group\": {GROUP}, \"out_deg\": {OUT_DEG}, \
         \"k\": {K}, \"eps\": {EPS}}},",
        steps as usize * WINDOW,
    )?;
    writeln!(out, "  \"snapshots\": [")?;
    for (i, sp) in saves.iter().enumerate() {
        let sep = if i + 1 < saves.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"step\": {}, \"kind\": \"{:?}\", \"bytes\": {}, \"full_bytes\": {}, \
             \"ratio\": {}, \"fresh_sections\": {}, \"ref_sections\": {}, \"save_ms\": {}}}{sep}",
            sp.step,
            sp.kind,
            sp.bytes,
            sp.full_bytes,
            f(sp.ratio()),
            sp.fresh_sections,
            sp.ref_sections,
            f(sp.save_ms),
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"max_delta_ratio\": {},", f(max_ratio))?;
    writeln!(out, "  \"mean_delta_ratio\": {},", f(mean_ratio))?;
    writeln!(out, "  \"restores\": [")?;
    for (i, (chain_len, step, load_ms)) in restores.iter().enumerate() {
        let sep = if i + 1 < restores.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"chain_len\": {chain_len}, \"step\": {step}, \"load_ms\": {}}}{sep}",
            f(*load_ms),
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(out, "  \"bit_identical\": true,")?;
    writeln!(
        out,
        "  \"restore_threads\": [{}],",
        RESTORE_THREADS.map(|t| t.to_string()).join(", ")
    )?;
    writeln!(out, "  \"budget\": {{")?;
    writeln!(out, "    \"control_peak_bytes\": {control_peak},")?;
    writeln!(out, "    \"floor_peak_bytes\": {floor_peak},")?;
    writeln!(out, "    \"ceiling_bytes\": {ceiling},")?;
    writeln!(out, "    \"constrained_peak_bytes\": {constrained_peak},")?;
    writeln!(out, "    \"within_ceiling\": true,")?;
    writeln!(out, "    \"control_exceeds\": true,")?;
    writeln!(
        out,
        "    \"sheds\": {{\"memo\": {}, \"arena\": {}, \"fallback\": {}}}",
        constrained_stats.shed_memo, constrained_stats.shed_arena, constrained_stats.shed_fallback,
    )?;
    writeln!(out, "  }}")?;
    writeln!(out, "}}")?;
    out.flush()?;

    // Human-readable summaries.
    let rows: Vec<Vec<String>> = saves
        .iter()
        .map(|sp| {
            vec![
                sp.step.to_string(),
                format!("{:?}", sp.kind),
                sp.bytes.to_string(),
                sp.full_bytes.to_string(),
                format!("{:.1}%", sp.ratio() * 100.0),
                format!("{}/{}", sp.fresh_sections, sp.ref_sections),
                format!("{:.2}", sp.save_ms),
            ]
        })
        .collect();
    print_table(
        "Delta chain saves (SIEVEADN, community stream)",
        &[
            "step",
            "kind",
            "bytes",
            "full bytes",
            "ratio",
            "fresh/ref",
            "save ms",
        ],
        &rows,
    );
    let rows: Vec<Vec<String>> = restores
        .iter()
        .map(|(chain_len, step, load_ms)| {
            vec![
                chain_len.to_string(),
                step.to_string(),
                format!("{load_ms:.2}"),
            ]
        })
        .collect();
    print_table(
        "Chain restore latency vs chain length",
        &["links", "step", "load ms"],
        &rows,
    );
    println!(
        "memory budget: control peak {control_peak} B, shed floor {floor_peak} B, \
         ceiling {ceiling} B, constrained peak {constrained_peak} B (sheds: memo {}, \
         arena {}, fallback {})",
        constrained_stats.shed_memo, constrained_stats.shed_arena, constrained_stats.shed_fallback,
    );
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_stream_is_deterministic_and_chunk_aligned() {
        let a = community_stream(3);
        let b = community_stream(3);
        assert_eq!(a.len(), 3);
        for ((ta, ba), (tb, bb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ba, bb);
            assert_eq!(ba.len(), WINDOW * OUT_DEG);
        }
        // Step s touches only nodes in window s: one snapshot chunk.
        for (s, (_, batch)) in a.iter().enumerate() {
            let lo = (s * WINDOW) as u32;
            let hi = ((s + 1) * WINDOW) as u32;
            assert!(batch
                .iter()
                .all(|e| (lo..hi).contains(&e.src.0) && (lo..hi).contains(&e.dst.0)));
        }
    }
}
