//! Parallel-scaling experiment: HISTAPPROX stream-processing throughput
//! (edges/sec) versus execution-engine thread count on one fixed workload.
//!
//! This is the perf-trajectory anchor for the parallel execution engine:
//! every run replays the *identical* prepared stream at each thread count,
//! asserts the determinism invariant (bit-identical per-step values and
//! oracle-call tallies), and emits machine-readable
//! `BENCH_throughput.json` next to the CSVs so successive commits can be
//! compared. Speedup is physically bounded by the host's core count — on a
//! single-core container every setting clusters around 1×, which the JSON
//! records honestly via `available_parallelism`.

use crate::checks::ensure;
use crate::driver::{run_tracker, PreparedStream, RunLog};
use crate::report::{f, latency_cells_ms, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use tdn_core::{HistApprox, TrackerConfig};
use tdn_streams::Dataset;

const EPS: f64 = 0.3;
const P: f64 = 0.001;
const K: usize = 10;
const L: u32 = 10_000;
/// Ticks coalesced per arrival batch: synthetic streams emit only a few
/// interactions per tick, while the parallel phases feed on batch-sized
/// independent work — batched arrival is the serving-scale shape.
const BATCH_TICKS: usize = 16;

/// Thread counts swept (1 must come first: it is the speedup baseline).
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Speedup floor the best thread count must clear when the gate enforces.
pub const MIN_SPEEDUP: f64 = 1.5;

/// Decision of the throughput speedup gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpeedupGate {
    /// Assert the [`MIN_SPEEDUP`] floor.
    Enforce,
    /// Skip the assertion, loudly, with this machine-readable reason.
    Skip(String),
}

/// Decides whether the >= [`MIN_SPEEDUP`] assertion runs.
///
/// Pure so the policy is unit-testable: hosts with >= 4 visible cores
/// always enforce; smaller hosts skip unless `force` (the
/// `TDN_BENCH_FORCE_SPEEDUP_CHECK=1` env override) insists — e.g. a CI
/// runner whose cgroup hides cores from `available_parallelism` but can
/// still physically scale.
pub fn speedup_gate(cores: usize, force: bool) -> SpeedupGate {
    if cores >= 4 || force {
        SpeedupGate::Enforce
    } else {
        SpeedupGate::Skip(format!(
            "speedup assertion skipped: host has {cores} core(s), needs >= 4 \
             to make >= {MIN_SPEEDUP}x physically satisfiable \
             (set TDN_BENCH_FORCE_SPEEDUP_CHECK=1 to enforce anyway)"
        ))
    }
}

/// One thread-count measurement.
pub struct ScalingPoint {
    /// Engine thread count for this run.
    pub threads: usize,
    /// The full run log (throughput, latency distribution, calls).
    pub log: RunLog,
}

/// Runs the sweep: same stream, fresh tracker per thread count.
pub fn sweep(scale: &Scale) -> Vec<ScalingPoint> {
    let stream =
        PreparedStream::geometric(Dataset::TwitterHiggs, scale.seed, P, L, scale.steps_main)
            .coalesce(BATCH_TICKS);
    // Discarded warm-up run: the first measured run must not absorb the
    // one-time page-fault/allocator costs, or the serial baseline looks
    // artificially slow and "speedup" appears even on one core.
    exec::with_threads(1, || {
        let mut tracker = HistApprox::new(&TrackerConfig::new(K, EPS, L));
        run_tracker(&mut tracker, &stream)
    });
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let cfg = TrackerConfig::new(K, EPS, L);
            let log = exec::with_threads(threads, || {
                let mut tracker = HistApprox::new(&cfg);
                run_tracker(&mut tracker, &stream)
            });
            ScalingPoint { threads, log }
        })
        .collect()
}

/// Escapes nothing (all emitted strings are identifiers) but keeps JSON
/// assembly in one place: one `{...}` object per scaling point.
fn json_point(p: &ScalingPoint) -> String {
    format!(
        "    {{\"threads\": {}, \"edges_per_sec\": {}, \"wall_secs\": {}, \
         \"p50_step_ms\": {}, \"p99_step_ms\": {}, \"oracle_calls\": {}, \"mean_value\": {}}}",
        p.threads,
        f(p.log.throughput()),
        f(p.log.wall_secs),
        f(p.log.step_latency_secs(0.5) * 1e3),
        f(p.log.step_latency_secs(0.99) * 1e3),
        p.log.total_calls(),
        f(p.log.mean_value()),
    )
}

/// Runs the scaling sweep, checks determinism, writes
/// `BENCH_throughput.json`, and prints the summary table.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let points = sweep(scale);
    let base = &points[0];
    // The determinism invariant is part of the experiment: a speedup that
    // changes answers would be measuring a different algorithm.
    let deterministic = points
        .iter()
        .all(|p| p.log.values == base.log.values && p.log.total_calls() == base.log.total_calls());
    ensure(
        deterministic,
        "parallel HISTAPPROX diverged from the serial run",
    )?;
    let base_tp = base.log.throughput();
    let best_speedup = points
        .iter()
        .map(|p| p.log.throughput() / base_tp)
        .fold(f64::NAN, f64::max);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Enforce the scaling half of the acceptance criterion wherever it is
    // physically satisfiable: a host with >= 4 cores must show >= 1.5x at
    // the best thread count, or parallel scaling has regressed. Smaller
    // hosts (e.g. 1-core CI containers) can only verify determinism — but
    // the skip must be loud and machine-readable, not silent: a reader of
    // BENCH_throughput.json has to be able to tell "passed" from "never
    // checked". `TDN_BENCH_FORCE_SPEEDUP_CHECK=1` overrides the core
    // heuristic for hosts that under-report parallelism (cgroup limits,
    // VMs), so the assertion itself stays exercisable everywhere.
    let force = std::env::var("TDN_BENCH_FORCE_SPEEDUP_CHECK").is_ok_and(|v| v == "1");
    let skipped_reason = match speedup_gate(cores, force) {
        SpeedupGate::Enforce => {
            ensure(
                best_speedup >= MIN_SPEEDUP,
                format!(
                    "parallel scaling regressed: best speedup {best_speedup:.2}x on a {cores}-core host"
                ),
            )?;
            None
        }
        SpeedupGate::Skip(reason) => {
            eprintln!("warning: {reason}");
            Some(reason)
        }
    };

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_throughput.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"throughput_scaling\",")?;
    writeln!(out, "  \"tracker\": \"HistApprox\",")?;
    writeln!(
        out,
        "  \"workload\": {{\"dataset\": \"{}\", \"steps\": {}, \"edges\": {}, \
         \"k\": {K}, \"eps\": {EPS}, \"max_lifetime\": {L}, \"geo_p\": {P}, \"seed\": {}}},",
        Dataset::TwitterHiggs.slug(),
        base.log.values.len(),
        base.log.edges,
        scale.seed,
    )?;
    writeln!(out, "  \"host_cores\": {cores},")?;
    writeln!(out, "  \"deterministic\": {deterministic},")?;
    writeln!(out, "  \"best_speedup\": {},", f(best_speedup))?;
    match &skipped_reason {
        Some(reason) => writeln!(out, "  \"skipped_reason\": \"{reason}\",")?,
        None => writeln!(out, "  \"skipped_reason\": null,")?,
    }
    writeln!(out, "  \"runs\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        writeln!(out, "{}{sep}", json_point(p))?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    out.flush()?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let [p50, p99] = latency_cells_ms(&p.log.step_secs);
            vec![
                p.threads.to_string(),
                format!("{:.0}", p.log.throughput()),
                f(p.log.throughput() / base_tp),
                p50,
                p99,
                p.log.total_calls().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Throughput scaling on {cores}-core host (HISTAPPROX, identical answers)"),
        &[
            "threads",
            "edges/s",
            "speedup",
            "p50 ms",
            "p99 ms",
            "oracle calls",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{speedup_gate, SpeedupGate};

    #[test]
    fn big_hosts_always_enforce() {
        assert_eq!(speedup_gate(4, false), SpeedupGate::Enforce);
        assert_eq!(speedup_gate(64, false), SpeedupGate::Enforce);
        // The override is a no-op where the gate already enforces.
        assert_eq!(speedup_gate(4, true), SpeedupGate::Enforce);
    }

    #[test]
    fn force_override_enforces_on_small_hosts() {
        assert_eq!(speedup_gate(1, true), SpeedupGate::Enforce);
        assert_eq!(speedup_gate(2, true), SpeedupGate::Enforce);
    }

    #[test]
    fn small_host_skip_is_loud_and_names_the_override() {
        for cores in [1usize, 2, 3] {
            match speedup_gate(cores, false) {
                SpeedupGate::Skip(reason) => {
                    assert!(reason.contains(&format!("{cores} core")), "{reason}");
                    assert!(reason.contains("TDN_BENCH_FORCE_SPEEDUP_CHECK"), "{reason}");
                }
                SpeedupGate::Enforce => panic!("{cores}-core host must skip without the override"),
            }
        }
    }
}
