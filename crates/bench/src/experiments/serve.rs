//! Serving-layer load experiment: a multi-tenant firehose through the
//! sharded `tdn-serve` front-end, with crash-mid-stream failover.
//!
//! Four sections:
//!
//! 1. **Load run** — the full firehose (≥ 1M events at `--full` scale,
//!    enforced by [`Scale::serve_min_events`]) ingested tick by tick,
//!    sampling per-tick ingest flush latency and read-path query latency
//!    *under load* (queries run between flushes against the published
//!    snapshots).
//! 2. **Saturation curve** — the same firehose prefix re-ingested at
//!    increasing coalesce windows (flush every 1/4/16/64 ticks), showing
//!    the throughput-vs-latency tradeoff of batching the front-end.
//! 3. **Failover** — a second server with per-tenant delta-chain
//!    checkpoints is crashed mid-stream (dropped, losing everything
//!    after the last cadence save), recovered from the chain directory,
//!    and fed the whole stream again; the idempotent replay guard drops
//!    what was already applied. Final per-tenant solutions, watermarks,
//!    and oracle tallies must be **bit-identical** to the uninterrupted
//!    run.
//! 4. **Schema gates** — latency percentiles must be finite, ordered
//!    (p50 ≤ p99), and non-vacuous before `BENCH_serve.json` is written.
//!
//! Every gate goes through [`ensure`], so an identity break or a
//! degenerate latency table exits non-zero and fails the CI smoke job.

use crate::checks::ensure;
use crate::report::{f, percentile, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use tdn_core::{SieveAdnTracker, Solution, TrackerConfig};
use tdn_graph::Time;
use tdn_serve::{ServeConfig, Server, TenantId};
use tdn_streams::{TenantWorkload, TenantWorkloadConfig};

const SHARDS: usize = 8;
const K: usize = 10;
const SIEVE_EPS: f64 = 0.2;
/// Per-tenant node universe and lifetime cap of the synthetic firehose.
const NODES: u32 = 400;
const MAX_LIFETIME: u32 = 12;
const TENANT_ZIPF: f64 = 0.9;
/// Tenants probed for query latency after each flush.
const QUERY_PROBES: u32 = 4;
/// Coalesce windows (ticks per flush) for the saturation curve.
const WINDOWS: [u64; 4] = [1, 4, 16, 64];
/// The crash lands at this fraction of the stream.
const CRASH_FRACTION: f64 = 0.6;

fn workload(scale: &Scale) -> TenantWorkload {
    TenantWorkload::new(TenantWorkloadConfig {
        tenants: scale.serve_tenants,
        ticks: scale.serve_ticks,
        events_per_tick: scale.serve_events_per_tick,
        tenant_zipf: TENANT_ZIPF,
        nodes: NODES,
        node_zipf: 1.0,
        max_lifetime: MAX_LIFETIME,
        seed: scale.seed ^ 0x5E22_7E00,
    })
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig::new(K, SIEVE_EPS, MAX_LIFETIME)
}

/// Submits tick `t`'s batches (rotating tenant order, matching
/// `TenantWorkload::interleaved`). Returns the events submitted.
fn submit_tick(server: &mut Server<SieveAdnTracker>, w: &TenantWorkload, t: Time) -> u64 {
    let tenants = w.config().tenants as u64;
    let mut events = 0u64;
    for slot in 0..tenants {
        let tenant = ((slot + t) % tenants) as u32;
        let edges = w.batch_at(tenant, t);
        if !edges.is_empty() {
            events += edges.len() as u64;
            server
                .submit_batch(tenant as TenantId, t, edges)
                .expect("unbounded queues never reject");
        }
    }
    events
}

/// Final observable state of every tenant, ascending by id.
fn fingerprints(server: &Server<SieveAdnTracker>) -> Vec<(TenantId, Option<Time>, Solution, u64)> {
    server
        .tenants()
        .into_iter()
        .map(|tenant| {
            let snap = server.query(tenant).expect("tenant provisioned");
            (tenant, snap.t, snap.solution.clone(), snap.oracle_calls)
        })
        .collect()
}

/// Runs the serving-layer experiment and writes `BENCH_serve.json`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let w = workload(scale);
    let ticks = scale.serve_ticks;
    let checkpoint_every = (ticks / 16).max(1);

    // ---- 1. Load run: uninterrupted, latency-sampled -------------------
    let mut server = Server::<SieveAdnTracker>::new(ServeConfig::new(SHARDS, tracker_cfg()))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut ingest_ms: Vec<f64> = Vec::with_capacity(ticks as usize);
    let mut query_us: Vec<f64> = Vec::new();
    let mut total_events = 0u64;
    let mut total_steps = 0u64;
    let wall = Instant::now();
    for t in 0..ticks {
        let tick_start = Instant::now();
        total_events += submit_tick(&mut server, &w, t);
        let report = server
            .flush()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        ingest_ms.push(tick_start.elapsed().as_secs_f64() * 1e3);
        total_steps += report.steps;
        // Read path under load: probe the hottest tenants' published
        // snapshots between flushes.
        for tenant in 0..QUERY_PROBES.min(w.config().tenants) {
            let q = Instant::now();
            let snap = server.query(tenant as TenantId);
            query_us.push(q.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(&snap);
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let reference = fingerprints(&server);

    ensure(
        total_events >= scale.serve_min_events,
        format!(
            "firehose too small: {total_events} events < floor {}",
            scale.serve_min_events
        ),
    )?;
    ensure(
        reference.len() == w.config().tenants as usize,
        "not every tenant was provisioned",
    )?;

    // ---- 2. Saturation curve: coalesce windows -------------------------
    // A prefix keeps the curve affordable; every window sees the same
    // prefix, so rows are comparable.
    let sat_ticks = (ticks / 2).max(1);
    let mut saturation: Vec<(u64, f64, f64, u64)> = Vec::new();
    for window in WINDOWS {
        let mut s = Server::<SieveAdnTracker>::new(ServeConfig::new(SHARDS, tracker_cfg()))
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut flush_ms: Vec<f64> = Vec::new();
        let mut events = 0u64;
        let started = Instant::now();
        let mut pending_since = 0u64;
        for t in 0..sat_ticks {
            events += submit_tick(&mut s, &w, t);
            pending_since += 1;
            if pending_since >= window || t + 1 == sat_ticks {
                let fs = Instant::now();
                s.flush()
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                flush_ms.push(fs.elapsed().as_secs_f64() * 1e3);
                pending_since = 0;
            }
        }
        let secs = started.elapsed().as_secs_f64();
        let throughput = events as f64 / secs.max(1e-9);
        saturation.push((window, throughput, percentile(&flush_ms, 0.99), events));
    }

    // ---- 3. Failover: crash mid-stream, recover, replay ----------------
    let dir = out_dir.join("serve_chains");
    let _ = std::fs::remove_dir_all(&dir);
    let serve_cfg =
        ServeConfig::new(SHARDS, tracker_cfg()).with_checkpoints(&dir, checkpoint_every);
    let crash_tick = ((ticks as f64 * CRASH_FRACTION) as u64).clamp(1, ticks);
    let mut checkpoints = 0u64;
    {
        let mut victim = Server::<SieveAdnTracker>::new(serve_cfg.clone())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        for t in 0..crash_tick {
            submit_tick(&mut victim, &w, t);
            let report = victim
                .flush()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            checkpoints += report.checkpoints;
        }
        // Crash: drop the server. Everything after each tenant's last
        // cadence save is lost and must come back through replay.
    }
    ensure(checkpoints > 0, "no cadence checkpoints before the crash")?;

    let (mut recovered, _recovery) = Server::<SieveAdnTracker>::recover(serve_cfg)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    ensure(
        !recovered.tenants().is_empty(),
        "recovery found no tenant chains",
    )?;
    let mut replay_skipped = 0u64;
    for t in 0..ticks {
        submit_tick(&mut recovered, &w, t);
        let report = recovered
            .flush()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        replay_skipped += report.skipped;
    }
    ensure(
        replay_skipped > 0,
        "replay never hit the idempotent guard (suspicious recovery)",
    )?;
    let replayed = fingerprints(&recovered);
    ensure(
        replayed == reference,
        "FAILOVER IDENTITY VIOLATION: restore-and-replay diverged from the uninterrupted run",
    )?;
    let _ = std::fs::remove_dir_all(&dir);

    // ---- 4. Latency schema gates ---------------------------------------
    let ingest_p50 = percentile(&ingest_ms, 0.5);
    let ingest_p99 = percentile(&ingest_ms, 0.99);
    let query_p50 = percentile(&query_us, 0.5);
    let query_p99 = percentile(&query_us, 0.99);
    for (name, p50, p99) in [
        ("ingest_ms", ingest_p50, ingest_p99),
        ("query_us", query_p50, query_p99),
    ] {
        ensure(
            p50.is_finite() && p99.is_finite() && p50 >= 0.0 && p50 <= p99,
            format!("latency schema violation in {name}: p50={p50} p99={p99}"),
        )?;
    }
    ensure(
        !ingest_ms.is_empty() && !query_us.is_empty(),
        "latency samples are empty",
    )?;

    // ---- Report ---------------------------------------------------------
    let rows: Vec<Vec<String>> = saturation
        .iter()
        .map(|(win, tput, p99, events)| {
            vec![win.to_string(), f(*tput), f(*p99), events.to_string()]
        })
        .collect();
    print_table(
        "serve saturation (coalesce window sweep)",
        &["window_ticks", "events_per_sec", "p99_flush_ms", "events"],
        &rows,
    );
    println!(
        "serve load: {} tenants, {} ticks, {} events ({} steps) in {:.1}s \
         ({:.0} ev/s); ingest p50/p99 {:.3}/{:.3} ms; query p50/p99 {:.1}/{:.1} us",
        w.config().tenants,
        ticks,
        total_events,
        total_steps,
        wall_secs,
        total_events as f64 / wall_secs.max(1e-9),
        ingest_p50,
        ingest_p99,
        query_p50,
        query_p99,
    );
    println!(
        "serve failover: crash at tick {crash_tick}/{ticks}, {checkpoints} cadence checkpoints, \
         {replay_skipped} replayed batches skipped, final state bit-identical"
    );

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_serve.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"serve\",")?;
    writeln!(
        out,
        "  \"workload\": {{\"tenants\": {}, \"ticks\": {}, \"events_per_tick\": {}, \
         \"tenant_zipf\": {TENANT_ZIPF}, \"nodes\": {NODES}, \"max_lifetime\": {MAX_LIFETIME}, \
         \"seed\": {}}},",
        w.config().tenants,
        ticks,
        w.config().events_per_tick,
        w.config().seed,
    )?;
    writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"tracker\": \"SieveAdnTracker\", \"k\": {K}, \
         \"eps\": {SIEVE_EPS}, \"checkpoint_every\": {checkpoint_every}}},",
    )?;
    writeln!(
        out,
        "  \"totals\": {{\"events\": {total_events}, \"steps\": {total_steps}, \
         \"wall_secs\": {}, \"events_per_sec\": {}}},",
        f(wall_secs),
        f(total_events as f64 / wall_secs.max(1e-9)),
    )?;
    writeln!(
        out,
        "  \"ingest_latency_ms\": {{\"p50\": {}, \"p99\": {}}},",
        f(ingest_p50),
        f(ingest_p99),
    )?;
    writeln!(
        out,
        "  \"query_latency_us\": {{\"p50\": {}, \"p99\": {}}},",
        f(query_p50),
        f(query_p99),
    )?;
    writeln!(out, "  \"saturation\": [")?;
    for (i, (win, tput, p99, events)) in saturation.iter().enumerate() {
        writeln!(
            out,
            "    {{\"window_ticks\": {win}, \"events_per_sec\": {}, \"p99_flush_ms\": {}, \
             \"events\": {events}}}{}",
            f(*tput),
            f(*p99),
            if i + 1 == saturation.len() { "" } else { "," },
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(
        out,
        "  \"recovery\": {{\"crash_tick\": {crash_tick}, \"checkpoints\": {checkpoints}, \
         \"replay_skipped\": {replay_skipped}, \"identical\": true}}",
    )?;
    writeln!(out, "}}")?;
    out.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
