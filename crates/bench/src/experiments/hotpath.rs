//! Hot-path experiment: the incremental spread-maintenance engine versus
//! full recomputation, across batch sizes and decay windows.
//!
//! Every workload replays the *identical* prepared stream through two
//! HISTAPPROX trackers that differ only in [`SpreadMode`]: the
//! full-recompute reference (the pre-engine code path, retained verbatim)
//! and the incremental engine (redundancy-classified inserts, epoch-tagged
//! dirty sets, memoised spreads). The experiment **fails with a non-zero
//! exit** unless per-step solution values and oracle-call tallies are
//! bit-identical — a speedup that changes answers would be measuring a
//! different algorithm — and records wall-clock speedups plus the engine's
//! own tallies (redundant vs novel edges, cache hits vs misses,
//! patch-vs-rebuild decisions) in `BENCH_hotpath.json`.
//!
//! High-locality workloads (cascade streams growing deep retweet trees)
//! are where the engine shines: most fresh edges attach a brand-new sink,
//! so the spreads of the whole upstream tree change by an exactly-known
//! `+1` and come straight from the patched memo instead of a BFS each.

use crate::checks::ensure;
use crate::driver::{run_tracker, PreparedStream, RunLog};
use crate::report::{f, print_table};
use crate::scale::Scale;
use std::io::Write;
use std::path::Path;
use tdn_core::{HistApprox, SieveAdnTracker, SpreadMode, SpreadStatsSnapshot, TrackerConfig};
use tdn_streams::Dataset;

const EPS: f64 = 0.3;
const P: f64 = 0.001;
const K: usize = 10;

/// Which tracker a workload measures.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Tracker {
    /// SIEVEADN over the addition-only view: the spread-maintenance hot
    /// path in isolation (phases 3–4 of `SieveAdn::feed` dominate).
    SieveAdn,
    /// HISTAPPROX end to end: spread maintenance plus instance management,
    /// expiry, and histogram compression.
    HistApprox,
}

impl Tracker {
    fn name(self) -> &'static str {
        match self {
            Tracker::SieveAdn => "SieveADN",
            Tracker::HistApprox => "HistApprox",
        }
    }
}

/// One point of the batch-size × decay-window grid.
struct Workload {
    /// JSON/report identifier.
    name: &'static str,
    /// Tracker under measurement.
    tracker: Tracker,
    /// Interaction preset the stream replays.
    dataset: Dataset,
    /// Ticks coalesced per arrival batch (small batches = the high-rate
    /// serving shape the engine targets).
    batch_ticks: usize,
    /// Lifetime cap `L` (the decay window).
    max_lifetime: u32,
    /// Stream length multiplier over `scale.steps_main`. Synthetic streams
    /// emit ~1 interaction per tick; the hot path only *exists* once the
    /// accumulated graphs are deep enough that spread recomputation
    /// dominates, so the flagship workloads run longer horizons.
    steps_factor: u64,
}

/// The measured grid. Cascade streams (TwitterHiggs/TwitterHk) are the
/// high-locality hot path: batches keep growing the same retweet trees, so
/// each batch perturbs a deep but narrow ancestor neighbourhood while the
/// spreads of those ancestors (whole downstream subtrees) are expensive to
/// recompute — exactly what the dirty-set + delta patching exploits. The
/// Brightkite point is the honest control: a shallow bipartite stream
/// whose spreads are already cheap, so the engine can only break even.
/// `L` spans a long window (≈ everything stays live at quick scale) and a
/// short one (constant expiry churn, the engine's worst case).
const WORKLOADS: [Workload; 6] = [
    Workload {
        name: "adn_small_batch",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 4,
        max_lifetime: 10_000,
        steps_factor: 6,
    },
    Workload {
        name: "adn_large_batch",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHk,
        batch_ticks: 32,
        max_lifetime: 10_000,
        steps_factor: 6,
    },
    Workload {
        name: "adn_burst",
        tracker: Tracker::SieveAdn,
        dataset: Dataset::TwitterHiggs,
        batch_ticks: 4,
        max_lifetime: 10_000,
        steps_factor: 8,
    },
    Workload {
        name: "hist_long_decay",
        tracker: Tracker::HistApprox,
        dataset: Dataset::TwitterHk,
        batch_ticks: 8,
        max_lifetime: 10_000,
        steps_factor: 8,
    },
    Workload {
        name: "hist_short_decay",
        tracker: Tracker::HistApprox,
        dataset: Dataset::TwitterHiggs,
        batch_ticks: 4,
        max_lifetime: 64,
        steps_factor: 4,
    },
    Workload {
        name: "bipartite_control",
        tracker: Tracker::HistApprox,
        dataset: Dataset::Brightkite,
        batch_ticks: 4,
        max_lifetime: 10_000,
        steps_factor: 1,
    },
];

/// One workload's paired measurement.
struct GridPoint {
    name: &'static str,
    tracker: Tracker,
    dataset: Dataset,
    batch_ticks: usize,
    max_lifetime: u32,
    edges: u64,
    full: RunLog,
    incremental: RunLog,
    engine: SpreadStatsSnapshot,
}

impl GridPoint {
    fn speedup(&self) -> f64 {
        // Clamp the denominator so a sub-timer-resolution run can never
        // emit a non-finite value into the JSON.
        self.full.wall_secs / self.incremental.wall_secs.max(1e-9)
    }
}

fn run_mode(
    sel: Tracker,
    stream: &PreparedStream,
    cfg: &TrackerConfig,
    mode: SpreadMode,
) -> (RunLog, SpreadStatsSnapshot) {
    match sel {
        Tracker::SieveAdn => {
            let mut tracker = SieveAdnTracker::new(cfg).with_spread_mode(mode);
            let log = run_tracker(&mut tracker, stream);
            (log, tracker.spread_stats())
        }
        Tracker::HistApprox => {
            let mut tracker = HistApprox::new(cfg).with_spread_mode(mode);
            let log = run_tracker(&mut tracker, stream);
            (log, tracker.spread_stats())
        }
    }
}

/// Runs the grid, enforces bit-identity, writes `BENCH_hotpath.json`, and
/// prints the summary table.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    // Discarded warm-up so the first measured run does not absorb one-time
    // allocator/page-fault costs (same rationale as the throughput sweep).
    {
        let warm = PreparedStream::geometric(Dataset::TwitterHiggs, scale.seed, P, 10_000, 200)
            .coalesce(4);
        run_mode(
            Tracker::HistApprox,
            &warm,
            &TrackerConfig::new(K, EPS, 10_000),
            SpreadMode::FullRecompute,
        );
    }
    let mut points = Vec::new();
    for w in &WORKLOADS {
        let stream = PreparedStream::geometric(
            w.dataset,
            scale.seed,
            P,
            w.max_lifetime,
            scale.steps_main * w.steps_factor,
        )
        .coalesce(w.batch_ticks);
        let cfg = TrackerConfig::new(K, EPS, w.max_lifetime);
        let (full, full_engine) = run_mode(w.tracker, &stream, &cfg, SpreadMode::FullRecompute);
        let (incremental, engine) = run_mode(w.tracker, &stream, &cfg, SpreadMode::Incremental);
        // The acceptance invariant: the engine must not change a single
        // output bit — per-step solution values AND cumulative oracle
        // tallies (one call per singleton evaluation, however serviced).
        ensure(
            incremental.values == full.values && incremental.calls == full.calls,
            format!(
                "[{}] incremental engine diverged from full recompute \
                 (values match: {}, tallies match: {})",
                w.name,
                incremental.values == full.values,
                incremental.calls == full.calls,
            ),
        )?;
        ensure(
            full_engine == SpreadStatsSnapshot::default(),
            format!("[{}] reference run unexpectedly used the engine", w.name),
        )?;
        points.push(GridPoint {
            name: w.name,
            tracker: w.tracker,
            dataset: w.dataset,
            batch_ticks: w.batch_ticks,
            max_lifetime: w.max_lifetime,
            edges: stream.edges,
            full,
            incremental,
            engine,
        });
    }
    let best_speedup = points
        .iter()
        .map(GridPoint::speedup)
        .fold(f64::NAN, f64::max);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_hotpath.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "{{")?;
    writeln!(out, "  \"experiment\": \"hotpath_incremental_spread\",")?;
    writeln!(
        out,
        "  \"config\": {{\"k\": {K}, \"eps\": {EPS}, \"geo_p\": {P}, \"seed\": {}}},",
        scale.seed
    )?;
    writeln!(out, "  \"host_cores\": {cores},")?;
    writeln!(out, "  \"identical_all\": true,")?;
    writeln!(out, "  \"best_speedup\": {},", f(best_speedup))?;
    writeln!(out, "  \"workloads\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let e = &p.engine;
        writeln!(out, "    {{")?;
        writeln!(
            out,
            "      \"name\": \"{}\", \"tracker\": \"{}\", \"dataset\": \"{}\", \
             \"batch_ticks\": {}, \
             \"max_lifetime\": {}, \"steps\": {}, \"edges\": {},",
            p.name,
            p.tracker.name(),
            p.dataset.slug(),
            p.batch_ticks,
            p.max_lifetime,
            p.full.values.len(),
            p.edges,
        )?;
        writeln!(
            out,
            "      \"full\": {{\"wall_secs\": {}, \"p50_step_ms\": {}, \"p99_step_ms\": {}}},",
            f(p.full.wall_secs),
            f(p.full.step_latency_secs(0.5) * 1e3),
            f(p.full.step_latency_secs(0.99) * 1e3),
        )?;
        writeln!(
            out,
            "      \"incremental\": {{\"wall_secs\": {}, \"p50_step_ms\": {}, \"p99_step_ms\": {}}},",
            f(p.incremental.wall_secs),
            f(p.incremental.step_latency_secs(0.5) * 1e3),
            f(p.incremental.step_latency_secs(0.99) * 1e3),
        )?;
        writeln!(
            out,
            "      \"speedup\": {}, \"identical\": true, \"oracle_calls\": {},",
            f(p.speedup()),
            p.incremental.total_calls(),
        )?;
        writeln!(
            out,
            "      \"engine\": {{\"redundant_edges\": {}, \"sink_delta_edges\": {}, \
             \"novel_edges\": {}, \
             \"probe_budget_exhausted\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"patched_batches\": {}, \"rebuilt_batches\": {}}}",
            e.redundant_edges,
            e.sink_delta_edges,
            e.novel_edges,
            e.probe_budget_exhausted,
            e.cache_hits,
            e.cache_misses,
            e.patched_batches,
            e.rebuilt_batches,
        )?;
        writeln!(out, "    }}{sep}")?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    out.flush()?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let hit_rate = if p.engine.cache_hits + p.engine.cache_misses > 0 {
                p.engine.cache_hits as f64 / (p.engine.cache_hits + p.engine.cache_misses) as f64
            } else {
                0.0
            };
            vec![
                p.name.to_string(),
                p.tracker.name().to_string(),
                p.batch_ticks.to_string(),
                p.max_lifetime.to_string(),
                f(p.full.wall_secs),
                f(p.incremental.wall_secs),
                format!("{:.2}x", p.speedup()),
                format!("{:.0}%", hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        "Hot path: incremental spread maintenance vs full recompute (identical answers)",
        &[
            "workload",
            "tracker",
            "batch",
            "L",
            "full s",
            "incr s",
            "speedup",
            "memo hits",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
    Ok(())
}
