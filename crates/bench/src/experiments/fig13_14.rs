//! Figs. 13 and 14 — solution quality (ratio w.r.t. Greedy) and throughput
//! (processed edges per second) of HISTAPPROX (ε = 0.3), IMM, TIM+ and DIM
//! (β = 32) on Twitter-Higgs and StackOverflow-c2q, sweeping `k` (L fixed)
//! and `L` (k fixed), Geo(0.001) lifetimes.
//!
//! Both figures come from the *same* runs, so this module executes the
//! sweep once and emits both CSVs.
//!
//! Expected shape (paper): HISTAPPROX, IMM and TIM+ all deliver high
//! quality, DIM is less stable (worse on c2q than on Higgs); HISTAPPROX has
//! the highest throughput, then Greedy and DIM, with IMM and TIM+ slowest.

use crate::driver::{run_tracker, PreparedStream, RunLog};
use crate::report::{f, print_table, CsvWriter};
use crate::scale::Scale;
use std::path::Path;
use tdn_baselines::{DimTracker, ImmTracker, TimTracker};
use tdn_core::{GreedyTracker, HistApprox, InfluenceTracker, TrackerConfig};
use tdn_streams::Dataset;

const EPS_HIST: f64 = 0.3;
const EPS_RIS: f64 = 0.3;
const P: f64 = 0.001;

/// One sweep point: every tracker's log plus the Greedy reference.
pub struct Point {
    /// Dataset slug.
    pub dataset: &'static str,
    /// Sweep axis: `"k"` or `"L"`.
    pub axis: &'static str,
    /// Sweep coordinate.
    pub x: u64,
    /// Greedy reference log.
    pub greedy: RunLog,
    /// Contender logs (HistApprox, IMM, TIM+, DIM).
    pub contenders: Vec<RunLog>,
}

fn run_point(dataset: Dataset, axis: &'static str, k: usize, l: u32, scale: &Scale) -> Point {
    let stream = PreparedStream::geometric(dataset, scale.seed, P, l, scale.steps_ris);
    let cfg = TrackerConfig::new(k, EPS_HIST, l);
    let mut greedy = GreedyTracker::new(&cfg);
    let greedy_log = run_tracker(&mut greedy, &stream);
    let mut contenders: Vec<RunLog> = Vec::new();
    {
        let mut h = HistApprox::new(&cfg);
        contenders.push(run_tracker(&mut h, &stream));
    }
    {
        let mut imm = ImmTracker::new(&cfg, EPS_RIS, scale.seed ^ 0x1111).with_max_rr(scale.max_rr);
        contenders.push(run_tracker(&mut imm, &stream));
    }
    {
        let mut tim = TimTracker::new(&cfg, EPS_RIS, scale.seed ^ 0x2222).with_max_rr(scale.max_rr);
        contenders.push(run_tracker(&mut tim, &stream));
    }
    {
        let mut dim = DimTracker::new(&cfg, scale.dim_beta, scale.seed ^ 0x3333);
        contenders.push(run_tracker(&mut dim as &mut dyn InfluenceTracker, &stream));
    }
    Point {
        dataset: dataset.slug(),
        axis,
        x: if axis == "k" { k as u64 } else { l as u64 },
        greedy: greedy_log,
        contenders,
    }
}

/// Runs both sweeps on both datasets.
pub fn sweep(scale: &Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for dataset in [Dataset::TwitterHiggs, Dataset::StackOverflowC2q] {
        for &k in &scale.k_values_ris {
            out.push(run_point(dataset, "k", k, 10_000, scale));
        }
        for &l in &scale.l_values_ris {
            out.push(run_point(dataset, "L", 10, l, scale));
        }
    }
    out
}

/// Runs Figs. 13–14 and writes `fig13.csv` + `fig14.csv`.
pub fn run(out_dir: &Path, scale: &Scale) -> std::io::Result<()> {
    let points = sweep(scale);
    let mut fig13 = CsvWriter::create(
        out_dir,
        "fig13",
        &["dataset", "axis", "x", "algo", "quality_ratio"],
    )?;
    let mut fig14 = CsvWriter::create(
        out_dir,
        "fig14",
        &["dataset", "axis", "x", "algo", "throughput_eps"],
    )?;
    let mut summary = Vec::new();
    for p in &points {
        // Fig. 14 includes Greedy's own throughput line.
        fig14.row(&[
            p.dataset.to_string(),
            p.axis.to_string(),
            p.x.to_string(),
            p.greedy.name.clone(),
            f(p.greedy.throughput()),
        ])?;
        for log in &p.contenders {
            let ratio = log.mean_ratio_to(&p.greedy);
            fig13.row(&[
                p.dataset.to_string(),
                p.axis.to_string(),
                p.x.to_string(),
                log.name.clone(),
                f(ratio),
            ])?;
            fig14.row(&[
                p.dataset.to_string(),
                p.axis.to_string(),
                p.x.to_string(),
                log.name.clone(),
                f(log.throughput()),
            ])?;
            summary.push(vec![
                p.dataset.to_string(),
                format!("{}={}", p.axis, p.x),
                log.name.clone(),
                f(ratio),
                format!("{:.0}", log.throughput()),
            ]);
        }
    }
    fig13.finish()?;
    fig14.finish()?;
    print_table(
        "Figs. 13/14: quality ratio & throughput (edges/s)",
        &["dataset", "sweep", "algo", "quality", "edges/s"],
        &summary,
    );
    Ok(())
}
